//! Minimal, dependency-free `syn` shim.
//!
//! The build environment for this workspace has no access to crates.io, so
//! this crate re-implements the slice of the `syn` API that `simlint` (the
//! workspace static analyzer) needs: [`parse_file`] producing a [`File`] of
//! shallowly parsed [`Item`]s.
//!
//! "Shallow" means item *structure* is parsed — attributes, visibility,
//! function signatures (name, inputs, return type), struct/enum fields
//! (name, type), module nesting, impl/trait bodies — while everything
//! expression-shaped stays a raw [`TokenStream`]. That is exactly the
//! altitude a token-pattern linter works at: rules that need declaration
//! context (field types, `#[must_use]`, `#[cfg(test)]` extents) read the
//! items; rules that pattern-match expressions scan the streams.
//!
//! Anything this parser does not recognize becomes [`Item::Verbatim`]
//! rather than an error, so novel syntax degrades to "still scanned for
//! token patterns" instead of breaking the build.

use proc_macro2::{Delimiter, Group, Ident, LineColumn, Span, TokenStream, TokenTree};

/// A parse failure, with the position it occurred at.
#[derive(Debug, Clone)]
pub struct Error {
    pub pos: LineColumn,
    pub message: String,
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "parse error at {}:{}: {}",
            self.pos.line, self.pos.column, self.message
        )
    }
}

impl std::error::Error for Error {}

/// One `#[...]` (or inner `#![...]`) attribute. The stream is the tokens
/// *inside* the brackets: `cfg(test)`, `must_use`, `derive(Debug)`, ...
#[derive(Debug, Clone)]
pub struct Attribute {
    pub tokens: TokenStream,
    pub span: Span,
    /// True for `#![...]` inner attributes.
    pub inner: bool,
}

impl Attribute {
    /// First ident of the attribute — its "path" for the common one-segment
    /// case (`test`, `cfg`, `must_use`, `derive`).
    pub fn path_ident(&self) -> Option<String> {
        match self.tokens.tokens().first() {
            Some(TokenTree::Ident(i)) => Some(i.to_string()),
            _ => None,
        }
    }

    /// True when the attribute mentions `test` under a `cfg` path:
    /// `#[cfg(test)]`, `#[cfg(any(test, feature = "x"))]`.
    pub fn is_cfg_test(&self) -> bool {
        if self.path_ident().as_deref() != Some("cfg") {
            return false;
        }
        stream_mentions_ident(&self.tokens, "test")
    }

    /// True for `#[test]` (and the nightly `#[bench]`).
    pub fn is_test_marker(&self) -> bool {
        matches!(self.path_ident().as_deref(), Some("test" | "bench"))
    }

    /// True for `#[must_use]` (with or without a message).
    pub fn is_must_use(&self) -> bool {
        self.path_ident().as_deref() == Some("must_use")
    }
}

fn stream_mentions_ident(stream: &TokenStream, name: &str) -> bool {
    stream.tokens().iter().any(|t| match t {
        TokenTree::Ident(i) => *i == name,
        TokenTree::Group(g) => stream_mentions_ident(g.stream(), name),
        _ => false,
    })
}

/// Item visibility. Only the distinction the analyzer needs: `pub`
/// (including `pub(crate)` etc.) vs. private.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Visibility {
    Public,
    Inherited,
}

/// How a method takes `self` (extension over the real syn API, which
/// models this as a full `FnArg::Receiver` node).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Receiver {
    /// `&self` (with or without a lifetime).
    Ref,
    /// `&mut self`.
    RefMut,
    /// `self` by value.
    Owned,
    /// `mut self` by value.
    OwnedMut,
}

impl Receiver {
    /// True for the receivers that let the method mutate `self`.
    pub fn is_mut(self) -> bool {
        matches!(self, Receiver::RefMut | Receiver::OwnedMut)
    }
}

/// A function signature: `fn name(<inputs>) -> <output>`.
#[derive(Debug, Clone)]
pub struct Signature {
    pub ident: Ident,
    /// Tokens between the parentheses of the parameter list.
    pub inputs: TokenStream,
    /// Tokens after `->` (empty stream when the return type is `()`).
    pub output: TokenStream,
}

impl Signature {
    /// The method's `self` receiver, if its first parameter is one.
    /// Handles `self`, `mut self`, `&self`, `&mut self`, and `&'a self`;
    /// a `self: Pin<...>` typed receiver reports its by-value mode.
    pub fn receiver(&self) -> Option<Receiver> {
        let first = split_top_level_commas(&self.inputs).into_iter().next()?;
        let mut saw_amp = false;
        let mut saw_mut = false;
        let mut after_tick = false;
        for t in &first {
            match t {
                TokenTree::Punct(p) if p.as_char() == '&' => saw_amp = true,
                TokenTree::Punct(p) if p.as_char() == '\'' => after_tick = true,
                TokenTree::Ident(i) if after_tick => {
                    // The lifetime name; `i` is not the receiver.
                    let _ = i;
                    after_tick = false;
                }
                TokenTree::Ident(i) if *i == "mut" => saw_mut = true,
                TokenTree::Ident(i) if *i == "self" => {
                    return Some(match (saw_amp, saw_mut) {
                        (true, true) => Receiver::RefMut,
                        (true, false) => Receiver::Ref,
                        (false, true) => Receiver::OwnedMut,
                        (false, false) => Receiver::Owned,
                    });
                }
                _ => return None,
            }
        }
        None
    }
}

/// A `fn` item (free function, method, or trait method).
#[derive(Debug, Clone)]
pub struct ItemFn {
    pub attrs: Vec<Attribute>,
    pub vis: Visibility,
    pub sig: Signature,
    /// The body's brace group; `None` for trait method declarations.
    pub body: Option<Group>,
    pub span: Span,
}

/// One named field of a struct or enum variant (tuple fields get no ident).
#[derive(Debug, Clone)]
pub struct Field {
    pub vis: Visibility,
    pub ident: Option<Ident>,
    pub ty: TokenStream,
    pub span: Span,
}

/// A `struct` item.
#[derive(Debug, Clone)]
pub struct ItemStruct {
    pub attrs: Vec<Attribute>,
    pub vis: Visibility,
    pub ident: Ident,
    pub fields: Vec<Field>,
    pub span: Span,
}

/// One variant of an enum, with any fields it declares.
#[derive(Debug, Clone)]
pub struct Variant {
    pub ident: Ident,
    pub fields: Vec<Field>,
}

/// An `enum` item.
#[derive(Debug, Clone)]
pub struct ItemEnum {
    pub attrs: Vec<Attribute>,
    pub vis: Visibility,
    pub ident: Ident,
    pub variants: Vec<Variant>,
    pub span: Span,
}

/// A `mod` item; `content` is `None` for out-of-line `mod foo;`.
#[derive(Debug, Clone)]
pub struct ItemMod {
    pub attrs: Vec<Attribute>,
    pub vis: Visibility,
    pub ident: Ident,
    pub content: Option<Vec<Item>>,
    pub span: Span,
}

/// An `impl` block; `header` is everything between `impl` and the body.
#[derive(Debug, Clone)]
pub struct ItemImpl {
    pub attrs: Vec<Attribute>,
    pub header: TokenStream,
    pub items: Vec<Item>,
    pub span: Span,
}

impl ItemImpl {
    /// The ident of the implemented-for type: `Foo` in `impl Foo`,
    /// `impl<T> Foo<T>`, and `impl Trait for Foo`. For path types the last
    /// segment before any generics is returned.
    pub fn self_ty_ident(&self) -> Option<String> {
        let (trait_part, self_part) = self.split_header();
        let _ = trait_part;
        last_path_segment(&self_part)
    }

    /// For `impl Trait for Type`, the trait's last path segment
    /// (`ClusterController` in `impl dvfs::ClusterController for X`);
    /// `None` for inherent impls.
    pub fn trait_ident(&self) -> Option<String> {
        let (trait_part, _) = self.split_header();
        last_path_segment(&trait_part?)
    }

    /// Split the header into (trait tokens, self-type tokens). Leading
    /// generics and a trailing `where` clause are stripped.
    fn split_header(&self) -> (Option<Vec<TokenTree>>, Vec<TokenTree>) {
        let tokens = self.header.tokens();
        let mut i = 0usize;
        // Strip leading `<...>` generics (angle matching; `->` never
        // appears before the generic run closes at depth 0).
        if matches!(tokens.first(), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
            let mut depth = 0i32;
            let mut prev_dash = false;
            while i < tokens.len() {
                if let TokenTree::Punct(p) = &tokens[i] {
                    let c = p.as_char();
                    if c == '<' {
                        depth += 1;
                    } else if c == '>' && !prev_dash {
                        depth -= 1;
                    }
                    prev_dash = c == '-';
                } else {
                    prev_dash = false;
                }
                i += 1;
                if depth == 0 {
                    break;
                }
            }
        }
        // Split on a top-level `for` keyword (skipping HRTB `for<...>`)
        // and stop at `where`.
        let mut trait_part: Option<Vec<TokenTree>> = None;
        let mut current = Vec::new();
        while i < tokens.len() {
            match &tokens[i] {
                TokenTree::Ident(id) if *id == "where" => break,
                TokenTree::Ident(id)
                    if *id == "for"
                        && !matches!(
                            tokens.get(i + 1),
                            Some(TokenTree::Punct(p)) if p.as_char() == '<'
                        ) =>
                {
                    trait_part = Some(std::mem::take(&mut current));
                    i += 1;
                }
                t => {
                    current.push(t.clone());
                    i += 1;
                }
            }
        }
        (trait_part, current)
    }
}

/// The last `::`-separated path segment before any `<` generics:
/// `dvfs::cluster::Decision<T>` -> `Decision`. Leading `&`/`dyn`/`mut`
/// are skipped.
fn last_path_segment(tokens: &[TokenTree]) -> Option<String> {
    let mut last = None;
    for t in tokens {
        match t {
            TokenTree::Ident(i) if *i == "dyn" || *i == "mut" => {}
            TokenTree::Ident(i) => last = Some(i.to_string()),
            TokenTree::Punct(p) if p.as_char() == ':' || p.as_char() == '&' => {}
            TokenTree::Punct(p) if p.as_char() == '<' => break,
            _ => break,
        }
    }
    last
}

/// A `trait` definition; `header` is everything between `trait` and the
/// body (name, generics, supertraits).
#[derive(Debug, Clone)]
pub struct ItemTrait {
    pub attrs: Vec<Attribute>,
    pub vis: Visibility,
    pub header: TokenStream,
    pub items: Vec<Item>,
    pub span: Span,
}

impl ItemTrait {
    /// The trait's name: the first ident of the header.
    pub fn ident(&self) -> Option<String> {
        match self.header.tokens().first() {
            Some(TokenTree::Ident(i)) => Some(i.to_string()),
            _ => None,
        }
    }
}

/// Any item the shallow parser models, plus `Verbatim` for the rest
/// (`use`, `const`, `static`, `type`, macro definitions/invocations,
/// `extern` blocks).
#[derive(Debug, Clone)]
pub enum Item {
    Fn(ItemFn),
    Struct(ItemStruct),
    Enum(ItemEnum),
    Mod(ItemMod),
    Impl(ItemImpl),
    Trait(ItemTrait),
    Verbatim(VerbatimItem),
}

/// An unmodeled item: its attributes and raw tokens.
#[derive(Debug, Clone)]
pub struct VerbatimItem {
    pub attrs: Vec<Attribute>,
    pub tokens: TokenStream,
    pub span: Span,
}

impl Item {
    /// The item's outer attributes.
    pub fn attrs(&self) -> &[Attribute] {
        match self {
            Item::Fn(i) => &i.attrs,
            Item::Struct(i) => &i.attrs,
            Item::Enum(i) => &i.attrs,
            Item::Mod(i) => &i.attrs,
            Item::Impl(i) => &i.attrs,
            Item::Trait(i) => &i.attrs,
            Item::Verbatim(i) => &i.attrs,
        }
    }

    /// The item's full source extent (attributes included).
    pub fn span(&self) -> Span {
        match self {
            Item::Fn(i) => i.span,
            Item::Struct(i) => i.span,
            Item::Enum(i) => i.span,
            Item::Mod(i) => i.span,
            Item::Impl(i) => i.span,
            Item::Trait(i) => i.span,
            Item::Verbatim(i) => i.span,
        }
    }
}

/// A parsed source file.
#[derive(Debug, Clone)]
pub struct File {
    /// File-level `#![...]` attributes.
    pub attrs: Vec<Attribute>,
    pub items: Vec<Item>,
}

/// Parse a whole source file.
pub fn parse_file(src: &str) -> Result<File, Error> {
    let stream: TokenStream = src.parse().map_err(|e: proc_macro2::LexError| Error {
        pos: e.pos,
        message: e.message,
    })?;
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut parser = Parser {
        tokens: &tokens,
        pos: 0,
    };
    let (attrs, items) = parser.parse_items(true)?;
    Ok(File { attrs, items })
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser<'a> {
    tokens: &'a [TokenTree],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<&'a TokenTree> {
        self.tokens.get(self.pos)
    }

    fn peek_at(&self, off: usize) -> Option<&'a TokenTree> {
        self.tokens.get(self.pos + off)
    }

    fn bump(&mut self) -> Option<&'a TokenTree> {
        let t = self.tokens.get(self.pos)?;
        self.pos += 1;
        Some(t)
    }

    fn peek_punct(&self, ch: char) -> bool {
        matches!(self.peek(), Some(TokenTree::Punct(p)) if p.as_char() == ch)
    }

    fn peek_ident(&self) -> Option<&'a Ident> {
        match self.peek() {
            Some(TokenTree::Ident(i)) => Some(i),
            _ => None,
        }
    }

    /// Parse a run of items until end of input. Returns inner (`#![...]`)
    /// attributes seen (only collected at file level) and the items.
    fn parse_items(&mut self, file_level: bool) -> Result<(Vec<Attribute>, Vec<Item>), Error> {
        let mut inner_attrs = Vec::new();
        let mut items = Vec::new();
        while self.peek().is_some() {
            // Inner attributes: `#![...]`.
            if self.peek_punct('#') {
                if let (Some(TokenTree::Punct(bang)), Some(TokenTree::Group(g))) =
                    (self.peek_at(1), self.peek_at(2))
                {
                    if bang.as_char() == '!' && g.delimiter() == Delimiter::Bracket {
                        let attr = Attribute {
                            tokens: g.stream().clone(),
                            span: g.span(),
                            inner: true,
                        };
                        self.pos += 3;
                        if file_level {
                            inner_attrs.push(attr);
                        }
                        continue;
                    }
                }
            }
            items.push(self.parse_item()?);
        }
        Ok((inner_attrs, items))
    }

    fn parse_item(&mut self) -> Result<Item, Error> {
        let start_pos = self.pos;
        let attrs = self.parse_outer_attrs();
        let vis = self.parse_visibility();
        // Qualifiers that may precede `fn`.
        let mut qual = 0usize;
        while let Some(i) = self.peek_ident() {
            let s = i.to_string();
            if matches!(s.as_str(), "const" | "async" | "unsafe" | "extern") {
                // `const` might start a const *item*; only treat it as a fn
                // qualifier when a later token is `fn`.
                if !self.fn_follows_qualifiers() {
                    break;
                }
                self.bump();
                // `extern "C"`.
                if s == "extern" {
                    if let Some(TokenTree::Literal(_)) = self.peek() {
                        self.bump();
                    }
                }
                qual += 1;
                if qual > 4 {
                    break;
                }
                continue;
            }
            break;
        }
        let Some(keyword) = self.peek_ident().map(|i| i.to_string()) else {
            // Not an item-shaped sequence; swallow as verbatim.
            return Ok(self.verbatim_from(start_pos, attrs));
        };
        match keyword.as_str() {
            "fn" => self.parse_fn(start_pos, attrs, vis),
            "struct" => self.parse_struct(start_pos, attrs, vis),
            "enum" => self.parse_enum(start_pos, attrs, vis),
            "mod" => self.parse_mod(start_pos, attrs, vis),
            "impl" => self.parse_impl(start_pos, attrs),
            "trait" => self.parse_trait(start_pos, attrs, vis),
            _ => Ok(self.verbatim_from(start_pos, attrs)),
        }
    }

    /// After optional qualifiers, does an `fn` keyword follow within the
    /// next few tokens? Distinguishes `const fn f()` from `const X: u32`.
    fn fn_follows_qualifiers(&self) -> bool {
        for off in 0..5 {
            match self.peek_at(off) {
                Some(TokenTree::Ident(i)) => {
                    let s = i.to_string();
                    if s == "fn" {
                        return true;
                    }
                    if !matches!(s.as_str(), "const" | "async" | "unsafe" | "extern") {
                        return false;
                    }
                }
                Some(TokenTree::Literal(_)) => continue, // extern "C"
                _ => return false,
            }
        }
        false
    }

    fn parse_outer_attrs(&mut self) -> Vec<Attribute> {
        let mut attrs = Vec::new();
        while self.peek_punct('#') {
            if let Some(TokenTree::Group(g)) = self.peek_at(1) {
                if g.delimiter() == Delimiter::Bracket {
                    attrs.push(Attribute {
                        tokens: g.stream().clone(),
                        span: g.span(),
                        inner: false,
                    });
                    self.pos += 2;
                    continue;
                }
            }
            break;
        }
        attrs
    }

    fn parse_visibility(&mut self) -> Visibility {
        if let Some(i) = self.peek_ident() {
            if *i == "pub" {
                self.bump();
                // `pub(crate)`, `pub(super)`, `pub(in path)`.
                if let Some(TokenTree::Group(g)) = self.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        self.bump();
                    }
                }
                return Visibility::Public;
            }
        }
        Visibility::Inherited
    }

    /// Skip a balanced `<...>` generics run if one starts here. `>` closes
    /// one level unless it is part of `->` (tracked via the previous punct).
    fn skip_generics(&mut self) {
        if !self.peek_punct('<') {
            return;
        }
        let mut depth = 0i32;
        let mut prev_dash = false;
        while let Some(t) = self.peek() {
            match t {
                TokenTree::Punct(p) => {
                    let c = p.as_char();
                    if c == '<' {
                        depth += 1;
                    } else if c == '>' && !prev_dash {
                        depth -= 1;
                    }
                    prev_dash = c == '-';
                    self.bump();
                    if depth == 0 {
                        return;
                    }
                }
                _ => {
                    prev_dash = false;
                    self.bump();
                }
            }
        }
    }

    fn span_from(&self, start_pos: usize) -> Span {
        let first = self.tokens.get(start_pos).map(|t| t.span());
        let last = self
            .tokens
            .get(self.pos.saturating_sub(1))
            .map(|t| t.span());
        match (first, last) {
            (Some(a), Some(b)) => a.join(b),
            (Some(a), None) => a,
            _ => Span::default(),
        }
    }

    /// Consume tokens until (and including) a top-level `;`, or including a
    /// top-level brace group (macro/extern bodies), and wrap the item.
    fn verbatim_from(&mut self, start_pos: usize, attrs: Vec<Attribute>) -> Item {
        let body_start = self.pos;
        while let Some(t) = self.bump() {
            match t {
                TokenTree::Punct(p) if p.as_char() == ';' => break,
                TokenTree::Group(g) if g.delimiter() == Delimiter::Brace => {
                    // `macro_rules! name { ... }` and `extern { ... }` end
                    // with a brace group; `const X: [u8; 2] = f({ 1 });`
                    // does not end at an *embedded* group, but embedded
                    // brace groups at the item's top level only occur in
                    // expression position after `=`, so only stop when no
                    // `=` was seen.
                    let saw_eq = self.tokens[body_start..self.pos - 1]
                        .iter()
                        .any(|t| matches!(t, TokenTree::Punct(p) if p.as_char() == '='));
                    if !saw_eq {
                        break;
                    }
                }
                _ => {}
            }
        }
        Item::Verbatim(VerbatimItem {
            tokens: TokenStream::from(self.tokens[body_start..self.pos].to_vec()),
            attrs,
            span: self.span_from(start_pos),
        })
    }

    fn parse_fn(
        &mut self,
        start_pos: usize,
        attrs: Vec<Attribute>,
        vis: Visibility,
    ) -> Result<Item, Error> {
        self.bump(); // `fn`
        let Some(TokenTree::Ident(name)) = self.bump() else {
            return Ok(self.verbatim_from(start_pos, attrs));
        };
        let ident = name.clone();
        self.skip_generics();
        let inputs = match self.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let s = g.stream().clone();
                self.bump();
                s
            }
            _ => return Ok(self.verbatim_from(start_pos, attrs)),
        };
        // Return type: tokens after `->` up to the body brace, a `where`
        // clause, or a terminating `;`.
        let mut output: Vec<TokenTree> = Vec::new();
        let mut saw_arrow = false;
        let mut body = None;
        loop {
            match self.peek() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    body = Some(g.clone());
                    self.bump();
                    break;
                }
                Some(TokenTree::Punct(p)) if p.as_char() == ';' => {
                    self.bump();
                    break;
                }
                Some(TokenTree::Punct(p)) if p.as_char() == '-' => {
                    if let Some(TokenTree::Punct(gt)) = self.peek_at(1) {
                        if gt.as_char() == '>' {
                            self.pos += 2;
                            saw_arrow = true;
                            continue;
                        }
                    }
                    self.bump();
                }
                Some(TokenTree::Ident(i)) if *i == "where" => {
                    // Stop collecting the return type; skip the where
                    // clause up to the body / semicolon.
                    saw_arrow = false;
                    self.bump();
                }
                Some(t) => {
                    if saw_arrow {
                        output.push(t.clone());
                    }
                    self.bump();
                }
                None => break,
            }
        }
        Ok(Item::Fn(ItemFn {
            attrs,
            vis,
            sig: Signature {
                ident,
                inputs,
                output: TokenStream::from(output),
            },
            body,
            span: self.span_from(start_pos),
        }))
    }

    fn parse_struct(
        &mut self,
        start_pos: usize,
        attrs: Vec<Attribute>,
        vis: Visibility,
    ) -> Result<Item, Error> {
        self.bump(); // `struct`
        let Some(TokenTree::Ident(name)) = self.bump() else {
            return Ok(self.verbatim_from(start_pos, attrs));
        };
        let ident = name.clone();
        self.skip_generics();
        // Skip a where clause if present.
        while let Some(t) = self.peek() {
            match t {
                TokenTree::Group(_) => break,
                TokenTree::Punct(p) if p.as_char() == ';' => break,
                _ => {
                    self.bump();
                }
            }
        }
        let fields = match self.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let f = parse_named_fields(g.stream());
                self.bump();
                f
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let f = parse_tuple_fields(g.stream());
                self.bump();
                if self.peek_punct(';') {
                    self.bump();
                }
                f
            }
            _ => {
                if self.peek_punct(';') {
                    self.bump();
                }
                Vec::new()
            }
        };
        Ok(Item::Struct(ItemStruct {
            attrs,
            vis,
            ident,
            fields,
            span: self.span_from(start_pos),
        }))
    }

    fn parse_enum(
        &mut self,
        start_pos: usize,
        attrs: Vec<Attribute>,
        vis: Visibility,
    ) -> Result<Item, Error> {
        self.bump(); // `enum`
        let Some(TokenTree::Ident(name)) = self.bump() else {
            return Ok(self.verbatim_from(start_pos, attrs));
        };
        let ident = name.clone();
        self.skip_generics();
        while let Some(t) = self.peek() {
            match t {
                TokenTree::Group(g) if g.delimiter() == Delimiter::Brace => break,
                _ => {
                    self.bump();
                }
            }
        }
        let mut variants = Vec::new();
        if let Some(TokenTree::Group(g)) = self.peek() {
            let body: Vec<TokenTree> = g.stream().tokens().to_vec();
            self.bump();
            let mut i = 0usize;
            while i < body.len() {
                // Skip attributes on the variant.
                while matches!(&body[i..], [TokenTree::Punct(p), TokenTree::Group(_), ..] if p.as_char() == '#')
                {
                    i += 2;
                }
                let Some(TokenTree::Ident(vname)) = body.get(i) else {
                    i += 1;
                    continue;
                };
                let vident = vname.clone();
                i += 1;
                let mut fields = Vec::new();
                if let Some(TokenTree::Group(fg)) = body.get(i) {
                    fields = match fg.delimiter() {
                        Delimiter::Brace => parse_named_fields(fg.stream()),
                        Delimiter::Parenthesis => parse_tuple_fields(fg.stream()),
                        _ => Vec::new(),
                    };
                    i += 1;
                }
                // Skip a `= discriminant` and the trailing comma.
                while i < body.len() {
                    if matches!(&body[i], TokenTree::Punct(p) if p.as_char() == ',') {
                        i += 1;
                        break;
                    }
                    i += 1;
                }
                variants.push(Variant {
                    ident: vident,
                    fields,
                });
            }
        }
        Ok(Item::Enum(ItemEnum {
            attrs,
            vis,
            ident,
            variants,
            span: self.span_from(start_pos),
        }))
    }

    fn parse_mod(
        &mut self,
        start_pos: usize,
        attrs: Vec<Attribute>,
        vis: Visibility,
    ) -> Result<Item, Error> {
        self.bump(); // `mod`
        let Some(TokenTree::Ident(name)) = self.bump() else {
            return Ok(self.verbatim_from(start_pos, attrs));
        };
        let ident = name.clone();
        let content = match self.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let inner: Vec<TokenTree> = g.stream().tokens().to_vec();
                self.bump();
                let mut sub = Parser {
                    tokens: &inner,
                    pos: 0,
                };
                let (_, items) = sub.parse_items(false)?;
                Some(items)
            }
            _ => {
                if self.peek_punct(';') {
                    self.bump();
                }
                None
            }
        };
        Ok(Item::Mod(ItemMod {
            attrs,
            vis,
            ident,
            content,
            span: self.span_from(start_pos),
        }))
    }

    fn parse_impl(&mut self, start_pos: usize, attrs: Vec<Attribute>) -> Result<Item, Error> {
        self.bump(); // `impl`
        let header_start = self.pos;
        while let Some(t) = self.peek() {
            match t {
                TokenTree::Group(g) if g.delimiter() == Delimiter::Brace => break,
                TokenTree::Punct(p) if p.as_char() == ';' => {
                    self.bump();
                    return Ok(self.verbatim_from(start_pos, attrs));
                }
                _ => {
                    self.bump();
                }
            }
        }
        let header = TokenStream::from(self.tokens[header_start..self.pos].to_vec());
        let items = match self.peek() {
            Some(TokenTree::Group(g)) => {
                let inner: Vec<TokenTree> = g.stream().tokens().to_vec();
                self.bump();
                let mut sub = Parser {
                    tokens: &inner,
                    pos: 0,
                };
                let (_, items) = sub.parse_items(false)?;
                items
            }
            _ => Vec::new(),
        };
        Ok(Item::Impl(ItemImpl {
            attrs,
            header,
            items,
            span: self.span_from(start_pos),
        }))
    }

    fn parse_trait(
        &mut self,
        start_pos: usize,
        attrs: Vec<Attribute>,
        vis: Visibility,
    ) -> Result<Item, Error> {
        self.bump(); // `trait`
        let header_start = self.pos;
        while let Some(t) = self.peek() {
            match t {
                TokenTree::Group(g) if g.delimiter() == Delimiter::Brace => break,
                _ => {
                    self.bump();
                }
            }
        }
        let header = TokenStream::from(self.tokens[header_start..self.pos].to_vec());
        let items = match self.peek() {
            Some(TokenTree::Group(g)) => {
                let inner: Vec<TokenTree> = g.stream().tokens().to_vec();
                self.bump();
                let mut sub = Parser {
                    tokens: &inner,
                    pos: 0,
                };
                let (_, items) = sub.parse_items(false)?;
                items
            }
            _ => Vec::new(),
        };
        Ok(Item::Trait(ItemTrait {
            attrs,
            vis,
            header,
            items,
            span: self.span_from(start_pos),
        }))
    }
}

/// Split `name: Type, name: Type` field lists (struct bodies, enum struct
/// variants). Commas inside groups or generics do not split.
fn parse_named_fields(stream: &TokenStream) -> Vec<Field> {
    let mut fields = Vec::new();
    for part in split_top_level_commas(stream) {
        let mut i = 0usize;
        // Skip attributes.
        while matches!(&part[i..], [TokenTree::Punct(p), TokenTree::Group(_), ..] if p.as_char() == '#')
        {
            i += 2;
        }
        let vis = match part.get(i) {
            Some(TokenTree::Ident(id)) if *id == "pub" => {
                i += 1;
                if matches!(part.get(i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                {
                    i += 1;
                }
                Visibility::Public
            }
            _ => Visibility::Inherited,
        };
        let Some(TokenTree::Ident(name)) = part.get(i) else {
            continue;
        };
        let ident = name.clone();
        i += 1;
        if !matches!(part.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ':') {
            continue;
        }
        i += 1;
        let ty: Vec<TokenTree> = part[i..].to_vec();
        if ty.is_empty() {
            continue;
        }
        let span = ident
            .span()
            .join(ty.last().map(|t| t.span()).unwrap_or(ident.span()));
        fields.push(Field {
            vis,
            ident: Some(ident),
            ty: TokenStream::from(ty),
            span,
        });
    }
    fields
}

/// Tuple-struct / tuple-variant fields: `Type, Type`.
fn parse_tuple_fields(stream: &TokenStream) -> Vec<Field> {
    let mut fields = Vec::new();
    for part in split_top_level_commas(stream) {
        let mut i = 0usize;
        while matches!(&part[i..], [TokenTree::Punct(p), TokenTree::Group(_), ..] if p.as_char() == '#')
        {
            i += 2;
        }
        let vis = match part.get(i) {
            Some(TokenTree::Ident(id)) if *id == "pub" => {
                i += 1;
                if matches!(part.get(i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                {
                    i += 1;
                }
                Visibility::Public
            }
            _ => Visibility::Inherited,
        };
        let ty: Vec<TokenTree> = part[i..].to_vec();
        if ty.is_empty() {
            continue;
        }
        let span = ty
            .first()
            .map(|t| t.span())
            .unwrap_or_default()
            .join(ty.last().map(|t| t.span()).unwrap_or_default());
        fields.push(Field {
            vis,
            ident: None,
            ty: TokenStream::from(ty),
            span,
        });
    }
    fields
}

/// Split a stream on commas that are not nested inside `<...>` generics
/// (groups nest naturally as single tokens). Public because parameter-list
/// analysis downstream wants the same comma discipline (extension over the
/// real syn API).
pub fn split_top_level_commas(stream: &TokenStream) -> Vec<Vec<TokenTree>> {
    let mut parts = Vec::new();
    let mut current = Vec::new();
    let mut angle = 0i32;
    let mut prev_dash = false;
    for t in stream.tokens() {
        if let TokenTree::Punct(p) = t {
            let c = p.as_char();
            match c {
                '<' => angle += 1,
                '>' if !prev_dash && angle > 0 => angle -= 1,
                ',' if angle == 0 => {
                    prev_dash = false;
                    if !current.is_empty() {
                        parts.push(std::mem::take(&mut current));
                    }
                    continue;
                }
                _ => {}
            }
            prev_dash = c == '-';
        } else {
            prev_dash = false;
        }
        current.push(t.clone());
    }
    if !current.is_empty() {
        parts.push(current);
    }
    parts
}

/// Split a token run on top-level `;`. Inside a function body's brace
/// group this yields statements: semicolons nested in inner groups
/// (blocks, array types, closures' bodies) don't split because groups are
/// single tokens. The final expression (no trailing `;`) is its own part.
/// Extension over the real syn API, like [`split_top_level_commas`].
pub fn split_top_level_semis(stream: &TokenStream) -> Vec<Vec<TokenTree>> {
    let mut parts = Vec::new();
    let mut current = Vec::new();
    for t in stream.tokens() {
        if matches!(t, TokenTree::Punct(p) if p.as_char() == ';') {
            if !current.is_empty() {
                parts.push(std::mem::take(&mut current));
            }
            continue;
        }
        current.push(t.clone());
    }
    if !current.is_empty() {
        parts.push(current);
    }
    parts
}

#[cfg(test)]
mod tests {
    use super::*;

    fn file(src: &str) -> File {
        parse_file(src).expect("parse")
    }

    #[test]
    fn parses_functions_with_sig_parts() {
        let f = file("pub fn thread_count_with(jobs: usize, ov: Option<usize>) -> usize { jobs }");
        let [Item::Fn(func)] = &f.items[..] else {
            panic!("expected one fn, got {:?}", f.items);
        };
        assert_eq!(func.vis, Visibility::Public);
        assert_eq!(func.sig.ident.to_string(), "thread_count_with");
        assert!(func.body.is_some());
        assert_eq!(func.sig.output.tokens().len(), 1);
        // Two comma-separated params.
        assert_eq!(split_top_level_commas(&func.sig.inputs).len(), 2);
    }

    #[test]
    fn parses_struct_fields_with_types() {
        let f = file("pub struct P { pub base_w: f64, freq_hz: f64, tag: Vec<u8> }");
        let [Item::Struct(s)] = &f.items[..] else {
            panic!("expected struct");
        };
        assert_eq!(s.ident.to_string(), "P");
        assert_eq!(s.fields.len(), 3);
        assert_eq!(s.fields[0].ident.as_ref().unwrap().to_string(), "base_w");
        assert_eq!(s.fields[0].vis, Visibility::Public);
        assert_eq!(s.fields[1].vis, Visibility::Inherited);
        let ty: Vec<String> = s.fields[2]
            .ty
            .tokens()
            .iter()
            .map(|t| format!("{t:?}"))
            .collect();
        assert!(ty[0].contains("Vec"), "{ty:?}");
    }

    #[test]
    fn parses_enum_variants_with_named_fields() {
        let f =
            file("pub enum Fault { DvfsLatency { after_s: f64 }, Stuck(u64), Plain, Valued = 3 }");
        let [Item::Enum(e)] = &f.items[..] else {
            panic!("expected enum");
        };
        let names: Vec<String> = e.variants.iter().map(|v| v.ident.to_string()).collect();
        assert_eq!(names, vec!["DvfsLatency", "Stuck", "Plain", "Valued"]);
        assert_eq!(
            e.variants[0].fields[0].ident.as_ref().unwrap().to_string(),
            "after_s"
        );
        assert_eq!(e.variants[1].fields.len(), 1);
    }

    #[test]
    fn cfg_test_mod_nests_items() {
        let f = file("#[cfg(test)] mod tests { use super::*; #[test] fn t() { x.unwrap(); } }");
        let [Item::Mod(m)] = &f.items[..] else {
            panic!("expected mod");
        };
        assert!(m.attrs[0].is_cfg_test());
        let items = m.content.as_ref().unwrap();
        assert_eq!(items.len(), 2); // the use (verbatim) and the fn
        let Item::Fn(t) = &items[1] else {
            panic!("expected fn");
        };
        assert!(t.attrs[0].is_test_marker());
    }

    #[test]
    fn impl_blocks_contain_methods() {
        let f = file(
            "impl<T: Clone> Foo<T> where T: Send { pub fn get(&self) -> Result<T, E> { x } fn p(&mut self, v_mw: f64) {} }",
        );
        let [Item::Impl(im)] = &f.items[..] else {
            panic!("expected impl");
        };
        assert_eq!(im.items.len(), 2);
        let Item::Fn(get) = &im.items[0] else {
            panic!()
        };
        assert_eq!(get.sig.ident.to_string(), "get");
        let out: String = get
            .sig
            .output
            .tokens()
            .iter()
            .map(|t| match t {
                TokenTree::Ident(i) => i.to_string(),
                TokenTree::Punct(p) => p.as_char().to_string(),
                _ => String::new(),
            })
            .collect();
        assert_eq!(out, "Result<T,E>");
    }

    #[test]
    fn trait_methods_without_bodies_parse() {
        let f = file("pub trait Governor { fn decide(&mut self, util: f64) -> u32; fn name(&self) -> &str { \"g\" } }");
        let [Item::Trait(tr)] = &f.items[..] else {
            panic!("expected trait");
        };
        assert_eq!(tr.items.len(), 2);
        let Item::Fn(decide) = &tr.items[0] else {
            panic!()
        };
        assert!(decide.body.is_none());
        let Item::Fn(name) = &tr.items[1] else {
            panic!()
        };
        assert!(name.body.is_some());
    }

    #[test]
    fn use_const_static_macros_become_verbatim() {
        let f = file(
            "use std::collections::HashMap;\nconst N: usize = 4;\nstatic S: &str = \"x\";\nmacro_rules! m { () => {} }",
        );
        assert_eq!(f.items.len(), 4);
        for item in &f.items {
            assert!(matches!(item, Item::Verbatim(_)), "{item:?}");
        }
    }

    #[test]
    fn const_fn_is_a_fn_not_a_const() {
        let f = file("pub const fn zero() -> u64 { 0 } const K: u64 = 1;");
        assert!(matches!(f.items[0], Item::Fn(_)));
        assert!(matches!(f.items[1], Item::Verbatim(_)));
    }

    #[test]
    fn file_level_inner_attrs_collected() {
        let f = file("#![allow(dead_code)]\nfn f() {}");
        assert_eq!(f.attrs.len(), 1);
        assert_eq!(f.items.len(), 1);
    }

    #[test]
    fn where_clause_does_not_pollute_return_type() {
        let f = file("fn f<T>(x: T) -> Vec<T> where T: Clone { vec![] }");
        let [Item::Fn(func)] = &f.items[..] else {
            panic!()
        };
        let out: String = func
            .sig
            .output
            .tokens()
            .iter()
            .map(|t| match t {
                TokenTree::Ident(i) => i.to_string(),
                TokenTree::Punct(p) => p.as_char().to_string(),
                _ => String::new(),
            })
            .collect();
        assert_eq!(out, "Vec<T>");
    }

    #[test]
    fn receivers_classify_all_self_modes() {
        let src = "impl X {
            fn a(&self) {}
            fn b(&mut self, v: u32) {}
            fn c(self) {}
            fn d(mut self) {}
            fn e(&'a self) {}
            fn f(x: u32) {}
            fn g() {}
        }";
        let f = file(src);
        let [Item::Impl(im)] = &f.items[..] else {
            panic!("expected impl");
        };
        let rec = |i: usize| -> Option<Receiver> {
            let Item::Fn(func) = &im.items[i] else {
                panic!()
            };
            func.sig.receiver()
        };
        assert_eq!(rec(0), Some(Receiver::Ref));
        assert_eq!(rec(1), Some(Receiver::RefMut));
        assert!(rec(1).unwrap().is_mut());
        assert_eq!(rec(2), Some(Receiver::Owned));
        assert_eq!(rec(3), Some(Receiver::OwnedMut));
        assert_eq!(rec(4), Some(Receiver::Ref));
        assert_eq!(rec(5), None);
        assert_eq!(rec(6), None);
    }

    #[test]
    fn impl_headers_expose_trait_and_self_type() {
        let f = file("impl ClusterController for PowerCapController { }");
        let [Item::Impl(im)] = &f.items[..] else {
            panic!()
        };
        assert_eq!(im.trait_ident().as_deref(), Some("ClusterController"));
        assert_eq!(im.self_ty_ident().as_deref(), Some("PowerCapController"));

        let f = file("impl<T: Clone> Foo<T> where T: Send { }");
        let [Item::Impl(im)] = &f.items[..] else {
            panic!()
        };
        assert_eq!(im.trait_ident(), None);
        assert_eq!(im.self_ty_ident().as_deref(), Some("Foo"));

        let f = file("impl std::fmt::Display for net::Flow<'_> { }");
        let [Item::Impl(im)] = &f.items[..] else {
            panic!()
        };
        assert_eq!(im.trait_ident().as_deref(), Some("Display"));
        assert_eq!(im.self_ty_ident().as_deref(), Some("Flow"));
    }

    #[test]
    fn trait_header_exposes_name() {
        let f = file("pub trait Governor: Send { fn decide(&mut self); }");
        let [Item::Trait(tr)] = &f.items[..] else {
            panic!()
        };
        assert_eq!(tr.ident().as_deref(), Some("Governor"));
    }

    #[test]
    fn statements_split_on_top_level_semis_only() {
        let f = file("fn f() { let a = [0u8; 4]; if x { y(); } let b = a; b }");
        let [Item::Fn(func)] = &f.items[..] else {
            panic!()
        };
        let body = func.body.as_ref().unwrap();
        let stmts = split_top_level_semis(body.stream());
        // `[0u8; 4]` and `y();` are nested; the tail expression `b` is its
        // own statement. `if x { ... } let b` lands in one part because the
        // if-block has no separating semi — acceptable at this altitude.
        assert_eq!(stmts.len(), 3);
        assert!(matches!(&stmts[0][0], TokenTree::Ident(i) if *i == "let"));
        assert!(matches!(&stmts[2][0], TokenTree::Ident(i) if *i == "b"));
    }

    #[test]
    fn generic_fn_with_arrow_in_bounds() {
        let f = file("fn apply<F: Fn(u32) -> u32>(f: F) -> u32 { f(1) }");
        let [Item::Fn(func)] = &f.items[..] else {
            panic!()
        };
        assert_eq!(func.sig.ident.to_string(), "apply");
        // The Fn(u32) -> u32 arrow must not terminate generics early: the
        // inputs must be the real parameter list.
        assert!(matches!(
            func.sig.inputs.tokens().first(),
            Some(TokenTree::Ident(i)) if *i == "f"
        ));
    }
}
