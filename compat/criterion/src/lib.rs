//! Minimal, dependency-free benchmarking shim.
//!
//! The build environment for this workspace has no access to crates.io, so
//! this crate provides the slice of the `criterion` API our benches use:
//! [`Criterion::benchmark_group`], [`BenchmarkGroup::bench_function`] /
//! [`BenchmarkGroup::bench_with_input`], [`BenchmarkId`], [`Bencher::iter`],
//! and the `criterion_group!` / `criterion_main!` macros.
//!
//! Measurement is intentionally simple: each benchmark runs one warm-up
//! iteration, then up to `sample_size` timed iterations bounded by a
//! per-benchmark time budget, and prints the mean wall-clock time per
//! iteration as `<group>/<id> ... <mean> ns/iter` — a stable, parseable
//! line (`scripts/bench.sh` consumes it).

use std::fmt::Display;
use std::hint;
use std::time::{Duration, Instant};

/// Time budget per benchmark id: stop sampling once this is exceeded.
const TIME_BUDGET: Duration = Duration::from_secs(3);

/// Prevent the optimizer from discarding a benchmarked value.
pub fn black_box<T>(value: T) -> T {
    hint::black_box(value)
}

/// Identifies one benchmark within a group.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter`.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Just the parameter as the id.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

/// Runs closures and accumulates timing.
pub struct Bencher {
    iters: u64,
    total: Duration,
    max_samples: u64,
}

impl Bencher {
    /// Time `routine`, called repeatedly up to the sample/time budget.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // One untimed warm-up pass.
        black_box(routine());
        while self.iters < self.max_samples && self.total < TIME_BUDGET {
            let start = Instant::now();
            black_box(routine());
            self.total += start.elapsed();
            self.iters += 1;
        }
    }
}

/// A named set of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: u64,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Upper bound on timed iterations per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n as u64;
        self
    }

    /// Benchmark `routine` with no input.
    pub fn bench_function<R>(&mut self, id: impl Into<BenchmarkId>, mut routine: R) -> &mut Self
    where
        R: FnMut(&mut Bencher),
    {
        self.run(id.into(), |b| routine(b));
        self
    }

    /// Benchmark `routine` against a borrowed input.
    pub fn bench_with_input<I, R>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut routine: R,
    ) -> &mut Self
    where
        I: ?Sized,
        R: FnMut(&mut Bencher, &I),
    {
        self.run(id, |b| routine(b, input));
        self
    }

    fn run(&mut self, id: BenchmarkId, mut routine: impl FnMut(&mut Bencher)) {
        let mut bencher = Bencher {
            iters: 0,
            total: Duration::ZERO,
            max_samples: self.sample_size,
        };
        routine(&mut bencher);
        let mean_ns = (bencher.total.as_nanos() as u64)
            .checked_div(bencher.iters)
            .unwrap_or(0);
        println!(
            "{}/{}  time: {} ns/iter  ({} iterations)",
            self.name, id.id, mean_ns, bencher.iters
        );
    }

    /// End the group (matches the criterion API; prints nothing extra).
    pub fn finish(&mut self) {}
}

/// The benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Open a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 10,
            _criterion: self,
        }
    }
}

/// Bundle benchmark functions into one callable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emit a `main` that runs the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_records_iterations() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.sample_size(5);
        group.bench_function("noop", |b| b.iter(|| 1 + 1));
        group.bench_with_input(BenchmarkId::new("sq", 3), &3u64, |b, &n| b.iter(|| n * n));
        group.finish();
    }
}
