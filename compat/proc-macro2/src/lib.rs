//! Minimal, dependency-free `proc-macro2` shim.
//!
//! The build environment for this workspace has no access to crates.io, so
//! this crate re-implements the small slice of the `proc-macro2` API that
//! `simlint` (the workspace static analyzer) needs: lexing Rust source into
//! a [`TokenStream`] of [`TokenTree`]s — [`Group`]s for `()`/`[]`/`{}`,
//! [`Ident`]s, [`Punct`]s, and [`Literal`]s — with [`Span`]s that carry
//! 1-based line and 0-based column positions.
//!
//! Differences from the real crate, all deliberate:
//!
//! * Comments (line, nested block, and doc) are skipped entirely; doc
//!   comments are **not** converted into `#[doc]` attributes. `simlint`
//!   reads comments straight from the source text for its
//!   `// simlint: allow(...)` grammar, so nothing is lost.
//! * There is no `proc_macro` bridge, no `quote`/`parse` integration, and
//!   no hygiene — spans are purely positional.
//! * [`TokenStream`] exposes `tokens()` returning a slice, which the real
//!   crate does not; the analyzer leans on it for pattern scans.

use std::fmt;
use std::str::FromStr;

/// A line/column position in the source text: `line` is 1-based,
/// `column` is a 0-based character (not byte) offset, matching the real
/// proc-macro2 convention.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default, Hash, PartialOrd, Ord)]
pub struct LineColumn {
    pub line: usize,
    pub column: usize,
}

/// A region of source text.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct Span {
    start: LineColumn,
    end: LineColumn,
}

impl Span {
    /// A span covering nothing, at the origin.
    pub fn call_site() -> Span {
        Span::default()
    }

    /// Construct a span from explicit endpoints.
    pub fn new(start: LineColumn, end: LineColumn) -> Span {
        Span { start, end }
    }

    /// Where the region begins.
    pub fn start(&self) -> LineColumn {
        self.start
    }

    /// Where the region ends (exclusive).
    pub fn end(&self) -> LineColumn {
        self.end
    }

    /// The smallest span covering both `self` and `other`.
    pub fn join(&self, other: Span) -> Span {
        Span {
            start: self.start.min(other.start),
            end: self.end.max(other.end),
        }
    }
}

/// Which bracket pair a [`Group`] is wrapped in.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Delimiter {
    /// `( ... )`
    Parenthesis,
    /// `{ ... }`
    Brace,
    /// `[ ... ]`
    Bracket,
    /// Invisible delimiters (never produced by this lexer; kept for API
    /// parity).
    None,
}

/// Whether a [`Punct`] is immediately followed by another punct character
/// (`Joint`) or not (`Alone`) — what lets `==` be distinguished from `= =`.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Spacing {
    Alone,
    Joint,
}

/// A word: keyword, identifier, or raw identifier (stored without `r#`).
#[derive(Clone, Debug)]
pub struct Ident {
    sym: String,
    span: Span,
}

impl Ident {
    /// Construct an identifier with an explicit span.
    pub fn new(sym: &str, span: Span) -> Ident {
        Ident {
            sym: sym.to_string(),
            span,
        }
    }

    /// The identifier's source location.
    pub fn span(&self) -> Span {
        self.span
    }
}

impl fmt::Display for Ident {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.sym)
    }
}

impl PartialEq for Ident {
    fn eq(&self, other: &Ident) -> bool {
        self.sym == other.sym
    }
}

impl Eq for Ident {}

impl PartialEq<str> for Ident {
    fn eq(&self, other: &str) -> bool {
        self.sym == other
    }
}

impl PartialEq<&str> for Ident {
    fn eq(&self, other: &&str) -> bool {
        self.sym == *other
    }
}

/// A single punctuation character.
#[derive(Clone, Debug)]
pub struct Punct {
    ch: char,
    spacing: Spacing,
    span: Span,
}

impl Punct {
    /// Construct a punct with an explicit span.
    pub fn new(ch: char, spacing: Spacing, span: Span) -> Punct {
        Punct { ch, spacing, span }
    }

    /// The character itself.
    pub fn as_char(&self) -> char {
        self.ch
    }

    /// Whether the next token was another punct character.
    pub fn spacing(&self) -> Spacing {
        self.spacing
    }

    /// The punct's source location.
    pub fn span(&self) -> Span {
        self.span
    }
}

impl fmt::Display for Punct {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.ch)
    }
}

/// A literal token: numbers, strings, chars, and byte variants, stored as
/// their verbatim source text.
#[derive(Clone, Debug)]
pub struct Literal {
    repr: String,
    span: Span,
}

impl Literal {
    /// Construct a literal from its source text.
    pub fn new(repr: String, span: Span) -> Literal {
        Literal { repr, span }
    }

    /// The literal's source location.
    pub fn span(&self) -> Span {
        self.span
    }

    /// The verbatim source text of the literal (extension; the real crate
    /// only offers `Display`).
    pub fn repr(&self) -> &str {
        &self.repr
    }
}

impl fmt::Display for Literal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.repr)
    }
}

/// A delimited sequence of tokens.
#[derive(Clone, Debug)]
pub struct Group {
    delimiter: Delimiter,
    stream: TokenStream,
    span: Span,
}

impl Group {
    /// Construct a group with an explicit span.
    pub fn new(delimiter: Delimiter, stream: TokenStream, span: Span) -> Group {
        Group {
            delimiter,
            stream,
            span,
        }
    }

    /// Which bracket pair wraps the group.
    pub fn delimiter(&self) -> Delimiter {
        self.delimiter
    }

    /// The tokens between the delimiters.
    pub fn stream(&self) -> &TokenStream {
        &self.stream
    }

    /// The whole group's source location, delimiters included.
    pub fn span(&self) -> Span {
        self.span
    }
}

/// One node of the token tree.
#[derive(Clone, Debug)]
pub enum TokenTree {
    Group(Group),
    Ident(Ident),
    Punct(Punct),
    Literal(Literal),
}

impl TokenTree {
    /// The token's source location.
    pub fn span(&self) -> Span {
        match self {
            TokenTree::Group(g) => g.span(),
            TokenTree::Ident(i) => i.span(),
            TokenTree::Punct(p) => p.span(),
            TokenTree::Literal(l) => l.span(),
        }
    }
}

/// A sequence of [`TokenTree`]s.
#[derive(Clone, Debug, Default)]
pub struct TokenStream {
    trees: Vec<TokenTree>,
}

impl TokenStream {
    /// The empty stream.
    pub fn new() -> TokenStream {
        TokenStream::default()
    }

    /// True when the stream holds no tokens.
    pub fn is_empty(&self) -> bool {
        self.trees.is_empty()
    }

    /// Number of top-level tokens.
    pub fn len(&self) -> usize {
        self.trees.len()
    }

    /// The top-level tokens as a slice (extension over the real API).
    pub fn tokens(&self) -> &[TokenTree] {
        &self.trees
    }

    /// The smallest span covering every token, or an empty span.
    pub fn span(&self) -> Span {
        match (self.trees.first(), self.trees.last()) {
            (Some(first), Some(last)) => first.span().join(last.span()),
            _ => Span::default(),
        }
    }
}

impl From<Vec<TokenTree>> for TokenStream {
    fn from(trees: Vec<TokenTree>) -> TokenStream {
        TokenStream { trees }
    }
}

impl IntoIterator for TokenStream {
    type Item = TokenTree;
    type IntoIter = std::vec::IntoIter<TokenTree>;
    fn into_iter(self) -> Self::IntoIter {
        self.trees.into_iter()
    }
}

impl<'a> IntoIterator for &'a TokenStream {
    type Item = &'a TokenTree;
    type IntoIter = std::slice::Iter<'a, TokenTree>;
    fn into_iter(self) -> Self::IntoIter {
        self.trees.iter()
    }
}

impl fmt::Display for TokenTree {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TokenTree::Group(g) => g.fmt(f),
            TokenTree::Ident(i) => i.fmt(f),
            TokenTree::Punct(p) => p.fmt(f),
            TokenTree::Literal(l) => l.fmt(f),
        }
    }
}

impl fmt::Display for Group {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let (open, close) = match self.delimiter {
            Delimiter::Parenthesis => ("(", ")"),
            Delimiter::Bracket => ("[", "]"),
            Delimiter::Brace => ("{ ", " }"),
            Delimiter::None => ("", ""),
        };
        write!(f, "{open}{}{close}", self.stream)
    }
}

impl fmt::Display for TokenStream {
    /// Render the tokens back to readable (not byte-faithful) source: one
    /// space between tokens, except after a `Joint` punct so multi-char
    /// operators (`->`, `::`, `..=`) and lifetimes (`'a`) stay glued.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut glue_next = true; // no leading space
        for tree in &self.trees {
            if !glue_next {
                f.write_str(" ")?;
            }
            tree.fmt(f)?;
            glue_next = matches!(tree, TokenTree::Punct(p) if p.spacing() == Spacing::Joint);
        }
        Ok(())
    }
}

/// A lexing failure, with the position it occurred at.
#[derive(Debug, Clone)]
pub struct LexError {
    pub pos: LineColumn,
    pub message: String,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "lex error at {}:{}: {}",
            self.pos.line, self.pos.column, self.message
        )
    }
}

impl std::error::Error for LexError {}

impl FromStr for TokenStream {
    type Err = LexError;

    fn from_str(src: &str) -> Result<TokenStream, LexError> {
        let mut lexer = Lexer::new(src);
        let trees = lexer.lex_until(None)?;
        Ok(TokenStream { trees })
    }
}

// ---------------------------------------------------------------------------
// Lexer
// ---------------------------------------------------------------------------

struct Lexer {
    chars: Vec<char>,
    pos: usize,
    line: usize,
    col: usize,
}

impl Lexer {
    fn new(src: &str) -> Lexer {
        // A leading shebang line is not part of the token stream.
        let src = if src.starts_with("#!") && !src.starts_with("#![") {
            match src.find('\n') {
                Some(i) => &src[i..],
                None => "",
            }
        } else {
            src
        };
        Lexer {
            chars: src.chars().collect(),
            pos: 0,
            line: 1,
            col: 0,
        }
    }

    fn here(&self) -> LineColumn {
        LineColumn {
            line: self.line,
            column: self.col,
        }
    }

    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).copied()
    }

    fn peek_at(&self, off: usize) -> Option<char> {
        self.chars.get(self.pos + off).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek()?;
        self.pos += 1;
        if c == '\n' {
            self.line += 1;
            self.col = 0;
        } else {
            self.col += 1;
        }
        Some(c)
    }

    fn error(&self, message: &str) -> LexError {
        LexError {
            pos: self.here(),
            message: message.to_string(),
        }
    }

    /// Skip whitespace and comments. Returns an error on an unterminated
    /// block comment.
    fn skip_trivia(&mut self) -> Result<(), LexError> {
        loop {
            match self.peek() {
                Some(c) if c.is_whitespace() => {
                    self.bump();
                }
                Some('/') if self.peek_at(1) == Some('/') => {
                    while let Some(c) = self.peek() {
                        if c == '\n' {
                            break;
                        }
                        self.bump();
                    }
                }
                Some('/') if self.peek_at(1) == Some('*') => {
                    let start = self.here();
                    self.bump();
                    self.bump();
                    let mut depth = 1usize;
                    loop {
                        match (self.peek(), self.peek_at(1)) {
                            (Some('/'), Some('*')) => {
                                self.bump();
                                self.bump();
                                depth += 1;
                            }
                            (Some('*'), Some('/')) => {
                                self.bump();
                                self.bump();
                                depth -= 1;
                                if depth == 0 {
                                    break;
                                }
                            }
                            (Some(_), _) => {
                                self.bump();
                            }
                            (None, _) => {
                                return Err(LexError {
                                    pos: start,
                                    message: "unterminated block comment".into(),
                                })
                            }
                        }
                    }
                }
                _ => return Ok(()),
            }
        }
    }

    /// Lex token trees until `closing` (or end of input when `None`).
    fn lex_until(&mut self, closing: Option<char>) -> Result<Vec<TokenTree>, LexError> {
        let mut trees = Vec::new();
        loop {
            self.skip_trivia()?;
            let Some(c) = self.peek() else {
                return match closing {
                    None => Ok(trees),
                    Some(close) => {
                        Err(self.error(&format!("expected `{close}`, found end of input")))
                    }
                };
            };
            if let Some(close) = closing {
                if c == close {
                    return Ok(trees);
                }
            }
            match c {
                ')' | ']' | '}' => {
                    return Err(self.error(&format!("unexpected closing `{c}`")));
                }
                '(' | '[' | '{' => {
                    let start = self.here();
                    self.bump();
                    let (delim, close) = match c {
                        '(' => (Delimiter::Parenthesis, ')'),
                        '[' => (Delimiter::Bracket, ']'),
                        _ => (Delimiter::Brace, '}'),
                    };
                    let inner = self.lex_until(Some(close))?;
                    self.bump(); // the closing delimiter
                    let span = Span::new(start, self.here());
                    trees.push(TokenTree::Group(Group::new(
                        delim,
                        TokenStream { trees: inner },
                        span,
                    )));
                }
                '"' => trees.push(self.lex_string()?),
                '\'' => self.lex_quote(&mut trees)?,
                c if c.is_ascii_digit() => trees.push(self.lex_number()?),
                c if is_ident_start(c) => self.lex_word(&mut trees)?,
                _ => trees.push(self.lex_punct()),
            }
        }
    }

    fn lex_punct(&mut self) -> TokenTree {
        let start = self.here();
        let c = self.bump().expect("peeked");
        let joint = matches!(
            self.peek(),
            Some(n) if is_punct_char(n)
        );
        let spacing = if joint {
            Spacing::Joint
        } else {
            Spacing::Alone
        };
        TokenTree::Punct(Punct::new(c, spacing, Span::new(start, self.here())))
    }

    /// Idents, raw idents (`r#type`), and the string-ish literals that
    /// begin with a letter: `r"..."`, `r#"..."#`, `b"..."`, `b'..'`,
    /// `br#"..."#`.
    fn lex_word(&mut self, trees: &mut Vec<TokenTree>) -> Result<(), LexError> {
        let start = self.here();
        // Raw string r"..." / r#"..."# (and br variants).
        let (prefix_len, is_raw_str) = match (self.peek(), self.peek_at(1), self.peek_at(2)) {
            (Some('r'), Some('"' | '#'), _) if self.raw_string_follows(1) => (1, true),
            (Some('b'), Some('r'), Some('"' | '#')) if self.raw_string_follows(2) => (2, true),
            (Some('b'), Some('"'), _) => (1, false),
            (Some('b'), Some('\''), _) => {
                // Byte char literal b'x'.
                self.bump(); // b
                self.bump(); // '
                let mut repr = String::from("b'");
                self.consume_char_body(&mut repr)?;
                trees.push(TokenTree::Literal(Literal::new(
                    repr,
                    Span::new(start, self.here()),
                )));
                return Ok(());
            }
            _ => (0, false),
        };
        if is_raw_str {
            let mut repr = String::new();
            for _ in 0..prefix_len {
                repr.push(self.bump().expect("peeked"));
            }
            self.consume_raw_string(&mut repr)?;
            trees.push(TokenTree::Literal(Literal::new(
                repr,
                Span::new(start, self.here()),
            )));
            return Ok(());
        }
        if prefix_len == 1 {
            // b"..." byte string.
            let mut repr = String::new();
            repr.push(self.bump().expect("peeked")); // b
            self.bump(); // opening quote
            repr.push('"');
            self.consume_string_body(&mut repr)?;
            trees.push(TokenTree::Literal(Literal::new(
                repr,
                Span::new(start, self.here()),
            )));
            return Ok(());
        }
        // Raw ident r#word.
        if self.peek() == Some('r')
            && self.peek_at(1) == Some('#')
            && self.peek_at(2).is_some_and(is_ident_start)
        {
            self.bump();
            self.bump();
            let mut sym = String::new();
            while let Some(c) = self.peek() {
                if is_ident_continue(c) {
                    sym.push(c);
                    self.bump();
                } else {
                    break;
                }
            }
            trees.push(TokenTree::Ident(Ident::new(
                &sym,
                Span::new(start, self.here()),
            )));
            return Ok(());
        }
        // Plain ident.
        let mut sym = String::new();
        while let Some(c) = self.peek() {
            if is_ident_continue(c) {
                sym.push(c);
                self.bump();
            } else {
                break;
            }
        }
        trees.push(TokenTree::Ident(Ident::new(
            &sym,
            Span::new(start, self.here()),
        )));
        Ok(())
    }

    /// Whether position `off` starts `#*"` — the hash/quote run of a raw
    /// string.
    fn raw_string_follows(&self, off: usize) -> bool {
        let mut i = off;
        while self.peek_at(i) == Some('#') {
            i += 1;
        }
        self.peek_at(i) == Some('"')
    }

    fn consume_raw_string(&mut self, repr: &mut String) -> Result<(), LexError> {
        let mut hashes = 0usize;
        while self.peek() == Some('#') {
            repr.push('#');
            hashes += 1;
            self.bump();
        }
        if self.peek() != Some('"') {
            return Err(self.error("expected `\"` in raw string"));
        }
        repr.push('"');
        self.bump();
        loop {
            let Some(c) = self.bump() else {
                return Err(self.error("unterminated raw string"));
            };
            repr.push(c);
            if c == '"' {
                let mut ok = true;
                for i in 0..hashes {
                    if self.peek_at(i) != Some('#') {
                        ok = false;
                        break;
                    }
                }
                if ok {
                    for _ in 0..hashes {
                        repr.push('#');
                        self.bump();
                    }
                    return Ok(());
                }
            }
        }
    }

    fn lex_string(&mut self) -> Result<TokenTree, LexError> {
        let start = self.here();
        self.bump(); // opening quote
        let mut repr = String::from("\"");
        self.consume_string_body(&mut repr)?;
        Ok(TokenTree::Literal(Literal::new(
            repr,
            Span::new(start, self.here()),
        )))
    }

    /// Body of a `"..."` string, opening quote already consumed; pushes the
    /// body and closing quote onto `repr`.
    fn consume_string_body(&mut self, repr: &mut String) -> Result<(), LexError> {
        loop {
            let Some(c) = self.bump() else {
                return Err(self.error("unterminated string literal"));
            };
            repr.push(c);
            match c {
                '"' => return Ok(()),
                '\\' => {
                    if let Some(esc) = self.bump() {
                        repr.push(esc);
                    } else {
                        return Err(self.error("unterminated escape in string"));
                    }
                }
                _ => {}
            }
        }
    }

    /// `'` already seen: lifetime (`'a`) or char literal (`'a'`, `'\n'`).
    fn lex_quote(&mut self, trees: &mut Vec<TokenTree>) -> Result<(), LexError> {
        let start = self.here();
        self.bump(); // the quote
        match self.peek() {
            Some('\\') => {
                // Escaped char literal.
                let mut repr = String::from("'");
                self.consume_char_body(&mut repr)?;
                trees.push(TokenTree::Literal(Literal::new(
                    repr,
                    Span::new(start, self.here()),
                )));
                Ok(())
            }
            Some(c) if is_ident_start(c) => {
                // Could be a lifetime (`'a`) or a char literal (`'a'`).
                let mut word = String::new();
                let mut i = 0usize;
                while let Some(n) = self.peek_at(i) {
                    if is_ident_continue(n) {
                        word.push(n);
                        i += 1;
                    } else {
                        break;
                    }
                }
                if self.peek_at(i) == Some('\'') {
                    // Char literal: consume the word and closing quote.
                    let mut repr = String::from("'");
                    for _ in 0..=i {
                        repr.push(self.bump().expect("peeked"));
                    }
                    trees.push(TokenTree::Literal(Literal::new(
                        repr,
                        Span::new(start, self.here()),
                    )));
                } else {
                    // Lifetime: `'` as a Joint punct, then the ident.
                    let qspan = Span::new(start, self.here());
                    trees.push(TokenTree::Punct(Punct::new('\'', Spacing::Joint, qspan)));
                    let id_start = self.here();
                    for _ in 0..i {
                        self.bump();
                    }
                    trees.push(TokenTree::Ident(Ident::new(
                        &word,
                        Span::new(id_start, self.here()),
                    )));
                }
                Ok(())
            }
            Some(_) => {
                // Char literal of a non-ident char: '.', ' ', etc.
                let mut repr = String::from("'");
                self.consume_char_body(&mut repr)?;
                trees.push(TokenTree::Literal(Literal::new(
                    repr,
                    Span::new(start, self.here()),
                )));
                Ok(())
            }
            None => Err(self.error("unterminated char literal")),
        }
    }

    /// Body of a char literal after the opening quote: one (possibly
    /// escaped) char plus the closing quote.
    fn consume_char_body(&mut self, repr: &mut String) -> Result<(), LexError> {
        match self.bump() {
            Some('\\') => {
                repr.push('\\');
                let Some(esc) = self.bump() else {
                    return Err(self.error("unterminated escape in char literal"));
                };
                repr.push(esc);
                if esc == 'u' {
                    // \u{...}
                    while let Some(c) = self.peek() {
                        repr.push(c);
                        self.bump();
                        if c == '}' {
                            break;
                        }
                    }
                } else if esc == 'x' {
                    for _ in 0..2 {
                        if let Some(c) = self.peek() {
                            if c.is_ascii_hexdigit() {
                                repr.push(c);
                                self.bump();
                            }
                        }
                    }
                }
            }
            Some(c) => repr.push(c),
            None => return Err(self.error("unterminated char literal")),
        }
        match self.bump() {
            Some('\'') => {
                repr.push('\'');
                Ok(())
            }
            _ => Err(self.error("expected closing `'` in char literal")),
        }
    }

    fn lex_number(&mut self) -> Result<TokenTree, LexError> {
        let start = self.here();
        let mut repr = String::new();
        let first = self.bump().expect("peeked");
        repr.push(first);
        if first == '0' && matches!(self.peek(), Some('x' | 'X' | 'o' | 'O' | 'b' | 'B')) {
            repr.push(self.bump().expect("peeked"));
            while let Some(c) = self.peek() {
                if c.is_ascii_alphanumeric() || c == '_' {
                    repr.push(c);
                    self.bump();
                } else {
                    break;
                }
            }
            return Ok(TokenTree::Literal(Literal::new(
                repr,
                Span::new(start, self.here()),
            )));
        }
        // Integer part.
        while let Some(c) = self.peek() {
            if c.is_ascii_digit() || c == '_' {
                repr.push(c);
                self.bump();
            } else {
                break;
            }
        }
        // Fractional part: `.` not followed by another `.` (range) or an
        // ident start (method call on an integer / tuple field).
        if self.peek() == Some('.')
            && !matches!(self.peek_at(1), Some('.'))
            && !self.peek_at(1).is_some_and(is_ident_start)
        {
            repr.push('.');
            self.bump();
            while let Some(c) = self.peek() {
                if c.is_ascii_digit() || c == '_' {
                    repr.push(c);
                    self.bump();
                } else {
                    break;
                }
            }
        }
        // Exponent.
        if matches!(self.peek(), Some('e' | 'E')) {
            let next = self.peek_at(1);
            let exp_digit = |c: Option<char>| c.is_some_and(|c| c.is_ascii_digit());
            if exp_digit(next) || (matches!(next, Some('+' | '-')) && exp_digit(self.peek_at(2))) {
                repr.push(self.bump().expect("peeked"));
                if matches!(self.peek(), Some('+' | '-')) {
                    repr.push(self.bump().expect("peeked"));
                }
                while let Some(c) = self.peek() {
                    if c.is_ascii_digit() || c == '_' {
                        repr.push(c);
                        self.bump();
                    } else {
                        break;
                    }
                }
            }
        }
        // Type suffix (u32, f64, usize, ...).
        while let Some(c) = self.peek() {
            if is_ident_continue(c) {
                repr.push(c);
                self.bump();
            } else {
                break;
            }
        }
        Ok(TokenTree::Literal(Literal::new(
            repr,
            Span::new(start, self.here()),
        )))
    }
}

fn is_ident_start(c: char) -> bool {
    c == '_' || c.is_alphabetic()
}

fn is_ident_continue(c: char) -> bool {
    c == '_' || c.is_alphanumeric()
}

fn is_punct_char(c: char) -> bool {
    matches!(
        c,
        '~' | '!'
            | '@'
            | '#'
            | '$'
            | '%'
            | '^'
            | '&'
            | '*'
            | '-'
            | '='
            | '+'
            | '|'
            | ';'
            | ':'
            | ','
            | '<'
            | '>'
            | '.'
            | '?'
            | '/'
            | '\''
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lex(src: &str) -> TokenStream {
        src.parse().expect("lex")
    }

    fn kinds(ts: &TokenStream) -> Vec<String> {
        ts.tokens()
            .iter()
            .map(|t| match t {
                TokenTree::Group(g) => format!("G{:?}", g.delimiter()),
                TokenTree::Ident(i) => format!("I:{i}"),
                TokenTree::Punct(p) => format!("P:{}", p.as_char()),
                TokenTree::Literal(l) => format!("L:{l}"),
            })
            .collect()
    }

    #[test]
    fn lexes_idents_puncts_and_groups() {
        let ts = lex("fn main() { let x = 1; }");
        let k = kinds(&ts);
        assert_eq!(k[0], "I:fn");
        assert_eq!(k[1], "I:main");
        assert_eq!(k[2], "GParenthesis");
        assert_eq!(k[3], "GBrace");
        let TokenTree::Group(body) = &ts.tokens()[3] else {
            panic!("expected body group");
        };
        assert_eq!(
            kinds(body.stream()),
            vec!["I:let", "I:x", "P:=", "L:1", "P:;"]
        );
    }

    #[test]
    fn spans_track_lines_and_columns() {
        let ts = lex("a\n  bb");
        let a = ts.tokens()[0].span().start();
        let b = ts.tokens()[1].span().start();
        assert_eq!((a.line, a.column), (1, 0));
        assert_eq!((b.line, b.column), (2, 2));
        assert_eq!(ts.tokens()[1].span().end().column, 4);
    }

    #[test]
    fn comments_are_skipped_including_nested_blocks() {
        let ts = lex("a // line\n /* b /* nested */ still */ c");
        assert_eq!(kinds(&ts), vec!["I:a", "I:c"]);
    }

    #[test]
    fn numbers_cover_floats_exponents_and_suffixes() {
        let ts = lex("1 1.5 1e9 0.6e9 1_000u64 0xFFu8 1.0f64 1..2 3.max(4)");
        let k = kinds(&ts);
        assert_eq!(k[0], "L:1");
        assert_eq!(k[1], "L:1.5");
        assert_eq!(k[2], "L:1e9");
        assert_eq!(k[3], "L:0.6e9");
        assert_eq!(k[4], "L:1_000u64");
        assert_eq!(k[5], "L:0xFFu8");
        assert_eq!(k[6], "L:1.0f64");
        // 1..2 lexes as literal, two dots, literal.
        assert_eq!(&k[7..10], &["L:1", "P:.", "P:."]);
        assert_eq!(k[10], "L:2");
        // 3.max(4): the dot belongs to the method call, not the number.
        assert_eq!(&k[11..14], &["L:3", "P:.", "I:max"]);
    }

    #[test]
    fn strings_chars_and_lifetimes() {
        let ts = lex(r##""s" 'c' '\n' 'a: b"b" r"raw" r#"ra"w"# x"##);
        let k = kinds(&ts);
        assert_eq!(k[0], "L:\"s\"");
        assert_eq!(k[1], "L:'c'");
        assert_eq!(k[2], "L:'\\n'");
        assert_eq!(&k[3..5], &["P:'", "I:a"]); // lifetime
        assert_eq!(k[5], "P::");
        assert_eq!(k[6], "L:b\"b\"");
        assert_eq!(k[7], "L:r\"raw\"");
        assert_eq!(k[8], "L:r#\"ra\"w\"#");
        assert_eq!(k[9], "I:x");
    }

    #[test]
    fn raw_idents_drop_the_prefix() {
        let ts = lex("r#type r#fn plain");
        assert_eq!(kinds(&ts), vec!["I:type", "I:fn", "I:plain"]);
    }

    #[test]
    fn spacing_distinguishes_joint_ops() {
        let ts = lex("a == b = c");
        let TokenTree::Punct(p1) = &ts.tokens()[1] else {
            panic!()
        };
        let TokenTree::Punct(p2) = &ts.tokens()[2] else {
            panic!()
        };
        let TokenTree::Punct(p3) = &ts.tokens()[4] else {
            panic!()
        };
        assert_eq!(p1.spacing(), Spacing::Joint);
        assert_eq!(p2.spacing(), Spacing::Alone);
        assert_eq!(p3.spacing(), Spacing::Alone);
    }

    #[test]
    fn mismatched_delimiters_error() {
        assert!("fn f( }".parse::<TokenStream>().is_err());
        assert!("{".parse::<TokenStream>().is_err());
        assert!(")".parse::<TokenStream>().is_err());
    }

    #[test]
    fn shebang_is_ignored() {
        let ts = lex("#!/usr/bin/env run\nfn f() {}");
        assert_eq!(kinds(&ts)[0], "I:fn");
    }

    #[test]
    fn inner_attribute_is_not_a_shebang() {
        let ts = lex("#![allow(dead_code)]\nfn f() {}");
        assert_eq!(kinds(&ts)[0], "P:#");
    }

    #[test]
    fn display_renders_readable_source() {
        // Round-trip is readable, not byte-faithful: joint puncts stay
        // glued so operators and lifetimes survive, groups keep delimiters.
        let ts = lex("fn f(&'a self, x_w: f64) -> Vec<u64> { x_w as u64 }");
        assert_eq!(
            ts.to_string(),
            "fn f (&'a self , x_w : f64) -> Vec < u64 > { x_w as u64 }"
        );
        let ts = lex("a::b(c[0], 1.5e3)");
        assert_eq!(ts.to_string(), "a :: b (c [0] , 1.5e3)");
    }
}
