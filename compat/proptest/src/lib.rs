//! Minimal, dependency-free property-testing shim.
//!
//! The build environment for this workspace has no access to crates.io, so
//! this crate re-implements the small slice of the `proptest` API the test
//! suite uses: `Strategy` with `prop_map`, range/tuple/`Just`/union
//! strategies, `collection::vec`, `any`, `ProptestConfig`, and the
//! `proptest!` / `prop_assert!` / `prop_assert_eq!` / `prop_assume!` /
//! `prop_oneof!` macros.
//!
//! Semantics are deliberately simple: each test function runs
//! `ProptestConfig::cases` generated cases from a deterministic RNG (seeded
//! per case, so failures are reproducible), rejected cases
//! (`prop_assume!`) are retried, and a failed assertion panics with the
//! generated inputs' case number. There is no shrinking.

pub mod test_runner {
    /// Deterministic splitmix64 generator driving all value generation.
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// A generator seeded for one test case.
        pub fn new(seed: u64) -> Self {
            TestRng {
                state: seed ^ 0x9E37_79B9_7F4A_7C15,
            }
        }

        /// Next raw 64-bit value.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform in `[0, bound)`; `bound` must be nonzero.
        pub fn next_below(&mut self, bound: u64) -> u64 {
            self.next_u64() % bound
        }

        /// Uniform in `[0, 1)` with 53 bits of precision.
        pub fn next_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }
    }

    /// Why a generated case did not pass.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// An assertion failed; the test fails.
        Fail(String),
        /// A `prop_assume!` filter rejected the inputs; retry with new ones.
        Reject(String),
    }

    /// Runner knobs (only `cases` is honoured).
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of accepted cases each property must pass.
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 32 }
        }
    }

    impl ProptestConfig {
        /// A config running `cases` accepted cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// A recipe for generating values of one type.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Generate one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Transform generated values with `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Type-erase for heterogeneous unions (`prop_oneof!`).
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    /// A type-erased strategy.
    pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            (**self).generate(rng)
        }
    }

    macro_rules! unsigned_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty strategy range");
                    let span = (self.end - self.start) as u64;
                    self.start + rng.next_below(span) as $t
                }
            }
        )*};
    }
    unsigned_range_strategy!(u8, u16, u32, u64, usize);

    macro_rules! signed_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty strategy range");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.next_below(span) as i128) as $t
                }
            }
        )*};
    }
    signed_range_strategy!(i8, i16, i32, i64, isize);

    impl Strategy for Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty strategy range");
            self.start + (self.end - self.start) * rng.next_f64()
        }
    }

    impl Strategy for Range<f32> {
        type Value = f32;
        fn generate(&self, rng: &mut TestRng) -> f32 {
            assert!(self.start < self.end, "empty strategy range");
            self.start + (self.end - self.start) * rng.next_f64() as f32
        }
    }

    /// Always produces a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// The strategy returned by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Uniform choice among several strategies of one value type.
    pub struct Union<T> {
        arms: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// A union over `arms` (must be non-empty).
        pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Union { arms }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let i = rng.next_below(self.arms.len() as u64) as usize;
            self.arms[i].generate(rng)
        }
    }

    macro_rules! tuple_strategy {
        ($(($($s:ident / $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }
    tuple_strategy! {
        (A/0, B/1)
        (A/0, B/1, C/2)
        (A/0, B/1, C/2, D/3)
    }
}

pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical full-range strategy.
    pub trait Arbitrary {
        /// Generate an unconstrained value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> f64 {
            // Finite, sign-symmetric, wide dynamic range.
            (rng.next_f64() - 0.5) * 2e9
        }
    }

    /// The strategy returned by [`any`].
    pub struct AnyStrategy<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for AnyStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// Full-range strategy for `T`.
    pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
        AnyStrategy(PhantomData)
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// Element-count bounds for [`vec`]: `[min, max)`.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        min: usize,
        max_excl: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                min: n,
                max_excl: n + 1,
            }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                min: r.start,
                max_excl: r.end,
            }
        }
    }

    /// The strategy returned by [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.max_excl - self.size.min) as u64;
            let len = self.size.min + rng.next_below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// A vector of `size`-many values from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, prop_oneof, proptest};
}

/// Define property tests. Each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { $crate::test_runner::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ($cfg:expr; $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let mut accepted: u32 = 0;
            let mut attempt: u64 = 0;
            let max_attempts = (config.cases as u64).saturating_mul(16).max(64);
            while accepted < config.cases && attempt < max_attempts {
                attempt += 1;
                let mut rng = $crate::test_runner::TestRng::new(
                    attempt.wrapping_mul(0xA076_1D64_78BD_642F),
                );
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                let outcome = (|| -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                    $body
                    ::std::result::Result::Ok(())
                })();
                match outcome {
                    ::std::result::Result::Ok(()) => accepted += 1,
                    ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(_)) => {}
                    ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                        panic!("property '{}' failed on case {}: {}", stringify!($name), attempt, msg);
                    }
                }
            }
        }
    )*};
}

/// Fail the current property case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Fail the current property case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(format!(
                "assertion failed: {:?} != {:?}",
                l, r
            )));
        }
    }};
}

/// Discard the current property case (retried with fresh inputs) unless
/// `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(
                stringify!($cond).to_string(),
            ));
        }
    };
}

/// Uniform choice among strategies producing one value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($arm)),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = TestRng::new(1);
        for _ in 0..1000 {
            let v = Strategy::generate(&(10u64..20), &mut rng);
            assert!((10..20).contains(&v));
            let f = Strategy::generate(&(-1.5f64..2.5), &mut rng);
            assert!((-1.5..2.5).contains(&f));
        }
    }

    #[test]
    fn vec_sizes_respect_bounds() {
        let mut rng = TestRng::new(2);
        for _ in 0..200 {
            let v = Strategy::generate(&crate::collection::vec(0u8..10, 3..7), &mut rng);
            assert!((3..7).contains(&v.len()));
        }
        let exact = Strategy::generate(&crate::collection::vec(any::<bool>(), 5usize), &mut rng);
        assert_eq!(exact.len(), 5);
    }

    #[test]
    fn generation_is_deterministic() {
        let gen = |seed| {
            let mut rng = TestRng::new(seed);
            Strategy::generate(&crate::collection::vec(0u64..1000, 10usize), &mut rng)
        };
        assert_eq!(gen(42), gen(42));
        assert_ne!(gen(42), gen(43));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        #[test]
        fn macro_machinery_works(x in 0u32..50, flip in any::<bool>()) {
            prop_assume!(x != 13);
            let mapped = (0u32..10).prop_map(|v| v * 2);
            let mut rng = TestRng::new(x as u64);
            let v = Strategy::generate(&mapped, &mut rng);
            prop_assert!(v % 2 == 0, "odd: {}", v);
            let choice = prop_oneof![Just(1u8), Just(2u8)];
            let c = Strategy::generate(&choice, &mut rng);
            prop_assert!(c == 1 || c == 2);
            prop_assert_eq!(flip, flip);
        }
    }
}
