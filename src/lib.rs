//! Umbrella crate for the pwrperf workspace: re-exports the public stack
//! so integration tests and downstream users can depend on one name.
//!
//! ```
//! use pwrperf_repro::pwrperf::{DvsStrategy, Experiment, Workload};
//!
//! let result = Experiment::new(
//!     Workload::ft_test(2),
//!     DvsStrategy::StaticMhz(1000),
//! )
//! .run();
//! assert!(result.total_energy_j() > 0.0);
//! ```

pub use cluster_sim;
pub use dvfs;
pub use edp_metrics;
pub use mem_model;
pub use mpi_sim;
pub use net_model;
pub use power_model;
pub use powerpack;
pub use pwrperf;
pub use sim_core;
pub use workloads;
