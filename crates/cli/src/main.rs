//! `pwrperf` — run, sweep, and analyze DVS experiments from the shell.
//!
//! ```sh
//! pwrperf run   -w ft-b8     -s static-800
//! pwrperf sweep -w transpose
//! pwrperf sweep -w ft-c8 --dynamic
//! pwrperf best  -w swim --delta 0.2
//! pwrperf list
//! ```

mod args;

use args::Command;
use edp_metrics::{best_operating_point, efficiency_gain, weighted_ed2p, DELTA_HPC};
use pwrperf::{
    static_crescendo, DvsStrategy, EngineConfig, Experiment, FaultCounts, FaultSpec, Topology,
    WaitPolicy, Workload,
};
use sim_core::SimDuration;

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let refs: Vec<&str> = argv.iter().map(|s| s.as_str()).collect();
    match args::parse(&refs) {
        Command::Run {
            workload,
            strategy,
            blocking_ms,
            metrics,
            causal,
            trace_capacity,
            faults,
            topology,
            shards,
        } => run(
            workload,
            strategy,
            blocking_ms,
            metrics,
            causal,
            trace_capacity,
            faults,
            topology,
            shards,
        ),
        Command::Sweep {
            workload,
            dynamic,
            threads,
            store,
            dry_run,
            no_cache,
            faults,
            power_cap,
            topology,
            shards,
        } => {
            set_threads(threads);
            let engine = EngineConfig {
                faults,
                topology,
                shards: resolve_shards(shards),
                ..EngineConfig::default()
            };
            match power_cap {
                Some((watts, policy)) => sweep_cap(
                    workload,
                    watts,
                    policy,
                    store.as_deref(),
                    dry_run,
                    no_cache,
                    engine,
                ),
                None => sweep(
                    workload,
                    dynamic,
                    store.as_deref(),
                    dry_run,
                    no_cache,
                    engine,
                ),
            }
        }
        Command::Export {
            workload,
            strategy,
            out_dir,
            metrics,
            trace_capacity,
            faults,
        } => export(
            workload,
            strategy,
            &out_dir,
            metrics,
            trace_capacity,
            faults,
        ),
        Command::Trace {
            workload,
            strategy,
            out,
            trace_capacity,
            blocking_ms,
            faults,
        } => trace(
            workload,
            strategy,
            &out,
            trace_capacity,
            blocking_ms,
            faults,
        ),
        Command::Stats {
            workload,
            strategy,
            out,
            trace_capacity,
            blocking_ms,
            faults,
            topology,
            shards,
        } => stats(
            workload,
            strategy,
            out.as_deref(),
            trace_capacity,
            blocking_ms,
            faults,
            topology,
            shards,
        ),
        Command::Analyze {
            workload,
            strategy,
            out,
            perfetto,
            blocking_ms,
            faults,
            topology,
            shards,
        } => analyze(
            workload,
            strategy,
            out.as_deref(),
            perfetto.as_deref(),
            blocking_ms,
            faults,
            topology,
            shards,
        ),
        Command::Best {
            workload,
            delta,
            threads,
        } => {
            set_threads(threads);
            best(workload, delta)
        }
        Command::Serve {
            store,
            socket,
            tcp,
            threads,
            max_store_bytes,
        } => serve_daemon(
            &store,
            socket.as_deref(),
            tcp.as_deref(),
            threads,
            max_store_bytes,
        ),
        Command::Client {
            socket,
            tcp,
            action,
        } => client_cmd(socket.as_deref(), tcp.as_deref(), action),
        Command::List => list(),
        Command::Help(msg) => {
            let failed = msg.is_some();
            if let Some(msg) = msg {
                eprintln!("error: {msg}\n");
            }
            help();
            if failed {
                std::process::exit(2);
            }
        }
    }
}

/// Apply a `-j`/`--threads` override to the batch runner (equivalent to
/// setting `PWRPERF_THREADS` in the environment).
fn set_threads(threads: Option<usize>) {
    if let Some(n) = threads {
        std::env::set_var(pwrperf::THREADS_ENV, n.to_string());
    }
}

/// Resolve the intra-run shard count: the `--shards` flag wins, then the
/// `PWRPERF_SHARDS` environment variable, then 1 (inline planning).
fn resolve_shards(flag: Option<usize>) -> usize {
    flag.or_else(pwrperf::env_shards).unwrap_or(1)
}

fn engine_for(blocking_ms: Option<u64>) -> EngineConfig {
    EngineConfig {
        wait_policy: match blocking_ms {
            None => WaitPolicy::BusyPoll,
            Some(ms) => WaitPolicy::PollThenBlock(SimDuration::from_millis(ms)),
        },
        ..EngineConfig::default()
    }
}

/// Print the injected-fault tally when any fault fired.
fn print_faults(c: &FaultCounts) {
    if c.total() == 0 {
        return;
    }
    println!(
        "faults   : {} injected (slowdowns {}, dvfs fail/spike {}/{}, \
         battery stuck/noisy/err {}/{}/{}, samples skipped {}, \
         meter-biased {}, degraded links {})",
        c.total(),
        c.compute_slowdowns,
        c.dvfs_failures,
        c.dvfs_latency_spikes,
        c.battery_stuck_reads,
        c.battery_noisy_reads,
        c.battery_errors,
        c.samples_skipped,
        c.meter_biased_samples,
        c.degraded_links
    );
}

#[allow(clippy::too_many_arguments)] // mirrors the flag set, one hop from parse
fn run(
    workload: Workload,
    strategy: pwrperf::DvsStrategy,
    blocking_ms: Option<u64>,
    metrics: bool,
    causal: bool,
    trace_capacity: Option<usize>,
    faults: FaultSpec,
    topology: Topology,
    shards: Option<usize>,
) {
    let engine = EngineConfig {
        metrics,
        causal,
        trace_capacity: trace_capacity.unwrap_or(0),
        faults,
        topology,
        shards: resolve_shards(shards),
        ..engine_for(blocking_ms)
    };
    let result = Experiment::new(workload.clone(), strategy)
        .with_engine(engine)
        .run();
    println!("workload : {}", workload.label());
    println!("strategy : {}", strategy.label());
    println!("time     : {:.2} s", result.duration_secs());
    println!(
        "energy   : {:.0} J (avg {:.1} W)",
        result.total_energy_j(),
        result.average_power_w()
    );
    println!(
        "components: cpu_dyn {:.0} J | cpu_static {:.0} J | base {:.0} J | mem {:.0} J | nic {:.0} J",
        result.total.cpu_dynamic_j,
        result.total.cpu_static_j,
        result.total.base_j,
        result.total.memory_j,
        result.total.nic_j
    );
    println!(
        "transitions: {} total across {} nodes",
        result.transitions.iter().sum::<u64>(),
        result.transitions.len()
    );
    if let pwrperf::DvsStrategy::PowerCap { watts, .. } = strategy {
        let peak = result
            .samples
            .iter()
            .map(|s| s.node_power_w.iter().sum::<f64>())
            .fold(0.0, f64::max);
        println!(
            "power cap: {watts} W budget, peak sampled {peak:.1} W across {} samples [{}]",
            result.samples.len(),
            if peak <= f64::from(watts) {
                "held"
            } else {
                "EXCEEDED"
            }
        );
    }
    print_faults(&result.faults);
    let avg_compute: f64 = result
        .breakdown
        .iter()
        .map(|b| b.compute_fraction())
        .sum::<f64>()
        / result.breakdown.len() as f64;
    println!("avg compute fraction: {:.1}%", avg_compute * 100.0);
    // Cluster-aggregate time_in_state (cpufreq-style residency).
    if let Some(first) = result.freq_residency.first() {
        let mut totals: Vec<(u32, f64)> = first.iter().map(|(mhz, _)| (*mhz, 0.0)).collect();
        for node in &result.freq_residency {
            for (slot, (_, d)) in totals.iter_mut().zip(node) {
                slot.1 += d.as_secs_f64();
            }
        }
        let all: f64 = totals.iter().map(|(_, t)| t).sum();
        if all > 0.0 {
            print!("time in state:");
            for (mhz, t) in totals.iter().rev() {
                print!(" {mhz}MHz {:.1}%", 100.0 * t / all);
            }
            println!();
        }
    }
    if let Some(life) = powerpack::battery_life_secs(&result, 72_000.0) {
        println!(
            "battery life at this draw: {:.0} min (72 Wh pack, hungriest node)",
            life / 60.0
        );
    }
    if result.metrics.is_some() {
        println!();
        print!("{}", pwrperf::stats_text(&result));
    }
    if let Some(a) = &result.attribution {
        println!();
        print!(
            "{}",
            pwrperf::analyze_text(&workload.label(), &strategy.label(), a)
        );
    }
}

/// `pwrperf analyze`: run with causal recording and print the blame
/// analysis — critical path, per-rank compute/comm/blocked split, and
/// the energy attribution (optionally dumped as NDJSON, optionally with
/// a flow-arrow Perfetto timeline).
#[allow(clippy::too_many_arguments)] // mirrors the flag set, one hop from parse
fn analyze(
    workload: Workload,
    strategy: pwrperf::DvsStrategy,
    out: Option<&str>,
    perfetto: Option<&str>,
    blocking_ms: Option<u64>,
    faults: FaultSpec,
    topology: Topology,
    shards: Option<usize>,
) {
    let shards = resolve_shards(shards);
    let seed = faults.seed;
    let engine = EngineConfig {
        causal: true,
        // The Perfetto export wants phase slices under the flow arrows.
        trace_capacity: if perfetto.is_some() { 1 << 20 } else { 0 },
        faults,
        topology,
        shards,
        ..engine_for(blocking_ms)
    };
    let result = Experiment::new(workload.clone(), strategy)
        .with_engine(engine)
        .run();
    // `analyze` arms causal recording itself, but a cached or replayed
    // record can still come back without a log; fail with the typed
    // error instead of panicking over the missing attribution.
    let table = match pwrperf::try_analyze_text(&workload.label(), &strategy.label(), &result) {
        Ok(table) => table,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    };
    let attribution = result
        .attribution
        .as_ref()
        .unwrap_or_else(|| unreachable!("try_analyze_text verified the attribution is present"));
    print_faults(&result.faults);
    print!("{table}");
    let meta = pwrperf::RunMeta {
        workload: workload.label(),
        strategy: strategy.label(),
        topology,
        shards,
        seed,
    };
    if let Some(path) = out {
        let ndjson = pwrperf::attribution_ndjson(attribution, &meta);
        if let Err(e) = std::fs::write(path, &ndjson) {
            eprintln!("error: cannot write {path}: {e}");
            std::process::exit(1);
        }
        println!("wrote {path} ({} records)", ndjson.lines().count());
    }
    if let Some(path) = perfetto {
        let json = pwrperf::perfetto_json(&result);
        if let Err(e) = std::fs::write(path, &json) {
            eprintln!("error: cannot write {path}: {e}");
            std::process::exit(1);
        }
        println!(
            "wrote {path} ({} bytes, {} flow arrows) — open at ui.perfetto.dev",
            json.len(),
            result.causal.as_ref().map_or(0, |l| l.msgs.len())
        );
    }
}

/// `pwrperf trace`: run under full instrumentation and write a Perfetto
/// timeline (open at https://ui.perfetto.dev).
fn trace(
    workload: Workload,
    strategy: pwrperf::DvsStrategy,
    out: &str,
    trace_capacity: Option<usize>,
    blocking_ms: Option<u64>,
    faults: FaultSpec,
) {
    let engine = EngineConfig {
        trace_capacity: trace_capacity.unwrap_or(1 << 20),
        sample_interval: Some(SimDuration::from_millis(100)),
        metrics: true,
        faults,
        ..engine_for(blocking_ms)
    };
    let result = Experiment::new(workload.clone(), strategy)
        .with_engine(engine)
        .run();
    let json = pwrperf::perfetto_json(&result);
    if let Err(e) = std::fs::write(out, &json) {
        eprintln!("error: cannot write {out}: {e}");
        std::process::exit(1);
    }
    println!(
        "wrote {out} ({} bytes, {} trace events, {} dropped) — open at ui.perfetto.dev",
        json.len(),
        result.trace.len(),
        result.trace_dropped
    );
    println!(
        "run: {} under {} — {:.2} s, {:.0} J",
        workload.label(),
        strategy.label(),
        result.duration_secs(),
        result.total_energy_j()
    );
    print_faults(&result.faults);
}

/// `pwrperf stats`: run under metrics collection and print the PowerScope
/// summary (optionally dumping the registry as NDJSON).
#[allow(clippy::too_many_arguments)] // mirrors the flag set, one hop from parse
fn stats(
    workload: Workload,
    strategy: pwrperf::DvsStrategy,
    out: Option<&str>,
    trace_capacity: Option<usize>,
    blocking_ms: Option<u64>,
    faults: FaultSpec,
    topology: Topology,
    shards: Option<usize>,
) {
    let shards = resolve_shards(shards);
    let seed = faults.seed;
    let engine = EngineConfig {
        trace_capacity: trace_capacity.unwrap_or(0),
        metrics: true,
        faults,
        topology,
        shards,
        ..engine_for(blocking_ms)
    };
    let result = Experiment::new(workload.clone(), strategy)
        .with_engine(engine)
        .run();
    println!("workload : {}", workload.label());
    println!("strategy : {}", strategy.label());
    print_faults(&result.faults);
    print!("{}", pwrperf::stats_text(&result));
    if let Some(path) = out {
        let meta = pwrperf::RunMeta {
            workload: workload.label(),
            strategy: strategy.label(),
            topology,
            shards,
            seed,
        };
        let ndjson = pwrperf::metrics_ndjson_with_meta(&result, &meta);
        if let Err(e) = std::fs::write(path, &ndjson) {
            eprintln!("error: cannot write {path}: {e}");
            std::process::exit(1);
        }
        // First line is the run-metadata header, the rest are metrics.
        println!(
            "wrote {path} ({} metrics + meta header)",
            ndjson.lines().count().saturating_sub(1)
        );
    }
}

fn sweep(
    workload: Workload,
    dynamic: bool,
    store: Option<&str>,
    dry_run: bool,
    no_cache: bool,
    engine: EngineConfig,
) {
    let make: fn(u32) -> pwrperf::DvsStrategy = if dynamic {
        pwrperf::DvsStrategy::DynamicBaseMhz
    } else {
        pwrperf::DvsStrategy::StaticMhz
    };
    let crescendo = match store {
        Some(dir) if !no_cache => {
            let mut store = match pwrperf::SweepStore::open(dir) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("error: cannot open store {dir}: {e}");
                    std::process::exit(1);
                }
            };
            let grid = pwrperf::Sweep::grid(
                vec![workload.clone()],
                pwrperf::ladder_mhz_desc().into_iter().map(make).collect(),
                Vec::new(),
                vec![engine.faults.clone()],
            )
            .with_engine(engine.clone());
            if dry_run {
                let plan = grid.plan(&store);
                println!(
                    "dry run against {dir}: {} jobs, {} cache hits, {} misses",
                    plan.jobs.len(),
                    plan.hits(),
                    plan.misses()
                );
                for job in &plan.jobs {
                    println!(
                        "  {} {} -> {} [{}]",
                        job.experiment.workload.label(),
                        job.experiment.strategy.label(),
                        job.fingerprint.to_hex(),
                        if job.cached { "hit" } else { "miss" }
                    );
                }
                return;
            }
            match pwrperf::crescendo_cached(&workload, engine, make, &mut store) {
                Ok(c) => {
                    let s = store.stats();
                    println!(
                        "store {dir}: {} hits, {} misses, {} corrupt, {} B read, {} B written",
                        s.hits, s.misses, s.corrupt, s.bytes_read, s.bytes_written
                    );
                    c
                }
                Err(e) => {
                    eprintln!("error: store {dir}: {e}");
                    std::process::exit(1);
                }
            }
        }
        _ => pwrperf::crescendo_with(&workload, engine, make),
    };
    println!(
        "{} sweep of {}:",
        if dynamic { "dynamic" } else { "static" },
        workload.label()
    );
    println!(
        "{:>6} {:>12} {:>10} {:>8} {:>8} {:>12}",
        "MHz", "energy(J)", "delay(s)", "E/E0", "D/D0", "wED2P(HPC)"
    );
    for (point, (mhz, e, d)) in crescendo.points().iter().zip(crescendo.normalized()) {
        println!(
            "{:>6} {:>12.1} {:>10.3} {:>8.3} {:>8.3} {:>12.3}",
            mhz,
            point.energy_j,
            point.delay_s,
            e,
            d,
            weighted_ed2p(e, d, DELTA_HPC)
        );
    }
}

/// `pwrperf sweep --power-cap`: compare cap policies against every
/// static ladder point under one engine configuration. Rows are
/// normalized against static 1400 MHz; the wED2P column (lower is
/// better) is the score that ranks capped runs.
fn sweep_cap(
    workload: Workload,
    watts: u32,
    policy: Option<pwrperf::CapPolicy>,
    store: Option<&str>,
    dry_run: bool,
    no_cache: bool,
    engine: EngineConfig,
) {
    use pwrperf::CapPolicy;
    let mut strategies: Vec<DvsStrategy> = pwrperf::ladder_mhz_desc()
        .into_iter()
        .map(DvsStrategy::StaticMhz)
        .collect();
    match policy {
        Some(policy) => strategies.push(DvsStrategy::PowerCap { watts, policy }),
        None => {
            for policy in [CapPolicy::Uniform, CapPolicy::Redistribute] {
                strategies.push(DvsStrategy::PowerCap { watts, policy });
            }
        }
    }
    let fault_specs = vec![engine.faults.clone()];
    let grid = pwrperf::Sweep::grid(
        vec![workload.clone()],
        strategies.clone(),
        Vec::new(),
        fault_specs,
    )
    .with_engine(engine);
    let results = match store {
        Some(dir) if !no_cache => {
            let mut store = match pwrperf::SweepStore::open(dir) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("error: cannot open store {dir}: {e}");
                    std::process::exit(1);
                }
            };
            if dry_run {
                let plan = grid.plan(&store);
                println!(
                    "dry run against {dir}: {} jobs, {} cache hits, {} misses",
                    plan.jobs.len(),
                    plan.hits(),
                    plan.misses()
                );
                for job in &plan.jobs {
                    println!(
                        "  {} {} -> {} [{}]",
                        job.experiment.workload.label(),
                        job.experiment.strategy.label(),
                        job.fingerprint.to_hex(),
                        if job.cached { "hit" } else { "miss" }
                    );
                }
                return;
            }
            match grid.run(&mut store, None) {
                Ok(outcome) => {
                    let s = store.stats();
                    println!(
                        "store {dir}: {} hits, {} misses, {} corrupt, {} B read, {} B written",
                        s.hits, s.misses, s.corrupt, s.bytes_read, s.bytes_written
                    );
                    outcome.results
                }
                Err(e) => {
                    eprintln!("error: store {dir}: {e}");
                    std::process::exit(1);
                }
            }
        }
        _ => grid.run_uncached(None).results,
    };
    println!(
        "power-cap sweep of {} under a {watts} W cluster budget:",
        workload.label()
    );
    println!(
        "{:>18} {:>12} {:>10} {:>8} {:>8} {:>12} {:>10}",
        "strategy", "energy(J)", "delay(s)", "E/E0", "D/D0", "wED2P(HPC)", "peak(W)"
    );
    // Normalization base: the first row is always static 1400 MHz.
    let e0 = results[0].total_energy_j();
    let d0 = results[0].duration_secs();
    for (strategy, result) in strategies.iter().zip(&results) {
        let e = result.total_energy_j() / e0;
        let d = result.duration_secs() / d0;
        let peak = result
            .samples
            .iter()
            .map(|s| s.node_power_w.iter().sum::<f64>())
            .fold(0.0, f64::max);
        let peak = if result.samples.is_empty() {
            "-".to_string()
        } else {
            format!("{peak:.1}")
        };
        println!(
            "{:>18} {:>12.1} {:>10.3} {:>8.3} {:>8.3} {:>12.3} {:>10}",
            strategy.label(),
            result.total_energy_j(),
            result.duration_secs(),
            e,
            d,
            weighted_ed2p(e, d, DELTA_HPC),
            peak
        );
    }
}

fn best(workload: Workload, delta: f64) {
    let crescendo = static_crescendo(&workload);
    let best = best_operating_point(&crescendo, delta).expect("non-empty crescendo");
    let gain = efficiency_gain(&crescendo, delta);
    println!("workload : {}", workload.label());
    println!("delta    : {delta}");
    println!("best     : {best} MHz");
    println!("gain     : {:.1}% over static 1400 MHz", gain * 100.0);
}

fn export(
    workload: Workload,
    strategy: pwrperf::DvsStrategy,
    out_dir: &str,
    metrics: bool,
    trace_capacity: Option<usize>,
    faults: FaultSpec,
) {
    let engine = EngineConfig {
        sample_interval: Some(SimDuration::from_millis(100)),
        trace_capacity: trace_capacity.unwrap_or(1 << 20),
        metrics,
        faults,
        ..EngineConfig::default()
    };
    let result = Experiment::new(workload.clone(), strategy)
        .with_engine(engine)
        .run();
    let dir = std::path::Path::new(out_dir);
    if let Err(e) = std::fs::create_dir_all(dir) {
        eprintln!("error: cannot create {out_dir}: {e}");
        std::process::exit(1);
    }
    let mut files = vec![
        ("samples.csv", powerpack::samples_to_csv(&result.samples)),
        ("trace.csv", powerpack::trace_to_csv(&result.trace)),
        ("summary.csv", powerpack::summary_to_csv(&result)),
    ];
    if metrics {
        files.push(("metrics.ndjson", pwrperf::metrics_ndjson(&result)));
    }
    for (name, contents) in files {
        let path = dir.join(name);
        if let Err(e) = std::fs::write(&path, contents) {
            eprintln!("error: cannot write {}: {e}", path.display());
            std::process::exit(1);
        }
        println!("wrote {}", path.display());
    }
    println!(
        "run: {} under {} — {:.2} s, {:.0} J",
        workload.label(),
        strategy.label(),
        result.duration_secs(),
        result.total_energy_j()
    );
    print_faults(&result.faults);
}

/// `pwrperf serve`: run the sweep service daemon until a client sends
/// `shutdown`.
fn serve_daemon(
    store_dir: &str,
    socket: Option<&str>,
    tcp: Option<&str>,
    threads: Option<usize>,
    max_store_bytes: Option<u64>,
) {
    use pwrperf::{CompactionPolicy, Server, ServerConfig, SweepStore};
    let store = match SweepStore::open(store_dir) {
        Ok(store) => store,
        Err(e) => {
            eprintln!("error: cannot open store {store_dir}: {e}");
            std::process::exit(1);
        }
    };
    let config = ServerConfig {
        workers: threads,
        compaction: CompactionPolicy { max_store_bytes },
    };
    let server = match (socket, tcp) {
        (Some(path), None) => Server::bind_unix(store, config, path).inspect(|_| {
            println!("pwrperfd listening on unix socket {path} (store: {store_dir})");
        }),
        (None, Some(addr)) => Server::bind_tcp(store, config, addr).inspect(|s| {
            let bound = s
                .tcp_addr()
                .map_or_else(|| addr.to_string(), |a| a.to_string());
            println!("pwrperfd listening on tcp {bound} (store: {store_dir})");
        }),
        _ => unreachable!("the parser enforces exactly one endpoint"),
    };
    let server = match server {
        Ok(server) => server,
        Err(e) => {
            eprintln!("error: cannot bind: {e}");
            std::process::exit(1);
        }
    };
    use std::io::Write as _;
    let _ = std::io::stdout().flush(); // readiness line before blocking
    if let Err(e) = server.serve() {
        eprintln!("error: serve loop failed: {e}");
        std::process::exit(1);
    }
    println!("pwrperfd: clean shutdown");
}

/// `pwrperf client`: one request against a running daemon.
fn client_cmd(socket: Option<&str>, tcp: Option<&str>, action: args::ClientAction) {
    use args::ClientAction;
    use pwrperf::Client;
    let client = match (socket, tcp) {
        (Some(path), None) => Client::connect_unix(path),
        (None, Some(addr)) => Client::connect_tcp(addr),
        _ => unreachable!("the parser enforces exactly one endpoint"),
    };
    let mut client = match client {
        Ok(client) => client,
        Err(e) => {
            eprintln!("error: cannot connect: {e}");
            std::process::exit(1);
        }
    };
    let outcome = match action {
        ClientAction::Sweep(spec) => client.submit_sweep(&spec).map(|done| {
            println!("{}", done.report.render_text().trim_end());
            println!("{} results received", done.results.len());
        }),
        ClientAction::Query(spec) => client.query(&spec).map(|reply| {
            print!("{}", reply.table);
            println!(
                "query: {} rows, {} missing (store-only; nothing executed)",
                reply.rows, reply.missing
            );
        }),
        ClientAction::Status => client.status().map(|status| {
            for (name, value) in &status.counters {
                println!("{name} {value}");
            }
        }),
        ClientAction::Shutdown => client.shutdown().map(|()| {
            println!("daemon acknowledged shutdown");
        }),
    };
    if let Err(e) = outcome {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
}

fn list() {
    println!("workloads:");
    for w in Workload::names() {
        println!("  {w}");
    }
    println!("strategies:");
    for s in DvsStrategy::names() {
        println!("  {s}");
    }
}

fn help() {
    println!(
        "pwrperf — power-performance analysis on a simulated DVS cluster
(reproduction of Ge, Feng, Cameron, IPPS 2005)

USAGE:
  pwrperf run    -w <workload> (-s <strategy> | --power-cap <spec>)
                 [--blocking-waits <ms>] [--metrics] [--causal]
                 [--trace-capacity <n>] [--faults <spec>]
                 [--topology <spec>] [--shards <n>]
  pwrperf sweep  -w <workload> [--dynamic | --power-cap <spec>]
                 [-j <threads>] [--store <dir> [--dry-run] | --no-cache]
                 [--faults <spec>] [--topology <spec>] [--shards <n>]
  pwrperf best   -w <workload> [--delta <-1..1>] [-j <threads>]
  pwrperf export -w <workload> -s <strategy> [-o <dir>] [--metrics]
                 [--trace-capacity <n>] [--faults <spec>]
  pwrperf trace  -w <workload> -s <strategy> [-o <file>]
                 [--trace-capacity <n>] [--blocking-waits <ms>]
                 [--faults <spec>]
  pwrperf stats  -w <workload> -s <strategy> [-o <ndjson-file>]
                 [--trace-capacity <n>] [--blocking-waits <ms>]
                 [--faults <spec>] [--topology <spec>] [--shards <n>]
  pwrperf analyze -w <workload> -s <strategy> [-o <ndjson-file>]
                 [--perfetto <file>] [--blocking-waits <ms>]
                 [--faults <spec>] [--topology <spec>] [--shards <n>]
  pwrperf serve  --store <dir> (--socket <path> | --tcp <addr>)
                 [-j <threads>] [--max-store-bytes <n>]
  pwrperf client (sweep | query | status | shutdown)
                 (--socket <path> | --tcp <addr>)
                 [-w <workload>]... [-s <strategy>]... [--delta <d>]...
                 [--faults <spec>]... [--topology <spec>] [--shards <n>]
                 [--causal]
  pwrperf list

EXAMPLES:
  pwrperf run   -w ft-b8 -s static-800
  pwrperf sweep -w transpose
  pwrperf best  -w swim --delta 0.2
  pwrperf sweep -w ft-c8 -j 5       # ladder points in parallel
  pwrperf trace -w ft-test4 -s dynamic-1400 -o run.perfetto.json
  pwrperf stats -w swim -s cpuspeed -o metrics.ndjson
  pwrperf run   -w ft-test4 -s dynamic-1400 \\
                --faults seed:7,slow:2:1.5,battery-stuck:1:40
  pwrperf run   -w ft-scale-4096 -s static-1400 \\
                --topology fat-tree:radix=16,oversub=2 --shards 8
  pwrperf run   -w ft-test4 --power-cap 100 --faults slow:0:3.0
  pwrperf sweep -w ft-test4 --power-cap 100 --faults slow:0:3.0
  pwrperf serve --store /tmp/cache --socket /tmp/pwrperfd.sock
  pwrperf client sweep --socket /tmp/pwrperfd.sock \\
                -w ft-test4 -s static-800 -s cpuspeed --delta 0.2
  pwrperf client query --socket /tmp/pwrperfd.sock \\
                -w ft-test4 -s static-800 -s cpuspeed --delta 0.2

FAULT SPECS (comma-separated; deterministic under a fixed seed):
  seed:<u64>                  RNG seed (default 0x5EEDFA17)
  slow:<node>:<factor>        scale node's compute cost (straggler)
  battery-stuck:<node>:<secs> battery reading freezes after <secs>
  battery-noise:<node>:<mwh>  +/- quantization noise on readings
  meter-bias:<node>:<factor>  scale the node's *reported* power
  skip-sample:<prob>          drop whole sampling windows
  dvfs-fail:<node>:<prob>     DVFS transition requests silently fail
  dvfs-latency:<node>:<factor> scale the 10 us transition stall
  weak-link:<node>:<factor>   scale node's link bandwidth, (0,1]
An empty spec (the default) leaves every run bit-identical to an
unfaulted simulation; injected-fault counts are printed after a run
and recorded in the metrics registry (engine.faults.*).

`trace` writes a Chrome/Perfetto timeline (open at ui.perfetto.dev):
phase slices and message instants per node, plus MHz and watt counter
tracks. `stats` prints the PowerScope metrics registry (event counts,
message-latency histograms, DVFS decisions, solver work). Both use
simulated time only, so output bytes are deterministic.

`analyze` runs under causal tracing and prints the blame analysis:
the run's critical path (local residency per rank vs network hops)
and each rank's wall time and joules split into compute, in-flight
communication, and blocked-waiting — the slack a power redistribution
controller could reclaim. `run --causal` appends the same table to a
normal run. The simulation itself is bit-identical with tracing on or
off. NDJSON exports start with a {{\"meta\":...}} header line naming the
workload, strategy, topology, shard count, and fault seed.

--power-cap <watts>[,policy=uniform|redistribute] runs the cluster
power-budget controller: at every power sample the controller replans
per-node frequencies so worst-case cluster draw stays under the budget.
`uniform` pins every node to the highest common ladder point that fits;
`redistribute` (the `run` default) reclaims budget from ranks blocked
in communication and grants it to lagging ranks, one ladder step at a
time, most-starved first. `run --power-cap` prints the budget, the peak
sampled draw, and whether the cap held; `sweep --power-cap` compares
the cap policies against every static ladder point with weighted-ED2P
scoring (no policy given = both policies).

--topology picks the interconnect: `flat` (the paper's single switch,
the default) or `fat-tree[:radix=R,oversub=S]`, a switch hierarchy with
per-level trunk capacities and an S:1 taper going up. Flows then share
every link on their up/down path under max-min fairness; the solver
recomputes only the perturbed link domains (see `stats` for the
domains_touched/skipped counters). The `ft-scale-<ranks>` workloads
(256/1024/4096) run one class-C FT iteration for scale benchmarking.

--shards <n> (or PWRPERF_SHARDS) plans compute phases for batches of
same-timestamp events on n worker threads inside one run. Results are
bit-identical at every shard count: events still apply in (time, seq)
order and the plan math is the same pure function either way.

Sweeps fan their independent runs over worker threads (auto-detected;
override with -j/--threads or PWRPERF_THREADS). Results are bit-identical
to sequential execution.

With --store <dir>, sweep results are cached by content: each run is
keyed by a fingerprint of its full configuration (workload programs,
strategy, engine, faults), and a re-invoked sweep replays cached points
without executing the engine — bit-identical, resumable after a kill.
--dry-run prints the hit/miss partition; --no-cache forces execution.
Example:
  pwrperf sweep -w ft-test4 --store ~/.cache/pwrperf   # cold: 5 misses
  pwrperf sweep -w ft-test4 --store ~/.cache/pwrperf   # warm: 0 misses"
    );
}
