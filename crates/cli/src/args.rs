//! Argument parsing for the `pwrperf` command (hand-rolled: the tool has
//! three subcommands and a dozen flags; a parser dependency would be
//! heavier than the parser).

use pwrperf::{CapPolicy, DvsStrategy, FaultSpec, SweepSpec, Topology, Workload};

/// A parsed invocation.
#[derive(Debug)]
pub enum Command {
    /// `pwrperf run -w <workload> -s <strategy> [--blocking-waits <ms>]
    /// [--metrics] [--causal] [--trace-capacity <n>] [--faults <spec>]
    /// [--topology <spec>] [--shards <n>]`
    Run {
        /// Workload to execute.
        workload: Workload,
        /// DVS strategy.
        strategy: DvsStrategy,
        /// Poll-then-block window in ms (`None` = busy-poll).
        blocking_ms: Option<u64>,
        /// Collect and print PowerScope metrics.
        metrics: bool,
        /// Record the causal log and print the attribution summary.
        causal: bool,
        /// Trace ring capacity override (`None` = subcommand default).
        trace_capacity: Option<usize>,
        /// Deterministic fault injection (empty = none).
        faults: FaultSpec,
        /// Interconnect shape (`flat` or `fat-tree[:radix=R,oversub=S]`).
        topology: Topology,
        /// Intra-run shard count (`None` = `PWRPERF_SHARDS` or 1).
        shards: Option<usize>,
    },
    /// `pwrperf sweep -w <workload> [--dynamic] [-j <n>] [--store <dir>]
    /// [--dry-run] [--no-cache] [--faults <spec>] [--power-cap <spec>]
    /// [--topology <spec>] [--shards <n>]`
    Sweep {
        /// Workload to sweep over the ladder.
        workload: Workload,
        /// Sweep dynamic bases instead of static pins.
        dynamic: bool,
        /// Worker threads for the batch runner (`None` = auto-detect).
        threads: Option<usize>,
        /// Result-cache directory (`None` = uncached).
        store: Option<String>,
        /// Print the cache hit/miss partition without running anything.
        dry_run: bool,
        /// Bypass the store even when one is configured elsewhere.
        no_cache: bool,
        /// Deterministic fault injection (empty = none).
        faults: FaultSpec,
        /// Compare power-cap policies against the static ladder
        /// (`None` = plain crescendo sweep; policy `None` = both).
        power_cap: Option<(u32, Option<CapPolicy>)>,
        /// Interconnect shape (`flat` or `fat-tree[:radix=R,oversub=S]`).
        topology: Topology,
        /// Intra-run shard count (`None` = `PWRPERF_SHARDS` or 1).
        shards: Option<usize>,
    },
    /// `pwrperf best -w <workload> [--delta <d>] [-j <n>]`
    Best {
        /// Workload to pick a best point for.
        workload: Workload,
        /// Weighted-ED²P weight factor.
        delta: f64,
        /// Worker threads for the batch runner (`None` = auto-detect).
        threads: Option<usize>,
    },
    /// `pwrperf export -w <workload> -s <strategy> -o <dir> [--metrics]
    /// [--trace-capacity <n>] [--faults <spec>]`
    Export {
        /// Workload to execute.
        workload: Workload,
        /// DVS strategy.
        strategy: DvsStrategy,
        /// Output directory for the CSV files.
        out_dir: String,
        /// Additionally write `metrics.ndjson`.
        metrics: bool,
        /// Trace ring capacity override (`None` = subcommand default).
        trace_capacity: Option<usize>,
        /// Deterministic fault injection (empty = none).
        faults: FaultSpec,
    },
    /// `pwrperf trace -w <workload> -s <strategy> [--out <file>]
    /// [--trace-capacity <n>] [--blocking-waits <ms>] [--faults <spec>]`
    Trace {
        /// Workload to execute.
        workload: Workload,
        /// DVS strategy.
        strategy: DvsStrategy,
        /// Output path for the Perfetto JSON.
        out: String,
        /// Trace ring capacity override (`None` = subcommand default).
        trace_capacity: Option<usize>,
        /// Poll-then-block window in ms (`None` = busy-poll).
        blocking_ms: Option<u64>,
        /// Deterministic fault injection (empty = none).
        faults: FaultSpec,
    },
    /// `pwrperf stats -w <workload> -s <strategy> [--out <file>]
    /// [--trace-capacity <n>] [--blocking-waits <ms>] [--faults <spec>]
    /// [--topology <spec>] [--shards <n>]`
    Stats {
        /// Workload to execute.
        workload: Workload,
        /// DVS strategy.
        strategy: DvsStrategy,
        /// Optional path to also dump the metrics as NDJSON.
        out: Option<String>,
        /// Trace ring capacity override (`None` = subcommand default).
        trace_capacity: Option<usize>,
        /// Poll-then-block window in ms (`None` = busy-poll).
        blocking_ms: Option<u64>,
        /// Deterministic fault injection (empty = none).
        faults: FaultSpec,
        /// Interconnect shape (`flat` or `fat-tree[:radix=R,oversub=S]`).
        topology: Topology,
        /// Intra-run shard count (`None` = `PWRPERF_SHARDS` or 1).
        shards: Option<usize>,
    },
    /// `pwrperf analyze -w <workload> -s <strategy> [-o <ndjson-file>]
    /// [--perfetto <file>] [--blocking-waits <ms>] [--faults <spec>]
    /// [--topology <spec>] [--shards <n>]`
    Analyze {
        /// Workload to execute.
        workload: Workload,
        /// DVS strategy.
        strategy: DvsStrategy,
        /// Optional path to dump the attribution as NDJSON.
        out: Option<String>,
        /// Optional path to write a Perfetto timeline with flow arrows.
        perfetto: Option<String>,
        /// Poll-then-block window in ms (`None` = busy-poll).
        blocking_ms: Option<u64>,
        /// Deterministic fault injection (empty = none).
        faults: FaultSpec,
        /// Interconnect shape (`flat` or `fat-tree[:radix=R,oversub=S]`).
        topology: Topology,
        /// Intra-run shard count (`None` = `PWRPERF_SHARDS` or 1).
        shards: Option<usize>,
    },
    /// `pwrperf serve --store <dir> (--socket <path> | --tcp <addr>)
    /// [-j <n>] [--max-store-bytes <n>]`
    Serve {
        /// Store directory the daemon owns.
        store: String,
        /// Unix-domain socket path to listen on.
        socket: Option<String>,
        /// TCP address to listen on (e.g. `127.0.0.1:0`).
        tcp: Option<String>,
        /// Worker threads for miss execution (`None` = auto-detect).
        threads: Option<usize>,
        /// Compaction byte budget (`None` = keep every valid record).
        max_store_bytes: Option<u64>,
    },
    /// `pwrperf client (--socket <path> | --tcp <addr>)
    /// (sweep | query | status | shutdown) [grid flags]`
    Client {
        /// Unix-domain socket path of the daemon.
        socket: Option<String>,
        /// TCP address of the daemon.
        tcp: Option<String>,
        /// What to ask.
        action: ClientAction,
    },
    /// `pwrperf list`
    List,
    /// `pwrperf help` (or parse failure, with a message).
    Help(Option<String>),
}

/// What a `pwrperf client` invocation asks the daemon.
#[derive(Debug)]
pub enum ClientAction {
    /// Run (or replay) a sweep grid.
    Sweep(SweepSpec),
    /// Aggregate stored results (never executes).
    Query(SweepSpec),
    /// Print the daemon's `service.*` counters.
    Status,
    /// Ask the daemon to exit.
    Shutdown,
}

/// Parse a workload name (delegates to the core name registry, which the
/// sweep-service wire protocol shares).
pub fn parse_workload(name: &str) -> Result<Workload, String> {
    Workload::parse_name(name)
}

/// Parse a strategy name (delegates to the core name registry).
pub fn parse_strategy(name: &str) -> Result<DvsStrategy, String> {
    DvsStrategy::parse_name(name)
}

fn parse_threads(value: &str) -> Result<usize, String> {
    value
        .parse::<usize>()
        .ok()
        .filter(|&n| n >= 1)
        .ok_or_else(|| "--threads needs a positive integer".to_string())
}

fn parse_capacity(value: &str) -> Result<usize, String> {
    value
        .parse::<usize>()
        .map_err(|_| "--trace-capacity needs a non-negative integer".to_string())
}

fn parse_blocking(value: &str) -> Result<u64, String> {
    value
        .parse::<u64>()
        .map_err(|_| "bad --blocking-waits value".to_string())
}

fn parse_faults(value: &str) -> Result<FaultSpec, String> {
    FaultSpec::parse(value).map_err(|e| format!("bad --faults spec: {e}"))
}

fn parse_topology(value: &str) -> Result<Topology, String> {
    Topology::parse(value).map_err(|e| format!("bad --topology spec: {e}"))
}

fn parse_shards(value: &str) -> Result<usize, String> {
    value
        .parse::<usize>()
        .ok()
        .filter(|&n| n >= 1)
        .ok_or_else(|| "--shards needs a positive integer".to_string())
}

/// Parse a `--power-cap` value: `<watts>[,policy=uniform|redistribute]`.
/// The policy is left unresolved when omitted so each subcommand can pick
/// its own default (run: redistribute; sweep: compare both).
pub fn parse_power_cap(value: &str) -> Result<(u32, Option<CapPolicy>), String> {
    let (watts, policy) = match value.split_once(',') {
        None => (value, None),
        Some((watts, option)) => {
            let policy = option.strip_prefix("policy=").ok_or_else(|| {
                format!("bad --power-cap option '{option}' (expected policy=uniform|redistribute)")
            })?;
            let policy = match policy {
                "uniform" => CapPolicy::Uniform,
                "redistribute" => CapPolicy::Redistribute,
                other => {
                    return Err(format!(
                        "unknown cap policy '{other}' (expected uniform or redistribute)"
                    ))
                }
            };
            (watts, Some(policy))
        }
    };
    let watts = watts
        .parse::<u32>()
        .ok()
        .filter(|&w| w >= 1)
        .ok_or_else(|| "--power-cap needs a positive watt budget".to_string())?;
    Ok((watts, policy))
}

fn take_value<'a>(args: &mut impl Iterator<Item = &'a str>, flag: &str) -> Result<&'a str, String> {
    args.next().ok_or_else(|| format!("{flag} needs a value"))
}

/// The service commands need exactly one endpoint.
fn check_endpoint(socket: &Option<String>, tcp: &Option<String>) -> Result<(), String> {
    match (socket, tcp) {
        (Some(_), Some(_)) => Err("--socket and --tcp are mutually exclusive".to_string()),
        (None, None) => Err("need --socket <path> or --tcp <addr>".to_string()),
        _ => Ok(()),
    }
}

/// Parse the full argument vector (without the program name).
pub fn parse(args: &[&str]) -> Command {
    match parse_inner(args) {
        Ok(cmd) => cmd,
        Err(msg) => Command::Help(Some(msg)),
    }
}

fn parse_inner(args: &[&str]) -> Result<Command, String> {
    let mut it = args.iter().copied();
    let sub = it.next().unwrap_or("help");
    match sub {
        "run" => {
            let mut workload = None;
            let mut strategy = None;
            let mut power_cap = None;
            let mut blocking_ms = None;
            let mut metrics = false;
            let mut causal = false;
            let mut trace_capacity = None;
            let mut faults = FaultSpec::default();
            let mut topology = Topology::Flat;
            let mut shards = None;
            while let Some(flag) = it.next() {
                match flag {
                    "-w" | "--workload" => {
                        workload = Some(parse_workload(take_value(&mut it, flag)?)?)
                    }
                    "-s" | "--strategy" => {
                        strategy = Some(parse_strategy(take_value(&mut it, flag)?)?)
                    }
                    "--power-cap" => power_cap = Some(parse_power_cap(take_value(&mut it, flag)?)?),
                    "--blocking-waits" => {
                        blocking_ms = Some(parse_blocking(take_value(&mut it, flag)?)?)
                    }
                    "--metrics" => metrics = true,
                    "--causal" => causal = true,
                    "--trace-capacity" => {
                        trace_capacity = Some(parse_capacity(take_value(&mut it, flag)?)?)
                    }
                    "--faults" => faults = parse_faults(take_value(&mut it, flag)?)?,
                    "--topology" => topology = parse_topology(take_value(&mut it, flag)?)?,
                    "--shards" => shards = Some(parse_shards(take_value(&mut it, flag)?)?),
                    other => return Err(format!("unknown flag '{other}'")),
                }
            }
            let strategy = match (strategy, power_cap) {
                (Some(_), Some(_)) => {
                    return Err("--power-cap is a strategy; drop --strategy".to_string())
                }
                (Some(strategy), None) => strategy,
                (None, Some((watts, policy))) => DvsStrategy::PowerCap {
                    watts,
                    policy: policy.unwrap_or(CapPolicy::Redistribute),
                },
                (None, None) => return Err("run needs --strategy or --power-cap".to_string()),
            };
            Ok(Command::Run {
                workload: workload.ok_or("run needs --workload")?,
                strategy,
                blocking_ms,
                metrics,
                causal,
                trace_capacity,
                faults,
                topology,
                shards,
            })
        }
        "sweep" => {
            let mut workload = None;
            let mut dynamic = false;
            let mut threads = None;
            let mut store = None;
            let mut dry_run = false;
            let mut no_cache = false;
            let mut faults = FaultSpec::default();
            let mut power_cap = None;
            let mut topology = Topology::Flat;
            let mut shards = None;
            while let Some(flag) = it.next() {
                match flag {
                    "-w" | "--workload" => {
                        workload = Some(parse_workload(take_value(&mut it, flag)?)?)
                    }
                    "--dynamic" => dynamic = true,
                    "-j" | "--threads" => {
                        threads = Some(parse_threads(take_value(&mut it, flag)?)?)
                    }
                    "--store" => store = Some(take_value(&mut it, flag)?.to_string()),
                    "--dry-run" => dry_run = true,
                    "--no-cache" => no_cache = true,
                    "--faults" => faults = parse_faults(take_value(&mut it, flag)?)?,
                    "--power-cap" => power_cap = Some(parse_power_cap(take_value(&mut it, flag)?)?),
                    "--topology" => topology = parse_topology(take_value(&mut it, flag)?)?,
                    "--shards" => shards = Some(parse_shards(take_value(&mut it, flag)?)?),
                    other => return Err(format!("unknown flag '{other}'")),
                }
            }
            if dry_run && store.is_none() {
                return Err("--dry-run needs --store <dir> to plan against".to_string());
            }
            if no_cache && (store.is_some() || dry_run) {
                return Err("--no-cache conflicts with --store/--dry-run".to_string());
            }
            if dynamic && power_cap.is_some() {
                return Err(
                    "--power-cap compares cap policies against the static ladder; \
                     drop --dynamic"
                        .to_string(),
                );
            }
            Ok(Command::Sweep {
                workload: workload.ok_or("sweep needs --workload")?,
                dynamic,
                threads,
                store,
                dry_run,
                no_cache,
                faults,
                power_cap,
                topology,
                shards,
            })
        }
        "best" => {
            let mut workload = None;
            let mut delta = edp_metrics::DELTA_HPC;
            let mut threads = None;
            while let Some(flag) = it.next() {
                match flag {
                    "-w" | "--workload" => {
                        workload = Some(parse_workload(take_value(&mut it, flag)?)?)
                    }
                    "-j" | "--threads" => {
                        threads = Some(parse_threads(take_value(&mut it, flag)?)?)
                    }
                    "--delta" => {
                        delta = take_value(&mut it, flag)?
                            .parse()
                            .map_err(|_| "bad --delta value".to_string())?;
                        if !(-1.0..=1.0).contains(&delta) {
                            return Err("--delta must be in [-1, 1]".to_string());
                        }
                    }
                    other => return Err(format!("unknown flag '{other}'")),
                }
            }
            Ok(Command::Best {
                workload: workload.ok_or("best needs --workload")?,
                delta,
                threads,
            })
        }
        "export" => {
            let mut workload = None;
            let mut strategy = None;
            let mut out_dir = "pwrperf-out".to_string();
            let mut metrics = false;
            let mut trace_capacity = None;
            let mut faults = FaultSpec::default();
            while let Some(flag) = it.next() {
                match flag {
                    "-w" | "--workload" => {
                        workload = Some(parse_workload(take_value(&mut it, flag)?)?)
                    }
                    "-s" | "--strategy" => {
                        strategy = Some(parse_strategy(take_value(&mut it, flag)?)?)
                    }
                    "-o" | "--out" => out_dir = take_value(&mut it, flag)?.to_string(),
                    "--metrics" => metrics = true,
                    "--trace-capacity" => {
                        trace_capacity = Some(parse_capacity(take_value(&mut it, flag)?)?)
                    }
                    "--faults" => faults = parse_faults(take_value(&mut it, flag)?)?,
                    other => return Err(format!("unknown flag '{other}'")),
                }
            }
            if trace_capacity == Some(0) {
                return Err(
                    "export with --trace-capacity 0 would write an empty trace.csv; \
                     use a positive capacity or drop the flag"
                        .to_string(),
                );
            }
            Ok(Command::Export {
                workload: workload.ok_or("export needs --workload")?,
                strategy: strategy.ok_or("export needs --strategy")?,
                out_dir,
                metrics,
                trace_capacity,
                faults,
            })
        }
        "trace" => {
            let mut workload = None;
            let mut strategy = None;
            let mut out = "run.perfetto.json".to_string();
            let mut trace_capacity = None;
            let mut blocking_ms = None;
            let mut faults = FaultSpec::default();
            while let Some(flag) = it.next() {
                match flag {
                    "-w" | "--workload" => {
                        workload = Some(parse_workload(take_value(&mut it, flag)?)?)
                    }
                    "-s" | "--strategy" => {
                        strategy = Some(parse_strategy(take_value(&mut it, flag)?)?)
                    }
                    "-o" | "--out" => out = take_value(&mut it, flag)?.to_string(),
                    "--trace-capacity" => {
                        trace_capacity = Some(parse_capacity(take_value(&mut it, flag)?)?)
                    }
                    "--blocking-waits" => {
                        blocking_ms = Some(parse_blocking(take_value(&mut it, flag)?)?)
                    }
                    "--faults" => faults = parse_faults(take_value(&mut it, flag)?)?,
                    other => return Err(format!("unknown flag '{other}'")),
                }
            }
            if trace_capacity == Some(0) {
                return Err(
                    "trace with --trace-capacity 0 would write an empty timeline; \
                     use a positive capacity or drop the flag"
                        .to_string(),
                );
            }
            Ok(Command::Trace {
                workload: workload.ok_or("trace needs --workload")?,
                strategy: strategy.ok_or("trace needs --strategy")?,
                out,
                trace_capacity,
                blocking_ms,
                faults,
            })
        }
        "stats" => {
            let mut workload = None;
            let mut strategy = None;
            let mut out = None;
            let mut trace_capacity = None;
            let mut blocking_ms = None;
            let mut faults = FaultSpec::default();
            let mut topology = Topology::Flat;
            let mut shards = None;
            while let Some(flag) = it.next() {
                match flag {
                    "-w" | "--workload" => {
                        workload = Some(parse_workload(take_value(&mut it, flag)?)?)
                    }
                    "-s" | "--strategy" => {
                        strategy = Some(parse_strategy(take_value(&mut it, flag)?)?)
                    }
                    "-o" | "--out" => out = Some(take_value(&mut it, flag)?.to_string()),
                    "--trace-capacity" => {
                        trace_capacity = Some(parse_capacity(take_value(&mut it, flag)?)?)
                    }
                    "--blocking-waits" => {
                        blocking_ms = Some(parse_blocking(take_value(&mut it, flag)?)?)
                    }
                    "--faults" => faults = parse_faults(take_value(&mut it, flag)?)?,
                    "--topology" => topology = parse_topology(take_value(&mut it, flag)?)?,
                    "--shards" => shards = Some(parse_shards(take_value(&mut it, flag)?)?),
                    other => return Err(format!("unknown flag '{other}'")),
                }
            }
            Ok(Command::Stats {
                workload: workload.ok_or("stats needs --workload")?,
                strategy: strategy.ok_or("stats needs --strategy")?,
                out,
                trace_capacity,
                blocking_ms,
                faults,
                topology,
                shards,
            })
        }
        "analyze" => {
            let mut workload = None;
            let mut strategy = None;
            let mut out = None;
            let mut perfetto = None;
            let mut blocking_ms = None;
            let mut faults = FaultSpec::default();
            let mut topology = Topology::Flat;
            let mut shards = None;
            while let Some(flag) = it.next() {
                match flag {
                    "-w" | "--workload" => {
                        workload = Some(parse_workload(take_value(&mut it, flag)?)?)
                    }
                    "-s" | "--strategy" => {
                        strategy = Some(parse_strategy(take_value(&mut it, flag)?)?)
                    }
                    "-o" | "--out" => out = Some(take_value(&mut it, flag)?.to_string()),
                    "--perfetto" => perfetto = Some(take_value(&mut it, flag)?.to_string()),
                    "--blocking-waits" => {
                        blocking_ms = Some(parse_blocking(take_value(&mut it, flag)?)?)
                    }
                    "--faults" => faults = parse_faults(take_value(&mut it, flag)?)?,
                    "--topology" => topology = parse_topology(take_value(&mut it, flag)?)?,
                    "--shards" => shards = Some(parse_shards(take_value(&mut it, flag)?)?),
                    other => return Err(format!("unknown flag '{other}'")),
                }
            }
            Ok(Command::Analyze {
                workload: workload.ok_or("analyze needs --workload")?,
                strategy: strategy.ok_or("analyze needs --strategy")?,
                out,
                perfetto,
                blocking_ms,
                faults,
                topology,
                shards,
            })
        }
        "serve" => {
            let mut store = None;
            let mut socket = None;
            let mut tcp = None;
            let mut threads = None;
            let mut max_store_bytes = None;
            while let Some(flag) = it.next() {
                match flag {
                    "--store" => store = Some(take_value(&mut it, flag)?.to_string()),
                    "--socket" => socket = Some(take_value(&mut it, flag)?.to_string()),
                    "--tcp" => tcp = Some(take_value(&mut it, flag)?.to_string()),
                    "-j" | "--threads" => {
                        threads = Some(parse_threads(take_value(&mut it, flag)?)?)
                    }
                    "--max-store-bytes" => {
                        max_store_bytes = Some(
                            take_value(&mut it, flag)?
                                .parse::<u64>()
                                .map_err(|_| "--max-store-bytes needs a byte count".to_string())?,
                        )
                    }
                    other => return Err(format!("unknown flag '{other}'")),
                }
            }
            check_endpoint(&socket, &tcp)?;
            Ok(Command::Serve {
                store: store.ok_or("serve needs --store <dir>")?,
                socket,
                tcp,
                threads,
                max_store_bytes,
            })
        }
        "client" => {
            let action = it
                .next()
                .ok_or("client needs an action: sweep | query | status | shutdown")?;
            let mut socket = None;
            let mut tcp = None;
            let mut spec = SweepSpec::default();
            while let Some(flag) = it.next() {
                match flag {
                    "--socket" => socket = Some(take_value(&mut it, flag)?.to_string()),
                    "--tcp" => tcp = Some(take_value(&mut it, flag)?.to_string()),
                    "-w" | "--workload" => {
                        let name = take_value(&mut it, flag)?;
                        parse_workload(name)?; // validate early, ship the name
                        spec.workloads.push(name.to_string());
                    }
                    "-s" | "--strategy" => {
                        let name = take_value(&mut it, flag)?;
                        parse_strategy(name)?;
                        spec.strategies.push(name.to_string());
                    }
                    "--delta" => {
                        let delta: f64 = take_value(&mut it, flag)?
                            .parse()
                            .map_err(|_| "bad --delta value".to_string())?;
                        if !(-1.0..=1.0).contains(&delta) {
                            return Err("--delta must be in [-1, 1]".to_string());
                        }
                        spec.deltas.push(delta);
                    }
                    "--faults" => {
                        let value = take_value(&mut it, flag)?;
                        parse_faults(value)?;
                        spec.fault_specs.push(value.to_string());
                    }
                    "--topology" => {
                        let value = take_value(&mut it, flag)?;
                        parse_topology(value)?;
                        spec.topology = value.to_string();
                    }
                    "--shards" => spec.shards = parse_shards(take_value(&mut it, flag)?)?,
                    "--causal" => spec.causal = true,
                    other => return Err(format!("unknown flag '{other}'")),
                }
            }
            check_endpoint(&socket, &tcp)?;
            let action = match action {
                "sweep" | "query" => {
                    if spec.workloads.is_empty() || spec.strategies.is_empty() {
                        return Err(format!(
                            "client {action} needs at least one --workload and one --strategy"
                        ));
                    }
                    if action == "sweep" {
                        ClientAction::Sweep(spec)
                    } else {
                        ClientAction::Query(spec)
                    }
                }
                "status" => ClientAction::Status,
                "shutdown" => ClientAction::Shutdown,
                other => return Err(format!("unknown client action '{other}'")),
            };
            Ok(Command::Client {
                socket,
                tcp,
                action,
            })
        }
        "list" => Ok(Command::List),
        "help" | "-h" | "--help" => Ok(Command::Help(None)),
        other => Err(format!("unknown subcommand '{other}'")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_run() {
        let cmd = parse(&["run", "-w", "ft-b8", "-s", "static-800"]);
        match cmd {
            Command::Run {
                workload,
                strategy,
                blocking_ms,
                ..
            } => {
                assert_eq!(workload.label(), Workload::ft_b8().label());
                assert_eq!(strategy, DvsStrategy::StaticMhz(800));
                assert_eq!(blocking_ms, None);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parses_blocking_waits() {
        let cmd = parse(&[
            "run",
            "-w",
            "swim",
            "-s",
            "cpuspeed",
            "--blocking-waits",
            "50",
        ]);
        match cmd {
            Command::Run { blocking_ms, .. } => assert_eq!(blocking_ms, Some(50)),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parses_sweep_and_best() {
        assert!(matches!(
            parse(&["sweep", "-w", "transpose", "--dynamic"]),
            Command::Sweep { dynamic: true, .. }
        ));
        match parse(&["best", "-w", "mgrid", "--delta", "-0.5"]) {
            Command::Best { delta, .. } => assert!((delta + 0.5).abs() < 1e-12),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parses_thread_counts() {
        match parse(&["sweep", "-w", "swim", "-j", "4"]) {
            Command::Sweep { threads, .. } => assert_eq!(threads, Some(4)),
            other => panic!("{other:?}"),
        }
        match parse(&["best", "-w", "swim", "--threads", "2"]) {
            Command::Best { threads, .. } => assert_eq!(threads, Some(2)),
            other => panic!("{other:?}"),
        }
        match parse(&["sweep", "-w", "swim"]) {
            Command::Sweep { threads, .. } => assert_eq!(threads, None),
            other => panic!("{other:?}"),
        }
        assert!(matches!(
            parse(&["sweep", "-w", "swim", "-j", "0"]),
            Command::Help(Some(_))
        ));
        assert!(matches!(
            parse(&["sweep", "-w", "swim", "-j", "many"]),
            Command::Help(Some(_))
        ));
    }

    #[test]
    fn best_defaults_to_hpc_delta() {
        match parse(&["best", "-w", "swim"]) {
            Command::Best { delta, .. } => assert_eq!(delta, edp_metrics::DELTA_HPC),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn all_listed_workloads_parse() {
        for name in Workload::names() {
            assert!(parse_workload(name).is_ok(), "{name}");
        }
    }

    #[test]
    fn strategy_parsing_covers_all_forms() {
        assert_eq!(
            parse_strategy("static-600").unwrap(),
            DvsStrategy::StaticMhz(600)
        );
        assert_eq!(
            parse_strategy("dynamic-1400").unwrap(),
            DvsStrategy::DynamicBaseMhz(1400)
        );
        assert_eq!(parse_strategy("cpuspeed").unwrap(), DvsStrategy::Cpuspeed);
        assert_eq!(parse_strategy("ondemand").unwrap(), DvsStrategy::OnDemand);
        assert_eq!(
            parse_strategy("conservative").unwrap(),
            DvsStrategy::Conservative
        );
        assert!(parse_strategy("warp-speed").is_err());
    }

    #[test]
    fn errors_become_help_with_message() {
        assert!(matches!(
            parse(&["run", "-w", "nope"]),
            Command::Help(Some(_))
        ));
        assert!(matches!(parse(&["run"]), Command::Help(Some(_))));
        assert!(matches!(parse(&["frobnicate"]), Command::Help(Some(_))));
        assert!(matches!(
            parse(&["best", "-w", "swim", "--delta", "3"]),
            Command::Help(Some(_))
        ));
    }

    #[test]
    fn parses_export() {
        match parse(&["export", "-w", "swim", "-s", "static-600", "-o", "/tmp/x"]) {
            Command::Export {
                out_dir, strategy, ..
            } => {
                assert_eq!(out_dir, "/tmp/x");
                assert_eq!(strategy, DvsStrategy::StaticMhz(600));
            }
            other => panic!("{other:?}"),
        }
        // Default output directory.
        match parse(&["export", "-w", "swim", "-s", "static-600"]) {
            Command::Export { out_dir, .. } => assert_eq!(out_dir, "pwrperf-out"),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parses_run_observability_flags() {
        match parse(&[
            "run",
            "-w",
            "swim",
            "-s",
            "static-800",
            "--metrics",
            "--trace-capacity",
            "4096",
        ]) {
            Command::Run {
                metrics,
                trace_capacity,
                ..
            } => {
                assert!(metrics);
                assert_eq!(trace_capacity, Some(4096));
            }
            other => panic!("{other:?}"),
        }
        match parse(&["run", "-w", "swim", "-s", "static-800"]) {
            Command::Run {
                metrics,
                trace_capacity,
                ..
            } => {
                assert!(!metrics);
                assert_eq!(trace_capacity, None);
            }
            other => panic!("{other:?}"),
        }
        assert!(matches!(
            parse(&[
                "run",
                "-w",
                "swim",
                "-s",
                "static-800",
                "--trace-capacity",
                "lots"
            ]),
            Command::Help(Some(_))
        ));
    }

    #[test]
    fn parses_trace() {
        match parse(&["trace", "-w", "ft-test4", "-s", "dynamic-1400"]) {
            Command::Trace {
                out,
                trace_capacity,
                blocking_ms,
                ..
            } => {
                assert_eq!(out, "run.perfetto.json");
                assert_eq!(trace_capacity, None);
                assert_eq!(blocking_ms, None);
            }
            other => panic!("{other:?}"),
        }
        match parse(&[
            "trace",
            "-w",
            "swim",
            "-s",
            "cpuspeed",
            "--out",
            "/tmp/t.json",
            "--trace-capacity",
            "128",
        ]) {
            Command::Trace {
                out,
                trace_capacity,
                ..
            } => {
                assert_eq!(out, "/tmp/t.json");
                assert_eq!(trace_capacity, Some(128));
            }
            other => panic!("{other:?}"),
        }
        assert!(matches!(
            parse(&["trace", "-w", "swim"]),
            Command::Help(Some(_))
        ));
    }

    #[test]
    fn parses_stats() {
        match parse(&["stats", "-w", "swim", "-s", "static-600"]) {
            Command::Stats { out, .. } => assert_eq!(out, None),
            other => panic!("{other:?}"),
        }
        match parse(&["stats", "-w", "swim", "-s", "static-600", "-o", "m.ndjson"]) {
            Command::Stats { out, .. } => assert_eq!(out.as_deref(), Some("m.ndjson")),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parses_export_metrics_flag() {
        match parse(&["export", "-w", "swim", "-s", "static-600", "--metrics"]) {
            Command::Export { metrics, .. } => assert!(metrics),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parses_faults_spec() {
        use pwrperf::Fault;
        match parse(&[
            "run",
            "-w",
            "swim",
            "-s",
            "static-800",
            "--faults",
            "seed:9,slow:1:1.5,skip-sample:0.1",
        ]) {
            Command::Run { faults, .. } => {
                assert_eq!(faults.seed, 9);
                assert_eq!(faults.faults.len(), 2);
                assert!(matches!(
                    faults.faults[0],
                    Fault::ComputeSlowdown { node: 1, .. }
                ));
            }
            other => panic!("{other:?}"),
        }
        // Default: empty spec (no fault runtime armed).
        match parse(&["run", "-w", "swim", "-s", "static-800"]) {
            Command::Run { faults, .. } => assert!(faults.is_empty()),
            other => panic!("{other:?}"),
        }
        // Stats and trace accept the flag too.
        assert!(matches!(
            parse(&[
                "stats",
                "-w",
                "swim",
                "-s",
                "static-600",
                "--faults",
                "dvfs-fail:0:1.0"
            ]),
            Command::Stats { .. }
        ));
        // Bad specs surface as help with a message.
        assert!(matches!(
            parse(&[
                "run",
                "-w",
                "swim",
                "-s",
                "static-800",
                "--faults",
                "bogus:1"
            ]),
            Command::Help(Some(_))
        ));
    }

    #[test]
    fn parses_sweep_store_flags() {
        match parse(&[
            "sweep",
            "-w",
            "ft-test4",
            "--store",
            "/tmp/cache",
            "--dry-run",
        ]) {
            Command::Sweep {
                store,
                dry_run,
                no_cache,
                ..
            } => {
                assert_eq!(store.as_deref(), Some("/tmp/cache"));
                assert!(dry_run);
                assert!(!no_cache);
            }
            other => panic!("{other:?}"),
        }
        match parse(&["sweep", "-w", "ft-test4", "--no-cache"]) {
            Command::Sweep {
                store, no_cache, ..
            } => {
                assert_eq!(store, None);
                assert!(no_cache);
            }
            other => panic!("{other:?}"),
        }
        match parse(&["sweep", "-w", "ft-test4", "--faults", "slow:0:2.0"]) {
            Command::Sweep { faults, .. } => assert_eq!(faults.faults.len(), 1),
            other => panic!("{other:?}"),
        }
        // --dry-run without a store has nothing to plan against.
        assert!(matches!(
            parse(&["sweep", "-w", "ft-test4", "--dry-run"]),
            Command::Help(Some(_))
        ));
        // --no-cache contradicts --store.
        assert!(matches!(
            parse(&["sweep", "-w", "ft-test4", "--store", "/tmp/c", "--no-cache"]),
            Command::Help(Some(_))
        ));
    }

    #[test]
    fn vacuous_outputs_are_hard_errors() {
        // Regression: these used to "succeed" while writing empty files.
        let trace_zero = parse(&[
            "trace",
            "-w",
            "ft-test4",
            "-s",
            "static-800",
            "--trace-capacity",
            "0",
        ]);
        match trace_zero {
            Command::Help(Some(msg)) => assert!(msg.contains("empty timeline"), "{msg}"),
            other => panic!("{other:?}"),
        }
        let export_zero = parse(&[
            "export",
            "-w",
            "ft-test4",
            "-s",
            "static-800",
            "--trace-capacity",
            "0",
        ]);
        match export_zero {
            Command::Help(Some(msg)) => assert!(msg.contains("empty trace.csv"), "{msg}"),
            other => panic!("{other:?}"),
        }
        // A positive capacity stays accepted, and `run --trace-capacity 0`
        // is fine (run prints a summary, not the trace).
        assert!(matches!(
            parse(&[
                "trace",
                "-w",
                "ft-test4",
                "-s",
                "static-800",
                "--trace-capacity",
                "64"
            ]),
            Command::Trace { .. }
        ));
        assert!(matches!(
            parse(&[
                "run",
                "-w",
                "ft-test4",
                "-s",
                "static-800",
                "--trace-capacity",
                "0"
            ]),
            Command::Run { .. }
        ));
        // `stats` needs no --metrics flag: it force-enables collection, so
        // its registry output can never be silently empty.
        assert!(matches!(
            parse(&["stats", "-w", "ft-test4", "-s", "static-800"]),
            Command::Stats { .. }
        ));
    }

    #[test]
    fn parses_scale_workloads() {
        match parse_workload("ft-scale-4096").unwrap() {
            Workload::FtScale { ranks } => assert_eq!(ranks, 4096),
            other => panic!("{other:?}"),
        }
        assert!(parse_workload("ft-scale-100").is_err(), "non-pow2 rejected");
        assert!(parse_workload("ft-scale-0").is_err());
        assert!(parse_workload("ft-scale-lots").is_err());
    }

    #[test]
    fn parses_topology_and_shards() {
        match parse(&[
            "run",
            "-w",
            "ft-scale-256",
            "-s",
            "static-1400",
            "--topology",
            "fat-tree:radix=16,oversub=2",
            "--shards",
            "8",
        ]) {
            Command::Run {
                topology, shards, ..
            } => {
                assert_eq!(
                    topology,
                    Topology::FatTree {
                        radix: 16,
                        oversub: 2.0
                    }
                );
                assert_eq!(shards, Some(8));
            }
            other => panic!("{other:?}"),
        }
        // Defaults: flat switch, no shard override (env or 1 decides).
        match parse(&["run", "-w", "swim", "-s", "static-800"]) {
            Command::Run {
                topology, shards, ..
            } => {
                assert_eq!(topology, Topology::Flat);
                assert_eq!(shards, None);
            }
            other => panic!("{other:?}"),
        }
        // Stats accepts both flags too (solver domain counters show there).
        assert!(matches!(
            parse(&[
                "stats",
                "-w",
                "ft-test4",
                "-s",
                "static-800",
                "--topology",
                "fat-tree",
                "--shards",
                "2",
            ]),
            Command::Stats {
                topology: Topology::FatTree { .. },
                shards: Some(2),
                ..
            }
        ));
        // Bad specs surface as help with a message.
        assert!(matches!(
            parse(&[
                "run",
                "-w",
                "swim",
                "-s",
                "static-800",
                "--topology",
                "torus"
            ]),
            Command::Help(Some(_))
        ));
        assert!(matches!(
            parse(&["run", "-w", "swim", "-s", "static-800", "--shards", "0"]),
            Command::Help(Some(_))
        ));
    }

    #[test]
    fn parses_analyze() {
        match parse(&["analyze", "-w", "ft-test4", "-s", "static-800"]) {
            Command::Analyze {
                out,
                perfetto,
                topology,
                shards,
                ..
            } => {
                assert_eq!(out, None);
                assert_eq!(perfetto, None);
                assert_eq!(topology, Topology::Flat);
                assert_eq!(shards, None);
            }
            other => panic!("{other:?}"),
        }
        match parse(&[
            "analyze",
            "-w",
            "ft-scale-256",
            "-s",
            "static-1400",
            "-o",
            "blame.ndjson",
            "--perfetto",
            "flows.json",
            "--topology",
            "fat-tree:radix=16,oversub=2",
            "--shards",
            "8",
        ]) {
            Command::Analyze {
                out,
                perfetto,
                topology,
                shards,
                ..
            } => {
                assert_eq!(out.as_deref(), Some("blame.ndjson"));
                assert_eq!(perfetto.as_deref(), Some("flows.json"));
                assert!(matches!(topology, Topology::FatTree { radix: 16, .. }));
                assert_eq!(shards, Some(8));
            }
            other => panic!("{other:?}"),
        }
        assert!(matches!(
            parse(&["analyze", "-w", "ft-test4"]),
            Command::Help(Some(_))
        ));
    }

    #[test]
    fn parses_run_causal_flag() {
        match parse(&["run", "-w", "ft-test4", "-s", "static-800", "--causal"]) {
            Command::Run { causal, .. } => assert!(causal),
            other => panic!("{other:?}"),
        }
        match parse(&["run", "-w", "ft-test4", "-s", "static-800"]) {
            Command::Run { causal, .. } => assert!(!causal),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parses_power_cap() {
        // Bare watts on run: redistribute is the default policy.
        match parse(&["run", "-w", "ft-test4", "--power-cap", "120"]) {
            Command::Run { strategy, .. } => assert_eq!(
                strategy,
                DvsStrategy::PowerCap {
                    watts: 120,
                    policy: CapPolicy::Redistribute
                }
            ),
            other => panic!("{other:?}"),
        }
        match parse(&["run", "-w", "ft-test4", "--power-cap", "96,policy=uniform"]) {
            Command::Run { strategy, .. } => assert_eq!(
                strategy,
                DvsStrategy::PowerCap {
                    watts: 96,
                    policy: CapPolicy::Uniform
                }
            ),
            other => panic!("{other:?}"),
        }
        // Sweep keeps the policy optional (None = compare both).
        match parse(&["sweep", "-w", "ft-test4", "--power-cap", "120"]) {
            Command::Sweep { power_cap, .. } => assert_eq!(power_cap, Some((120, None))),
            other => panic!("{other:?}"),
        }
        match parse(&[
            "sweep",
            "-w",
            "ft-test4",
            "--power-cap",
            "120,policy=redistribute",
        ]) {
            Command::Sweep { power_cap, .. } => {
                assert_eq!(power_cap, Some((120, Some(CapPolicy::Redistribute))))
            }
            other => panic!("{other:?}"),
        }
        // Conflicts and malformed specs surface as help with a message.
        assert!(matches!(
            parse(&[
                "run",
                "-w",
                "ft-test4",
                "-s",
                "static-800",
                "--power-cap",
                "120"
            ]),
            Command::Help(Some(_))
        ));
        assert!(matches!(
            parse(&["sweep", "-w", "ft-test4", "--dynamic", "--power-cap", "120"]),
            Command::Help(Some(_))
        ));
        assert!(matches!(
            parse(&["run", "-w", "ft-test4", "--power-cap", "0"]),
            Command::Help(Some(_))
        ));
        assert!(matches!(
            parse(&["run", "-w", "ft-test4", "--power-cap", "120,policy=fair"]),
            Command::Help(Some(_))
        ));
        assert!(matches!(
            parse(&["run", "-w", "ft-test4", "--power-cap", "120,uniform"]),
            Command::Help(Some(_))
        ));
    }

    #[test]
    fn parses_sweep_topology_and_shards() {
        // Regression: sweep used to silently drop both flags, so sharded
        // fat-tree sweeps could not be driven from the CLI at all.
        match parse(&[
            "sweep",
            "-w",
            "ft-test4",
            "--topology",
            "fat-tree:radix=4,oversub=2",
            "--shards",
            "4",
        ]) {
            Command::Sweep {
                topology, shards, ..
            } => {
                assert_eq!(
                    topology,
                    Topology::FatTree {
                        radix: 4,
                        oversub: 2.0
                    }
                );
                assert_eq!(shards, Some(4));
            }
            other => panic!("{other:?}"),
        }
        match parse(&["sweep", "-w", "ft-test4"]) {
            Command::Sweep {
                topology, shards, ..
            } => {
                assert_eq!(topology, Topology::Flat);
                assert_eq!(shards, None);
            }
            other => panic!("{other:?}"),
        }
        assert!(matches!(
            parse(&["sweep", "-w", "ft-test4", "--shards", "0"]),
            Command::Help(Some(_))
        ));
    }

    #[test]
    fn parses_serve_and_client() {
        match parse(&[
            "serve",
            "--store",
            "/tmp/cache",
            "--socket",
            "/tmp/pwrperfd.sock",
            "-j",
            "4",
            "--max-store-bytes",
            "1048576",
        ]) {
            Command::Serve {
                store,
                socket,
                tcp,
                threads,
                max_store_bytes,
            } => {
                assert_eq!(store, "/tmp/cache");
                assert_eq!(socket.as_deref(), Some("/tmp/pwrperfd.sock"));
                assert_eq!(tcp, None);
                assert_eq!(threads, Some(4));
                assert_eq!(max_store_bytes, Some(1_048_576));
            }
            other => panic!("{other:?}"),
        }
        match parse(&[
            "client",
            "sweep",
            "--tcp",
            "127.0.0.1:7777",
            "-w",
            "ft-test4",
            "-w",
            "mem-micro",
            "-s",
            "static-800",
            "-s",
            "cap-80-uniform",
            "--delta",
            "0.2",
            "--faults",
            "slow:0:2.0",
        ]) {
            Command::Client {
                tcp,
                action: ClientAction::Sweep(spec),
                ..
            } => {
                assert_eq!(tcp.as_deref(), Some("127.0.0.1:7777"));
                assert_eq!(spec.workloads, vec!["ft-test4", "mem-micro"]);
                assert_eq!(spec.strategies, vec!["static-800", "cap-80-uniform"]);
                assert_eq!(spec.deltas, vec![0.2]);
                assert_eq!(spec.fault_specs, vec!["slow:0:2.0"]);
            }
            other => panic!("{other:?}"),
        }
        assert!(matches!(
            parse(&["client", "status", "--socket", "/tmp/d.sock"]),
            Command::Client {
                action: ClientAction::Status,
                ..
            }
        ));
        assert!(matches!(
            parse(&["client", "shutdown", "--tcp", "127.0.0.1:7777"]),
            Command::Client {
                action: ClientAction::Shutdown,
                ..
            }
        ));
        // Endpoint discipline and name validation happen at parse time.
        assert!(matches!(
            parse(&["serve", "--store", "/tmp/c"]),
            Command::Help(Some(_))
        ));
        assert!(matches!(
            parse(&["serve", "--store", "/tmp/c", "--socket", "/a", "--tcp", "b:1"]),
            Command::Help(Some(_))
        ));
        assert!(matches!(
            parse(&["client", "sweep", "--socket", "/a", "-w", "warp", "-s", "cpuspeed"]),
            Command::Help(Some(_))
        ));
        assert!(matches!(
            parse(&["client", "sweep", "--socket", "/a"]),
            Command::Help(Some(_))
        ));
    }

    #[test]
    fn bare_invocation_is_help() {
        assert!(matches!(parse(&[]), Command::Help(None)));
        assert!(matches!(parse(&["--help"]), Command::Help(None)));
    }
}
