//! Critical-path extraction and per-rank time/energy attribution from a
//! [`CausalLog`] — the "blame analysis" behind `pwrperf analyze`.
//!
//! ## The walk
//!
//! The log is already a happens-before DAG in adjacency form: each
//! released wait carries the message completion that ended it, and each
//! message carries the rank-local action that put it on the wire. The
//! critical path is extracted by a deterministic backward walk from the
//! last rank completion to time zero. At cursor `(rank, t)`:
//!
//! * if a wait of `rank` ended exactly at `t`, the releasing message is
//!   the gate: the in-network interval `[enabled_at, t]` joins the path
//!   as a communication hop and the walk continues on the rank whose
//!   action enabled the flow;
//! * otherwise the rank was locally busy (compute, DRAM stall, posting,
//!   DVFS stall): the interval back to its previous wait joins the path
//!   as that rank's residency.
//!
//! The walk is contiguous, so the path length equals the makespan by
//! construction — the interesting output is *where* it sits: per-rank
//! residency versus network hops. Everything is integer picosecond
//! arithmetic in event order; no wall clock, no floats on the path sums.
//!
//! ## The attribution
//!
//! Independently of the path, every rank's wall time splits exactly into
//! compute (frequency-scaled work + DRAM stall), in-flight communication
//! (wait time overlapping the releasing message's network flight), and
//! blocked-waiting (the rest of the waits + DVFS stalls). The same split
//! carries the node's metered joules, yielding a per-rank slack profile
//! and the cluster-level redistributable-energy figure that ROADMAP
//! item 2's power redistribution will feed on.

use sim_core::{CausalLog, SimDuration, SimTime};

/// One link of the critical path, chronological.
#[derive(Debug, Clone, PartialEq)]
pub enum CpSegment {
    /// `rank` was locally busy over `[start, end]`.
    Local {
        rank: usize,
        start: SimTime,
        end: SimTime,
    },
    /// Message `msg` was in the network over `[start, end]`, gating the
    /// rank that its completion released.
    Comm {
        msg: usize,
        start: SimTime,
        end: SimTime,
    },
}

impl CpSegment {
    fn span(&self) -> SimDuration {
        match *self {
            CpSegment::Local { start, end, .. } | CpSegment::Comm { start, end, .. } => {
                end.since(start)
            }
        }
    }
}

/// The extracted critical path.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct CriticalPath {
    /// Total path length (equals the makespan: the walk is contiguous).
    pub length: SimDuration,
    /// Path time spent in network flight.
    pub comm: SimDuration,
    /// Message hops on the path.
    pub hops: u64,
    /// Per-rank local residency on the path; sums to `length - comm`.
    pub residency: Vec<SimDuration>,
    /// The path itself, chronological.
    pub segments: Vec<CpSegment>,
}

/// The causal DAG in solver-ready adjacency form: the log plus per-rank
/// chronological wait indices. Building it is `O(waits)`.
#[derive(Debug)]
pub struct CausalGraph<'a> {
    log: &'a CausalLog,
    /// Indices into `log.waits` per rank, chronological.
    by_rank: Vec<Vec<usize>>,
}

impl<'a> CausalGraph<'a> {
    /// Index the log's wait edges by rank.
    pub fn from_log(log: &'a CausalLog) -> Self {
        let mut by_rank: Vec<Vec<usize>> = vec![Vec::new(); log.ranks()];
        for (i, w) in log.waits.iter().enumerate() {
            by_rank[w.rank].push(i);
        }
        CausalGraph { log, by_rank }
    }

    /// Total edges (message lifecycles + released waits + DVFS stalls).
    pub fn edge_count(&self) -> usize {
        self.log.msgs.len() + self.log.waits.len() + self.log.dvfs.len()
    }

    /// Extract the critical path: the deterministic backward walk
    /// described in the module docs. Longest-path over this DAG reduces
    /// to the walk because gating is total — at every instant exactly one
    /// predecessor (the releasing completion, or the rank's own local
    /// history) bounds progress.
    pub fn critical_path(&self) -> CriticalPath {
        let n = self.log.ranks();
        let mut cp = CriticalPath {
            residency: vec![SimDuration::ZERO; n],
            ..CriticalPath::default()
        };
        let Some((mut rank, makespan)) = self.log.last_finisher() else {
            return cp;
        };
        let mut t = makespan;
        // Per-rank exclusive upper bound into `by_rank`: a consumed wait
        // edge is never revisited, which both bounds the walk by the edge
        // count and keeps zero-duration edges from cycling at one instant.
        let mut ptr: Vec<usize> = self.by_rank.iter().map(Vec::len).collect();
        while t > SimTime::ZERO {
            let list = &self.by_rank[rank];
            let mut i = ptr[rank];
            while i > 0 && self.log.waits[list[i - 1]].end > t {
                i -= 1;
            }
            if i == 0 {
                // No earlier wait: the rank's local history reaches zero.
                cp.residency[rank] += t.since(SimTime::ZERO);
                cp.segments.push(CpSegment::Local {
                    rank,
                    start: SimTime::ZERO,
                    end: t,
                });
                break;
            }
            let w = &self.log.waits[list[i - 1]];
            if w.end == t {
                // The releasing message gates: follow its flight back to
                // the rank-local action that enabled it.
                ptr[rank] = i - 1;
                let m = &self.log.msgs[w.cause.msg()];
                let start = m.enabled_at().min(t);
                cp.comm += t.since(start);
                cp.hops += 1;
                cp.segments.push(CpSegment::Comm {
                    msg: w.cause.msg(),
                    start,
                    end: t,
                });
                rank = m.enabler();
                t = start;
            } else {
                // Locally busy back to the previous wait's release.
                ptr[rank] = i;
                cp.residency[rank] += t.since(w.end);
                cp.segments.push(CpSegment::Local {
                    rank,
                    start: w.end,
                    end: t,
                });
                t = w.end;
            }
        }
        cp.segments.reverse();
        cp.length = cp.segments.iter().map(CpSegment::span).sum();
        cp
    }
}

/// Per-rank bucket totals the engine already accounts (its breakdown),
/// pre-combined for attribution: the solver needs only these three sums.
#[derive(Debug, Clone, Copy, Default)]
pub struct BucketTotals {
    /// Frequency-scaled compute + DRAM stall.
    pub compute: SimDuration,
    /// Busy-poll + blocked wait time.
    pub wait: SimDuration,
    /// DVFS transition stalls.
    pub transition: SimDuration,
}

/// One rank's share of the blame.
#[derive(Debug, Clone, PartialEq)]
pub struct RankAttribution {
    /// Time doing work (compute + DRAM stall).
    pub compute: SimDuration,
    /// Wait time overlapping the releasing message's network flight.
    pub comm: SimDuration,
    /// Wait time before the gating flow even started, plus DVFS stalls.
    pub blocked: SimDuration,
    /// Local residency on the critical path.
    pub cp_residency: SimDuration,
    /// Program completion time.
    pub finish: SimTime,
    /// Joules up to completion, minus wait joules.
    pub compute_j: f64,
    /// Wait joules prorated onto the in-flight share of each wait.
    pub comm_j: f64,
    /// Wait joules prorated onto the pre-flight share of each wait.
    pub blocked_j: f64,
    /// Joules burned after this rank finished, waiting for the run to end.
    pub idle_tail_j: f64,
    /// Joules off the critical path: `comm_j + blocked_j + idle_tail_j`.
    pub slack_j: f64,
    /// Whole-run node energy (`compute_j + slack_j`).
    pub total_j: f64,
}

impl RankAttribution {
    /// The rank's accounted wall time; equals the engine's breakdown
    /// total exactly (integer picoseconds, no rounding).
    pub fn wall(&self) -> SimDuration {
        self.compute + self.comm + self.blocked
    }
}

/// Whole-run attribution summary: the critical path plus the per-rank
/// time/energy split and the cluster-level slack figure.
#[derive(Debug, Clone, PartialEq)]
pub struct RunAttribution {
    /// Last rank completion.
    pub makespan: SimDuration,
    /// Critical-path length (== makespan; kept separate so the invariant
    /// is checkable, not assumed).
    pub critical_path: SimDuration,
    /// Critical-path time in network flight.
    pub cp_comm: SimDuration,
    /// Message hops on the critical path.
    pub cp_hops: u64,
    /// Per-rank attribution rows.
    pub ranks: Vec<RankAttribution>,
    /// Cluster-wide joules off the critical path — the budget a power
    /// redistribution controller could shift toward gating ranks.
    pub redistributable_j: f64,
}

/// Compute the full attribution from a causal log, the engine's bucket
/// totals, and whole-run per-node energy.
pub fn attribute(
    log: &CausalLog,
    buckets: &[BucketTotals],
    node_total_j: &[f64],
) -> RunAttribution {
    let n = log.ranks();
    debug_assert_eq!(buckets.len(), n);
    debug_assert_eq!(node_total_j.len(), n);
    let cp = CausalGraph::from_log(log).critical_path();
    let makespan = log
        .last_finisher()
        .map(|(_, t)| t.since(SimTime::ZERO))
        .unwrap_or(SimDuration::ZERO);

    // Per-rank in-flight wait time and wait joules, split by overlap with
    // the releasing message's network flight.
    let mut comm = vec![SimDuration::ZERO; n];
    let mut comm_j = vec![0.0; n];
    let mut wait_j = vec![0.0; n];
    for w in &log.waits {
        let m = &log.msgs[w.cause.msg()];
        let flight_from = m.enabled_at().max(w.start).min(w.end);
        let in_flight = w.end.since(flight_from);
        comm[w.rank] += in_flight;
        let joules = w.energy_end_j - w.energy_start_j;
        wait_j[w.rank] += joules;
        comm_j[w.rank] += joules * in_flight.ratio(w.end.since(w.start));
    }

    let mut ranks = Vec::with_capacity(n);
    let mut redistributable_j = 0.0;
    for r in 0..n {
        let b = buckets[r];
        // `comm` only ever counts sub-intervals of waits, so the
        // subtraction cannot underflow.
        let blocked = (b.wait - comm[r]) + b.transition;
        let blocked_j = wait_j[r] - comm_j[r];
        let idle_tail_j = node_total_j[r] - log.finish_energy_j[r];
        let slack_j = comm_j[r] + blocked_j + idle_tail_j;
        redistributable_j += slack_j;
        ranks.push(RankAttribution {
            compute: b.compute,
            comm: comm[r],
            blocked,
            cp_residency: cp.residency[r],
            finish: log.finish[r],
            compute_j: log.finish_energy_j[r] - wait_j[r],
            comm_j: comm_j[r],
            blocked_j,
            idle_tail_j,
            slack_j,
            total_j: node_total_j[r],
        });
    }
    RunAttribution {
        makespan,
        critical_path: cp.length,
        cp_comm: cp.comm,
        cp_hops: cp.hops,
        ranks,
        redistributable_j,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_core::{MsgRecord, WaitCause, WaitRecord};

    fn ms(v: u64) -> SimTime {
        SimTime(v * 1_000_000_000)
    }

    /// Two ranks: rank 0 computes 10ms and sends; rank 1 computes 2ms,
    /// then waits 8ms for the eager message plus 3ms of flight.
    fn two_rank_log() -> CausalLog {
        let mut log = CausalLog::new(2);
        log.msgs.push(MsgRecord {
            src: 0,
            dst: 1,
            bytes: 1024,
            collective: false,
            posted_at: ms(10),
            flow_started_at: Some(ms(10)),
            drained_at: Some(ms(12)),
            delivered_at: Some(ms(13)),
        });
        log.waits.push(WaitRecord {
            rank: 1,
            start: ms(2),
            end: ms(13),
            cause: WaitCause::RecvDelivered(0),
            energy_start_j: 10.0,
            energy_end_j: 32.0,
        });
        log.finish = vec![ms(10), ms(13)];
        log.finish_energy_j = vec![50.0, 40.0];
        log
    }

    #[test]
    fn critical_path_walks_through_the_message() {
        let log = two_rank_log();
        let cp = CausalGraph::from_log(&log).critical_path();
        // CP: rank 0 local [0,10] → flight [10,13] gating rank 1.
        assert_eq!(cp.length, ms(13).since(SimTime::ZERO));
        assert_eq!(cp.comm, ms(13).since(ms(10)));
        assert_eq!(cp.hops, 1);
        assert_eq!(cp.residency[0], ms(10).since(SimTime::ZERO));
        assert_eq!(cp.residency[1], SimDuration::ZERO);
        assert_eq!(cp.segments.len(), 2);
    }

    #[test]
    fn attribution_splits_sum_to_wall_time() {
        let log = two_rank_log();
        let buckets = [
            BucketTotals {
                compute: ms(10).since(SimTime::ZERO),
                wait: SimDuration::ZERO,
                transition: SimDuration::ZERO,
            },
            BucketTotals {
                compute: ms(2).since(SimTime::ZERO),
                wait: ms(13).since(ms(2)),
                transition: SimDuration::ZERO,
            },
        ];
        let a = attribute(&log, &buckets, &[55.0, 41.0]);
        assert_eq!(a.critical_path, a.makespan);
        // Rank 1 waited [2,13]; the flow covered [10,13].
        assert_eq!(a.ranks[1].comm, ms(13).since(ms(10)));
        assert_eq!(a.ranks[1].blocked, ms(10).since(ms(2)));
        assert_eq!(a.ranks[1].wall(), ms(13).since(SimTime::ZERO));
        assert_eq!(a.ranks[0].wall(), ms(10).since(SimTime::ZERO));
        // Wait joules (22) prorate 3/11 comm, 8/11 blocked.
        assert!((a.ranks[1].comm_j - 6.0).abs() < 1e-12);
        assert!((a.ranks[1].blocked_j - 16.0).abs() < 1e-12);
        // Idle tails: rank 0 burned 5J after finishing, rank 1 burned 1J.
        assert!((a.ranks[0].idle_tail_j - 5.0).abs() < 1e-12);
        assert!(
            (a.redistributable_j - (5.0 + 6.0 + 16.0 + 1.0)).abs() < 1e-12,
            "{}",
            a.redistributable_j
        );
    }

    #[test]
    fn empty_log_yields_an_empty_path() {
        let log = CausalLog::new(0);
        let cp = CausalGraph::from_log(&log).critical_path();
        assert_eq!(cp.length, SimDuration::ZERO);
        assert!(cp.segments.is_empty());
        let a = attribute(&log, &[], &[]);
        assert_eq!(a.makespan, SimDuration::ZERO);
        assert!(a.ranks.is_empty());
    }

    #[test]
    fn zero_duration_edges_cannot_cycle_the_walk() {
        // Pathological log: a zero-length wait at the makespan whose
        // cause flow also spans zero time on the same rank. The per-rank
        // consumption pointer must retire the edge and fall through to
        // the local-history base case instead of spinning.
        let mut log = CausalLog::new(1);
        log.msgs.push(MsgRecord {
            src: 0,
            dst: 0,
            bytes: 0,
            collective: false,
            posted_at: ms(5),
            flow_started_at: Some(ms(5)),
            drained_at: Some(ms(5)),
            delivered_at: Some(ms(5)),
        });
        log.waits.push(WaitRecord {
            rank: 0,
            start: ms(5),
            end: ms(5),
            cause: WaitCause::SendDrained(0),
            energy_start_j: 0.0,
            energy_end_j: 0.0,
        });
        log.finish = vec![ms(5)];
        log.finish_energy_j = vec![1.0];
        let cp = CausalGraph::from_log(&log).critical_path();
        assert_eq!(cp.length, ms(5).since(SimTime::ZERO));
        assert_eq!(cp.hops, 1);
    }
}
