//! # obs — the PowerScope observability layer
//!
//! The paper's PowerPack contribution is *coordinated measurement*: you
//! cannot improve power-performance efficiency you cannot see. This crate
//! is the simulated stack's equivalent for the simulator itself — a small,
//! deterministic observability toolkit threaded through every layer:
//!
//! * [`MetricsRegistry`] — counters, gauges, and fixed-bucket histograms
//!   keyed by (mostly static) names. Plain single-threaded data, insertion
//!   ordered, exported sorted: the same run always produces byte-identical
//!   output.
//! * [`SpanProfiler`] — named scopes accumulating both **simulated** time
//!   ([`sim_core::SimTime`]) and **wall-clock** time. Simulated totals are
//!   deterministic; wall-clock totals are measurement-only and never appear
//!   in deterministic exports.
//! * [`perfetto`] — a Chrome/Perfetto `trace_event` JSON builder, plus a
//!   converter from the engine's [`sim_core::Trace`] so a whole cluster run
//!   renders as one timeline at <https://ui.perfetto.dev> (one track per
//!   node: phase slices, message instants, frequency counter tracks, and
//!   flow arrows from a causal log).
//! * [`causal`] — critical-path extraction and per-rank time/energy
//!   attribution ("blame analysis") over the engine's recorded
//!   [`sim_core::CausalLog`], feeding `RunResult::attribution` and the
//!   `pwrperf analyze` subcommand.
//! * [`obs_count!`] / [`obs_gauge_max!`] / [`obs_observe!`] — feature-gated
//!   instrumentation macros. With the `enabled` feature off they expand to
//!   nothing, so instrumented code compiles to exactly the uninstrumented
//!   binary.
//!
//! ## Determinism contract
//!
//! Exports that describe *simulated* behaviour (Perfetto timelines, the
//! simulated-time metrics) contain only simulated-clock values and are
//! byte-identical across runs of the same scenario. Wall-clock readings
//! (span wall totals, worker utilization) are clearly separated and only
//! surface in human summaries.

pub mod causal;
pub mod metrics;
pub mod perfetto;
pub mod span;

pub use causal::{
    attribute, BucketTotals, CausalGraph, CpSegment, CriticalPath, RankAttribution, RunAttribution,
};
pub use metrics::{Histogram, MetricValue, MetricsRegistry};
pub use perfetto::PerfettoTrace;
pub use span::{SpanProfiler, SpanStats, WallTimer};

/// Add `$n` to counter `$name` in an `Option<&mut MetricsRegistry>`-like
/// expression (anything with `as_deref_mut`). Compiles to nothing without
/// the `enabled` feature.
#[cfg(feature = "enabled")]
#[macro_export]
macro_rules! obs_count {
    ($reg:expr, $name:expr, $n:expr) => {
        if let Some(m) = $reg.as_deref_mut() {
            m.counter_add($name, $n);
        }
    };
}

/// Disabled-form of [`obs_count!`]: expands to nothing.
#[cfg(not(feature = "enabled"))]
#[macro_export]
macro_rules! obs_count {
    ($reg:expr, $name:expr, $n:expr) => {};
}

/// Raise gauge `$name` to at least `$v` (high-water mark). Compiles to
/// nothing without the `enabled` feature.
#[cfg(feature = "enabled")]
#[macro_export]
macro_rules! obs_gauge_max {
    ($reg:expr, $name:expr, $v:expr) => {
        if let Some(m) = $reg.as_deref_mut() {
            m.gauge_max($name, $v);
        }
    };
}

/// Disabled-form of [`obs_gauge_max!`]: expands to nothing.
#[cfg(not(feature = "enabled"))]
#[macro_export]
macro_rules! obs_gauge_max {
    ($reg:expr, $name:expr, $v:expr) => {};
}

/// Record `$v` into histogram `$name` (created on first use with the
/// default buckets of [`MetricsRegistry::observe`]). Compiles to nothing
/// without the `enabled` feature.
#[cfg(feature = "enabled")]
#[macro_export]
macro_rules! obs_observe {
    ($reg:expr, $name:expr, $v:expr) => {
        if let Some(m) = $reg.as_deref_mut() {
            m.observe($name, $v);
        }
    };
}

/// Disabled-form of [`obs_observe!`]: expands to nothing.
#[cfg(not(feature = "enabled"))]
#[macro_export]
macro_rules! obs_observe {
    ($reg:expr, $name:expr, $v:expr) => {};
}
