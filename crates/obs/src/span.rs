//! Span profiling over both clocks.
//!
//! A span is a named scope on a numbered track (typically a node rank or a
//! worker index). Each span accumulates two durations:
//!
//! * **simulated** time — the difference between the [`SimTime`] at open
//!   and close, exact and deterministic;
//! * **wall-clock** time — how long the host actually spent inside the
//!   scope, useful for finding where the *simulator* burns cycles.
//!
//! The deterministic export ([`SpanProfiler::sorted`],
//! [`SpanProfiler::to_ndjson`]) contains only simulated totals; wall time
//! is reachable only through [`SpanProfiler::wall_total`] and the human
//! summary, so golden files never capture host speed.

use std::time::{Duration, Instant};

use sim_core::{FxHashMap, SimDuration, SimTime};

/// Aggregated totals for one span name on one track.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SpanStats {
    /// Completed open/close pairs.
    pub count: u64,
    /// Total simulated time spent inside the span.
    pub sim_total: SimDuration,
}

#[derive(Debug, Clone, Default)]
pub struct SpanProfiler {
    /// Open spans: (track, name) -> (sim open time, wall open time).
    open: FxHashMap<(usize, &'static str), (SimTime, Instant)>,
    /// Closed-span aggregates, insertion ordered.
    stats: Vec<((usize, &'static str), SpanStats)>,
    idx: FxHashMap<(usize, &'static str), usize>,
    /// Wall totals kept separate from [`SpanStats`] so the deterministic
    /// side stays `Copy + Eq` and never smuggles host timing.
    wall: FxHashMap<(usize, &'static str), Duration>,
}

impl SpanProfiler {
    pub fn new() -> Self {
        Self::default()
    }

    /// Open span `name` on `track` at simulated time `sim_now`. Re-opening
    /// an already-open span restarts it (the earlier open is discarded).
    pub fn open(&mut self, track: usize, name: &'static str, sim_now: SimTime) {
        self.open.insert((track, name), (sim_now, Instant::now()));
    }

    /// Close span `name` on `track` at simulated time `sim_now`,
    /// accumulating into the aggregate. Closing a span that is not open is
    /// a no-op (robust to truncated traces).
    pub fn close(&mut self, track: usize, name: &'static str, sim_now: SimTime) {
        let Some((sim_open, wall_open)) = self.open.remove(&(track, name)) else {
            return;
        };
        let key = (track, name);
        let i = match self.idx.get(&key) {
            Some(&i) => i,
            None => {
                self.idx.insert(key, self.stats.len());
                self.stats.push((key, SpanStats::default()));
                self.stats.len() - 1
            }
        };
        let s = &mut self.stats[i].1;
        s.count += 1;
        s.sim_total += sim_now.since(sim_open);
        *self.wall.entry(key).or_default() += wall_open.elapsed();
    }

    /// Number of spans currently open.
    pub fn open_count(&self) -> usize {
        self.open.len()
    }

    /// Aggregate for one (track, name), if any span completed there.
    pub fn stats(&self, track: usize, name: &str) -> Option<SpanStats> {
        self.idx.get(&(track, name)).map(|&i| self.stats[i].1)
    }

    /// Wall-clock total for one (track, name). Non-deterministic by
    /// nature; excluded from all deterministic exports.
    pub fn wall_total(&self, track: usize, name: &str) -> Option<Duration> {
        self.wall.get(&(track, name)).copied()
    }

    /// All aggregates sorted by (track, name) — deterministic order,
    /// simulated time only.
    pub fn sorted(&self) -> Vec<(usize, &'static str, SpanStats)> {
        let mut out: Vec<_> = self
            .stats
            .iter()
            .map(|&((track, name), s)| (track, name, s))
            .collect();
        out.sort_by(|a, b| (a.0, a.1).cmp(&(b.0, b.1)));
        out
    }

    /// Newline-delimited JSON of the deterministic aggregates (simulated
    /// microseconds; wall time deliberately absent).
    pub fn to_ndjson(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for (track, name, s) in self.sorted() {
            let _ = writeln!(
                out,
                r#"{{"type":"span","track":{track},"name":"{name}","count":{},"sim_ps":{}}}"#,
                s.count,
                s.sim_total.as_ps(),
            );
        }
        out
    }
}

/// RAII wall-clock timer for coarse host-side phases (build, run, export).
/// Purely a measurement convenience; never feeds deterministic output.
#[derive(Debug)]
pub struct WallTimer {
    start: Instant,
}

impl WallTimer {
    pub fn start() -> Self {
        WallTimer {
            start: Instant::now(),
        }
    }

    pub fn elapsed(&self) -> Duration {
        self.start.elapsed()
    }

    pub fn elapsed_secs(&self) -> f64 {
        self.start.elapsed().as_secs_f64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(us: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_micros(us)
    }

    #[test]
    fn open_close_accumulates_sim_time() {
        let mut p = SpanProfiler::new();
        p.open(0, "compute", t(0));
        p.close(0, "compute", t(100));
        p.open(0, "compute", t(200));
        p.close(0, "compute", t(250));
        let s = p.stats(0, "compute").unwrap();
        assert_eq!(s.count, 2);
        assert_eq!(s.sim_total, SimDuration::from_micros(150));
        assert!(p.wall_total(0, "compute").is_some());
    }

    #[test]
    fn tracks_are_independent() {
        let mut p = SpanProfiler::new();
        p.open(0, "mpi", t(0));
        p.open(1, "mpi", t(0));
        p.close(0, "mpi", t(10));
        p.close(1, "mpi", t(30));
        assert_eq!(
            p.stats(0, "mpi").unwrap().sim_total,
            SimDuration::from_micros(10)
        );
        assert_eq!(
            p.stats(1, "mpi").unwrap().sim_total,
            SimDuration::from_micros(30)
        );
    }

    #[test]
    fn close_without_open_is_noop() {
        let mut p = SpanProfiler::new();
        p.close(0, "never", t(5));
        assert!(p.stats(0, "never").is_none());
        assert_eq!(p.open_count(), 0);
    }

    #[test]
    fn ndjson_is_sorted_and_has_no_wall_time() {
        let mut p = SpanProfiler::new();
        p.open(1, "b", t(0));
        p.close(1, "b", t(5));
        p.open(0, "a", t(0));
        p.close(0, "a", t(7));
        let nd = p.to_ndjson();
        let lines: Vec<&str> = nd.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains(r#""track":0"#) && lines[0].contains(r#""name":"a""#));
        assert!(lines[1].contains(r#""track":1"#) && lines[1].contains(r#""name":"b""#));
        assert!(!nd.contains("wall"));
        assert_eq!(nd, p.to_ndjson());
    }

    #[test]
    fn wall_timer_runs() {
        let w = WallTimer::start();
        assert!(w.elapsed_secs() >= 0.0);
        assert!(w.elapsed() >= Duration::ZERO);
    }
}
