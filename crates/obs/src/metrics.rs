//! A deterministic metrics registry.
//!
//! Counters, gauges, and fixed-bucket histograms keyed by name. The
//! registry is plain single-threaded data — "lock-free in spirit": the
//! simulator is deterministic precisely because nothing in it is
//! concurrent, and the metrics layer follows suit. Names are interned as
//! `Cow<'static, str>` so hot-path updates with `&'static str` names never
//! allocate; derived metrics recorded once at teardown (per-frequency
//! residency, per-node totals) may use owned names.
//!
//! Exports are sorted by name, so the same run always renders the same
//! bytes — NDJSON dumps can be golden-tested.

use std::borrow::Cow;
use std::fmt::Write as _;

use sim_core::FxHashMap;

type Name = Cow<'static, str>;

/// Histogram bucket upper bounds used by [`MetricsRegistry::observe`] when
/// a histogram is first touched without explicit buckets: decades from 1
/// to 1e6 (values are typically microseconds, so this spans 1 µs – 1 s).
pub const DEFAULT_BUCKETS: &[f64] = &[1.0, 10.0, 100.0, 1_000.0, 10_000.0, 100_000.0, 1_000_000.0];

/// A fixed-bucket histogram: `bounds[i]` is the inclusive upper bound of
/// bucket `i`; one extra overflow bucket catches everything larger.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    bounds: Vec<f64>,
    counts: Vec<u64>,
    count: u64,
    sum: f64,
}

impl Histogram {
    /// An empty histogram over the given ascending upper bounds.
    pub fn new(bounds: &[f64]) -> Self {
        assert!(!bounds.is_empty(), "histogram needs at least one bucket");
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly ascending"
        );
        Histogram {
            bounds: bounds.to_vec(),
            counts: vec![0; bounds.len() + 1],
            count: 0,
            sum: 0.0,
        }
    }

    /// Record one observation.
    pub fn record(&mut self, value: f64) {
        let idx = self
            .bounds
            .iter()
            .position(|&b| value <= b)
            .unwrap_or(self.bounds.len());
        self.counts[idx] += 1;
        self.count += 1;
        self.sum += value;
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all observed values.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Mean observed value (zero when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Bucket upper bounds.
    pub fn bounds(&self) -> &[f64] {
        &self.bounds
    }

    /// Per-bucket counts (one more entry than `bounds`: the overflow
    /// bucket).
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Rebuild a histogram from previously exported parts (the SweepStore
    /// decode path). Returns `None` instead of panicking when the parts
    /// are inconsistent — bounds empty or not strictly ascending, or a
    /// counts vector that does not cover every bucket plus overflow — so
    /// corrupt input surfaces as a decode error, not an abort.
    pub fn from_parts(bounds: Vec<f64>, counts: Vec<u64>, count: u64, sum: f64) -> Option<Self> {
        if bounds.is_empty()
            || counts.len() != bounds.len() + 1
            || !bounds.windows(2).all(|w| w[0] < w[1])
        {
            return None;
        }
        Some(Histogram {
            bounds,
            counts,
            count,
            sum,
        })
    }
}

/// A snapshot view of one metric, for iteration and reporting.
#[derive(Debug, Clone, PartialEq)]
pub enum MetricValue<'a> {
    /// Monotonic counter.
    Counter(u64),
    /// Last-write or high-water gauge.
    Gauge(f64),
    /// Fixed-bucket histogram.
    Histogram(&'a Histogram),
}

/// The registry: insertion-ordered storage, name-indexed lookup, sorted
/// deterministic export.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsRegistry {
    counters: Vec<(Name, u64)>,
    gauges: Vec<(Name, f64)>,
    histograms: Vec<(Name, Histogram)>,
    counter_idx: FxHashMap<Name, usize>,
    gauge_idx: FxHashMap<Name, usize>,
    histogram_idx: FxHashMap<Name, usize>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    // ----- counters --------------------------------------------------------

    /// Add `n` to the named counter, creating it at zero on first use.
    pub fn counter_add(&mut self, name: &'static str, n: u64) {
        self.counter_add_name(Cow::Borrowed(name), n);
    }

    /// [`MetricsRegistry::counter_add`] with an owned (dynamic) name — for
    /// teardown-time metrics like per-frequency residency.
    pub fn counter_add_owned(&mut self, name: String, n: u64) {
        self.counter_add_name(Cow::Owned(name), n);
    }

    fn counter_add_name(&mut self, name: Name, n: u64) {
        if let Some(&i) = self.counter_idx.get(name.as_ref()) {
            self.counters[i].1 += n;
        } else {
            self.counter_idx.insert(name.clone(), self.counters.len());
            self.counters.push((name, n));
        }
    }

    /// The named counter's value, or `None` if never touched.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counter_idx.get(name).map(|&i| self.counters[i].1)
    }

    // ----- gauges ----------------------------------------------------------

    /// Set the named gauge.
    pub fn gauge_set(&mut self, name: &'static str, value: f64) {
        self.gauge_set_name(Cow::Borrowed(name), value, false);
    }

    /// [`MetricsRegistry::gauge_set`] with an owned (dynamic) name.
    pub fn gauge_set_owned(&mut self, name: String, value: f64) {
        self.gauge_set_name(Cow::Owned(name), value, false);
    }

    /// Raise the named gauge to at least `value` (high-water mark).
    pub fn gauge_max(&mut self, name: &'static str, value: f64) {
        self.gauge_set_name(Cow::Borrowed(name), value, true);
    }

    fn gauge_set_name(&mut self, name: Name, value: f64, max_only: bool) {
        if let Some(&i) = self.gauge_idx.get(name.as_ref()) {
            let slot = &mut self.gauges[i].1;
            if !max_only || value > *slot {
                *slot = value;
            }
        } else {
            self.gauge_idx.insert(name.clone(), self.gauges.len());
            self.gauges.push((name, value));
        }
    }

    /// The named gauge's value, or `None` if never touched.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauge_idx.get(name).map(|&i| self.gauges[i].1)
    }

    // ----- histograms ------------------------------------------------------

    /// Pre-register a histogram with explicit bucket bounds. A no-op if the
    /// histogram already exists (its original bounds win).
    pub fn histogram_with_buckets(&mut self, name: &'static str, bounds: &[f64]) {
        if !self.histogram_idx.contains_key(name) {
            let name: Name = Cow::Borrowed(name);
            self.histogram_idx
                .insert(name.clone(), self.histograms.len());
            self.histograms.push((name, Histogram::new(bounds)));
        }
    }

    /// Record `value` into the named histogram, creating it with
    /// [`DEFAULT_BUCKETS`] on first use.
    pub fn observe(&mut self, name: &'static str, value: f64) {
        if let Some(&i) = self.histogram_idx.get(name) {
            self.histograms[i].1.record(value);
        } else {
            let name: Name = Cow::Borrowed(name);
            self.histogram_idx
                .insert(name.clone(), self.histograms.len());
            let mut h = Histogram::new(DEFAULT_BUCKETS);
            h.record(value);
            self.histograms.push((name, h));
        }
    }

    /// The named histogram, or `None` if never touched.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histogram_idx.get(name).map(|&i| &self.histograms[i].1)
    }

    /// Insert (or replace) a fully built histogram under an owned name —
    /// the SweepStore decode path, which must reconstruct a registry that
    /// compares equal to the one the engine produced.
    pub fn histogram_insert_owned(&mut self, name: String, histogram: Histogram) {
        let name: Name = Cow::Owned(name);
        if let Some(&i) = self.histogram_idx.get(name.as_ref()) {
            self.histograms[i].1 = histogram;
        } else {
            self.histogram_idx
                .insert(name.clone(), self.histograms.len());
            self.histograms.push((name, histogram));
        }
    }

    // ----- iteration and export --------------------------------------------

    /// Counters in insertion order. Serializers that must reproduce a
    /// registry exactly (derived `PartialEq` includes insertion order) use
    /// this instead of [`MetricsRegistry::sorted`].
    pub fn counters_in_order(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters.iter().map(|(n, v)| (n.as_ref(), *v))
    }

    /// Gauges in insertion order (see [`MetricsRegistry::counters_in_order`]).
    pub fn gauges_in_order(&self) -> impl Iterator<Item = (&str, f64)> {
        self.gauges.iter().map(|(n, v)| (n.as_ref(), *v))
    }

    /// Histograms in insertion order (see
    /// [`MetricsRegistry::counters_in_order`]).
    pub fn histograms_in_order(&self) -> impl Iterator<Item = (&str, &Histogram)> {
        self.histograms.iter().map(|(n, h)| (n.as_ref(), h))
    }

    /// Every metric, sorted by name (the deterministic export order).
    pub fn sorted(&self) -> Vec<(&str, MetricValue<'_>)> {
        let mut out: Vec<(&str, MetricValue<'_>)> =
            Vec::with_capacity(self.counters.len() + self.gauges.len() + self.histograms.len());
        for (name, v) in &self.counters {
            out.push((name.as_ref(), MetricValue::Counter(*v)));
        }
        for (name, v) in &self.gauges {
            out.push((name.as_ref(), MetricValue::Gauge(*v)));
        }
        for (name, h) in &self.histograms {
            out.push((name.as_ref(), MetricValue::Histogram(h)));
        }
        out.sort_by(|a, b| a.0.cmp(b.0));
        out
    }

    /// True when nothing was ever recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }

    /// Newline-delimited JSON: one object per metric, sorted by name.
    /// Deterministic byte-for-byte for a deterministic run.
    pub fn to_ndjson(&self) -> String {
        let mut out = String::new();
        for (name, value) in self.sorted() {
            match value {
                MetricValue::Counter(v) => {
                    let _ = writeln!(out, r#"{{"type":"counter","name":"{name}","value":{v}}}"#);
                }
                MetricValue::Gauge(v) => {
                    let _ = writeln!(out, r#"{{"type":"gauge","name":"{name}","value":{v}}}"#);
                }
                MetricValue::Histogram(h) => {
                    let bounds: Vec<String> = h.bounds().iter().map(|b| b.to_string()).collect();
                    let counts: Vec<String> = h.counts().iter().map(|c| c.to_string()).collect();
                    let _ = writeln!(
                        out,
                        r#"{{"type":"histogram","name":"{name}","count":{},"sum":{},"bounds":[{}],"counts":[{}]}}"#,
                        h.count(),
                        h.sum(),
                        bounds.join(","),
                        counts.join(","),
                    );
                }
            }
        }
        out
    }

    /// A human-readable summary table (the `pwrperf stats` body).
    pub fn render_stats(&self) -> String {
        let mut out = String::new();
        let width = self
            .sorted()
            .iter()
            .map(|(name, _)| name.len())
            .max()
            .unwrap_or(0);
        for (name, value) in self.sorted() {
            match value {
                MetricValue::Counter(v) => {
                    let _ = writeln!(out, "{name:width$}  {v}");
                }
                MetricValue::Gauge(v) => {
                    let _ = writeln!(out, "{name:width$}  {v:.3}");
                }
                MetricValue::Histogram(h) => {
                    let _ = writeln!(
                        out,
                        "{name:width$}  n={} mean={:.1} buckets={:?}",
                        h.count(),
                        h.mean(),
                        h.counts(),
                    );
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let mut m = MetricsRegistry::new();
        m.counter_add("a", 1);
        m.counter_add("a", 2);
        m.counter_add_owned("b.600".to_string(), 7);
        assert_eq!(m.counter("a"), Some(3));
        assert_eq!(m.counter("b.600"), Some(7));
        assert_eq!(m.counter("missing"), None);
    }

    #[test]
    fn gauges_set_and_high_water() {
        let mut m = MetricsRegistry::new();
        m.gauge_set("g", 5.0);
        m.gauge_set("g", 3.0);
        assert_eq!(m.gauge("g"), Some(3.0));
        m.gauge_max("hwm", 5.0);
        m.gauge_max("hwm", 3.0);
        m.gauge_max("hwm", 9.0);
        assert_eq!(m.gauge("hwm"), Some(9.0));
    }

    #[test]
    fn histogram_buckets_and_overflow() {
        let mut h = Histogram::new(&[10.0, 100.0]);
        h.record(5.0);
        h.record(10.0); // inclusive upper bound
        h.record(50.0);
        h.record(1e9); // overflow
        assert_eq!(h.counts(), &[2, 1, 1]);
        assert_eq!(h.count(), 4);
        assert!((h.mean() - (5.0 + 10.0 + 50.0 + 1e9) / 4.0).abs() < 1e-6);
    }

    #[test]
    fn observe_creates_default_buckets() {
        let mut m = MetricsRegistry::new();
        m.observe("lat", 250.0);
        let h = m.histogram("lat").unwrap();
        assert_eq!(h.bounds(), DEFAULT_BUCKETS);
        assert_eq!(h.count(), 1);
    }

    #[test]
    fn explicit_buckets_win_over_default() {
        let mut m = MetricsRegistry::new();
        m.histogram_with_buckets("lat", &[1.0, 2.0]);
        m.observe("lat", 1.5);
        assert_eq!(m.histogram("lat").unwrap().bounds(), &[1.0, 2.0]);
    }

    #[test]
    fn ndjson_is_sorted_and_stable() {
        let mut m = MetricsRegistry::new();
        m.counter_add("z.last", 1);
        m.gauge_set("a.first", 2.5);
        m.observe("m.middle", 42.0);
        let a = m.to_ndjson();
        let b = m.to_ndjson();
        assert_eq!(a, b);
        let names: Vec<&str> = a
            .lines()
            .map(|l| {
                l.split("\"name\":\"")
                    .nth(1)
                    .unwrap()
                    .split('"')
                    .next()
                    .unwrap()
            })
            .collect();
        assert_eq!(names, vec!["a.first", "m.middle", "z.last"]);
        assert!(a.contains(r#""type":"histogram""#));
    }

    #[test]
    fn render_stats_mentions_every_metric() {
        let mut m = MetricsRegistry::new();
        m.counter_add("events", 12);
        m.gauge_set("depth", 3.0);
        m.observe("lat", 5.0);
        let s = m.render_stats();
        for needle in ["events", "depth", "lat", "12", "n=1"] {
            assert!(s.contains(needle), "missing {needle} in:\n{s}");
        }
    }

    #[test]
    #[should_panic(expected = "strictly ascending")]
    fn unsorted_buckets_panic() {
        let _ = Histogram::new(&[10.0, 5.0]);
    }

    #[test]
    fn from_parts_validates_shape() {
        assert!(Histogram::from_parts(vec![], vec![0], 0, 0.0).is_none());
        assert!(Histogram::from_parts(vec![1.0, 2.0], vec![0, 0], 0, 0.0).is_none());
        assert!(Histogram::from_parts(vec![2.0, 1.0], vec![0, 0, 0], 0, 0.0).is_none());
        let h = Histogram::from_parts(vec![1.0, 2.0], vec![1, 2, 3], 6, 9.0).unwrap();
        assert_eq!(h.count(), 6);
        assert_eq!(h.counts(), &[1, 2, 3]);
    }

    #[test]
    fn insertion_order_iteration_rebuilds_an_equal_registry() {
        let mut m = MetricsRegistry::new();
        m.counter_add("z.second", 2);
        m.counter_add("a.first", 1);
        m.gauge_set("g", 4.5);
        m.observe("lat", 12.0);

        let mut rebuilt = MetricsRegistry::new();
        for (name, v) in m.counters_in_order() {
            rebuilt.counter_add_owned(name.to_string(), v);
        }
        for (name, v) in m.gauges_in_order() {
            rebuilt.gauge_set_owned(name.to_string(), v);
        }
        for (name, h) in m.histograms_in_order() {
            let copy =
                Histogram::from_parts(h.bounds().to_vec(), h.counts().to_vec(), h.count(), h.sum())
                    .unwrap();
            rebuilt.histogram_insert_owned(name.to_string(), copy);
        }
        assert_eq!(m, rebuilt);
        // Insertion order is part of the contract: counters came back in
        // the original (unsorted) order.
        let names: Vec<&str> = rebuilt.counters_in_order().map(|(n, _)| n).collect();
        assert_eq!(names, vec!["z.second", "a.first"]);
    }
}
