//! Chrome/Perfetto `trace_event` JSON export.
//!
//! Builds the legacy JSON trace format understood by
//! <https://ui.perfetto.dev> and `chrome://tracing`: duration slices
//! (`ph: "B"/"E"`), instants (`"i"`), counter tracks (`"C"`), and metadata
//! records naming processes and threads.
//!
//! Timestamps in the format are microseconds. Simulated picoseconds are
//! rendered with pure integer math — `ps / PS_PER_US` whole microseconds,
//! `ps % PS_PER_US` as a six-digit fraction — so the emitted bytes are
//! exact and identical across hosts; no float formatting is involved.

use std::fmt::Write as _;

use sim_core::time::PS_PER_US;
use sim_core::trace::CLUSTER_NODE;
use sim_core::{SimTime, TraceDetail, TraceEvent, TraceKind};

/// Format a simulated instant as a Perfetto `ts` value (microseconds with
/// picosecond precision), deterministically.
fn ts(t: SimTime) -> String {
    format!("{}.{:06}", t.0 / PS_PER_US, t.0 % PS_PER_US)
}

/// Minimal JSON string escaping (quotes, backslashes, control chars).
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// An incremental `trace_event` JSON builder.
///
/// Records are emitted in call order; callers are expected to feed events
/// chronologically (the simulator's [`sim_core::Trace`] already is).
#[derive(Debug, Default)]
pub struct PerfettoTrace {
    records: Vec<String>,
}

impl PerfettoTrace {
    pub fn new() -> Self {
        Self::default()
    }

    /// Name a process (a top-level group in the UI).
    pub fn process_name(&mut self, pid: u64, name: &str) {
        self.records.push(format!(
            r#"{{"ph":"M","pid":{pid},"name":"process_name","args":{{"name":"{}"}}}}"#,
            escape(name)
        ));
    }

    /// Name a thread (one timeline track within a process).
    pub fn thread_name(&mut self, pid: u64, tid: u64, name: &str) {
        self.records.push(format!(
            r#"{{"ph":"M","pid":{pid},"tid":{tid},"name":"thread_name","args":{{"name":"{}"}}}}"#,
            escape(name)
        ));
    }

    /// Open a duration slice on (pid, tid).
    pub fn begin_slice(&mut self, pid: u64, tid: u64, name: &str, t: SimTime) {
        self.records.push(format!(
            r#"{{"ph":"B","pid":{pid},"tid":{tid},"ts":{},"name":"{}"}}"#,
            ts(t),
            escape(name)
        ));
    }

    /// Close the most recent open slice on (pid, tid).
    pub fn end_slice(&mut self, pid: u64, tid: u64, t: SimTime) {
        self.records.push(format!(
            r#"{{"ph":"E","pid":{pid},"tid":{tid},"ts":{}}}"#,
            ts(t)
        ));
    }

    /// A zero-duration instant marker on (pid, tid).
    pub fn instant(&mut self, pid: u64, tid: u64, name: &str, t: SimTime) {
        self.records.push(format!(
            r#"{{"ph":"i","pid":{pid},"tid":{tid},"ts":{},"s":"t","name":"{}"}}"#,
            ts(t),
            escape(name)
        ));
    }

    /// Open a flow (`ph: "s"`): the tail of an arrow the UI draws from
    /// (pid, tid, t) to the matching [`PerfettoTrace::flow_end`] with the
    /// same `id` and `cat`.
    pub fn flow_start(&mut self, pid: u64, tid: u64, cat: &str, name: &str, id: u64, t: SimTime) {
        self.records.push(format!(
            r#"{{"ph":"s","pid":{pid},"tid":{tid},"ts":{},"cat":"{}","name":"{}","id":{id}}}"#,
            ts(t),
            escape(cat),
            escape(name)
        ));
    }

    /// Close a flow (`ph: "f"`, binding to the enclosing slice's end): the
    /// head of the arrow opened by the matching [`PerfettoTrace::flow_start`].
    pub fn flow_end(&mut self, pid: u64, tid: u64, cat: &str, name: &str, id: u64, t: SimTime) {
        self.records.push(format!(
            r#"{{"ph":"f","bp":"e","pid":{pid},"tid":{tid},"ts":{},"cat":"{}","name":"{}","id":{id}}}"#,
            ts(t),
            escape(cat),
            escape(name)
        ));
    }

    /// A counter-track sample. Counter tracks are keyed by (pid, name); the
    /// UI draws one stepped line per track.
    pub fn counter(&mut self, pid: u64, name: &str, t: SimTime, value: f64) {
        self.records.push(format!(
            r#"{{"ph":"C","pid":{pid},"ts":{},"name":"{}","args":{{"value":{value}}}}}"#,
            ts(t),
            escape(name)
        ));
    }

    /// Number of records emitted so far.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when nothing was emitted.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Assemble the final JSON document.
    pub fn finish(self) -> String {
        let mut out = String::from("{\"traceEvents\":[\n");
        for (i, rec) in self.records.iter().enumerate() {
            out.push_str(rec);
            if i + 1 < self.records.len() {
                out.push(',');
            }
            out.push('\n');
        }
        out.push_str("]}\n");
        out
    }

    /// Convert a simulation trace into a timeline: one thread track per
    /// node carrying phase slices and message instants, one `MHz` counter
    /// track per node fed by frequency-change events, and a `cluster`
    /// track for node-agnostic events.
    pub fn from_trace(events: &[TraceEvent], nodes: usize) -> Self {
        let mut p = PerfettoTrace::new();
        p.process_name(0, "pwrperf cluster");
        for n in 0..nodes {
            p.thread_name(0, n as u64, &format!("node {n}"));
        }
        p.thread_name(0, nodes as u64, "cluster");

        for ev in events {
            let tid = if ev.node == CLUSTER_NODE {
                nodes as u64
            } else {
                ev.node as u64
            };
            match ev.kind {
                TraceKind::PhaseBegin => {
                    let name = ev.detail.phase().unwrap_or("phase");
                    p.begin_slice(0, tid, name, ev.time);
                }
                TraceKind::PhaseEnd => {
                    p.end_slice(0, tid, ev.time);
                }
                TraceKind::MsgStart => {
                    p.instant(0, tid, &format!("send {}", ev.detail), ev.time);
                }
                TraceKind::MsgEnd => {
                    p.instant(0, tid, &format!("recv {}", ev.detail), ev.time);
                }
                TraceKind::FreqChange => {
                    if let TraceDetail::Freq { to_mhz, .. } = ev.detail {
                        p.counter(0, &format!("node {} MHz", ev.node), ev.time, to_mhz as f64);
                    }
                    p.instant(0, tid, &format!("freq {}", ev.detail), ev.time);
                }
                TraceKind::Sample => {
                    // Samples are exported through the richer SampleRow
                    // path by callers; a raw trace renders them as marks.
                    p.instant(0, tid, "sample", ev.time);
                }
                TraceKind::Control | TraceKind::Other => {
                    p.instant(0, tid, &ev.detail.to_string(), ev.time);
                }
            }
        }
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timestamps_are_integer_formatted_microseconds() {
        assert_eq!(ts(SimTime(0)), "0.000000");
        assert_eq!(ts(SimTime(1)), "0.000001");
        assert_eq!(ts(SimTime(1_500_000)), "1.500000");
        assert_eq!(ts(SimTime(12_000_000_000_007)), "12000000.000007");
    }

    #[test]
    fn escape_handles_specials() {
        assert_eq!(escape(r#"a"b\c"#), r#"a\"b\\c"#);
        assert_eq!(escape("x\ny"), "x\\u000ay");
    }

    #[test]
    fn finish_produces_wellformed_document() {
        let mut p = PerfettoTrace::new();
        p.process_name(0, "test");
        p.begin_slice(0, 0, "work", SimTime(0));
        p.end_slice(0, 0, SimTime(1_000_000));
        p.counter(0, "mhz", SimTime(0), 1400.0);
        let json = p.finish();
        assert!(json.starts_with("{\"traceEvents\":[\n"));
        assert!(json.ends_with("]}\n"));
        // Commas between records, none after the last.
        assert_eq!(json.matches("},\n").count(), 3);
        assert!(json.contains(r#""ph":"B""#));
        assert!(json.contains(r#""ph":"C""#));
        assert!(json.contains(r#""args":{"value":1400}"#));
    }

    #[test]
    fn from_trace_maps_kinds_to_records() {
        use sim_core::TraceKind::*;
        let events = vec![
            TraceEvent {
                time: SimTime(0),
                node: 0,
                kind: PhaseBegin,
                detail: TraceDetail::Phase("fft"),
            },
            TraceEvent {
                time: SimTime(10),
                node: 0,
                kind: MsgStart,
                detail: TraceDetail::MsgTo { dst: 1, bytes: 64 },
            },
            TraceEvent {
                time: SimTime(20),
                node: 1,
                kind: FreqChange,
                detail: TraceDetail::Freq {
                    from_mhz: 1400,
                    to_mhz: 600,
                },
            },
            TraceEvent {
                time: SimTime(30),
                node: 0,
                kind: PhaseEnd,
                detail: TraceDetail::Phase("fft"),
            },
        ];
        let json = PerfettoTrace::from_trace(&events, 2).finish();
        assert!(json.contains(r#""name":"node 0""#));
        assert!(json.contains(r#""name":"node 1""#));
        assert!(json.contains(r#""name":"cluster""#));
        assert!(json.contains(r#""name":"fft""#));
        assert!(json.contains(r#""name":"send ->1 64B""#));
        assert!(json.contains(r#""name":"node 1 MHz""#));
        assert!(json.contains(r#""args":{"value":600}"#));
        assert!(json.contains(r#""ph":"E""#));
    }

    #[test]
    fn flow_records_pair_by_id_and_cat() {
        let mut p = PerfettoTrace::new();
        p.flow_start(0, 0, "msg", "0->1 64B", 7, SimTime(10));
        p.flow_end(0, 1, "msg", "0->1 64B", 7, SimTime(30));
        let json = p.finish();
        assert!(json.contains(r#""ph":"s""#));
        assert!(json.contains(r#""ph":"f","bp":"e""#));
        assert_eq!(json.matches(r#""id":7"#).count(), 2);
        assert_eq!(json.matches(r#""cat":"msg""#).count(), 2);
    }

    #[test]
    fn export_is_deterministic() {
        let events = vec![TraceEvent {
            time: SimTime(123_456),
            node: 0,
            kind: TraceKind::PhaseBegin,
            detail: TraceDetail::Phase("init"),
        }];
        let a = PerfettoTrace::from_trace(&events, 1).finish();
        let b = PerfettoTrace::from_trace(&events, 1).finish();
        assert_eq!(a, b);
    }
}
