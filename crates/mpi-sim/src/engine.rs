//! The discrete-event simulation engine.
//!
//! One [`Engine`] couples:
//!
//! * per-rank [`Program`]s (one rank per node, as in the paper's runs),
//! * the [`FluidNetwork`] carrying message payloads,
//! * per-node [`cluster_sim::Node`] power meters and `/proc/stat`,
//! * one DVFS [`ClusterController`] — per-node [`Governor`]s (static /
//!   cpuspeed / dynamic / ondemand) wrapped by [`PerNodeGovernors`], or a
//!   cluster-level strategy such as [`dvfs::PowerCapController`] observing
//!   wait boundaries and power samples across all nodes,
//! * optional periodic power sampling (the PowerPack measurement tap).
//!
//! ## Message semantics
//!
//! Point-to-point follows MPICH-1.2.5 over TCP:
//!
//! * **eager** (payload ≤ eager threshold): the flow enters the network as
//!   soon as the sender posts; the receiver matches whenever it arrives;
//! * **rendezvous** (larger): the flow starts only once both sides posted;
//! * the *sender* completes when its payload has drained into the network;
//!   the *receiver* completes one wire latency after the drain;
//! * blocked ranks busy-poll (`BusyWait` activity — counted busy by
//!   `/proc/stat`), optionally blocking into `Halt` after a configured
//!   window ([`WaitPolicy::PollThenBlock`]).
//!
//! ## DVFS semantics
//!
//! A frequency change stalls the CPU for the ladder's transition latency
//! (~10 µs on the Pentium M) and charges the transition energy impulse.
//! A change landing mid-compute pauses the active phase, banks its
//! progress in *cycles*, and re-times the remainder at the new frequency.
//! Memory-stall phases and network flows are frequency-invariant and
//! proceed through transitions untouched.

use std::collections::VecDeque;

use cluster_sim::{Cluster, Node};
use dvfs::{ClusterController, Decision, Governor, PerNodeGovernors};
use mem_model::WorkUnit;
use net_model::{FlowId, FluidNetwork};
use obs::{obs_count, obs_observe, MetricsRegistry};
use power_model::{CpuActivity, OpIndex};
use sim_core::time::PS_PER_US;
use sim_core::{
    duration_to_cycles, CausalLog, DvfsRecord, EventQueue, FaultCounts, FxHashMap, FxHashSet,
    MsgRecord, SimDuration, SimTime, Trace, TraceDetail, TraceKind, WaitCause, WaitRecord,
};

use crate::config::{EngineConfig, WaitPolicy};
use crate::faults::FaultRuntime;
use crate::program::{Op, Program, Rank, Tag};
use crate::result::{RankBreakdown, RunResult, SampleRow};

type MsgId = usize;
type MsgKey = (Rank, Rank, Tag);

/// Upper bound on the pending-send/-recv map pre-allocation. The `n*n`
/// sizing heuristic is right for paper-scale clusters but would commit
/// hundreds of megabytes of empty buckets at 4096 ranks; past this many
/// buckets the maps grow on demand instead.
const PENDING_MAP_CAPACITY_CAP: usize = 1 << 16;

#[derive(Debug)]
enum Event {
    /// Continue a rank stalled by boot or a DVFS request.
    Resume(Rank),
    /// A compute phase (active or stall) finished.
    PhaseDone(Rank),
    /// A message fully arrived at its receiver (drain + wire latency).
    Delivered(MsgId),
    /// The network's earliest flow completion is due.
    NetworkWake,
    /// A DVFS transition completes; the new point takes effect.
    TransitionDone(usize, OpIndex),
    /// A governor's periodic decision point.
    GovernorTick(usize),
    /// A polling wait exceeded its window and blocks into idle.
    WaitBlock(Rank),
    /// Periodic measurement sample.
    Sample,
}

/// What a waiting rank's receive side is waiting for.
#[derive(Debug, Clone, Copy, PartialEq)]
enum RecvWait {
    /// Matched to a concrete in-flight message.
    Matched(MsgId),
    /// Posted, but no send has arrived yet for this key.
    Unmatched(MsgKey),
}

#[derive(Debug)]
enum RState {
    /// Stalled awaiting a `Resume` (boot or DVFS stall).
    Stalled,
    /// Executing the frequency-scaled part of a compute segment.
    ComputeActive {
        cycles_total: f64,
        started: SimTime,
        event: u64,
        /// Blended dynamic-power factor for this segment.
        power_factor: f64,
        then_stall: SimDuration,
    },
    /// Active compute paused by an in-flight DVFS transition.
    PausedCompute {
        remaining_cycles: f64,
        power_factor: f64,
        then_stall: SimDuration,
    },
    /// In the frequency-invariant DRAM-stall part of a compute segment.
    ComputeStall,
    /// Blocked on message completion(s).
    Waiting {
        need_send: Option<MsgId>,
        need_recv: Option<RecvWait>,
        block_event: Option<u64>,
    },
    /// Blocked in MPI_Waitall until every outstanding non-blocking
    /// operation completes.
    WaitingAll { block_event: Option<u64> },
    /// Program finished.
    Done,
}

/// Time-accounting bucket a rank is currently charged to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Bucket {
    None,
    Compute,
    MemStall,
    WaitBusy,
    WaitBlocked,
    Transition,
}

#[derive(Debug)]
struct RankRuntime {
    pc: usize,
    state: RState,
    bucket: Bucket,
    bucket_since: SimTime,
    breakdown: RankBreakdown,
    finish_time: Option<SimTime>,
    /// Isends posted but not yet drained into the network.
    outstanding_sends: FxHashSet<MsgId>,
    /// Irecvs matched to a message but not yet delivered.
    outstanding_recvs_matched: FxHashSet<MsgId>,
    /// Irecvs posted with no matching send yet, counted per key.
    outstanding_recvs_unmatched: FxHashMap<MsgKey, usize>,
}

#[derive(Debug)]
struct Msg {
    src: Rank,
    dst: Rank,
    bytes: u64,
    flow_started: bool,
    recv_posted: bool,
    drained_at: Option<SimTime>,
    /// When the send was posted — start of the message's observable life,
    /// used for the delivery-latency histograms.
    posted_at: SimTime,
    /// Whether the tag marks collective-internal traffic
    /// ([`crate::ProgramBuilder`] lowers collectives onto a reserved tag
    /// range), splitting the latency histograms by origin.
    collective: bool,
}

/// Live causal-recording state: the log under construction plus each
/// rank's currently open blocking wait (entry time and the node's
/// cumulative joules at entry). A wait record is emitted when the wait is
/// released, carrying the releasing message completion as its cause.
#[derive(Debug)]
struct CausalRecorder {
    log: CausalLog,
    open: Vec<Option<(SimTime, f64)>>,
}

/// The frequency-dependent float plan for one `Op::Compute`: exactly the
/// values `execute_next` derives before starting the phase. Produced by
/// [`plan_compute`] — one pure function shared by the inline path and the
/// shard planner, so a cached plan is bit-identical to an inline one.
#[derive(Debug, Clone, Copy)]
struct ComputePlan {
    /// Frequency-scaled cycles, before any straggler-fault stretching
    /// (faults mutate run state, so they apply at the sequential step).
    cycles: f64,
    /// Blended dynamic-power factor for the active portion.
    power_factor: f64,
    /// Frequency-invariant DRAM-stall tail.
    stall: SimDuration,
}

/// Derive the compute-phase floats for `w` on `node`. Pure: reads only
/// the node's frequency and static configuration, which is what lets the
/// shard planner evaluate it for many ranks concurrently.
fn plan_compute(w: &WorkUnit, node: &Node) -> ComputePlan {
    let hier = &node.config().mem;
    let split = w.split(hier, node.freq_hz());
    let cycles = w.scaled_cycles(hier);
    let power_factor = node
        .config()
        .power
        .cpu
        .activity
        .compute_blend(w.cpu_cycles, w.l2_accesses * hier.l2_latency_cycles);
    ComputePlan {
        cycles,
        power_factor,
        stall: split.stall,
    }
}

/// Sanitizer checkpoint tags: which instant produced a digest. Folded
/// into the hash so a stream that drops one checkpoint and gains another
/// cannot collide back to equality.
#[cfg(feature = "simsan")]
const SAN_TAG_PHASE_BEGIN: u8 = 1;
#[cfg(feature = "simsan")]
const SAN_TAG_PHASE_END: u8 = 2;
#[cfg(feature = "simsan")]
const SAN_TAG_SAMPLE: u8 = 3;
#[cfg(feature = "simsan")]
const SAN_TAG_FINAL: u8 = 4;

/// FNV-1a accumulator for sanitizer checkpoints. Not a quality hash —
/// it is a cheap, dependency-free, platform-stable fold; the sanitizer
/// compares full streams, so a single colliding checkpoint would also
/// need every subsequent checkpoint to collide to mask a divergence.
#[cfg(feature = "simsan")]
struct SanHasher(u64);

#[cfg(feature = "simsan")]
impl SanHasher {
    fn new() -> Self {
        SanHasher(0xcbf2_9ce4_8422_2325)
    }

    fn write_u64(&mut self, v: u64) {
        for b in v.to_le_bytes() {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x100_0000_01b3);
        }
    }

    fn finish(&self) -> u64 {
        self.0
    }
}

/// The simulator. Construct with [`Engine::new`], run with [`Engine::run`].
pub struct Engine {
    config: EngineConfig,
    cluster: Cluster,
    network: FluidNetwork,
    programs: Vec<Program>,
    /// The run's strategy, driven through the [`ClusterController`]
    /// callbacks. Classic per-node governors arrive wrapped in
    /// [`PerNodeGovernors`]; cluster-level strategies (power caps) see
    /// cross-node state through the runtime hooks.
    controller: Box<dyn ClusterController>,
    /// Cached [`ClusterController::wants_runtime_events`] so per-node
    /// controllers pay one bool test per hook site, nothing more.
    controller_events: bool,
    /// Reused buffer for controller decisions (drained every hook).
    decision_buf: Vec<Decision>,
    queue: EventQueue<Event>,
    now: SimTime,
    ranks: Vec<RankRuntime>,
    msgs: Vec<Msg>,
    pending_sends: FxHashMap<MsgKey, VecDeque<MsgId>>,
    pending_recvs: FxHashMap<MsgKey, VecDeque<()>>,
    /// Message owning each network flow slot. Flow ids are small densely
    /// reused slot indices, so a flat vector beats a hash map here.
    flow_to_msg: Vec<Option<MsgId>>,
    net_event: Option<u64>,
    finished: usize,
    samples: Vec<SampleRow>,
    trace: Trace,
    /// PowerScope metrics, boxed to keep the engine small when disabled.
    /// `None` unless [`EngineConfig::metrics`] is set; every update goes
    /// through the `obs_*` macros, which compile out entirely when the
    /// `obs/enabled` feature is off.
    metrics: Option<Box<MetricsRegistry>>,
    /// Causal dependency recorder, boxed like `metrics`. `None` unless
    /// [`EngineConfig::causal`] is set, so a disabled run pays only a
    /// pointer-sized field and `is_some` checks off the hot path. All
    /// recording happens in the sequential dispatch path, which is what
    /// makes the log bit-identical at every shard count.
    causal: Option<Box<CausalRecorder>>,
    /// Fault-injection runtime, boxed for the same reason as `metrics`.
    /// `None` unless [`EngineConfig::faults`] armed at least one fault,
    /// which is what guarantees empty specs are bit-identical to today.
    faults: Option<Box<FaultRuntime>>,
    /// Injected-fault and degraded-measurement tallies for the run.
    fault_counts: FaultCounts,
    /// Last good battery reading per node — the degraded-mode fallback
    /// when a poll errors or a stuck register repeats itself.
    last_battery: Vec<Option<u64>>,
    /// Reused between network wakes to collect completed flows without
    /// allocating on every event.
    completed_buf: Vec<(FlowId, usize, usize)>,
    /// Per-rank compute plan precomputed by the shard planner, keyed by
    /// the program counter it was planned for. `execute_next` consumes a
    /// matching entry instead of re-deriving the floats; a mismatch (or
    /// an empty slot — always the case at `shards <= 1`) falls back to
    /// the identical inline computation.
    plan_cache: Vec<Option<(usize, ComputePlan)>>,
    /// Determinism-sanitizer hash stream (`simsan` builds only): one
    /// digest of observable engine state per checkpoint — phase
    /// boundaries, sample instants, and the pre-finalize instant. The
    /// stream must be bit-identical at every shard count; see
    /// [`Engine::run_sanitized`].
    #[cfg(feature = "simsan")]
    san_hashes: Vec<u64>,
}

impl Engine {
    /// Assemble a simulation: one program and one governor per node. The
    /// governors run under a [`PerNodeGovernors`] controller — the same
    /// dispatch path every strategy uses.
    pub fn new(
        cluster: Cluster,
        programs: Vec<Program>,
        governors: Vec<Box<dyn Governor>>,
        config: EngineConfig,
    ) -> Self {
        assert_eq!(governors.len(), cluster.len(), "one governor per node");
        Self::with_controller(
            cluster,
            programs,
            Box::new(PerNodeGovernors::new(governors)),
            config,
        )
    }

    /// Assemble a simulation driven by a [`ClusterController`].
    pub fn with_controller(
        cluster: Cluster,
        programs: Vec<Program>,
        controller: Box<dyn ClusterController>,
        config: EngineConfig,
    ) -> Self {
        assert_eq!(
            programs.len(),
            cluster.len(),
            "one program per node (rank i runs on node i)"
        );
        let n = cluster.len();
        let mut network =
            FluidNetwork::with_topology(cluster.network().clone(), n, &config.topology);
        let mut fault_counts = FaultCounts::default();
        let faults = FaultRuntime::build(&config.faults, n, &mut network, &mut fault_counts);
        // Nearly every message-bearing op posts one message; sizing the
        // arena to the total op count keeps hot-loop pushes reallocation-free.
        let total_ops: usize = programs.iter().map(|p| p.len()).sum();
        let trace = if config.trace_capacity > 0 {
            Trace::new(config.trace_capacity)
        } else {
            Trace::disabled()
        };
        let config_metrics = config.metrics;
        let config_causal = config.causal;
        let controller_events = controller.wants_runtime_events();
        Engine {
            config,
            network,
            programs,
            controller,
            controller_events,
            decision_buf: Vec::new(),
            // A rank contributes at most a handful of concurrently pending
            // events; pre-size the queue so steady state never reallocates.
            queue: EventQueue::with_capacity(16 * n + 16),
            now: SimTime::ZERO,
            ranks: (0..n)
                .map(|_| RankRuntime {
                    pc: 0,
                    state: RState::Stalled,
                    bucket: Bucket::None,
                    bucket_since: SimTime::ZERO,
                    breakdown: RankBreakdown::default(),
                    finish_time: None,
                    outstanding_sends: FxHashSet::with_capacity_and_hasher(16, Default::default()),
                    outstanding_recvs_matched: FxHashSet::with_capacity_and_hasher(
                        16,
                        Default::default(),
                    ),
                    outstanding_recvs_unmatched: FxHashMap::with_capacity_and_hasher(
                        16,
                        Default::default(),
                    ),
                })
                .collect(),
            msgs: Vec::with_capacity(total_ops),
            // Message keys are (src, dst, tag); n ranks keep at most a few
            // live tags per pair, so n*n buckets absorb the steady state.
            // Capped: at thousands of ranks n*n would pre-commit hundreds
            // of MB per map for buckets mostly never touched.
            pending_sends: FxHashMap::with_capacity_and_hasher(
                (n * n).min(PENDING_MAP_CAPACITY_CAP),
                Default::default(),
            ),
            pending_recvs: FxHashMap::with_capacity_and_hasher(
                (n * n).min(PENDING_MAP_CAPACITY_CAP),
                Default::default(),
            ),
            flow_to_msg: Vec::new(),
            net_event: None,
            finished: 0,
            samples: Vec::new(),
            cluster,
            trace,
            metrics: if config_metrics {
                Some(Box::new(MetricsRegistry::new()))
            } else {
                None
            },
            causal: if config_causal {
                Some(Box::new(CausalRecorder {
                    log: CausalLog::new(n),
                    open: vec![None; n],
                }))
            } else {
                None
            },
            faults,
            fault_counts,
            last_battery: vec![None; n],
            completed_buf: Vec::new(),
            plan_cache: vec![None; n],
            #[cfg(feature = "simsan")]
            san_hashes: Vec::new(),
        }
    }

    /// Run to completion and report.
    pub fn run(mut self) -> RunResult {
        self.drive();
        self.finalize()
    }

    /// Run to completion under the determinism sanitizer: alongside the
    /// normal [`RunResult`], return the checkpoint hash stream — one
    /// digest of observable engine state (clock, queue counters, rank
    /// clocks, metered energy, battery registers, controller digest) per
    /// phase boundary, sample instant, and the pre-finalize instant.
    ///
    /// The hard guarantee backing sharded planning and snapshot/replay:
    /// the stream is bit-identical at every shard count, not just the
    /// final result — a shard-order divergence that later cancels out
    /// still trips the sanitizer at the first checkpoint it perturbs.
    #[cfg(feature = "simsan")]
    pub fn run_sanitized(mut self) -> (RunResult, Vec<u64>) {
        self.drive();
        self.san_checkpoint(SAN_TAG_FINAL);
        let hashes = std::mem::take(&mut self.san_hashes);
        (self.finalize(), hashes)
    }

    /// Boot the controller and pump the event loop until every rank
    /// retires (the shared body of [`Engine::run`] and
    /// [`Engine::run_sanitized`]).
    fn drive(&mut self) {
        let n = self.cluster.len();
        // Boot: the controller picks initial points instantly
        // (pre-measurement).
        for i in 0..n {
            if let Some(target) = self.controller.initial(i, self.cluster.nodes()) {
                self.cluster
                    .node_mut(i)
                    .force_operating_point(SimTime::ZERO, target);
            }
            if let Some(interval) = self.controller.poll_interval(i) {
                self.queue
                    .push(SimTime::ZERO + interval, Event::GovernorTick(i));
            }
        }
        if let Some(interval) = self.config.sample_interval {
            self.queue.push(SimTime::ZERO + interval, Event::Sample);
        }
        for r in 0..n {
            self.queue.push(SimTime::ZERO, Event::Resume(r));
        }

        let shards = self.config.shards.max(1);
        while let Some(ev) = self.queue.pop() {
            // Always-on (not debug_assert): a time regression here would
            // silently corrupt every downstream energy integral in release
            // builds. The batch layer (`run_batch_checked`) converts the
            // panic into a per-slot error.
            assert!(ev.time >= self.now, "event time went backwards");
            self.now = ev.time;
            if shards > 1 {
                self.plan_ahead(&ev.event, ev.time, shards);
            }
            self.dispatch(ev.event);
            if self.finished == n {
                break;
            }
        }
        assert_eq!(
            self.finished, n,
            "deadlock: events exhausted with ranks pending"
        );
    }

    fn dispatch(&mut self, ev: Event) {
        if self.metrics.is_some() {
            self.count_dispatch(&ev);
        }
        match ev {
            Event::Resume(r) => {
                if matches!(self.ranks[r].state, RState::Stalled) {
                    self.execute_next(r);
                }
            }
            Event::PhaseDone(r) => self.on_phase_done(r),
            Event::Delivered(m) => self.on_delivered(m),
            Event::NetworkWake => self.on_network_wake(),
            Event::TransitionDone(node, target) => self.on_transition_done(node, target),
            Event::GovernorTick(node) => self.on_governor_tick(node),
            Event::WaitBlock(r) => self.on_wait_block(r),
            Event::Sample => self.on_sample(),
        }
    }

    // ----- shard planner ---------------------------------------------------

    /// Is `ev` a rank-local event whose very next step is a compute
    /// phase? Those are the events whose float derivation the shard
    /// planner may run ahead of time: the rank's state and pc cannot be
    /// perturbed by other ranks' Resume/PhaseDone handlers (cross-rank
    /// resumption only happens from network events), so a plan taken now
    /// is still exact when the event dispatches.
    fn plan_target(&self, ev: &Event) -> Option<(Rank, usize)> {
        let r = match *ev {
            Event::Resume(r) if matches!(self.ranks[r].state, RState::Stalled) => r,
            Event::PhaseDone(r) if matches!(self.ranks[r].state, RState::ComputeStall) => r,
            _ => return None,
        };
        let pc = self.ranks[r].pc;
        match self.programs[r].ops().get(pc) {
            Some(Op::Compute(_)) => Some((r, pc)),
            _ => None,
        }
    }

    /// Sharded intra-run planning. When the just-popped event heads a
    /// run of same-timestamp compute-bound rank events (a compute
    /// epoch), peek the whole run off the queue, evaluate every rank's
    /// [`ComputePlan`] on `shards` worker threads, and hand the events
    /// back via [`EventQueue::unpop`], which restores the queue — order,
    /// slot slab, and lifetime counters — exactly. The main loop then
    /// dispatches the run sequentially in `(time, seq)` order, consuming
    /// the plans. The merge invariant is therefore trivial: the merge
    /// *is* the sequential order, and [`plan_compute`] is the same pure
    /// function the inline path uses, so the run result is bit-identical
    /// at every shard count.
    fn plan_ahead(&mut self, head: &Event, now: SimTime, shards: usize) {
        let Some(first) = self.plan_target(head) else {
            return;
        };
        let mut targets = vec![first];
        let mut peeked: Vec<sim_core::QueuedEvent<Event>> = Vec::new();
        while self.queue.peek_time() == Some(now) {
            let Some(ev) = self.queue.pop() else { break };
            let target = self.plan_target(&ev.event);
            peeked.push(ev);
            match target {
                Some(t) => targets.push(t),
                None => break, // end of the compute epoch
            }
        }
        // Reverse pop order restores the queue's slot slab exactly.
        while let Some(ev) = peeked.pop() {
            self.queue.unpop(ev);
        }
        if targets.len() < 2 {
            return; // nothing to fan out; the inline path is identical
        }
        let mut plans: Vec<Option<ComputePlan>> = vec![None; targets.len()];
        {
            let programs = &self.programs;
            let cluster = &self.cluster;
            let chunk = targets.len().div_ceil(shards);
            std::thread::scope(|scope| {
                for (t_chunk, p_chunk) in targets.chunks(chunk).zip(plans.chunks_mut(chunk)) {
                    scope.spawn(move || {
                        for (&(r, pc), out) in t_chunk.iter().zip(p_chunk.iter_mut()) {
                            if let Some(Op::Compute(w)) = programs[r].ops().get(pc) {
                                *out = Some(plan_compute(w, cluster.node(r)));
                            }
                        }
                    });
                }
            });
        }
        for (&(r, pc), plan) in targets.iter().zip(plans) {
            if let Some(p) = plan {
                self.plan_cache[r] = Some((pc, p));
            }
        }
    }

    /// Metrics-path event accounting, kept out of line so the default
    /// (metrics-off) `dispatch` body stays small enough to inline.
    #[cold]
    #[inline(never)]
    fn count_dispatch(&mut self, ev: &Event) {
        let name = match ev {
            Event::Resume(_) => "engine.events.resume",
            Event::PhaseDone(_) => "engine.events.phase_done",
            Event::Delivered(_) => "engine.events.delivered",
            Event::NetworkWake => "engine.events.network_wake",
            Event::TransitionDone(..) => "engine.events.transition_done",
            Event::GovernorTick(_) => "engine.events.governor_tick",
            Event::WaitBlock(_) => "engine.events.wait_block",
            Event::Sample => "engine.events.sample",
        };
        obs_count!(self.metrics, name, 1);
        obs_count!(self.metrics, "engine.events.dispatched", 1);
    }

    // ----- time accounting -------------------------------------------------

    fn switch_bucket(&mut self, r: Rank, bucket: Bucket) {
        let rt = &mut self.ranks[r];
        let dt = self.now.since(rt.bucket_since);
        match rt.bucket {
            Bucket::None => {}
            Bucket::Compute => rt.breakdown.compute += dt,
            Bucket::MemStall => rt.breakdown.mem_stall += dt,
            Bucket::WaitBusy => rt.breakdown.wait_busy += dt,
            Bucket::WaitBlocked => rt.breakdown.wait_blocked += dt,
            Bucket::Transition => rt.breakdown.transition += dt,
        }
        rt.bucket = bucket;
        rt.bucket_since = self.now;
    }

    // ----- causal recording ------------------------------------------------

    /// Mark `r` as entering a blocking wait now, with its energy meter
    /// read, so the eventual release can emit a complete wait record.
    fn causal_open_wait(&mut self, r: Rank) {
        if self.causal.is_none() {
            return;
        }
        let energy_j = self.cluster.node(r).energy(self.now).total_j();
        if let Some(c) = self.causal.as_deref_mut() {
            c.open[r] = Some((self.now, energy_j));
        }
    }

    /// Emit the wait record for `r`'s open wait, released now by `cause`.
    fn causal_close_wait(&mut self, r: Rank, cause: WaitCause) {
        if self.causal.is_none() {
            return;
        }
        let energy_end_j = self.cluster.node(r).energy(self.now).total_j();
        let end = self.now;
        if let Some(c) = self.causal.as_deref_mut() {
            if let Some((start, energy_start_j)) = c.open[r].take() {
                c.log.waits.push(WaitRecord {
                    rank: r,
                    start,
                    end,
                    cause,
                    energy_start_j,
                    energy_end_j,
                });
            }
        }
    }

    // ----- program execution -----------------------------------------------

    /// Execute ops for `r` until one blocks or the program ends.
    fn execute_next(&mut self, r: Rank) {
        loop {
            let pc = self.ranks[r].pc;
            if pc >= self.programs[r].len() {
                self.finish_rank(r);
                return;
            }
            self.ranks[r].pc += 1;
            // Ops are cheap to clone (WorkUnit is Copy-sized; strings are 'static).
            let op = self.programs[r].ops()[pc].clone();
            match op {
                Op::Compute(w) => {
                    // A plan precomputed by the shard planner for exactly
                    // this pc is used as-is; otherwise derive it inline.
                    // Both are the same pure function, so the floats are
                    // bit-identical whether or not a plan was cached.
                    let plan = match self.plan_cache[r].take() {
                        Some((plan_pc, p)) if plan_pc == pc => p,
                        _ => plan_compute(&w, self.cluster.node(r)),
                    };
                    let mut cycles = plan.cycles;
                    if let Some(f) = self.faults.as_deref() {
                        // Straggler fault: stretch the cycle cost, not the
                        // wall time, so transition pause/resume banking
                        // stays consistent.
                        cycles = f.scale_compute(r, cycles, &mut self.fault_counts);
                    }
                    self.begin_active_phase(r, cycles, plan.power_factor, plan.stall);
                    return;
                }
                Op::Send { dst, bytes, tag } => {
                    let id = self.post_send(r, dst, bytes, tag);
                    self.enter_wait(r, Some(id), None);
                    return;
                }
                Op::Recv { src, tag } => match self.post_recv(r, src, tag) {
                    None => {} // already delivered: keep executing
                    Some(wait) => {
                        self.enter_wait(r, None, Some(wait));
                        return;
                    }
                },
                Op::SendRecv {
                    dst,
                    send_bytes,
                    send_tag,
                    src,
                    recv_tag,
                } => {
                    let send_id = self.post_send(r, dst, send_bytes, send_tag);
                    let recv_wait = self.post_recv(r, src, recv_tag);
                    self.enter_wait(r, Some(send_id), recv_wait);
                    return;
                }
                Op::Isend { dst, bytes, tag } => {
                    let id = self.post_send(r, dst, bytes, tag);
                    // Unless it already drained (impossible synchronously),
                    // track it for the next WaitAll.
                    self.ranks[r].outstanding_sends.insert(id);
                }
                Op::Irecv { src, tag } => match self.post_recv(r, src, tag) {
                    None => {}
                    Some(RecvWait::Matched(id)) => {
                        self.ranks[r].outstanding_recvs_matched.insert(id);
                    }
                    Some(RecvWait::Unmatched(key)) => {
                        *self.ranks[r]
                            .outstanding_recvs_unmatched
                            .entry(key)
                            .or_insert(0) += 1;
                    }
                },
                Op::WaitAll => {
                    if self.rank_has_outstanding(r) {
                        let block_event = match self.config.wait_policy {
                            WaitPolicy::BusyPoll => None,
                            WaitPolicy::PollThenBlock(window) => {
                                Some(self.queue.push(self.now + window, Event::WaitBlock(r)))
                            }
                        };
                        self.ranks[r].state = RState::WaitingAll { block_event };
                        self.switch_bucket(r, Bucket::WaitBusy);
                        self.cluster
                            .node_mut(r)
                            .set_activity(self.now, CpuActivity::BusyWait);
                        self.causal_open_wait(r);
                        self.controller_wait_begin(r);
                        return;
                    }
                }
                Op::SetSpeed(req) => {
                    let decision =
                        self.controller
                            .on_app_request(self.now, r, self.cluster.nodes(), req);
                    if decision.is_some() {
                        obs_count!(self.metrics, "engine.dvfs.decisions", 1);
                    }
                    if let Some(target) = decision {
                        let lat = self.request_transition(r, target);
                        if !lat.is_zero() {
                            self.ranks[r].state = RState::Stalled;
                            self.switch_bucket(r, Bucket::Transition);
                            self.cluster
                                .node_mut(r)
                                .set_activity(self.now, CpuActivity::Halt);
                            // TransitionDone was queued by request_transition
                            // first, so at the tied timestamp the new
                            // frequency applies before execution resumes.
                            self.queue.push(self.now + lat, Event::Resume(r));
                            return;
                        }
                    }
                }
                Op::PhaseBegin(name) => {
                    self.trace
                        .record(self.now, r, TraceKind::PhaseBegin, TraceDetail::Phase(name));
                    #[cfg(feature = "simsan")]
                    self.san_checkpoint(SAN_TAG_PHASE_BEGIN);
                    if self.controller_phase(r, name, true) {
                        return;
                    }
                }
                Op::PhaseEnd(name) => {
                    self.trace
                        .record(self.now, r, TraceKind::PhaseEnd, TraceDetail::Phase(name));
                    #[cfg(feature = "simsan")]
                    self.san_checkpoint(SAN_TAG_PHASE_END);
                    if self.controller_phase(r, name, false) {
                        return;
                    }
                }
            }
        }
    }

    fn begin_active_phase(
        &mut self,
        r: Rank,
        cycles: f64,
        power_factor: f64,
        then_stall: SimDuration,
    ) {
        if cycles <= 0.0 {
            self.begin_stall_phase(r, then_stall);
            return;
        }
        let freq = self.cluster.node(r).freq_hz();
        let duration = SimDuration::from_secs_f64(cycles / freq);
        let event = self.queue.push(self.now + duration, Event::PhaseDone(r));
        self.ranks[r].state = RState::ComputeActive {
            cycles_total: cycles,
            started: self.now,
            event,
            power_factor,
            then_stall,
        };
        self.switch_bucket(r, Bucket::Compute);
        self.cluster
            .node_mut(r)
            .set_active_blended(self.now, power_factor);
    }

    fn begin_stall_phase(&mut self, r: Rank, stall: SimDuration) {
        if stall.is_zero() {
            self.execute_next(r);
            return;
        }
        self.queue.push(self.now + stall, Event::PhaseDone(r));
        self.ranks[r].state = RState::ComputeStall;
        self.switch_bucket(r, Bucket::MemStall);
        let node = self.cluster.node_mut(r);
        node.set_activity(self.now, CpuActivity::MemStall);
        node.set_mem_active(self.now, true);
    }

    fn on_phase_done(&mut self, r: Rank) {
        match self.ranks[r].state {
            RState::ComputeActive { then_stall, .. } => {
                self.begin_stall_phase(r, then_stall);
            }
            RState::ComputeStall => {
                self.cluster.node_mut(r).set_mem_active(self.now, false);
                self.execute_next(r);
            }
            // A cancelled/stale phase event for a rank that moved on.
            _ => {}
        }
    }

    fn finish_rank(&mut self, r: Rank) {
        self.switch_bucket(r, Bucket::None);
        self.ranks[r].state = RState::Done;
        self.ranks[r].finish_time = Some(self.now);
        self.cluster
            .node_mut(r)
            .set_activity(self.now, CpuActivity::Halt);
        self.finished += 1;
        if self.causal.is_some() {
            let energy_j = self.cluster.node(r).energy(self.now).total_j();
            if let Some(c) = self.causal.as_deref_mut() {
                c.log.finish[r] = self.now;
                c.log.finish_energy_j[r] = energy_j;
            }
        }
    }

    // ----- waiting ---------------------------------------------------------

    fn enter_wait(&mut self, r: Rank, need_send: Option<MsgId>, need_recv: Option<RecvWait>) {
        if need_send.is_none() && need_recv.is_none() {
            self.execute_next(r);
            return;
        }
        let block_event = match self.config.wait_policy {
            WaitPolicy::BusyPoll => None,
            WaitPolicy::PollThenBlock(window) => {
                Some(self.queue.push(self.now + window, Event::WaitBlock(r)))
            }
        };
        self.ranks[r].state = RState::Waiting {
            need_send,
            need_recv,
            block_event,
        };
        self.switch_bucket(r, Bucket::WaitBusy);
        self.cluster
            .node_mut(r)
            .set_activity(self.now, CpuActivity::BusyWait);
        self.causal_open_wait(r);
        self.controller_wait_begin(r);
    }

    fn on_wait_block(&mut self, r: Rank) {
        match &mut self.ranks[r].state {
            RState::Waiting { block_event, .. } | RState::WaitingAll { block_event } => {
                *block_event = None;
                self.switch_bucket(r, Bucket::WaitBlocked);
                self.cluster
                    .node_mut(r)
                    .set_activity(self.now, CpuActivity::Halt);
            }
            _ => {}
        }
    }

    fn rank_has_outstanding(&self, r: Rank) -> bool {
        let rt = &self.ranks[r];
        !rt.outstanding_sends.is_empty()
            || !rt.outstanding_recvs_matched.is_empty()
            || rt.outstanding_recvs_unmatched.values().any(|&c| c > 0)
    }

    /// An outstanding non-blocking op completed; resume a rank parked in
    /// WaitAll once everything it posted has finished. `cause` is the
    /// completion that just landed — when it releases the wait it is by
    /// definition the last (gating) one, so it closes the wait record.
    fn maybe_resume_waitall(&mut self, r: Rank, cause: WaitCause) {
        if matches!(self.ranks[r].state, RState::WaitingAll { .. }) && !self.rank_has_outstanding(r)
        {
            if let RState::WaitingAll {
                block_event: Some(ev),
            } = self.ranks[r].state
            {
                self.queue.cancel(ev);
            }
            self.causal_close_wait(r, cause);
            if !self.controller_wait_end(r) {
                self.execute_next(r);
            }
        }
    }

    /// Clear a satisfied wait condition and resume the rank if nothing is
    /// left to wait for. `cause` closes the wait record when it does.
    fn maybe_resume_waiter(&mut self, r: Rank, cause: WaitCause) {
        let ready = matches!(
            &self.ranks[r].state,
            RState::Waiting {
                need_send: None,
                need_recv: None,
                ..
            }
        );
        if ready {
            if let RState::Waiting {
                block_event: Some(ev),
                ..
            } = self.ranks[r].state
            {
                self.queue.cancel(ev);
            }
            self.causal_close_wait(r, cause);
            if !self.controller_wait_end(r) {
                self.execute_next(r);
            }
        }
    }

    // ----- messaging -------------------------------------------------------

    fn post_send(&mut self, src: Rank, dst: Rank, bytes: u64, tag: Tag) -> MsgId {
        let id = self.msgs.len();
        let collective = tag >= crate::program::ProgramBuilder::COLLECTIVE_TAG_BASE;
        self.msgs.push(Msg {
            src,
            dst,
            bytes,
            flow_started: false,
            recv_posted: false,
            drained_at: None,
            posted_at: self.now,
            collective,
        });
        if let Some(c) = self.causal.as_deref_mut() {
            // Pushed in lockstep with `msgs`, so the causal record shares
            // the engine's message id.
            c.log.msgs.push(MsgRecord {
                src,
                dst,
                bytes,
                collective,
                posted_at: self.now,
                flow_started_at: None,
                drained_at: None,
                delivered_at: None,
            });
        }
        self.trace
            .record_with(self.now, src, TraceKind::MsgStart, || TraceDetail::MsgTo {
                dst,
                bytes,
            });
        obs_count!(self.metrics, "engine.msgs.posted", 1);
        obs_count!(self.metrics, "engine.msgs.bytes_posted", bytes);
        let key = (src, dst, tag);
        let matched = match self.pending_recvs.get_mut(&key) {
            Some(q) if !q.is_empty() => {
                q.pop_front();
                true
            }
            _ => false,
        };
        if matched {
            self.msgs[id].recv_posted = true;
            self.rebind_receiver_wait(dst, key, id);
        } else {
            self.pending_sends.entry(key).or_default().push_back(id);
        }
        let eager = bytes <= self.config.eager_threshold;
        if eager || self.msgs[id].recv_posted {
            self.start_flow_for(id);
        }
        id
    }

    /// Returns `None` when the receive completed synchronously, otherwise
    /// the wait descriptor.
    fn post_recv(&mut self, dst: Rank, src: Rank, tag: Tag) -> Option<RecvWait> {
        let key = (src, dst, tag);
        let send_id = match self.pending_sends.get_mut(&key) {
            Some(q) => q.pop_front(),
            None => None,
        };
        match send_id {
            None => {
                self.pending_recvs.entry(key).or_default().push_back(());
                Some(RecvWait::Unmatched(key))
            }
            Some(id) => {
                self.msgs[id].recv_posted = true;
                if !self.msgs[id].flow_started {
                    self.start_flow_for(id); // rendezvous now matched
                }
                match self.msgs[id].drained_at {
                    Some(drained) => {
                        let deliver_at = drained + self.network.params().wire_latency;
                        if deliver_at <= self.now {
                            if let Some(c) = self.causal.as_deref_mut() {
                                // Physical arrival time: the payload was
                                // already here when the recv posted.
                                c.log.msgs[id].delivered_at = Some(deliver_at);
                            }
                            self.trace
                                .record_with(self.now, dst, TraceKind::MsgEnd, || {
                                    TraceDetail::MsgFrom { src }
                                });
                            self.observe_delivery(id);
                            None // already here
                        } else {
                            self.queue.push(deliver_at, Event::Delivered(id));
                            Some(RecvWait::Matched(id))
                        }
                    }
                    None => Some(RecvWait::Matched(id)),
                }
            }
        }
    }

    /// A send just matched a receiver that already posted: upgrade its
    /// unmatched wait (blocking Recv) or unmatched irecv bookkeeping to
    /// this concrete message. When a rank has both a blocked Recv and an
    /// outstanding Irecv on the same key, the blocked Recv wins — mixing
    /// the two styles on one (src, tag) key is not meaningful MPI anyway.
    fn rebind_receiver_wait(&mut self, dst: Rank, key: MsgKey, id: MsgId) {
        if let RState::Waiting {
            need_recv: Some(w @ RecvWait::Unmatched(_)),
            ..
        } = &mut self.ranks[dst].state
        {
            if *w == RecvWait::Unmatched(key) {
                *w = RecvWait::Matched(id);
                return;
            }
        }
        if let Some(count) = self.ranks[dst].outstanding_recvs_unmatched.get_mut(&key) {
            if *count > 0 {
                *count -= 1;
                self.ranks[dst].outstanding_recvs_matched.insert(id);
            }
        }
    }

    fn start_flow_for(&mut self, id: MsgId) {
        let (src, dst, bytes) = {
            let m = &self.msgs[id];
            (m.src, m.dst, m.bytes)
        };
        let flow = self.network.start_flow(self.now, src, dst, bytes);
        self.msgs[id].flow_started = true;
        if let Some(c) = self.causal.as_deref_mut() {
            c.log.msgs[id].flow_started_at = Some(self.now);
        }
        if flow.0 >= self.flow_to_msg.len() {
            self.flow_to_msg.resize(flow.0 + 1, None);
        }
        self.flow_to_msg[flow.0] = Some(id);
        self.refresh_nic(src);
        self.refresh_nic(dst);
        self.reschedule_network();
    }

    fn refresh_nic(&mut self, node: usize) {
        let busy = self.network.node_busy(node);
        self.cluster.node_mut(node).set_nic_active(self.now, busy);
    }

    fn reschedule_network(&mut self) {
        if let Some(ev) = self.net_event.take() {
            self.queue.cancel(ev);
        }
        if let Some(t) = self.network.next_completion() {
            let t = t.max(self.now);
            self.net_event = Some(self.queue.push(t, Event::NetworkWake));
        }
    }

    fn on_network_wake(&mut self) {
        self.net_event = None;
        let mut completed = std::mem::take(&mut self.completed_buf);
        self.network.take_completed_into(self.now, &mut completed);
        let latency = self.network.params().wire_latency;
        for &(flow, src, dst) in completed.iter() {
            let id = self.flow_to_msg[flow.0]
                .take()
                // simlint: allow(panic-path): flow/message bookkeeping invariant; a miss means corrupted engine state and must stop the run
                .expect("completed flow without a message");
            self.msgs[id].drained_at = Some(self.now);
            if let Some(c) = self.causal.as_deref_mut() {
                c.log.msgs[id].drained_at = Some(self.now);
            }
            self.refresh_nic(src);
            self.refresh_nic(dst);
            // Sender side completes at drain.
            if let RState::Waiting {
                need_send: ns @ Some(_),
                ..
            } = &mut self.ranks[src].state
            {
                if *ns == Some(id) {
                    *ns = None;
                    self.maybe_resume_waiter(src, WaitCause::SendDrained(id));
                }
            }
            // Non-blocking sender: strike the isend off the outstanding set.
            if self.ranks[src].outstanding_sends.remove(&id) {
                self.maybe_resume_waitall(src, WaitCause::SendDrained(id));
            }
            // Receiver side completes after the wire latency, if posted.
            if self.msgs[id].recv_posted {
                self.queue.push(self.now + latency, Event::Delivered(id));
            }
        }
        self.completed_buf = completed;
        self.reschedule_network();
    }

    /// Record a completed message into the delivery metrics (latency from
    /// post to arrival, split by p2p vs collective-internal traffic).
    fn observe_delivery(&mut self, id: MsgId) {
        if self.metrics.is_none() {
            return;
        }
        let Msg {
            posted_at,
            collective,
            ..
        } = self.msgs[id];
        let latency_us = self.now.since(posted_at).as_ps() as f64 / PS_PER_US as f64;
        let name = if collective {
            "engine.msg.latency_us.collective"
        } else {
            "engine.msg.latency_us.p2p"
        };
        obs_observe!(self.metrics, name, latency_us);
        obs_count!(self.metrics, "engine.msgs.delivered", 1);
    }

    fn on_delivered(&mut self, id: MsgId) {
        let dst = self.msgs[id].dst;
        let src = self.msgs[id].src;
        if let Some(c) = self.causal.as_deref_mut() {
            c.log.msgs[id].delivered_at = Some(self.now);
        }
        self.trace
            .record_with(self.now, dst, TraceKind::MsgEnd, || TraceDetail::MsgFrom {
                src,
            });
        self.observe_delivery(id);
        if let RState::Waiting {
            need_recv: nr @ Some(RecvWait::Matched(_)),
            ..
        } = &mut self.ranks[dst].state
        {
            if *nr == Some(RecvWait::Matched(id)) {
                *nr = None;
                self.maybe_resume_waiter(dst, WaitCause::RecvDelivered(id));
            }
        }
        // Non-blocking receiver: strike the irecv off the outstanding set.
        if self.ranks[dst].outstanding_recvs_matched.remove(&id) {
            self.maybe_resume_waitall(dst, WaitCause::RecvDelivered(id));
        }
    }

    // ----- DVFS ------------------------------------------------------------

    /// Begin moving `node` to `target`. Returns the stall latency (zero if
    /// no transition was needed or one is already in flight).
    fn request_transition(&mut self, node: usize, target: OpIndex) -> SimDuration {
        {
            let n = self.cluster.node(node);
            if n.in_transition() || target == n.op_index() {
                return SimDuration::ZERO;
            }
        }
        if let Some(f) = self.faults.as_deref_mut() {
            // Injected DVFS failure: the governor's request is silently
            // dropped and the node stays at its current operating point,
            // exactly like a cpufreq write that returned -EBUSY.
            if f.dvfs_fails(node, &mut self.fault_counts) {
                return SimDuration::ZERO;
            }
        }
        let old_freq = self.cluster.node(node).freq_hz();
        let from_mhz = self.cluster.node(node).operating_point().mhz();
        let mut lat = self
            .cluster
            .node_mut(node)
            .begin_transition(self.now, target);
        if let Some(f) = self.faults.as_deref() {
            // Latency-spike fault: the engine stalls the CPU for the
            // stretched latency. The node only tracks *that* it is in
            // transition, so completing later is safe.
            lat = f.spike_dvfs_latency(node, lat, &mut self.fault_counts);
        }
        // Pause mid-flight active compute: bank progress in cycles.
        if let RState::ComputeActive {
            cycles_total,
            started,
            event,
            power_factor,
            then_stall,
        } = self.ranks[node].state
        {
            self.queue.cancel(event);
            let done = duration_to_cycles(self.now.since(started), old_freq);
            let remaining = (cycles_total - done).max(0.0);
            self.ranks[node].state = RState::PausedCompute {
                remaining_cycles: remaining,
                power_factor,
                then_stall,
            };
            self.switch_bucket(node, Bucket::Transition);
            self.cluster
                .node_mut(node)
                .set_activity(self.now, CpuActivity::Halt);
        }
        self.queue
            .push(self.now + lat, Event::TransitionDone(node, target));
        if let Some(c) = self.causal.as_deref_mut() {
            c.log.dvfs.push(DvfsRecord {
                node,
                start: self.now,
                end: self.now + lat,
            });
        }
        self.trace
            .record_with(self.now, node, TraceKind::FreqChange, || {
                TraceDetail::Freq {
                    from_mhz,
                    to_mhz: self.cluster.node(node).config().ladder.point(target).mhz(),
                }
            });
        obs_count!(self.metrics, "engine.dvfs.transitions", 1);
        obs_observe!(
            self.metrics,
            "engine.dvfs.transition_latency_us",
            lat.as_ps() as f64 / PS_PER_US as f64
        );
        lat
    }

    fn on_transition_done(&mut self, node: usize, target: OpIndex) {
        self.cluster
            .node_mut(node)
            .complete_transition(self.now, target);
        if let RState::PausedCompute {
            remaining_cycles,
            power_factor,
            then_stall,
        } = self.ranks[node].state
        {
            self.begin_active_phase(node, remaining_cycles, power_factor, then_stall);
        }
    }

    fn on_governor_tick(&mut self, node: usize) {
        if self.finished == self.cluster.len() {
            return;
        }
        let decision = self
            .controller
            .on_tick(self.now, node, self.cluster.nodes());
        if let Some(target) = decision {
            obs_count!(self.metrics, "engine.dvfs.decisions", 1);
            self.request_transition(node, target);
        }
        if let Some(interval) = self.controller.poll_interval(node) {
            self.queue
                .push(self.now + interval, Event::GovernorTick(node));
        }
    }

    // ----- cluster-controller runtime hooks --------------------------------
    //
    // Delivered only when the controller asked for runtime events; the
    // per-node path (every classic strategy) pays one bool test per site.
    // All hooks run on the sequential dispatch path in (time, seq) event
    // order, so controller state — and therefore every decision — is
    // bit-identical at any shard count.

    /// `r` just blocked in communication; a runtime controller may react.
    fn controller_wait_begin(&mut self, r: Rank) {
        if !self.controller_events {
            return;
        }
        let mut buf = std::mem::take(&mut self.decision_buf);
        self.controller
            .on_wait_begin(self.now, r, self.cluster.nodes(), &mut buf);
        self.decision_buf = buf;
        obs_count!(self.metrics, "controller.wait_events", 1);
        self.apply_decisions(None);
    }

    /// `r` was just released from its wait (the causal record is already
    /// closed). Returns true when a controller decision stalled `r` into
    /// a transition — the caller must then skip resuming it; the `Resume`
    /// queued here continues it once the new frequency lands.
    fn controller_wait_end(&mut self, r: Rank) -> bool {
        if !self.controller_events {
            return false;
        }
        let mut buf = std::mem::take(&mut self.decision_buf);
        self.controller
            .on_wait_end(self.now, r, self.cluster.nodes(), &mut buf);
        self.decision_buf = buf;
        obs_count!(self.metrics, "controller.wait_events", 1);
        self.apply_decisions(Some(r))
    }

    /// `r` crossed a phase marker. Same stall contract as wait end.
    fn controller_phase(&mut self, r: Rank, name: &'static str, begin: bool) -> bool {
        if !self.controller_events {
            return false;
        }
        let mut buf = std::mem::take(&mut self.decision_buf);
        self.controller
            .on_phase(self.now, r, name, begin, self.cluster.nodes(), &mut buf);
        self.decision_buf = buf;
        self.apply_decisions(Some(r))
    }

    /// A sample row was just recorded; the controller may replan. Sample
    /// instants are the natural cap-enforcement points: every transition
    /// granted here settles within the ~10 µs hardware latency, long
    /// before the next sample reads power.
    fn controller_sample(&mut self) {
        if !self.controller_events {
            return;
        }
        let mut buf = std::mem::take(&mut self.decision_buf);
        self.controller
            .on_sample(self.now, self.cluster.nodes(), &mut buf);
        self.decision_buf = buf;
        obs_count!(self.metrics, "controller.samples", 1);
        self.apply_decisions(None);
    }

    /// Apply buffered controller decisions through the normal transition
    /// path — latency, transition energy, and fault injection included.
    /// When a nonzero-latency transition lands on `resuming` (the rank
    /// the caller is about to continue), the rank is stalled exactly like
    /// an app-directed `SetSpeed` and `true` is returned so the caller
    /// leaves it parked until the transition completes.
    fn apply_decisions(&mut self, resuming: Option<Rank>) -> bool {
        if self.decision_buf.is_empty() {
            return false;
        }
        let mut decisions = std::mem::take(&mut self.decision_buf);
        let mut stalled = false;
        for d in decisions.drain(..) {
            obs_count!(self.metrics, "controller.decisions", 1);
            let lat = self.request_transition(d.node, d.target);
            if !lat.is_zero() && resuming == Some(d.node) {
                obs_count!(self.metrics, "controller.stalls", 1);
                self.ranks[d.node].state = RState::Stalled;
                self.switch_bucket(d.node, Bucket::Transition);
                self.cluster
                    .node_mut(d.node)
                    .set_activity(self.now, CpuActivity::Halt);
                // TransitionDone was queued first, so at the tied
                // timestamp the new frequency applies before resume.
                self.queue.push(self.now + lat, Event::Resume(d.node));
                stalled = true;
            }
        }
        self.decision_buf = decisions;
        stalled
    }

    // ----- sampling --------------------------------------------------------

    fn on_sample(&mut self) {
        if let Some(f) = self.faults.as_deref_mut() {
            // Skipped ACPI window: the whole row is dropped but the
            // sampling cadence continues at the next interval.
            if f.skip_sample(&mut self.fault_counts) {
                if let Some(interval) = self.config.sample_interval {
                    self.queue.push(self.now + interval, Event::Sample);
                }
                return;
            }
        }
        let n = self.cluster.len();
        let mut row = SampleRow {
            time: self.now,
            node_power_w: Vec::with_capacity(n),
            node_energy_j: Vec::with_capacity(n),
            node_mhz: Vec::with_capacity(n),
            node_battery_mwh: Vec::with_capacity(n),
        };
        for i in 0..n {
            let mut power = self.cluster.node(i).power_now();
            if let Some(f) = self.faults.as_deref() {
                // Meter bias only lies to the measurement tap; the
                // ground-truth energy column stays honest so the outlier
                // filter can spot the sick meter.
                power = f.bias_power(i, power, &mut self.fault_counts);
            }
            row.node_power_w.push(power);
            row.node_energy_j
                .push(self.cluster.node(i).energy(self.now).total_j());
            row.node_mhz
                .push(self.cluster.node(i).operating_point().mhz());
            row.node_battery_mwh.push(self.sample_battery(i));
        }
        self.samples.push(row);
        if let Some(interval) = self.config.sample_interval {
            self.queue.push(self.now + interval, Event::Sample);
        }
        self.controller_sample();
        // After the controller replans: the digest then covers the
        // decisions it just made, not only the state it saw.
        #[cfg(feature = "simsan")]
        self.san_checkpoint(SAN_TAG_SAMPLE);
    }

    /// One node's battery reading for the current sample row, with the
    /// degraded-mode ladder: a stuck register repeats its last reading; a
    /// poll the battery model rejects falls back to the node's last
    /// consistent reading (counted, never panicking); injected noise
    /// perturbs whatever was read.
    fn sample_battery(&mut self, i: usize) -> u64 {
        if let Some(f) = self.faults.as_deref() {
            if f.battery_stuck(i, self.now) {
                if let Some(last) = self.last_battery[i] {
                    self.fault_counts.battery_stuck_reads += 1;
                    return last;
                }
                // No reading captured before the register froze: take one
                // real poll below to have something to stick to.
            }
        }
        let reading = match self.cluster.node_mut(i).poll_battery(self.now) {
            Ok(r) => r,
            Err(_) => {
                self.fault_counts.battery_errors += 1;
                self.last_battery[i].unwrap_or_else(|| self.cluster.node(i).battery_reading())
            }
        };
        let reading = match self.faults.as_deref_mut() {
            Some(f) => f.battery_noise(i, reading, &mut self.fault_counts),
            None => reading,
        };
        self.last_battery[i] = Some(reading);
        reading
    }

    // ----- determinism sanitizer -------------------------------------------

    /// Append one digest of observable engine state to the sanitizer
    /// stream. Everything hashed is simulation state — simulated clock,
    /// queue lifetime counters, per-rank program counters and activity
    /// buckets, metered joules, battery registers, and the controller's
    /// own digest — so two runs that agree here agree on everything the
    /// [`RunResult`] is derived from. Host-side state (allocation
    /// addresses, map iteration order, thread scheduling) never enters
    /// the hash.
    #[cfg(feature = "simsan")]
    fn san_checkpoint(&mut self, tag: u8) {
        let mut h = SanHasher::new();
        h.write_u64(u64::from(tag));
        h.write_u64(self.now.since(SimTime::ZERO).as_ps());
        h.write_u64(self.finished as u64);
        h.write_u64(self.queue.len() as u64);
        h.write_u64(self.queue.pushed_total());
        for r in &self.ranks {
            h.write_u64(r.pc as u64);
            h.write_u64(r.bucket as u64);
        }
        for i in 0..self.cluster.len() {
            let node = self.cluster.node(i);
            h.write_u64(node.energy(self.now).total_j().to_bits());
            h.write_u64(node.battery_reading());
        }
        h.write_u64(self.controller.state_digest());
        self.san_hashes.push(h.finish());
    }

    // ----- teardown --------------------------------------------------------

    fn finalize(mut self) -> RunResult {
        let end = self
            .ranks
            .iter()
            // simlint: allow(panic-path): finalize runs only after the event loop retires every rank; an unfinished rank is corrupted engine state
            .map(|r| r.finish_time.expect("finalize with unfinished rank"))
            .max()
            .unwrap_or(SimTime::ZERO);
        let per_node: Vec<_> = self.cluster.nodes().iter().map(|n| n.energy(end)).collect();
        let freq_residency: Vec<_> = self
            .cluster
            .nodes()
            .iter()
            .map(|n| n.time_in_state(end))
            .collect();
        let total = self.cluster.total_energy(end);

        // Causal teardown: hand the recorded log to the solver. The
        // attribution derives from simulated state only (log, bucket
        // totals, metered joules), so it shares the registry's
        // determinism guarantees at every shard count.
        let (causal, attribution) = match self.causal.take() {
            Some(rec) => {
                let log = rec.log;
                let buckets: Vec<obs::BucketTotals> = self
                    .ranks
                    .iter()
                    .map(|r| obs::BucketTotals {
                        compute: r.breakdown.compute + r.breakdown.mem_stall,
                        wait: r.breakdown.wait_busy + r.breakdown.wait_blocked,
                        transition: r.breakdown.transition,
                    })
                    .collect();
                let node_total_j: Vec<f64> = per_node.iter().map(|e| e.total_j()).collect();
                let attribution = obs::attribute(&log, &buckets, &node_total_j);
                (Some(log), Some(attribution))
            }
            None => (None, None),
        };

        // Fold teardown-time statistics into the registry: queue lifetime
        // counters, fair-share solver work, trace accounting, and the
        // cluster-wide per-frequency residency. These are derived from
        // simulated state only, so the whole registry stays deterministic.
        let trace_dropped = self.trace.dropped();
        if let Some(m) = self.metrics.as_deref_mut() {
            let pushed = self.queue.pushed_total();
            let cancelled = self.queue.cancelled_total();
            m.counter_add("engine.queue.pushed", pushed);
            m.counter_add("engine.queue.cancelled", cancelled);
            m.counter_add("engine.queue.processed", self.queue.processed_total());
            m.gauge_set(
                "engine.queue.depth_hwm",
                self.queue.depth_high_water() as f64,
            );
            m.gauge_set(
                "engine.queue.tombstone_ratio",
                if pushed > 0 {
                    cancelled as f64 / pushed as f64
                } else {
                    0.0
                },
            );
            let s = self.network.solver_stats();
            m.counter_add("net.solver.invocations", s.invocations);
            m.counter_add("net.solver.rounds", s.rounds);
            m.counter_add("net.solver.fallback_freezes", s.fallback_freezes);
            // Only the hierarchical (tree-mode) network tracks per-link
            // domains, but the counters are published unconditionally so
            // downstream diffs (the scale-smoke CI job) never depend on
            // whether the solver happened to do domain work.
            m.counter_add("net.solver.domains_touched", s.domains_touched);
            m.counter_add("net.solver.domains_skipped", s.domains_skipped);
            m.counter_add("net.rate_recomputes", self.network.rate_recomputes());
            m.counter_add("net.flows_completed", self.network.flows_completed());
            m.gauge_set("net.bytes_delivered", self.network.bytes_delivered());
            m.counter_add("engine.trace.recorded", self.trace.len() as u64);
            m.counter_add("engine.trace.dropped", trace_dropped);
            let mut per_mhz: std::collections::BTreeMap<u32, SimDuration> = Default::default();
            for node_res in &freq_residency {
                for &(mhz, d) in node_res {
                    *per_mhz.entry(mhz).or_insert(SimDuration::ZERO) += d;
                }
            }
            for (mhz, d) in per_mhz {
                m.gauge_set_owned(format!("engine.freq.residency_s.{mhz}mhz"), d.as_secs_f64());
            }
            // Fault counters are only published when something was
            // injected, so a fault-free run's registry is unchanged.
            let c = self.fault_counts;
            if c.total() > 0 {
                m.counter_add("engine.faults.compute_slowdowns", c.compute_slowdowns);
                m.counter_add("engine.faults.dvfs_failures", c.dvfs_failures);
                m.counter_add("engine.faults.dvfs_latency_spikes", c.dvfs_latency_spikes);
                m.counter_add("engine.faults.battery_stuck_reads", c.battery_stuck_reads);
                m.counter_add("engine.faults.battery_noisy_reads", c.battery_noisy_reads);
                m.counter_add("engine.faults.battery_errors", c.battery_errors);
                m.counter_add("engine.faults.samples_skipped", c.samples_skipped);
                m.counter_add("engine.faults.meter_biased_samples", c.meter_biased_samples);
                m.counter_add("engine.faults.degraded_links", c.degraded_links);
            }
        }

        RunResult {
            duration: end.since(SimTime::ZERO),
            per_node,
            total,
            breakdown: self.ranks.into_iter().map(|r| r.breakdown).collect(),
            transitions: self
                .cluster
                .nodes()
                .iter()
                .map(|n| n.transitions())
                .collect(),
            samples: self.samples,
            trace: self.trace.events().cloned().collect(),
            trace_dropped,
            freq_residency,
            events: self.queue.processed_total(),
            faults: self.fault_counts,
            metrics: self.metrics.map(|b| *b),
            causal,
            attribution,
        }
    }
}
