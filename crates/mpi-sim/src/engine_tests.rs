//! Engine integration tests (public-API level), split from `engine.rs`
//! to keep the simulator source readable: blocking semantics, DVFS
//! behaviour, non-blocking operations, and edge cases.

#![cfg(test)]

use crate::config::{EngineConfig, WaitPolicy};
use crate::engine::Engine;
use crate::program::Program;
use crate::result::RunResult;
use cluster_sim::Cluster;
use dvfs::Governor;
use power_model::OpIndex;
use sim_core::SimDuration;

mod blocking_tests {
    use super::*;
    use crate::program::ProgramBuilder;
    use dvfs::{AppDirectedGovernor, CpuspeedGovernor, StaticGovernor};
    use mem_model::WorkUnit;

    fn static_governors(n: usize, idx: OpIndex) -> Vec<Box<dyn Governor>> {
        (0..n)
            .map(|_| Box::new(StaticGovernor::pinned(idx)) as Box<dyn Governor>)
            .collect()
    }

    fn run_programs(n: usize, idx: OpIndex, build: impl Fn(&mut ProgramBuilder)) -> RunResult {
        let cluster = Cluster::paper_testbed(n);
        let programs: Vec<Program> = (0..n)
            .map(|r| {
                let mut b = ProgramBuilder::new(r, n);
                build(&mut b);
                b.build()
            })
            .collect();
        Engine::new(
            cluster,
            programs,
            static_governors(n, idx),
            EngineConfig::default(),
        )
        .run()
    }

    #[test]
    fn pure_compute_duration_matches_model() {
        // 1.4e9 scaled cycles at 1.4 GHz -> exactly 1 s.
        let res = run_programs(1, 4, |b| {
            b.compute(WorkUnit::pure_cpu(1.4e9));
        });
        assert!(
            (res.duration_secs() - 1.0).abs() < 1e-6,
            "{}",
            res.duration_secs()
        );
        assert!((res.breakdown[0].compute.as_secs_f64() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn static_slow_point_stretches_compute() {
        let fast = run_programs(1, 4, |b| {
            b.compute(WorkUnit::pure_cpu(1.4e9));
        });
        let slow = run_programs(1, 0, |b| {
            b.compute(WorkUnit::pure_cpu(1.4e9));
        });
        let ratio = slow.duration_secs() / fast.duration_secs();
        assert!((ratio - 1.4 / 0.6).abs() < 1e-6, "{ratio}");
        // ...but CPU-bound slowdown costs energy overall at the bottom
        // point only if base power dominates; here just check energy is
        // in a sane band.
        assert!(slow.total_energy_j() > 0.0);
    }

    #[test]
    fn dram_stall_is_frequency_invariant() {
        let w = WorkUnit {
            cpu_cycles: 0.0,
            l2_accesses: 0.0,
            dram_accesses: 1e6,
        };
        let fast = run_programs(1, 4, move |b| {
            b.compute(w);
        });
        let slow = run_programs(1, 0, move |b| {
            b.compute(w);
        });
        assert!((fast.duration_secs() - slow.duration_secs()).abs() < 1e-9);
        assert!((fast.duration_secs() - 0.11).abs() < 1e-3);
    }

    #[test]
    fn ping_pong_completes_and_takes_wire_time() {
        let bytes = 256 * 1024u64;
        let res = run_programs(2, 4, move |b| {
            if b.rank() == 0 {
                b.send(1, bytes, 1);
                b.recv(1, bytes, 2);
            } else {
                b.recv(0, bytes, 1);
                b.send(0, bytes, 2);
            }
        });
        // Round trip of 256 KB at ~11.5 MB/s payload: ~45 ms + overheads.
        let d = res.duration_secs();
        assert!(d > 0.04 && d < 0.08, "round trip {d}");
        // Rank 0 spends most of its life waiting.
        assert!(res.breakdown[0].wait_busy.as_secs_f64() > 0.8 * d);
    }

    #[test]
    fn eager_send_completes_without_receiver() {
        // Rank 0 sends small eagerly then computes; rank 1 computes first,
        // receives later. No deadlock, and rank 0 finishes its send early.
        let res = run_programs(2, 4, |b| {
            if b.rank() == 0 {
                b.send(1, 1024, 9);
                b.compute(WorkUnit::pure_cpu(1.4e8));
            } else {
                b.compute(WorkUnit::pure_cpu(1.4e9));
                b.recv(0, 1024, 9);
            }
        });
        // Rank 1's compute (1 s) dominates; rank 0 must not wait for it.
        assert!(res.breakdown[0].wait_busy.as_secs_f64() < 0.1);
        assert!((res.duration_secs() - 1.0).abs() < 0.05);
    }

    #[test]
    fn rendezvous_waits_for_receiver() {
        // Large message: sender must rendezvous with the late receiver.
        let res = run_programs(2, 4, |b| {
            if b.rank() == 0 {
                b.send(1, 10 * 1024 * 1024, 9);
            } else {
                b.compute(WorkUnit::pure_cpu(1.4e9)); // 1 s late
                b.recv(0, 10 * 1024 * 1024, 9);
            }
        });
        // 10 MB at ~11.5 MB/s ~ 0.87 s, starting after 1 s.
        assert!(res.duration_secs() > 1.8, "{}", res.duration_secs());
        assert!(res.breakdown[0].wait_busy.as_secs_f64() > 1.0);
    }

    #[test]
    fn barrier_synchronizes_all_ranks() {
        // Rank 0 computes 1 s before the barrier; everyone leaves at ~1 s.
        let res = run_programs(4, 4, |b| {
            if b.rank() == 0 {
                b.compute(WorkUnit::pure_cpu(1.4e9));
            }
            b.barrier();
        });
        assert!(res.duration_secs() > 0.99);
        for r in 1..4 {
            let waited = res.breakdown[r].wait_busy.as_secs_f64();
            assert!(waited > 0.9, "rank {r} waited only {waited}");
        }
    }

    #[test]
    fn alltoall_pairwise_is_contention_free() {
        // 8 ranks, 1 MB per pair: 7 rounds of disjoint full-duplex pairs,
        // each round ~1 MB / 11.5 MB/s.
        let res = run_programs(8, 4, |b| {
            b.alltoall(1024 * 1024);
        });
        let per_round = 1024.0 * 1024.0 / (100e6 * 0.92 / 8.0);
        let d = res.duration_secs();
        assert!(
            d > 7.0 * per_round * 0.95 && d < 7.0 * per_round * 1.35,
            "alltoall {d}, expected ~{}",
            7.0 * per_round
        );
    }

    #[test]
    fn gather_root_downlink_serializes() {
        let n = 5;
        let bytes = 1024 * 1024u64;
        let res = run_programs(n, 4, move |b| {
            b.gather(0, bytes);
        });
        let solo = bytes as f64 / (100e6 * 0.92 / 8.0);
        let d = res.duration_secs();
        assert!(d > 4.0 * solo * 0.95, "gather too fast: {d}");
    }

    #[test]
    fn bcast_reaches_everyone_in_log_rounds() {
        let bytes = 512 * 1024u64;
        let res = run_programs(8, 4, move |b| {
            b.bcast(0, bytes);
        });
        let hop = bytes as f64 / (100e6 * 0.92 / 8.0);
        let d = res.duration_secs();
        // Binomial tree: 3 serial hops for 8 ranks (plus overheads), far
        // below the 7 hops of a linear broadcast.
        assert!(d > 2.9 * hop && d < 4.5 * hop, "bcast {d}, hop {hop}");
    }

    #[test]
    fn app_directed_dvfs_slows_marked_region_only() {
        let n = 1;
        let cluster = Cluster::paper_testbed(n);
        let mut b = ProgramBuilder::new(0, 1);
        b.compute(WorkUnit::pure_cpu(1.4e9)); // 1 s at 1.4 GHz
        b.set_speed(dvfs::AppSpeedRequest::Lowest);
        b.compute(WorkUnit::pure_cpu(1.4e9)); // 2.333 s at 600 MHz
        b.set_speed(dvfs::AppSpeedRequest::Restore);
        b.compute(WorkUnit::pure_cpu(1.4e9)); // 1 s again
        let governors: Vec<Box<dyn Governor>> = vec![Box::new(AppDirectedGovernor::with_base(4))];
        let res = Engine::new(cluster, vec![b.build()], governors, EngineConfig::default()).run();
        let expect = 1.0 + 1.4 / 0.6 + 1.0;
        assert!(
            (res.duration_secs() - expect).abs() < 1e-3,
            "{} vs {expect}",
            res.duration_secs()
        );
        assert_eq!(res.transitions[0], 2);
        assert!(res.breakdown[0].transition.as_secs_f64() > 0.0);
    }

    #[test]
    fn cpuspeed_steps_down_on_idle_wait() {
        // One rank waits (blocked) on a message that arrives after 5 s;
        // with PollThenBlock the wait is visible idle time, so cpuspeed
        // steps down. The sender computes at 1.4 GHz the whole time.
        let n = 2;
        let cluster = Cluster::paper_testbed(n);
        let mut b0 = ProgramBuilder::new(0, 2);
        b0.compute(WorkUnit::pure_cpu(7.0e9)); // 5 s
        b0.send(1, 1024, 1);
        let mut b1 = ProgramBuilder::new(1, 2);
        b1.recv(0, 1024, 1);
        let governors: Vec<Box<dyn Governor>> = vec![
            Box::new(CpuspeedGovernor::stock()),
            Box::new(CpuspeedGovernor::stock()),
        ];
        let config = EngineConfig {
            wait_policy: WaitPolicy::PollThenBlock(SimDuration::from_millis(100)),
            ..EngineConfig::default()
        };
        let res = Engine::new(cluster, vec![b0.build(), b1.build()], governors, config).run();
        assert!(
            res.transitions[1] >= 3,
            "receiver stepped down {} times",
            res.transitions[1]
        );
        assert_eq!(res.transitions[0], 0, "busy sender never scales");
        assert!(res.breakdown[1].wait_blocked.as_secs_f64() > 4.0);
    }

    #[test]
    fn cpuspeed_blind_to_busy_poll() {
        // Same workload under the default BusyPoll policy: no transitions.
        let n = 2;
        let cluster = Cluster::paper_testbed(n);
        let mut b0 = ProgramBuilder::new(0, 2);
        b0.compute(WorkUnit::pure_cpu(7.0e9));
        b0.send(1, 1024, 1);
        let mut b1 = ProgramBuilder::new(1, 2);
        b1.recv(0, 1024, 1);
        let governors: Vec<Box<dyn Governor>> = vec![
            Box::new(CpuspeedGovernor::stock()),
            Box::new(CpuspeedGovernor::stock()),
        ];
        let res = Engine::new(
            cluster,
            vec![b0.build(), b1.build()],
            governors,
            EngineConfig::default(),
        )
        .run();
        assert_eq!(res.transitions[0], 0);
        assert_eq!(res.transitions[1], 0);
        assert!(res.breakdown[1].wait_busy.as_secs_f64() > 4.0);
    }

    #[test]
    fn sampling_collects_rows() {
        let config = EngineConfig {
            sample_interval: Some(SimDuration::from_millis(100)),
            ..EngineConfig::default()
        };
        let cluster = Cluster::paper_testbed(1);
        let mut b = ProgramBuilder::new(0, 1);
        b.compute(WorkUnit::pure_cpu(1.4e9)); // 1 s
        let res = Engine::new(cluster, vec![b.build()], static_governors(1, 4), config).run();
        assert!(res.samples.len() >= 9, "{} samples", res.samples.len());
        let s = &res.samples[0];
        assert_eq!(s.node_power_w.len(), 1);
        assert!(
            s.node_power_w[0] > 20.0,
            "active node power {}",
            s.node_power_w[0]
        );
        assert_eq!(s.node_mhz[0], 1400);
    }

    #[test]
    fn determinism_identical_runs_identical_results() {
        let run = || {
            run_programs(4, 2, |b| {
                b.alltoall(128 * 1024);
                b.barrier();
                b.compute(WorkUnit::pure_cpu(5e8));
                b.allreduce(4096);
            })
        };
        let a = run();
        let b = run();
        assert_eq!(a.duration, b.duration);
        assert!((a.total_energy_j() - b.total_energy_j()).abs() < 1e-12);
        for (x, y) in a.breakdown.iter().zip(&b.breakdown) {
            assert_eq!(x.compute, y.compute);
            assert_eq!(x.wait_busy, y.wait_busy);
        }
    }

    #[test]
    fn energy_equals_power_integral_for_constant_run() {
        // A single halted... rather, a single fully-active compute run:
        // energy must equal active node power x duration.
        let res = run_programs(1, 4, |b| {
            b.compute(WorkUnit::pure_cpu(2.8e9)); // 2 s
        });
        let p_active = 8.0 + 21.0 + 1.484; // base + cpu dyn + static
        let expect = p_active * res.duration_secs();
        assert!(
            (res.total_energy_j() - expect).abs() < 0.5,
            "{} vs {expect}",
            res.total_energy_j()
        );
    }

    #[test]
    #[should_panic(expected = "deadlock")]
    fn unmatched_recv_deadlocks_loudly() {
        let _ = run_programs(2, 4, |b| {
            if b.rank() == 0 {
                b.recv(1, 64, 99);
            }
        });
    }

    #[test]
    fn sendrecv_exchange_is_full_duplex() {
        let bytes = 2 * 1024 * 1024u64;
        let res = run_programs(2, 4, move |b| {
            let peer = 1 - b.rank();
            b.sendrecv(peer, bytes, 1, peer, bytes, 1);
        });
        let one_way = bytes as f64 / (100e6 * 0.92 / 8.0);
        let d = res.duration_secs();
        // Full duplex: both directions overlap, so ~1x one-way, not 2x.
        assert!(d < 1.4 * one_way, "exchange {d} vs one-way {one_way}");
        assert!(d > 0.95 * one_way);
    }
}

mod nonblocking_tests {
    use super::*;
    use crate::program::ProgramBuilder;
    use dvfs::StaticGovernor;
    use mem_model::WorkUnit;

    fn run(n: usize, build: impl Fn(&mut ProgramBuilder)) -> RunResult {
        let cluster = Cluster::paper_testbed(n);
        let programs: Vec<Program> = (0..n)
            .map(|r| {
                let mut b = ProgramBuilder::new(r, n);
                build(&mut b);
                b.build()
            })
            .collect();
        let governors: Vec<Box<dyn Governor>> = (0..n)
            .map(|_| Box::new(StaticGovernor::performance()) as Box<dyn Governor>)
            .collect();
        Engine::new(cluster, programs, governors, EngineConfig::default()).run()
    }

    #[test]
    fn isend_overlaps_with_compute() {
        // Rank 0 isends 2 MB then computes 1 s; the drain (~0.17 s)
        // overlaps the compute, so the total is ~1 s, not ~1.17 s.
        let bytes = 2 * 1024 * 1024u64;
        let res = run(2, move |b| {
            if b.rank() == 0 {
                b.isend(1, bytes, 1);
                b.compute(WorkUnit::pure_cpu(1.4e9));
                b.wait_all(0);
            } else {
                b.recv(0, bytes, 1);
            }
        });
        assert!(
            res.duration_secs() < 1.1,
            "overlap failed: {}",
            res.duration_secs()
        );
        assert!(res.breakdown[0].wait_busy.as_secs_f64() < 0.05);
    }

    #[test]
    fn waitall_blocks_until_drain() {
        // Without compute to hide it, waitall must absorb the drain time.
        let bytes = 2 * 1024 * 1024u64;
        let res = run(2, move |b| {
            if b.rank() == 0 {
                b.isend(1, bytes, 1);
                b.wait_all(0);
            } else {
                b.recv(0, bytes, 1);
            }
        });
        let wire = bytes as f64 / (100e6 * 0.92 / 8.0);
        assert!(res.breakdown[0].wait_busy.as_secs_f64() > 0.8 * wire);
    }

    #[test]
    fn irecv_waitall_delivers() {
        let res = run(2, |b| {
            if b.rank() == 0 {
                b.compute(WorkUnit::pure_cpu(1.4e8)); // receiver late poster
                b.irecv(1, 7);
                b.wait_all(1024);
            } else {
                b.send(0, 1024, 7);
            }
        });
        assert!(res.duration_secs() > 0.09);
        assert!(res.duration_secs() < 0.2);
    }

    #[test]
    fn empty_waitall_is_a_noop() {
        let res = run(1, |b| {
            b.wait_all(0);
            b.compute(WorkUnit::pure_cpu(1.4e8));
        });
        assert!((res.duration_secs() - 0.1).abs() < 1e-3);
    }

    #[test]
    fn nonblocking_alltoall_completes_like_pairwise() {
        let bytes = 256 * 1024u64;
        let flood = run(8, move |b| {
            b.alltoall_nonblocking(bytes);
        });
        let pairwise = run(8, move |b| {
            b.alltoall(bytes);
        });
        // Same volume, same fabric: total times are comparable; the flood
        // version must not deadlock and not be dramatically slower.
        let ratio = flood.duration_secs() / pairwise.duration_secs();
        assert!(ratio < 1.5 && ratio > 0.5, "flood/pairwise = {ratio}");
    }

    #[test]
    fn flood_alltoall_shares_links_fairly() {
        // In the flood schedule every rank's uplink carries 7 concurrent
        // flows; the fluid model must still deliver all bytes.
        let res = run(4, |b| {
            b.alltoall_nonblocking(1024 * 1024);
        });
        assert!(res.duration_secs() > 0.0);
        for b in &res.breakdown {
            assert!(b.total() <= res.duration + SimDuration::from_nanos(1));
        }
    }

    #[test]
    #[should_panic(expected = "deadlock")]
    fn waitall_on_unmatched_irecv_deadlocks_loudly() {
        let _ = run(2, |b| {
            if b.rank() == 0 {
                b.irecv(1, 99);
                b.wait_all(64);
            }
        });
    }

    #[test]
    fn mixed_blocking_and_nonblocking_ranks_interoperate() {
        let res = run(4, |b| {
            let n = b.size();
            let r = b.rank();
            // Ring: nonblocking sends, blocking receives.
            b.isend((r + 1) % n, 4096, 5);
            b.recv((r + n - 1) % n, 4096, 5);
            b.wait_all(0);
            b.barrier();
        });
        assert!(res.duration_secs() > 0.0);
    }
}

mod edge_case_tests {
    use super::*;
    use crate::program::ProgramBuilder;
    use dvfs::StaticGovernor;
    use mem_model::WorkUnit;

    fn static_govs(n: usize) -> Vec<Box<dyn Governor>> {
        (0..n)
            .map(|_| Box::new(StaticGovernor::performance()) as Box<dyn Governor>)
            .collect()
    }

    fn run_with_config(
        n: usize,
        config: EngineConfig,
        build: impl Fn(&mut ProgramBuilder),
    ) -> RunResult {
        let cluster = Cluster::paper_testbed(n);
        let programs: Vec<Program> = (0..n)
            .map(|r| {
                let mut b = ProgramBuilder::new(r, n);
                build(&mut b);
                b.build()
            })
            .collect();
        Engine::new(cluster, programs, static_govs(n), config).run()
    }

    #[test]
    fn same_key_messages_match_in_fifo_order() {
        // Two sends with the same (src, dst, tag) must deliver in order:
        // MPI's non-overtaking guarantee. If matching were LIFO, the
        // receiver's second (larger) recv would pair with the first
        // (small) send and timing would shift measurably.
        let small = 1_000u64;
        let large = 5_000_000u64; // rendezvous-sized
        let res = run_with_config(2, EngineConfig::default(), |b| {
            if b.rank() == 0 {
                b.send(1, small, 7);
                b.send(1, large, 7);
            } else {
                b.recv(0, small, 7);
                b.compute(WorkUnit::pure_cpu(1.4e8)); // 0.1 s gap
                b.recv(0, large, 7);
            }
        });
        // The large rendezvous send cannot start before the receiver's
        // second recv posts at ~0.1 s; total ≈ 0.1 + 0.43 s wire.
        let wire = large as f64 / (100e6 * 0.92 / 8.0);
        assert!(res.duration_secs() > 0.1 + 0.9 * wire);
    }

    #[test]
    fn eager_threshold_boundary_behaviour() {
        // Exactly at the threshold: still eager (sender needs no receiver).
        let threshold = EngineConfig::default().eager_threshold;
        let res = run_with_config(2, EngineConfig::default(), move |b| {
            if b.rank() == 0 {
                b.send(1, threshold, 1);
                b.compute(WorkUnit::pure_cpu(1.4e9)); // 1 s
            } else {
                b.compute(WorkUnit::pure_cpu(1.4e9)); // 1 s before posting
                b.recv(0, threshold, 1);
            }
        });
        // Sender never waits on the late receiver.
        assert!(res.breakdown[0].wait_busy.as_secs_f64() < 0.05);
        // One byte over: rendezvous, sender must wait ~1 s.
        let res = run_with_config(2, EngineConfig::default(), move |b| {
            if b.rank() == 0 {
                b.send(1, threshold + 1, 1);
            } else {
                b.compute(WorkUnit::pure_cpu(1.4e9));
                b.recv(0, threshold + 1, 1);
            }
        });
        assert!(res.breakdown[0].wait_busy.as_secs_f64() > 0.9);
    }

    #[test]
    fn trace_capacity_bounds_memory() {
        let config = EngineConfig {
            trace_capacity: 8,
            ..EngineConfig::default()
        };
        let res = run_with_config(1, config, |b| {
            for _ in 0..100 {
                b.phase_begin("p");
                b.compute(WorkUnit::pure_cpu(1000.0));
                b.phase_end("p");
            }
        });
        assert_eq!(res.trace.len(), 8, "ring buffer must cap retention");
    }

    #[test]
    fn governor_requests_during_transition_are_dropped() {
        // An AppDirected stack with a base point plus a cpuspeed-style
        // storm cannot double-transition: request_transition refuses while
        // one is in flight. Exercise via rapid SetSpeed pairs.
        let cluster = Cluster::paper_testbed(1);
        let mut b = ProgramBuilder::new(0, 1);
        for _ in 0..10 {
            b.set_speed(dvfs::AppSpeedRequest::Lowest);
            b.set_speed(dvfs::AppSpeedRequest::Restore);
        }
        b.compute(WorkUnit::pure_cpu(1.4e6));
        let governors: Vec<Box<dyn Governor>> =
            vec![Box::new(dvfs::AppDirectedGovernor::with_base(4))];
        let res = Engine::new(cluster, vec![b.build()], governors, EngineConfig::default()).run();
        assert_eq!(res.transitions[0], 20);
        // Each transition stalls 10 us; total stall is accounted.
        assert!((res.breakdown[0].transition.as_secs_f64() - 20.0 * 10e-6).abs() < 1e-9);
    }

    #[test]
    fn self_message_uses_loopback() {
        // A rank sending to itself must complete (loopback flow), quickly.
        let res = run_with_config(1, EngineConfig::default(), |b| {
            b.isend(0, 1024, 1);
            b.recv(0, 1024, 1);
            b.wait_all(0);
        });
        assert!(res.duration_secs() < 0.01, "{}", res.duration_secs());
    }

    #[test]
    fn zero_length_program_finishes_instantly() {
        let res = run_with_config(3, EngineConfig::default(), |_| {});
        assert_eq!(res.duration, SimDuration::ZERO);
        assert_eq!(res.total_energy_j(), 0.0);
    }

    #[test]
    fn blocked_waiter_resumes_through_halt() {
        // A rank that blocked (PollThenBlock) must wake when the message
        // lands, and the blocked time must be charged as wait_blocked.
        let config = EngineConfig {
            wait_policy: WaitPolicy::PollThenBlock(SimDuration::from_millis(1)),
            ..EngineConfig::default()
        };
        let res = run_with_config(2, config, |b| {
            if b.rank() == 0 {
                b.compute(WorkUnit::pure_cpu(1.4e9)); // 1 s
                b.send(1, 64, 1);
            } else {
                b.recv(0, 64, 1);
            }
        });
        assert!(res.breakdown[1].wait_blocked.as_secs_f64() > 0.99);
        assert!(res.breakdown[1].wait_busy.as_secs_f64() < 0.002);
        assert!((res.duration_secs() - 1.0).abs() < 0.01);
    }
}

mod shard_and_topology_tests {
    use super::*;
    use crate::program::ProgramBuilder;
    use dvfs::StaticGovernor;
    use mem_model::WorkUnit;
    use net_model::Topology;

    fn static_govs(n: usize) -> Vec<Box<dyn Governor>> {
        (0..n)
            .map(|_| Box::new(StaticGovernor::pinned(4)) as Box<dyn Governor>)
            .collect()
    }

    /// A workload shaped to exercise the shard planner: the boot epoch
    /// batches every rank's first compute at t=0, the stall-tailed
    /// identical computes line up same-time `PhaseDone` runs, and the
    /// ring exchanges interleave network events between epochs.
    fn epochal_programs(n: usize) -> Vec<Program> {
        (0..n)
            .map(|r| {
                let mut b = ProgramBuilder::new(r, n);
                for iter in 0..3 {
                    // Identical across ranks: same-time phase boundaries.
                    b.compute(WorkUnit {
                        cpu_cycles: 2.0e8,
                        l2_accesses: 1.0e6,
                        dram_accesses: 5.0e5,
                    });
                    // Rank-skewed: staggers the following exchange.
                    b.compute(WorkUnit::pure_cpu(1.0e7 * (r + 1) as f64));
                    b.sendrecv(
                        (r + 1) % n,
                        1024,
                        10 + iter,
                        (r + n - 1) % n,
                        1024,
                        10 + iter,
                    );
                    b.allreduce(64);
                }
                b.build()
            })
            .collect()
    }

    fn run_epochal(n: usize, shards: usize, topology: Topology) -> RunResult {
        let config = EngineConfig {
            metrics: true,
            trace_capacity: 1 << 12,
            sample_interval: Some(SimDuration::from_millis(10)),
            shards,
            topology,
            ..EngineConfig::default()
        };
        Engine::new(
            Cluster::paper_testbed(n),
            epochal_programs(n),
            static_govs(n),
            config,
        )
        .run()
    }

    #[test]
    fn sharded_run_is_bit_identical_to_sequential() {
        let baseline = run_epochal(8, 1, Topology::Flat);
        for shards in [2, 3, 8, 64] {
            let sharded = run_epochal(8, shards, Topology::Flat);
            assert!(
                sharded == baseline,
                "shards={shards} diverged from the sequential engine"
            );
        }
    }

    #[test]
    fn sharded_run_is_bit_identical_on_fat_tree() {
        let topo = Topology::parse("fat-tree:radix=4,oversub=2").unwrap();
        let baseline = run_epochal(8, 1, topo);
        let sharded = run_epochal(8, 8, topo);
        assert!(sharded == baseline, "sharding must not affect tree mode");
    }

    #[test]
    fn solver_domain_counters_are_always_published() {
        // A flat run does no domain work, but the counters still exist
        // (at zero) so output diffs never depend on solver activity.
        let flat = run_epochal(4, 1, Topology::Flat);
        let flat_m = flat.metrics.as_ref().unwrap();
        assert_eq!(flat_m.counter("net.solver.domains_touched"), Some(0));
        assert_eq!(flat_m.counter("net.solver.domains_skipped"), Some(0));

        let topo = Topology::parse("fat-tree:radix=2").unwrap();
        let tree = run_epochal(4, 1, topo);
        let tree_m = tree.metrics.as_ref().unwrap();
        // Tiny messages rarely overlap on a link, so most (sometimes
        // all) domain updates leave the quantized share untouched; the
        // counters must exist and show activity either way.
        let touched = tree_m.counter("net.solver.domains_touched").unwrap_or(0);
        let skipped = tree_m.counter("net.solver.domains_skipped").unwrap_or(0);
        assert!(touched + skipped > 0, "tree mode must track link domains");
    }

    #[test]
    fn fat_tree_oversubscription_slows_cross_leaf_traffic() {
        // All-to-all over an oversubscribed trunk must take longer than
        // on the flat single switch; the compute part is identical.
        let flat = run_epochal(8, 1, Topology::Flat);
        let tree = run_epochal(8, 1, Topology::parse("fat-tree:radix=2,oversub=4").unwrap());
        assert!(
            tree.duration > flat.duration,
            "oversub=4 tree {:?} should be slower than flat {:?}",
            tree.duration,
            flat.duration
        );
    }
}
