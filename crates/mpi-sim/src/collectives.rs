//! Collective algorithms lowered to point-to-point operations.
//!
//! These are the algorithms MPICH-1.2.5 shipped: dissemination barrier,
//! binomial-tree broadcast and reduce, linear gather, and pairwise-exchange
//! (power-of-two) / ring (general) all-to-all. Each function appends the
//! *calling rank's* part of the collective to its [`ProgramBuilder`]; when
//! every rank of the job runs its lowered sequence, the message pattern is
//! exactly the collective's.
//!
//! Correctness of the lowering is tested here structurally (per-rank
//! send/recv multisets match across the job) and end-to-end in the engine
//! tests (all lowered collectives complete without deadlock and with the
//! right synchronization semantics).

use mem_model::WorkUnit;

use crate::program::{ProgramBuilder, Rank, Tag};

/// Payload used for barrier notifications (an empty MPI message still
/// carries an envelope on the wire).
const BARRIER_BYTES: u64 = 64;

/// Core cycles to combine one byte in a reduction (sum of doubles: one
/// flop per 8 bytes plus load/store).
const REDUCE_CYCLES_PER_BYTE: f64 = 0.5;

/// Dissemination barrier: ceil(log2 n) rounds; in round `k`, rank `r`
/// sends to `(r + 2^k) mod n` and receives from `(r - 2^k) mod n`.
pub fn barrier(b: &mut ProgramBuilder) {
    let n = b.size();
    if n == 1 {
        return;
    }
    let r = b.rank();
    let tag = b.next_collective_tag();
    let mut k = 0u32;
    while (1usize << k) < n {
        let dist = 1usize << k;
        let dst = (r + dist) % n;
        let src = (r + n - dist) % n;
        b.sendrecv(dst, BARRIER_BYTES, tag + k, src, BARRIER_BYTES, tag + k);
        k += 1;
    }
}

/// Binomial-tree broadcast of `bytes` from `root`.
pub fn bcast(b: &mut ProgramBuilder, root: Rank, bytes: u64) {
    let n = b.size();
    assert!(root < n, "bcast root out of range");
    if n == 1 {
        return;
    }
    let tag = b.next_collective_tag();
    let relative = (b.rank() + n - root) % n;
    let abs = |rel: usize| (rel + root) % n;

    // Receive phase: a non-root rank receives from the rank that differs
    // in its lowest set bit.
    let mut mask = 1usize;
    while mask < n {
        if relative & mask != 0 {
            b.recv(abs(relative - mask), bytes, tag);
            break;
        }
        mask <<= 1;
    }
    // Send phase: forward down the subtree. A rank's children are at
    // offsets equal to every bit below the one it received at (all of
    // which are clear in `relative`, its lowest set bit being the
    // receive bit).
    mask >>= 1;
    while mask > 0 {
        if relative + mask < n && relative & mask == 0 {
            b.send(abs(relative + mask), bytes, tag);
        }
        mask >>= 1;
    }
}

/// Binomial-tree reduction of `bytes` to `root`; each merge charges the
/// combine cost as compute.
pub fn reduce(b: &mut ProgramBuilder, root: Rank, bytes: u64) {
    let n = b.size();
    assert!(root < n, "reduce root out of range");
    if n == 1 {
        return;
    }
    let tag = b.next_collective_tag();
    let relative = (b.rank() + n - root) % n;
    let abs = |rel: usize| (rel + root) % n;

    let mut mask = 1usize;
    while mask < n {
        if relative & mask == 0 {
            let peer = relative | mask;
            if peer < n {
                b.recv(abs(peer), bytes, tag);
                b.compute(WorkUnit::pure_cpu(bytes as f64 * REDUCE_CYCLES_PER_BYTE));
            }
        } else {
            b.send(abs(relative - mask), bytes, tag);
            break;
        }
        mask <<= 1;
    }
}

/// Linear gather: every non-root rank sends `bytes` to `root`; the root
/// receives from every other rank in rank order.
pub fn gather(b: &mut ProgramBuilder, root: Rank, bytes: u64) {
    let n = b.size();
    assert!(root < n, "gather root out of range");
    if n == 1 {
        return;
    }
    let tag = b.next_collective_tag();
    if b.rank() == root {
        for src in 0..n {
            if src != root {
                b.recv(src, bytes, tag);
            }
        }
    } else {
        b.send(root, bytes, tag);
    }
}

/// Binomial-tree scatter: the root starts holding `bytes_per_rank` for
/// every rank and forwards each subtree's share down the same tree
/// broadcast uses — so the payload halves at every level.
pub fn scatter(b: &mut ProgramBuilder, root: Rank, bytes_per_rank: u64) {
    let n = b.size();
    assert!(root < n, "scatter root out of range");
    if n == 1 {
        return;
    }
    let tag = b.next_collective_tag();
    let relative = (b.rank() + n - root) % n;
    let abs = |rel: usize| (rel + root) % n;
    // Subtree rooted at `rel` when entered via bit `mask` spans
    // min(mask, n - rel) ranks.
    let subtree = |rel: usize, mask: usize| mask.min(n - rel) as u64;

    // Receive this rank's subtree payload from the parent.
    let mut mask = 1usize;
    while mask < n {
        if relative & mask != 0 {
            let payload = subtree(relative, mask) * bytes_per_rank;
            b.recv(abs(relative - mask), payload, tag);
            break;
        }
        mask <<= 1;
    }
    // Forward children's shares.
    mask >>= 1;
    while mask > 0 {
        if relative + mask < n && relative & mask == 0 {
            let payload = subtree(relative + mask, mask) * bytes_per_rank;
            b.send(abs(relative + mask), payload, tag);
        }
        mask >>= 1;
    }
}

/// Allgather: recursive doubling for power-of-two sizes (round `k`
/// exchanges `2^k · bytes` with `rank XOR 2^k`), ring otherwise
/// (`n-1` rounds passing one block to the right neighbour).
pub fn allgather(b: &mut ProgramBuilder, bytes_per_rank: u64) {
    let n = b.size();
    if n == 1 {
        return;
    }
    let r = b.rank();
    let tag = b.next_collective_tag();
    if n.is_power_of_two() {
        let mut k = 0u32;
        while (1usize << k) < n {
            let dist = 1usize << k;
            let partner = r ^ dist;
            let payload = dist as u64 * bytes_per_rank;
            b.sendrecv(partner, payload, tag + k, partner, payload, tag + k);
            k += 1;
        }
    } else {
        let dst = (r + 1) % n;
        let src = (r + n - 1) % n;
        for round in 0..(n - 1) as u32 {
            b.sendrecv(
                dst,
                bytes_per_rank,
                tag + round,
                src,
                bytes_per_rank,
                tag + round,
            );
        }
    }
}

/// Complete exchange of `bytes_per_pair` between every rank pair.
///
/// Power-of-two sizes use pairwise exchange (round `r`: partner =
/// `rank XOR r`, perfectly disjoint pairs that saturate every link's full
/// duplex); other sizes use the ring schedule (round `r`: send to
/// `rank + r`, receive from `rank - r`). The rank-to-self block is a local
/// copy and charges only its copy cost.
pub fn alltoall(b: &mut ProgramBuilder, bytes_per_pair: u64) {
    let n = b.size();
    if n == 1 {
        return;
    }
    let r = b.rank();
    let tag = b.next_collective_tag();
    // Local block: copy cost only.
    b.compute(b.msg_cost(bytes_per_pair));

    if n.is_power_of_two() {
        for round in 1..n {
            let partner = r ^ round;
            b.sendrecv(
                partner,
                bytes_per_pair,
                tag + round as Tag,
                partner,
                bytes_per_pair,
                tag + round as Tag,
            );
        }
    } else {
        for round in 1..n {
            let dst = (r + round) % n;
            let src = (r + n - round) % n;
            b.sendrecv(
                dst,
                bytes_per_pair,
                tag + round as Tag,
                src,
                bytes_per_pair,
                tag + round as Tag,
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::{Op, Program};

    /// Build all ranks' programs for a closure over the builder.
    fn lower_all(n: usize, f: impl Fn(&mut ProgramBuilder)) -> Vec<Program> {
        (0..n)
            .map(|r| {
                let mut b = ProgramBuilder::new(r, n);
                f(&mut b);
                b.build()
            })
            .collect()
    }

    /// Collect (src, dst, tag, bytes) for every send and the matching
    /// multiset for every recv across the job; they must be identical for
    /// the pattern to complete.
    type Sends = Vec<(usize, usize, Tag, u64)>;
    type Recvs = Vec<(usize, usize, Tag)>;

    fn matched_sends_recvs(programs: &[Program]) -> (Sends, Recvs) {
        let mut sends = Vec::new();
        let mut recvs = Vec::new();
        for (rank, p) in programs.iter().enumerate() {
            for op in p.ops() {
                match op {
                    Op::Send { dst, bytes, tag } => sends.push((rank, *dst, *tag, *bytes)),
                    Op::Recv { src, tag } => recvs.push((*src, rank, *tag)),
                    Op::SendRecv {
                        dst,
                        send_bytes,
                        send_tag,
                        src,
                        recv_tag,
                    } => {
                        sends.push((rank, *dst, *send_tag, *send_bytes));
                        recvs.push((*src, rank, *recv_tag));
                    }
                    _ => {}
                }
            }
        }
        (sends, recvs)
    }

    fn assert_pattern_closed(programs: &[Program]) {
        let (sends, recvs) = matched_sends_recvs(programs);
        let mut s: Vec<(usize, usize, Tag)> = sends.iter().map(|&(a, b, t, _)| (a, b, t)).collect();
        let mut r = recvs.clone();
        s.sort_unstable();
        r.sort_unstable();
        assert_eq!(s, r, "every send needs exactly one matching recv");
    }

    #[test]
    fn barrier_pattern_is_closed_for_all_sizes() {
        for n in 1..=9 {
            assert_pattern_closed(&lower_all(n, |b| {
                barrier(b);
            }));
        }
    }

    #[test]
    fn barrier_rounds_are_logarithmic() {
        let p = lower_all(8, |b| {
            barrier(b);
        });
        let exchanges = p[0]
            .ops()
            .iter()
            .filter(|op| matches!(op, Op::SendRecv { .. }))
            .count();
        assert_eq!(exchanges, 3); // log2(8)
    }

    #[test]
    fn bcast_pattern_is_closed_for_all_sizes_and_roots() {
        for n in 1..=9 {
            for root in 0..n {
                assert_pattern_closed(&lower_all(n, |b| {
                    bcast(b, root, 4096);
                }));
            }
        }
    }

    #[test]
    fn bcast_root_only_sends_leaf_only_receives() {
        let p = lower_all(8, |b| {
            bcast(b, 2, 100);
        });
        assert!(!p[2].ops().iter().any(|op| matches!(op, Op::Recv { .. })));
        // Rank (2+7)%8 = 1 is the deepest leaf: receives once, sends never.
        assert!(!p[1].ops().iter().any(|op| matches!(op, Op::Send { .. })));
    }

    #[test]
    fn reduce_pattern_is_closed_for_all_sizes_and_roots() {
        for n in 1..=9 {
            for root in 0..n {
                assert_pattern_closed(&lower_all(n, |b| {
                    reduce(b, root, 4096);
                }));
            }
        }
    }

    #[test]
    fn reduce_charges_combine_work_at_receivers() {
        let p = lower_all(4, |b| {
            reduce(b, 0, 8000);
        });
        // Root merges log2(4) = 2 partial results.
        let computes = p[0]
            .ops()
            .iter()
            .filter(|op| matches!(op, Op::Compute(_)))
            .count();
        // recv cost + combine per merge = 2 computes per merge.
        assert_eq!(computes, 4);
    }

    #[test]
    fn gather_pattern_is_closed() {
        for n in 2..=6 {
            assert_pattern_closed(&lower_all(n, |b| {
                gather(b, 0, 1024);
            }));
        }
    }

    #[test]
    fn gather_root_receives_n_minus_one() {
        let p = lower_all(15, |b| {
            gather(b, 0, 1024);
        });
        let recvs = p[0]
            .ops()
            .iter()
            .filter(|op| matches!(op, Op::Recv { .. }))
            .count();
        assert_eq!(recvs, 14);
    }

    #[test]
    fn scatter_pattern_is_closed_for_all_sizes_and_roots() {
        for n in 1..=9 {
            for root in 0..n {
                assert_pattern_closed(&lower_all(n, |b| {
                    scatter(b, root, 1000);
                }));
            }
        }
    }

    #[test]
    fn scatter_volume_halves_down_the_tree() {
        let p = lower_all(8, |b| {
            scatter(b, 0, 100);
        });
        // Root sends subtree shares: 4, 2, 1 ranks worth.
        let root_sends: Vec<u64> = p[0]
            .ops()
            .iter()
            .filter_map(|op| match op {
                Op::Send { bytes, .. } => Some(*bytes),
                _ => None,
            })
            .collect();
        assert_eq!(root_sends, vec![400, 200, 100]);
        // The deepest leaf receives exactly its own share.
        let leaf_recv_cost: Vec<&Op> = p[7]
            .ops()
            .iter()
            .filter(|op| matches!(op, Op::Recv { .. }))
            .collect();
        assert_eq!(leaf_recv_cost.len(), 1);
    }

    #[test]
    fn scatter_non_pow2_total_volume_conserved() {
        // Across all ranks, received payload must equal (n-1) own shares
        // plus forwarded subtree traffic; check sends == recvs by bytes.
        for n in [3usize, 5, 6, 7] {
            let p = lower_all(n, |b| {
                scatter(b, 0, 10);
            });
            let (sends, _recvs) = matched_sends_recvs(&p);
            let sent: u64 = sends.iter().map(|&(_, _, _, b)| b).sum();
            // Every non-root rank's subtree share crosses exactly one link
            // on its way down, so total bytes = sum of subtree sizes at
            // each transfer >= (n-1) shares.
            assert!(sent >= (n as u64 - 1) * 10, "n={n}: sent {sent}");
        }
    }

    #[test]
    fn allgather_pattern_is_closed_pow2_and_ring() {
        for n in [1usize, 2, 4, 8, 3, 5, 15] {
            assert_pattern_closed(&lower_all(n, |b| {
                allgather(b, 4096);
            }));
        }
    }

    #[test]
    fn allgather_recursive_doubling_volume() {
        let p = lower_all(8, |b| {
            allgather(b, 100);
        });
        // Each rank sends 100 + 200 + 400 = (n-1)*100 bytes total.
        assert_eq!(p[0].bytes_sent(), 700);
        let rounds = p[0]
            .ops()
            .iter()
            .filter(|op| matches!(op, Op::SendRecv { .. }))
            .count();
        assert_eq!(rounds, 3);
    }

    #[test]
    fn allgather_ring_takes_n_minus_one_rounds() {
        let p = lower_all(5, |b| {
            allgather(b, 100);
        });
        let rounds = p[2]
            .ops()
            .iter()
            .filter(|op| matches!(op, Op::SendRecv { .. }))
            .count();
        assert_eq!(rounds, 4);
        assert_eq!(p[2].bytes_sent(), 400);
    }

    #[test]
    fn alltoall_pattern_is_closed_pow2_and_ring() {
        for n in [2usize, 4, 8, 3, 5, 15] {
            assert_pattern_closed(&lower_all(n, |b| {
                alltoall(b, 4096);
            }));
        }
    }

    #[test]
    fn alltoall_pow2_uses_disjoint_pairs() {
        // In each round of the XOR schedule, partners are symmetric:
        // partner(partner(r)) == r.
        for n in [2usize, 4, 8, 16] {
            for round in 1..n {
                for r in 0..n {
                    assert_eq!((r ^ round) ^ round, r);
                    assert!(r ^ round < n);
                }
            }
        }
    }

    #[test]
    fn alltoall_exchanges_with_every_peer_exactly_once() {
        let p = lower_all(8, |b| {
            alltoall(b, 10);
        });
        for (rank, prog) in p.iter().enumerate() {
            let mut partners: Vec<usize> = prog
                .ops()
                .iter()
                .filter_map(|op| match op {
                    Op::SendRecv { dst, .. } => Some(*dst),
                    _ => None,
                })
                .collect();
            partners.sort_unstable();
            let expect: Vec<usize> = (0..8).filter(|&x| x != rank).collect();
            assert_eq!(partners, expect);
        }
    }

    #[test]
    fn single_rank_collectives_are_empty_or_local() {
        let p = lower_all(1, |b| {
            barrier(b);
            bcast(b, 0, 100);
            reduce(b, 0, 100);
            gather(b, 0, 100);
        });
        assert!(p[0].is_empty());
    }
}
