//! # mpi-sim — the MPI runtime and simulation engine
//!
//! The MPICH-1.2.5 analog: per-rank programs of compute and message
//! operations, an eager/rendezvous point-to-point protocol over the fluid
//! network, collective algorithms lowered to point-to-point at program
//! build time, and the discrete-event engine that couples programs,
//! network, power meters, and DVFS governors into one deterministic
//! simulation.
//!
//! Layering:
//!
//! * [`program`] — [`Op`]s and the [`ProgramBuilder`], which injects the
//!   frequency-scaled software cost of each message (stack overhead +
//!   copies) as explicit compute work, exactly the part of communication
//!   DVFS slows down;
//! * [`collectives`] — barrier (dissemination), broadcast/reduce (binomial
//!   tree), all-to-all (pairwise exchange / ring), gather — the algorithms
//!   MPICH used, lowered to sends and receives;
//! * [`engine`] — the simulator: rank state machines, message matching,
//!   busy-wait/block wait accounting, DVFS transitions with their 10 µs
//!   stall, governor ticks, and periodic power sampling.
//!
//! ```
//! use cluster_sim::Cluster;
//! use dvfs::{Governor, StaticGovernor};
//! use mem_model::WorkUnit;
//! use mpi_sim::{Engine, EngineConfig, Program, ProgramBuilder};
//!
//! // Two ranks: rank 0 computes then sends; rank 1 receives.
//! let programs: Vec<Program> = (0..2)
//!     .map(|rank| {
//!         let mut b = ProgramBuilder::new(rank, 2);
//!         if rank == 0 {
//!             b.compute(WorkUnit::pure_cpu(1.4e8)); // 0.1 s at 1.4 GHz
//!             b.send(1, 64 * 1024, 0);
//!         } else {
//!             b.recv(0, 64 * 1024, 0);
//!         }
//!         b.build()
//!     })
//!     .collect();
//! let governors: Vec<Box<dyn Governor>> = (0..2)
//!     .map(|_| Box::new(StaticGovernor::performance()) as Box<dyn Governor>)
//!     .collect();
//! let result = Engine::new(
//!     Cluster::paper_testbed(2),
//!     programs,
//!     governors,
//!     EngineConfig::default(),
//! )
//! .run();
//! assert!(result.duration_secs() > 0.1);
//! assert!(result.total_energy_j() > 0.0);
//! ```

pub mod collectives;
pub mod config;
pub mod engine;
#[cfg(test)]
mod engine_tests;
mod faults;
pub mod program;
pub mod result;

pub use config::{EngineConfig, MsgCostModel, WaitPolicy};
pub use engine::Engine;
pub use program::{Op, Program, ProgramBuilder, Rank, Tag};
pub use result::{RankBreakdown, RunResult, SampleRow};
// The cluster-level strategy layer the engine drives (dvfs crate): one
// controller per run, classic per-node governors wrapped under it.
pub use dvfs::{CapPolicy, ClusterController, Decision, PerNodeGovernors, PowerCapController};
// Causal-observability types: the log the engine records behind
// [`EngineConfig::causal`] (sim-core) and the attribution summary the
// obs solver derives from it at finalize, both carried on [`RunResult`].
pub use obs::RunAttribution;
pub use sim_core::CausalLog;
// Fault-injection types come from sim-core; re-exported here because they
// are configured through [`EngineConfig::faults`] and reported through
// [`RunResult::faults`].
pub use sim_core::{Fault, FaultCounts, FaultSpec};
// The interconnect shape is configured through [`EngineConfig::topology`];
// re-exported so engine users need not depend on net-model directly.
pub use net_model::Topology;
