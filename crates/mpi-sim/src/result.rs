//! Simulation outputs.

use obs::{MetricsRegistry, RunAttribution};
use power_model::EnergyReport;
use sim_core::{CausalLog, FaultCounts, SimDuration, SimTime, TraceEvent};

/// One periodic sample of cluster state (the engine's measurement tap;
/// the `powerpack` crate turns these into ACPI/Baytech-style readings).
#[derive(Debug, Clone, PartialEq)]
pub struct SampleRow {
    /// Sample timestamp.
    pub time: SimTime,
    /// Instantaneous per-node power, watts.
    pub node_power_w: Vec<f64>,
    /// Cumulative per-node ground-truth energy, joules.
    pub node_energy_j: Vec<f64>,
    /// Per-node operating frequency, MHz.
    pub node_mhz: Vec<u32>,
    /// Per-node quantized ACPI battery reading, mWh.
    pub node_battery_mwh: Vec<u64>,
}

/// Where one rank's wall-clock time went.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RankBreakdown {
    /// CPU-active compute (frequency-scaled work).
    pub compute: SimDuration,
    /// Stalled on DRAM.
    pub mem_stall: SimDuration,
    /// Busy-wait polling for messages.
    pub wait_busy: SimDuration,
    /// Blocked (idle) waiting for messages.
    pub wait_blocked: SimDuration,
    /// Stalled in DVFS transitions.
    pub transition: SimDuration,
}

impl RankBreakdown {
    /// Total accounted time.
    pub fn total(&self) -> SimDuration {
        self.compute + self.mem_stall + self.wait_busy + self.wait_blocked + self.transition
    }

    /// Fraction of accounted time spent in frequency-scaled compute —
    /// the "CPU efficiency" whose deficit is the paper's DVS opportunity.
    pub fn compute_fraction(&self) -> f64 {
        self.compute.ratio(self.total())
    }
}

/// The result of one simulated application run.
#[derive(Debug, Clone, PartialEq)]
#[must_use]
pub struct RunResult {
    /// Wall-clock time from start to the last rank's completion.
    pub duration: SimDuration,
    /// Per-node energy by component over the run.
    pub per_node: Vec<EnergyReport>,
    /// Cluster-wide energy by component.
    pub total: EnergyReport,
    /// Per-rank time breakdown.
    pub breakdown: Vec<RankBreakdown>,
    /// DVFS transitions performed per node.
    pub transitions: Vec<u64>,
    /// Periodic samples (empty unless sampling was enabled).
    pub samples: Vec<SampleRow>,
    /// Structured trace (phase markers, frequency changes, message
    /// lifecycles); empty unless `trace_capacity` was set.
    pub trace: Vec<TraceEvent>,
    /// Events the bounded trace discarded under capacity pressure. The
    /// retained `trace` plus this count covers every record attempt.
    pub trace_dropped: u64,
    /// Per-node cpufreq `time_in_state`: `(mhz, residency)` per ladder
    /// point, summing to the run duration.
    pub freq_residency: Vec<Vec<(u32, SimDuration)>>,
    /// Discrete events the engine dispatched during the run — the
    /// simulator's work metric (events / wall-clock second is the
    /// benchmark throughput figure).
    pub events: u64,
    /// How many faults the engine injected (and measurement errors it
    /// degraded) during the run. All-zero unless
    /// [`crate::EngineConfig::faults`] armed something.
    pub faults: FaultCounts,
    /// PowerScope metrics collected during the run; `None` unless
    /// [`crate::EngineConfig::metrics`] was set.
    pub metrics: Option<MetricsRegistry>,
    /// Causal dependency log (message lifecycles, released waits with
    /// their releasing completions, DVFS edges); `None` unless
    /// [`crate::EngineConfig::causal`] was set.
    pub causal: Option<CausalLog>,
    /// Critical-path and per-rank time/energy attribution computed from
    /// the causal log at finalize; `None` unless
    /// [`crate::EngineConfig::causal`] was set.
    pub attribution: Option<RunAttribution>,
}

impl RunResult {
    /// Total cluster energy, joules.
    pub fn total_energy_j(&self) -> f64 {
        self.total.total_j()
    }

    /// Run duration, seconds.
    pub fn duration_secs(&self) -> f64 {
        self.duration.as_secs_f64()
    }

    /// Cluster-average power over the run, watts.
    pub fn average_power_w(&self) -> f64 {
        let d = self.duration_secs();
        if d <= 0.0 {
            0.0
        } else {
            self.total_energy_j() / d
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn breakdown_totals_and_fraction() {
        let b = RankBreakdown {
            compute: SimDuration::from_secs(2),
            mem_stall: SimDuration::from_secs(1),
            wait_busy: SimDuration::from_secs(5),
            wait_blocked: SimDuration::ZERO,
            transition: SimDuration::ZERO,
        };
        assert_eq!(b.total(), SimDuration::from_secs(8));
        assert!((b.compute_fraction() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn run_result_derived_metrics() {
        let r = RunResult {
            duration: SimDuration::from_secs(10),
            per_node: vec![],
            total: EnergyReport {
                base_j: 300.0,
                ..EnergyReport::default()
            },
            breakdown: vec![],
            transitions: vec![],
            samples: vec![],
            trace: vec![],
            trace_dropped: 0,
            freq_residency: vec![],
            events: 0,
            faults: Default::default(),
            metrics: None,
            causal: None,
            attribution: None,
        };
        assert_eq!(r.total_energy_j(), 300.0);
        assert_eq!(r.duration_secs(), 10.0);
        assert_eq!(r.average_power_w(), 30.0);
    }

    #[test]
    fn zero_duration_average_power_is_zero() {
        let r = RunResult {
            duration: SimDuration::ZERO,
            per_node: vec![],
            total: EnergyReport::default(),
            breakdown: vec![],
            transitions: vec![],
            samples: vec![],
            trace: vec![],
            trace_dropped: 0,
            freq_residency: vec![],
            events: 0,
            faults: Default::default(),
            metrics: None,
            causal: None,
            attribution: None,
        };
        assert_eq!(r.average_power_w(), 0.0);
    }
}
