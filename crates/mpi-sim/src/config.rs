//! Engine and message-cost configuration.

use net_model::Topology;
use sim_core::{FaultSpec, SimDuration};

/// The frequency-scaled CPU cost of sending or receiving one message —
/// the MPI software stack the DVS literature calls the "communication
/// computation". MPICH-1.2.5 over TCP pays protocol bookkeeping per
/// message plus multiple buffer copies per byte.
#[derive(Debug, Clone)]
pub struct MsgCostModel {
    /// Core cycles of fixed per-message overhead at each end (envelope
    /// handling, matching, syscall entry).
    pub per_msg_cycles: f64,
    /// Core cycles per payload byte at each end (user→MPICH→socket copies,
    /// TCP checksum).
    pub cycles_per_byte: f64,
    /// Payload size above which copies stream through DRAM (the buffer no
    /// longer fits in the on-die L2), adding frequency-invariant stall
    /// time per cache line.
    pub dram_copy_threshold: u64,
}

impl Default for MsgCostModel {
    fn default() -> Self {
        MsgCostModel {
            per_msg_cycles: 6_000.0,
            cycles_per_byte: 2.0,
            dram_copy_threshold: 512 * 1024,
        }
    }
}

/// What a blocked rank does while it waits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WaitPolicy {
    /// Spin in the progress engine forever — MPICH-1.2.5's ch_p4 behaviour
    /// and the paper's platform default. `/proc/stat` reads 100% busy.
    BusyPoll,
    /// Spin for the given window, then block in the kernel (idle). Models
    /// interrupt-driven transports; used by ablation benches to show how
    /// the cpuspeed result depends on wait visibility.
    PollThenBlock(SimDuration),
}

/// Engine-wide configuration.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Messages at or below this size are sent eagerly (flow starts without
    /// the receiver having posted); larger ones use rendezvous.
    pub eager_threshold: u64,
    /// Wait behaviour of blocked ranks.
    pub wait_policy: WaitPolicy,
    /// Periodic power/energy sampling interval, `None` to disable.
    pub sample_interval: Option<SimDuration>,
    /// Capacity of the in-memory trace (0 disables tracing).
    pub trace_capacity: usize,
    /// Collect engine metrics (event counts, queue stats, message latency
    /// histograms, DVFS decision counters) into
    /// [`crate::RunResult::metrics`]. Off by default: the registry is
    /// passive observation only and never affects simulated behaviour, but
    /// leaving it off keeps the hot path free of even the `Option` checks.
    pub metrics: bool,
    /// Deterministic fault injection. Empty by default; the engine only
    /// builds a fault runtime when at least one fault is armed, so an
    /// empty spec is guaranteed bit-identical to a build without fault
    /// support (the determinism suite checks exactly this).
    pub faults: FaultSpec,
    /// Interconnect shape. [`Topology::Flat`] is the paper's single
    /// switch and keeps the historical flat fluid model bit-for-bit;
    /// a fat-tree routes flows over per-level trunk links with an
    /// oversubscription ratio (see `net_model::Topology`).
    pub topology: Topology,
    /// Record the causal dependency log (message lifecycles, released
    /// waits with their releasing completions, DVFS transition edges,
    /// wait-boundary energy marks) into [`crate::RunResult::causal`] and
    /// compute [`crate::RunResult::attribution`] from it. Off by default:
    /// recording is passive observation in sequential dispatch order and
    /// never affects simulated behaviour, but leaving it off keeps the
    /// hot path free of even the `Option` checks.
    pub causal: bool,
    /// Worker threads for the intra-run sharded planner. Batches of
    /// same-timestamp rank-local events precompute their float plans on
    /// this many threads before the sequential `(time, seq)`-ordered
    /// apply; results are bit-identical at every shard count because
    /// the plan math is the same pure function either way. `1` (or `0`)
    /// plans inline on the event loop thread.
    pub shards: usize,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            eager_threshold: 64 * 1024,
            wait_policy: WaitPolicy::BusyPoll,
            sample_interval: None,
            trace_capacity: 0,
            metrics: false,
            faults: FaultSpec::default(),
            topology: Topology::Flat,
            causal: false,
            shards: 1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_msg_cost_is_microseconds_scale() {
        let m = MsgCostModel::default();
        // Per-message overhead at 1.4 GHz lands in the "dozens of
        // microseconds" range the paper quotes for send+recv pairs.
        let us_per_end = m.per_msg_cycles / 1.4e9 * 1e6;
        assert!(us_per_end > 2.0 && us_per_end < 20.0, "{us_per_end}");
    }

    #[test]
    fn default_engine_config_matches_mpich_p4() {
        let c = EngineConfig::default();
        assert_eq!(c.eager_threshold, 64 * 1024);
        assert_eq!(c.wait_policy, WaitPolicy::BusyPoll);
        assert!(c.sample_interval.is_none());
        assert!(!c.metrics, "metrics collection must be opt-in");
        assert!(c.faults.is_empty(), "fault injection must be opt-in");
        assert_eq!(c.topology, Topology::Flat, "flat switch is the default");
        assert!(!c.causal, "causal tracing must be opt-in");
        assert_eq!(c.shards, 1, "sharded planning must be opt-in");
    }
}
