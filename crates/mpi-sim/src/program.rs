//! Per-rank programs and the builder that assembles them.
//!
//! A [`Program`] is the lowered instruction stream one rank executes:
//! compute segments, point-to-point messages, DVFS requests, and phase
//! markers. Collectives never reach the engine — [`ProgramBuilder`] lowers
//! them to point-to-point operations using MPICH's algorithms (see
//! [`crate::collectives`]) when the program is built, so the engine's
//! semantics stay small and fully testable.
//!
//! The builder also injects each message's *software* cost (stack
//! overhead and buffer copies) as explicit [`Op::Compute`] work. That cost
//! scales with CPU frequency — it is precisely the part of communication
//! that DVFS slows down, and what makes the paper's communication
//! microbenchmark delays rise a few percent at 600 MHz instead of zero.

use dvfs::AppSpeedRequest;
use mem_model::{MemHierarchy, WorkUnit};

use crate::collectives;
use crate::config::MsgCostModel;

/// Rank index within the job (also the node index: one rank per node,
/// as in all the paper's experiments).
pub type Rank = usize;

/// Message tag. User tags must stay below [`ProgramBuilder::COLLECTIVE_TAG_BASE`].
pub type Tag = u32;

/// One lowered operation.
#[derive(Debug, Clone, PartialEq)]
pub enum Op {
    /// Local computation.
    Compute(WorkUnit),
    /// Blocking send of `bytes` to `dst`.
    Send {
        /// Destination rank.
        dst: Rank,
        /// Payload size.
        bytes: u64,
        /// Matching tag.
        tag: Tag,
    },
    /// Blocking receive from `src`.
    Recv {
        /// Source rank.
        src: Rank,
        /// Matching tag.
        tag: Tag,
    },
    /// Simultaneous send+receive (MPI_Sendrecv); completes when both do.
    SendRecv {
        /// Destination of the outgoing message.
        dst: Rank,
        /// Outgoing payload size.
        send_bytes: u64,
        /// Outgoing tag.
        send_tag: Tag,
        /// Source of the incoming message.
        src: Rank,
        /// Incoming tag.
        recv_tag: Tag,
    },
    /// Non-blocking send (MPI_Isend): posts and continues. Completion is
    /// collected by the next [`Op::WaitAll`].
    Isend {
        /// Destination rank.
        dst: Rank,
        /// Payload size.
        bytes: u64,
        /// Matching tag.
        tag: Tag,
    },
    /// Non-blocking receive (MPI_Irecv): posts and continues. Completion
    /// is collected by the next [`Op::WaitAll`].
    Irecv {
        /// Source rank.
        src: Rank,
        /// Matching tag.
        tag: Tag,
    },
    /// Block until every outstanding non-blocking operation completes
    /// (MPI_Waitall over everything posted since the last WaitAll).
    WaitAll,
    /// Application-directed DVFS request (PowerPack `set_speed`).
    SetSpeed(AppSpeedRequest),
    /// Named phase entry, for tracing and profile alignment.
    PhaseBegin(&'static str),
    /// Named phase exit.
    PhaseEnd(&'static str),
}

/// A rank's complete instruction stream.
#[derive(Debug, Clone, Default)]
pub struct Program {
    ops: Vec<Op>,
}

impl Program {
    /// Build a program directly from lowered operations. Low-level: used
    /// by program-rewriting tools (e.g. automatic DVS instrumentation);
    /// ordinary construction goes through [`ProgramBuilder`].
    pub fn from_ops(ops: Vec<Op>) -> Self {
        Program { ops }
    }

    /// The lowered operations in execution order.
    pub fn ops(&self) -> &[Op] {
        &self.ops
    }

    /// Number of operations.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// True for a program with no operations.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Total message payload bytes this rank sends (sends + sendrecv sends).
    pub fn bytes_sent(&self) -> u64 {
        self.ops
            .iter()
            .map(|op| match op {
                Op::Send { bytes, .. } => *bytes,
                Op::SendRecv { send_bytes, .. } => *send_bytes,
                _ => 0,
            })
            .sum()
    }
}

/// Builds one rank's program, lowering collectives and charging message
/// software costs.
#[derive(Debug)]
pub struct ProgramBuilder {
    rank: Rank,
    size: usize,
    cost: MsgCostModel,
    mem: MemHierarchy,
    ops: Vec<Op>,
    collective_epoch: u32,
}

impl ProgramBuilder {
    /// Tags at or above this value are reserved for lowered collectives.
    pub const COLLECTIVE_TAG_BASE: Tag = 0x8000_0000;

    /// A builder for `rank` of a `size`-rank job with default cost model
    /// and the paper's memory hierarchy.
    pub fn new(rank: Rank, size: usize) -> Self {
        ProgramBuilder::with_cost(
            rank,
            size,
            MsgCostModel::default(),
            MemHierarchy::pentium_m_1400(),
        )
    }

    /// Full-control constructor.
    pub fn with_cost(rank: Rank, size: usize, cost: MsgCostModel, mem: MemHierarchy) -> Self {
        assert!(size > 0, "job needs at least one rank");
        assert!(rank < size, "rank {rank} out of range for size {size}");
        ProgramBuilder {
            rank,
            size,
            cost,
            mem,
            ops: Vec::new(),
            collective_epoch: 0,
        }
    }

    /// This builder's rank.
    pub fn rank(&self) -> Rank {
        self.rank
    }

    /// Job size.
    pub fn size(&self) -> usize {
        self.size
    }

    /// The frequency-scaled (plus DRAM, for large payloads) software cost
    /// of one message end.
    pub fn msg_cost(&self, bytes: u64) -> WorkUnit {
        let cpu_cycles = self.cost.per_msg_cycles + bytes as f64 * self.cost.cycles_per_byte;
        if bytes > self.cost.dram_copy_threshold {
            // Copies stream through DRAM: one miss per line at each end.
            let lines = bytes as f64 / self.mem.line_bytes as f64;
            WorkUnit {
                cpu_cycles,
                l2_accesses: lines,
                dram_accesses: lines,
            }
        } else {
            WorkUnit::pure_cpu(cpu_cycles)
        }
    }

    /// Append raw compute work.
    pub fn compute(&mut self, work: WorkUnit) -> &mut Self {
        if !work.is_zero() {
            self.ops.push(Op::Compute(work));
        }
        self
    }

    /// Append a blocking send (software cost + wire operation).
    pub fn send(&mut self, dst: Rank, bytes: u64, tag: Tag) -> &mut Self {
        assert!(dst < self.size, "send dst {dst} out of range");
        self.compute(self.msg_cost(bytes));
        self.ops.push(Op::Send { dst, bytes, tag });
        self
    }

    /// Append a blocking receive (wire operation + software cost; the
    /// expected payload size must be supplied to price the receive copy).
    pub fn recv(&mut self, src: Rank, bytes: u64, tag: Tag) -> &mut Self {
        assert!(src < self.size, "recv src {src} out of range");
        self.ops.push(Op::Recv { src, tag });
        self.compute(self.msg_cost(bytes));
        self
    }

    /// Append a simultaneous exchange.
    #[allow(clippy::too_many_arguments)]
    pub fn sendrecv(
        &mut self,
        dst: Rank,
        send_bytes: u64,
        send_tag: Tag,
        src: Rank,
        recv_bytes: u64,
        recv_tag: Tag,
    ) -> &mut Self {
        assert!(
            dst < self.size && src < self.size,
            "sendrecv peer out of range"
        );
        self.compute(self.msg_cost(send_bytes));
        self.ops.push(Op::SendRecv {
            dst,
            send_bytes,
            send_tag,
            src,
            recv_tag,
        });
        self.compute(self.msg_cost(recv_bytes));
        self
    }

    /// Append a non-blocking send; its software cost is still charged
    /// inline (the copy happens at post time).
    pub fn isend(&mut self, dst: Rank, bytes: u64, tag: Tag) -> &mut Self {
        assert!(dst < self.size, "isend dst {dst} out of range");
        self.compute(self.msg_cost(bytes));
        self.ops.push(Op::Isend { dst, bytes, tag });
        self
    }

    /// Append a non-blocking receive; the receive-side copy cost is
    /// charged at the matching [`ProgramBuilder::wait_all`].
    pub fn irecv(&mut self, src: Rank, tag: Tag) -> &mut Self {
        assert!(src < self.size, "irecv src {src} out of range");
        self.ops.push(Op::Irecv { src, tag });
        self
    }

    /// Wait for all outstanding non-blocking operations, charging
    /// `recv_copy_bytes` of receive-side copy cost afterwards (the sum of
    /// the posted irecvs' payloads).
    pub fn wait_all(&mut self, recv_copy_bytes: u64) -> &mut Self {
        self.ops.push(Op::WaitAll);
        self.compute(self.msg_cost_bytes_only(recv_copy_bytes));
        self
    }

    /// Copy-only cost (no per-message overhead), for aggregate receive
    /// copies after a waitall.
    fn msg_cost_bytes_only(&self, bytes: u64) -> WorkUnit {
        if bytes == 0 {
            return WorkUnit::ZERO;
        }
        let cpu_cycles = bytes as f64 * self.cost.cycles_per_byte;
        if bytes > self.cost.dram_copy_threshold {
            let lines = bytes as f64 / self.mem.line_bytes as f64;
            WorkUnit {
                cpu_cycles,
                l2_accesses: lines,
                dram_accesses: lines,
            }
        } else {
            WorkUnit::pure_cpu(cpu_cycles)
        }
    }

    /// Flood-style all-to-all (how MPI_Alltoall is implemented on fully
    /// connected fabrics): post every irecv and isend at once, then wait.
    /// Contrast with [`ProgramBuilder::alltoall`]'s round-structured
    /// pairwise exchange.
    pub fn alltoall_nonblocking(&mut self, bytes_per_pair: u64) -> &mut Self {
        let n = self.size;
        if n == 1 {
            return self;
        }
        let r = self.rank;
        let tag = self.next_collective_tag();
        // Local block copy.
        self.compute(self.msg_cost(bytes_per_pair));
        for round in 1..n {
            let src = (r + n - round) % n;
            self.irecv(src, tag + round as Tag);
        }
        for round in 1..n {
            let dst = (r + round) % n;
            self.isend(dst, bytes_per_pair, tag + round as Tag);
        }
        self.wait_all(bytes_per_pair * (n as u64 - 1));
        self
    }

    /// Append a DVFS request.
    pub fn set_speed(&mut self, request: AppSpeedRequest) -> &mut Self {
        self.ops.push(Op::SetSpeed(request));
        self
    }

    /// Append a phase-begin marker.
    pub fn phase_begin(&mut self, name: &'static str) -> &mut Self {
        self.ops.push(Op::PhaseBegin(name));
        self
    }

    /// Append a phase-end marker.
    pub fn phase_end(&mut self, name: &'static str) -> &mut Self {
        self.ops.push(Op::PhaseEnd(name));
        self
    }

    /// Fresh tag namespace for one collective instance.
    pub(crate) fn next_collective_tag(&mut self) -> Tag {
        let epoch = self.collective_epoch;
        self.collective_epoch += 1;
        Self::COLLECTIVE_TAG_BASE | (epoch << 8)
    }

    /// Dissemination barrier across all ranks.
    pub fn barrier(&mut self) -> &mut Self {
        collectives::barrier(self);
        self
    }

    /// Binomial-tree broadcast of `bytes` from `root`.
    pub fn bcast(&mut self, root: Rank, bytes: u64) -> &mut Self {
        collectives::bcast(self, root, bytes);
        self
    }

    /// Binomial-tree reduction of `bytes` to `root` (combine cost charged
    /// per merge).
    pub fn reduce(&mut self, root: Rank, bytes: u64) -> &mut Self {
        collectives::reduce(self, root, bytes);
        self
    }

    /// Reduce-then-broadcast allreduce (MPICH-1's algorithm).
    pub fn allreduce(&mut self, bytes: u64) -> &mut Self {
        collectives::reduce(self, 0, bytes);
        collectives::bcast(self, 0, bytes);
        self
    }

    /// Every rank sends `bytes_per_rank` to `root`.
    pub fn gather(&mut self, root: Rank, bytes_per_rank: u64) -> &mut Self {
        collectives::gather(self, root, bytes_per_rank);
        self
    }

    /// Binomial-tree scatter of `bytes_per_rank` shares from `root`.
    pub fn scatter(&mut self, root: Rank, bytes_per_rank: u64) -> &mut Self {
        collectives::scatter(self, root, bytes_per_rank);
        self
    }

    /// Allgather of each rank's `bytes_per_rank` block (recursive doubling
    /// for power-of-two sizes, ring otherwise).
    pub fn allgather(&mut self, bytes_per_rank: u64) -> &mut Self {
        collectives::allgather(self, bytes_per_rank);
        self
    }

    /// Complete exchange: every rank sends `bytes_per_pair` to every other
    /// rank (pairwise-exchange for power-of-two sizes, ring otherwise).
    pub fn alltoall(&mut self, bytes_per_pair: u64) -> &mut Self {
        collectives::alltoall(self, bytes_per_pair);
        self
    }

    /// Finish, yielding the program.
    pub fn build(self) -> Program {
        Program { ops: self.ops }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn send_charges_software_cost_first() {
        let mut b = ProgramBuilder::new(0, 2);
        b.send(1, 1024, 7);
        let p = b.build();
        assert_eq!(p.len(), 2);
        assert!(matches!(p.ops()[0], Op::Compute(_)));
        assert!(matches!(
            p.ops()[1],
            Op::Send {
                dst: 1,
                bytes: 1024,
                tag: 7
            }
        ));
    }

    #[test]
    fn recv_charges_software_cost_after() {
        let mut b = ProgramBuilder::new(1, 2);
        b.recv(0, 1024, 7);
        let p = b.build();
        assert!(matches!(p.ops()[0], Op::Recv { src: 0, tag: 7 }));
        assert!(matches!(p.ops()[1], Op::Compute(_)));
    }

    #[test]
    fn large_message_cost_streams_dram() {
        let b = ProgramBuilder::new(0, 2);
        let small = b.msg_cost(4 * 1024);
        let large = b.msg_cost(4 * 1024 * 1024);
        assert_eq!(small.dram_accesses, 0.0);
        assert!(large.dram_accesses > 0.0);
        assert!(large.cpu_cycles > small.cpu_cycles);
    }

    #[test]
    fn zero_work_compute_is_elided() {
        let mut b = ProgramBuilder::new(0, 1);
        b.compute(WorkUnit::ZERO);
        assert!(b.build().is_empty());
    }

    #[test]
    fn collective_tags_are_distinct_per_instance() {
        let mut b = ProgramBuilder::new(0, 4);
        let t1 = b.next_collective_tag();
        let t2 = b.next_collective_tag();
        assert_ne!(t1, t2);
        assert!(t1 >= ProgramBuilder::COLLECTIVE_TAG_BASE);
    }

    #[test]
    fn bytes_sent_counts_all_outgoing() {
        let mut b = ProgramBuilder::new(0, 2);
        b.send(1, 100, 1);
        b.sendrecv(1, 200, 2, 1, 300, 3);
        assert_eq!(b.build().bytes_sent(), 300);
    }

    #[test]
    fn isend_charges_cost_and_does_not_block_shape() {
        let mut b = ProgramBuilder::new(0, 2);
        b.isend(1, 2048, 3)
            .compute(WorkUnit::pure_cpu(10.0))
            .wait_all(2048);
        let p = b.build();
        assert!(matches!(p.ops()[0], Op::Compute(_))); // send-side copy
        assert!(matches!(
            p.ops()[1],
            Op::Isend {
                dst: 1,
                bytes: 2048,
                tag: 3
            }
        ));
        assert!(matches!(p.ops()[3], Op::WaitAll));
        assert!(matches!(p.ops()[4], Op::Compute(_))); // recv-side copy
    }

    #[test]
    fn wait_all_zero_bytes_charges_nothing() {
        let mut b = ProgramBuilder::new(0, 1);
        b.wait_all(0);
        let p = b.build();
        assert_eq!(p.len(), 1);
        assert!(matches!(p.ops()[0], Op::WaitAll));
    }

    #[test]
    fn nonblocking_alltoall_posts_all_then_waits() {
        let mut b = ProgramBuilder::new(0, 4);
        b.alltoall_nonblocking(1000);
        let p = b.build();
        let irecvs = p
            .ops()
            .iter()
            .filter(|op| matches!(op, Op::Irecv { .. }))
            .count();
        let isends = p
            .ops()
            .iter()
            .filter(|op| matches!(op, Op::Isend { .. }))
            .count();
        let waits = p
            .ops()
            .iter()
            .filter(|op| matches!(op, Op::WaitAll))
            .count();
        assert_eq!(irecvs, 3);
        assert_eq!(isends, 3);
        assert_eq!(waits, 1);
        // All irecvs precede all isends (posting order avoids unexpected
        // eager buffering in real MPIs; we mirror the idiom).
        let first_isend = p
            .ops()
            .iter()
            .position(|op| matches!(op, Op::Isend { .. }))
            .unwrap();
        let last_irecv = p
            .ops()
            .iter()
            .rposition(|op| matches!(op, Op::Irecv { .. }))
            .unwrap();
        assert!(last_irecv < first_isend);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn send_to_unknown_rank_panics() {
        ProgramBuilder::new(0, 2).send(5, 1, 0);
    }

    #[test]
    #[should_panic(expected = "rank 3 out of range")]
    fn builder_rank_must_fit_size() {
        let _ = ProgramBuilder::new(3, 2);
    }
}
