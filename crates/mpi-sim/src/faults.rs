//! Engine-side runtime for the fault specs in [`sim_core::faults`].
//!
//! The runtime is only constructed when at least one fault is armed
//! (`Engine::new` keeps `None` for an empty spec), so fault support costs
//! the fault-free hot path nothing beyond a single `Option` check per
//! hook, and an empty spec stays bit-identical to a build without fault
//! injection.
//!
//! All randomness comes from [`DetRng`] streams forked off
//! [`FaultSpec::seed`]: one stream for cluster-wide draws (sampling-window
//! skips) and one per node (DVFS failures, battery noise). Because draws
//! happen at engine events — which are totally ordered by the
//! deterministic event queue — the same spec and seed reproduce the same
//! faults on any worker-thread count.

use net_model::FluidNetwork;
use sim_core::float::exact_eq;
use sim_core::{DetRng, Fault, FaultCounts, FaultSpec, SimDuration, SimTime};

/// Per-node fault state plus RNG streams, built once per run.
#[derive(Debug)]
pub(crate) struct FaultRuntime {
    /// Compute-cycle multiplier per node (1.0 = healthy).
    slowdown: Vec<f64>,
    /// Probability a DVFS transition request is dropped, per node.
    dvfs_fail_p: Vec<f64>,
    /// DVFS transition latency multiplier per node (1.0 = nominal).
    dvfs_latency: Vec<f64>,
    /// Simulated time after which the node's battery register is stuck.
    battery_stuck_at: Vec<Option<SimTime>>,
    /// Max battery-reading perturbation per node, mWh (0 = clean).
    battery_noise: Vec<u64>,
    /// Sampled-power multiplier per node (1.0 = calibrated meter).
    meter_bias: Vec<f64>,
    /// Probability each periodic sampling window is skipped.
    sample_skip_p: f64,
    /// Cluster-wide draws (sampling-window skips).
    rng_cluster: DetRng,
    /// Per-node draws (DVFS failures, battery noise).
    rng_node: Vec<DetRng>,
}

impl FaultRuntime {
    /// Build the runtime for `spec` over a cluster of `nodes` nodes,
    /// applying startup-time faults (degraded links) to `network` and
    /// recording them in `counts`. Returns `None` for an empty spec.
    ///
    /// Panics when a fault targets a node outside the cluster — a spec
    /// bug the caller should hear about loudly (and `run_batch_checked`
    /// converts into a per-experiment error).
    pub(crate) fn build(
        spec: &FaultSpec,
        nodes: usize,
        network: &mut FluidNetwork,
        counts: &mut FaultCounts,
    ) -> Option<Box<FaultRuntime>> {
        if spec.is_empty() {
            return None;
        }
        if let Some(max) = spec.max_node() {
            assert!(
                max < nodes,
                "fault spec targets node {max} but the cluster has {nodes} nodes"
            );
        }
        let mut rt = FaultRuntime {
            slowdown: vec![1.0; nodes],
            dvfs_fail_p: vec![0.0; nodes],
            dvfs_latency: vec![1.0; nodes],
            battery_stuck_at: vec![None; nodes],
            battery_noise: vec![0; nodes],
            meter_bias: vec![1.0; nodes],
            sample_skip_p: 0.0,
            rng_cluster: DetRng::new(spec.seed),
            rng_node: (0..nodes)
                .map(|i| DetRng::new(spec.seed).fork(1 + i as u64))
                .collect(),
        };
        for fault in &spec.faults {
            match *fault {
                Fault::ComputeSlowdown { node, factor } => rt.slowdown[node] *= factor,
                Fault::BatteryStuck { node, after_s } => {
                    let at = SimTime::ZERO + SimDuration::from_secs_f64(after_s);
                    // Two stuck faults on one node: the earlier one wins.
                    rt.battery_stuck_at[node] = Some(match rt.battery_stuck_at[node] {
                        Some(prev) => prev.min(at),
                        None => at,
                    });
                }
                Fault::BatteryNoise {
                    node,
                    amplitude_mwh,
                } => rt.battery_noise[node] += amplitude_mwh,
                Fault::MeterBias { node, factor } => rt.meter_bias[node] *= factor,
                Fault::SampleSkip { probability } => {
                    rt.sample_skip_p = (rt.sample_skip_p + probability).min(1.0)
                }
                Fault::DvfsFail { node, probability } => {
                    rt.dvfs_fail_p[node] = (rt.dvfs_fail_p[node] + probability).min(1.0)
                }
                Fault::DvfsLatency { node, factor } => rt.dvfs_latency[node] *= factor,
                Fault::DegradedLink {
                    node,
                    bandwidth_factor,
                } => {
                    network.set_link_bandwidth_factor(node, bandwidth_factor);
                    counts.degraded_links += 1;
                }
            }
        }
        Some(Box::new(rt))
    }

    /// Scale a compute segment's cycle cost by the node's straggler
    /// factor. Scaling cycles (not wall time) keeps the engine's
    /// pause/resume cycle banking across DVFS transitions consistent.
    pub(crate) fn scale_compute(&self, node: usize, cycles: f64, counts: &mut FaultCounts) -> f64 {
        let factor = self.slowdown[node];
        if exact_eq(factor, 1.0) {
            return cycles;
        }
        counts.compute_slowdowns += 1;
        cycles * factor
    }

    /// Draw whether this DVFS transition request is dropped.
    pub(crate) fn dvfs_fails(&mut self, node: usize, counts: &mut FaultCounts) -> bool {
        let p = self.dvfs_fail_p[node];
        if p <= 0.0 {
            return false;
        }
        if self.rng_node[node].next_f64() < p {
            counts.dvfs_failures += 1;
            return true;
        }
        false
    }

    /// Stretch a DVFS transition's latency by the node's spike factor.
    pub(crate) fn spike_dvfs_latency(
        &self,
        node: usize,
        latency: SimDuration,
        counts: &mut FaultCounts,
    ) -> SimDuration {
        let factor = self.dvfs_latency[node];
        if exact_eq(factor, 1.0) || latency.is_zero() {
            return latency;
        }
        counts.dvfs_latency_spikes += 1;
        latency.mul_f64(factor)
    }

    /// Draw whether the current periodic sampling window is skipped.
    pub(crate) fn skip_sample(&mut self, counts: &mut FaultCounts) -> bool {
        if self.sample_skip_p <= 0.0 {
            return false;
        }
        if self.rng_cluster.next_f64() < self.sample_skip_p {
            counts.samples_skipped += 1;
            return true;
        }
        false
    }

    /// Apply the node's meter-bias factor to a sampled power value. Only
    /// the measurement tap is biased — ground-truth energy integration is
    /// untouched, which is what lets the PowerPack-style outlier filter
    /// spot the sick meter against its healthy peers.
    pub(crate) fn bias_power(&self, node: usize, watts: f64, counts: &mut FaultCounts) -> f64 {
        let factor = self.meter_bias[node];
        if exact_eq(factor, 1.0) {
            return watts;
        }
        counts.meter_biased_samples += 1;
        watts * factor
    }

    /// True once the node's battery register is stuck at `now`.
    pub(crate) fn battery_stuck(&self, node: usize, now: SimTime) -> bool {
        matches!(self.battery_stuck_at[node], Some(at) if now >= at)
    }

    /// Perturb a battery reading by the node's noise amplitude (uniform
    /// in ±amplitude, saturating at zero).
    pub(crate) fn battery_noise(
        &mut self,
        node: usize,
        reading_mwh: u64,
        counts: &mut FaultCounts,
    ) -> u64 {
        let amp = self.battery_noise[node];
        if amp == 0 {
            return reading_mwh;
        }
        counts.battery_noisy_reads += 1;
        let delta = self.rng_node[node].gen_range(0, 2 * amp + 1) as i64 - amp as i64;
        if delta >= 0 {
            reading_mwh.saturating_add(delta as u64)
        } else {
            reading_mwh.saturating_sub((-delta) as u64)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use net_model::NetworkParams;

    fn network(nodes: usize) -> FluidNetwork {
        FluidNetwork::new(NetworkParams::catalyst_2950_100m(), nodes)
    }

    #[test]
    fn empty_spec_builds_no_runtime() {
        let mut counts = FaultCounts::default();
        let rt = FaultRuntime::build(&FaultSpec::default(), 4, &mut network(4), &mut counts);
        assert!(rt.is_none());
        assert_eq!(counts.total(), 0);
    }

    #[test]
    #[should_panic(expected = "targets node 7")]
    fn out_of_range_node_is_rejected() {
        let spec = FaultSpec::parse("slow:7:2").unwrap();
        let mut counts = FaultCounts::default();
        FaultRuntime::build(&spec, 4, &mut network(4), &mut counts);
    }

    #[test]
    fn degraded_links_are_applied_and_counted_at_build() {
        let spec = FaultSpec::parse("weak-link:1:0.5,weak-link:2:0.25").unwrap();
        let mut counts = FaultCounts::default();
        let mut net = network(4);
        let rt = FaultRuntime::build(&spec, 4, &mut net, &mut counts);
        assert!(rt.is_some());
        assert_eq!(counts.degraded_links, 2);
        let id = net.start_flow(SimTime::ZERO, 0, 2, 1_000_000);
        let quarter = net.params().goodput_bytes_per_sec() * 0.25;
        assert!((net.current_rate(id).unwrap() - quarter).abs() < 1.0);
    }

    #[test]
    fn draws_are_deterministic_per_seed() {
        let spec = FaultSpec::parse("seed:11,dvfs-fail:0:0.5,skip-sample:0.5").unwrap();
        let run = || {
            let mut counts = FaultCounts::default();
            let mut rt = FaultRuntime::build(&spec, 2, &mut network(2), &mut counts).unwrap();
            let fails: Vec<bool> = (0..32).map(|_| rt.dvfs_fails(0, &mut counts)).collect();
            let skips: Vec<bool> = (0..32).map(|_| rt.skip_sample(&mut counts)).collect();
            (fails, skips, counts)
        };
        let a = run();
        let b = run();
        assert_eq!(a, b);
        assert!(a.2.dvfs_failures > 0 && a.2.dvfs_failures < 32);
        assert!(a.2.samples_skipped > 0 && a.2.samples_skipped < 32);
    }

    #[test]
    fn stuck_threshold_honours_time() {
        let spec = FaultSpec::parse("battery-stuck:1:10").unwrap();
        let mut counts = FaultCounts::default();
        let rt = FaultRuntime::build(&spec, 2, &mut network(2), &mut counts).unwrap();
        let t5 = SimTime::ZERO + SimDuration::from_secs(5);
        let t15 = SimTime::ZERO + SimDuration::from_secs(15);
        assert!(!rt.battery_stuck(1, t5));
        assert!(rt.battery_stuck(1, t15));
        assert!(!rt.battery_stuck(0, t15), "only the faulted node sticks");
    }

    #[test]
    fn noise_stays_within_amplitude() {
        let spec = FaultSpec::parse("battery-noise:0:5").unwrap();
        let mut counts = FaultCounts::default();
        let mut rt = FaultRuntime::build(&spec, 1, &mut network(1), &mut counts).unwrap();
        let mut seen_change = false;
        for _ in 0..64 {
            let r = rt.battery_noise(0, 1000, &mut counts);
            assert!((995..=1005).contains(&r), "{r}");
            seen_change |= r != 1000;
        }
        assert!(seen_change, "amplitude 5 should perturb at least once");
        assert_eq!(counts.battery_noisy_reads, 64);
    }

    #[test]
    fn healthy_nodes_pass_through_unchanged() {
        let spec = FaultSpec::parse("slow:1:2,meter-bias:1:1.5,dvfs-latency:1:3").unwrap();
        let mut counts = FaultCounts::default();
        let mut rt = FaultRuntime::build(&spec, 2, &mut network(2), &mut counts).unwrap();
        // Node 0 is healthy: every hook is the identity and counts nothing.
        assert_eq!(
            rt.scale_compute(0, 123.0, &mut counts).to_bits(),
            123.0f64.to_bits()
        );
        assert_eq!(
            rt.bias_power(0, 30.0, &mut counts).to_bits(),
            30.0f64.to_bits()
        );
        let lat = SimDuration::from_micros(10);
        assert_eq!(rt.spike_dvfs_latency(0, lat, &mut counts), lat);
        assert!(!rt.dvfs_fails(0, &mut counts));
        assert_eq!(counts.total(), 0);
        // Node 1 is faulted on all three.
        assert_eq!(rt.scale_compute(1, 100.0, &mut counts), 200.0);
        assert_eq!(
            rt.spike_dvfs_latency(1, lat, &mut counts),
            SimDuration::from_micros(30)
        );
        assert_eq!(rt.bias_power(1, 30.0, &mut counts), 45.0);
        assert_eq!(counts.total(), 3);
    }
}
