//! A faithful model of the Fedora `cpuspeed` userspace daemon.
//!
//! The daemon the paper evaluates (Fedora Core 2, kernel 2.6 CPUFreq
//! userspace interface) works like this: every polling interval it diffs
//! `/proc/stat`, computes CPU utilization, and
//!
//! * if utilization exceeds the *up* threshold → jump straight to the
//!   maximum frequency (latency matters for interactive loads);
//! * if utilization falls below the *down* threshold → step down one
//!   operating point (cautious descent);
//! * otherwise → stay put.
//!
//! Because busy-wait MPI polling and memory stalls both count as "busy" in
//! `/proc/stat`, this policy rides at the top frequency through exactly the
//! slack the paper wants to exploit — reproducing its Figure 3 result that
//! cpuspeed ≈ static 1.4 GHz for FT.

use cluster_sim::{Node, ProcStat, ProcStatSnapshot};
use power_model::OpIndex;
use sim_core::{SimDuration, SimTime};

use crate::governor::Governor;

/// Tunables of the daemon.
#[derive(Debug, Clone)]
pub struct CpuspeedConfig {
    /// Polling interval (daemon default: 1 s).
    pub interval: SimDuration,
    /// Utilization at or above which the daemon jumps to maximum.
    pub up_threshold: f64,
    /// Utilization at or below which the daemon steps down one point.
    pub down_threshold: f64,
}

impl Default for CpuspeedConfig {
    fn default() -> Self {
        CpuspeedConfig {
            interval: SimDuration::from_secs(1),
            up_threshold: 0.90,
            down_threshold: 0.75,
        }
    }
}

/// The daemon state for one node.
#[derive(Debug)]
pub struct CpuspeedGovernor {
    config: CpuspeedConfig,
    prev: Option<ProcStatSnapshot>,
}

impl CpuspeedGovernor {
    /// A daemon with custom tunables.
    pub fn new(config: CpuspeedConfig) -> Self {
        assert!(config.up_threshold >= config.down_threshold);
        assert!(!config.interval.is_zero());
        CpuspeedGovernor { config, prev: None }
    }

    /// The stock Fedora configuration the paper ran.
    pub fn stock() -> Self {
        CpuspeedGovernor::new(CpuspeedConfig::default())
    }

    /// Utilization measured over the last completed interval, if any
    /// (exposed for tests and reporting).
    pub fn last_prev_snapshot(&self) -> Option<ProcStatSnapshot> {
        self.prev
    }
}

impl Governor for CpuspeedGovernor {
    fn name(&self) -> &'static str {
        "cpuspeed"
    }

    fn initial(&mut self, node: &Node) -> Option<OpIndex> {
        // The daemon starts wherever the kernel left the CPU; it only acts
        // on observed utilization.
        self.prev = Some(node.proc_stat(SimTime::ZERO));
        None
    }

    fn poll_interval(&self) -> Option<SimDuration> {
        Some(self.config.interval)
    }

    fn on_tick(&mut self, now: SimTime, node: &Node) -> Option<OpIndex> {
        let curr = node.proc_stat(now);
        let decision = match self.prev {
            None => None,
            Some(prev) => {
                let util = ProcStat::utilization(prev, curr);
                let ladder = &node.config().ladder;
                let cur = node.op_index();
                if util >= self.config.up_threshold && cur != ladder.highest() {
                    Some(ladder.highest())
                } else if util <= self.config.down_threshold && cur != ladder.lowest() {
                    Some(ladder.step_down(cur))
                } else {
                    None
                }
            }
        };
        self.prev = Some(curr);
        decision
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cluster_sim::NodeConfig;
    use power_model::CpuActivity;

    fn node() -> Node {
        Node::new(0, NodeConfig::inspiron_8600())
    }

    fn tick_after(g: &mut CpuspeedGovernor, node: &Node, now: SimTime) -> Option<OpIndex> {
        g.on_tick(now, node)
    }

    #[test]
    fn high_utilization_jumps_to_max() {
        let mut n = node();
        let mut g = CpuspeedGovernor::stock();
        g.initial(&n);
        // Start at a low point with a fully busy CPU.
        n.complete_transition(SimTime::ZERO, 0);
        n.set_activity(SimTime::ZERO, CpuActivity::Active);
        let d = tick_after(&mut g, &n, SimTime::from_secs(1));
        assert_eq!(d, Some(4), "busy CPU should jump straight to 1.4 GHz");
    }

    #[test]
    fn idle_cpu_steps_down_one_at_a_time() {
        let mut n = node();
        let mut g = CpuspeedGovernor::stock();
        g.initial(&n);
        n.set_activity(SimTime::ZERO, CpuActivity::Halt);
        assert_eq!(tick_after(&mut g, &n, SimTime::from_secs(1)), Some(3));
        n.complete_transition(SimTime::from_secs(1), 3);
        assert_eq!(tick_after(&mut g, &n, SimTime::from_secs(2)), Some(2));
        n.complete_transition(SimTime::from_secs(2), 2);
        assert_eq!(tick_after(&mut g, &n, SimTime::from_secs(3)), Some(1));
    }

    #[test]
    fn busy_wait_is_invisible_slack() {
        // The paper's point: a rank spinning in MPI_Recv looks 100% busy,
        // so cpuspeed never steps down.
        let mut n = node();
        let mut g = CpuspeedGovernor::stock();
        g.initial(&n);
        n.set_activity(SimTime::ZERO, CpuActivity::BusyWait);
        for s in 1..=5 {
            assert_eq!(tick_after(&mut g, &n, SimTime::from_secs(s)), None);
        }
        assert_eq!(n.op_index(), 4);
    }

    #[test]
    fn already_at_max_stays_put_when_busy() {
        let mut n = node();
        let mut g = CpuspeedGovernor::stock();
        g.initial(&n);
        n.set_activity(SimTime::ZERO, CpuActivity::Active);
        assert_eq!(tick_after(&mut g, &n, SimTime::from_secs(1)), None);
    }

    #[test]
    fn already_at_min_stays_put_when_idle() {
        let mut n = node();
        let mut g = CpuspeedGovernor::stock();
        g.initial(&n);
        n.complete_transition(SimTime::ZERO, 0);
        n.set_activity(SimTime::ZERO, CpuActivity::Halt);
        assert_eq!(tick_after(&mut g, &n, SimTime::from_secs(1)), None);
    }

    #[test]
    fn intermediate_utilization_holds() {
        // 80% busy sits between the thresholds: no change.
        let mut n = node();
        let mut g = CpuspeedGovernor::stock();
        g.initial(&n);
        n.set_activity(SimTime::ZERO, CpuActivity::Active);
        n.set_activity(
            SimTime::ZERO + SimDuration::from_millis(800),
            CpuActivity::Halt,
        );
        assert_eq!(tick_after(&mut g, &n, SimTime::from_secs(1)), None);
    }

    #[test]
    #[should_panic]
    fn inverted_thresholds_rejected() {
        let _ = CpuspeedGovernor::new(CpuspeedConfig {
            up_threshold: 0.5,
            down_threshold: 0.9,
            ..CpuspeedConfig::default()
        });
    }
}
