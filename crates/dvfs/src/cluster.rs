//! Cluster-level runtime control.
//!
//! The per-node [`Governor`] trait sees exactly one node; the paper's
//! strategies never need more. A cluster power budget does: deciding
//! which rank deserves the next watt requires observing *cross-node*
//! state — who is blocked in communication, who is lagging the critical
//! path, what the cluster draws right now. [`ClusterController`] is that
//! interface: the engine drives one controller per run with per-node
//! callbacks (boot, governor ticks, application speed requests) plus
//! cluster-wide runtime events (wait boundaries, phase markers, power
//! samples), and the controller answers with per-node frequency
//! decisions.
//!
//! Every classic strategy is re-expressed under it by
//! [`PerNodeGovernors`], which routes the per-node callbacks to a boxed
//! [`Governor`] per node and ignores the cluster-wide ones — the engine
//! has a single dispatch path either way, and a per-node controller is
//! bit-identical to the pre-controller engine by construction.
//!
//! [`PowerCapController`] is the first genuinely cluster-level strategy:
//! a global watt budget enforced at every sample instant, either
//! uniformly or by redistributing budget from ranks blocked in
//! communication toward the ranks still computing (the Medhat et al.
//! direction). Cap accounting is worst-case: each ladder point is
//! charged [`power_model::NodePowerParams::max_node_power_w`], so any
//! allocation the controller grants keeps measured cluster power at or
//! under the cap no matter what the nodes execute.

use cluster_sim::Node;
use power_model::OpIndex;
use sim_core::{SimDuration, SimTime};

use crate::governor::{AppSpeedRequest, Governor};

/// One frequency decision for one node, issued by a controller callback.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Decision {
    /// Node to retarget.
    pub node: usize,
    /// Ladder index to transition to.
    pub target: OpIndex,
}

/// How a [`PowerCapController`] divides the cluster budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CapPolicy {
    /// Every node gets the same frequency: the highest uniform ladder
    /// point whose worst-case cluster power fits the cap.
    Uniform,
    /// Ranks blocked in communication are parked at the slowest point;
    /// their reclaimed budget is granted to the ranks still computing,
    /// least-waiting (most critical-path-like) ranks first.
    Redistribute,
}

impl CapPolicy {
    /// Canonical CLI spelling (`policy=<label>`).
    pub fn label(&self) -> &'static str {
        match self {
            CapPolicy::Uniform => "uniform",
            CapPolicy::Redistribute => "redistribute",
        }
    }
}

/// A runtime strategy observing cross-node engine state.
///
/// The engine calls the per-node hooks (`initial`, `on_tick`,
/// `on_app_request`) exactly where it called the per-node [`Governor`]
/// before, and — only when [`wants_runtime_events`] says so — the
/// cluster-wide hooks at wait boundaries, phase markers, and sample
/// instants. Cluster-wide hooks push [`Decision`]s into `out`; the
/// engine applies them in push order through its normal transition path
/// (latency, transition energy, fault injection included).
///
/// Determinism contract: hooks run on the sequential dispatch path in
/// `(time, seq)` event order, and a controller may consult only its own
/// state and the `nodes` slice — never wall-clock, ambient randomness,
/// or thread identity. Controllers therefore inherit the engine's
/// bit-identical-at-any-shard-count guarantee for free.
///
/// [`wants_runtime_events`]: ClusterController::wants_runtime_events
pub trait ClusterController {
    /// Short label for traces and reports.
    fn name(&self) -> &str;

    /// Boot-time operating point for `node`, applied before the run
    /// starts (no latency, no transition energy).
    fn initial(&mut self, node: usize, nodes: &[Node]) -> Option<OpIndex>;

    /// Periodic tick interval for `node`; `None` disables ticks.
    fn poll_interval(&self, _node: usize) -> Option<SimDuration> {
        None
    }

    /// Periodic per-node decision (interval-driven governors).
    fn on_tick(&mut self, _now: SimTime, _node: usize, _nodes: &[Node]) -> Option<OpIndex> {
        None
    }

    /// Application speed request from instrumented code on `node`.
    fn on_app_request(
        &mut self,
        _now: SimTime,
        _node: usize,
        _nodes: &[Node],
        _req: AppSpeedRequest,
    ) -> Option<OpIndex> {
        None
    }

    /// Whether the engine should deliver the cluster-wide hooks below.
    /// Per-node controllers return `false` and keep the dispatch loop
    /// free of the calls entirely.
    fn wants_runtime_events(&self) -> bool {
        false
    }

    /// `rank` blocked waiting for communication at `now`.
    fn on_wait_begin(
        &mut self,
        _now: SimTime,
        _rank: usize,
        _nodes: &[Node],
        _out: &mut Vec<Decision>,
    ) {
    }

    /// `rank` released from its wait at `now`.
    fn on_wait_end(
        &mut self,
        _now: SimTime,
        _rank: usize,
        _nodes: &[Node],
        _out: &mut Vec<Decision>,
    ) {
    }

    /// `rank` crossed an application phase boundary.
    fn on_phase(
        &mut self,
        _now: SimTime,
        _rank: usize,
        _name: &str,
        _begin: bool,
        _nodes: &[Node],
        _out: &mut Vec<Decision>,
    ) {
    }

    /// Periodic power sample about to be taken across the cluster.
    fn on_sample(&mut self, _now: SimTime, _nodes: &[Node], _out: &mut Vec<Decision>) {}

    /// Digest of the controller's mutable state for the engine's
    /// determinism sanitizer (`simsan` builds): two runs that agree on
    /// every checkpoint must have controllers in identical states, so
    /// stateful controllers fold their decision-relevant fields in here.
    /// Stateless controllers keep the default. Not feature-gated: the
    /// trait contract must not change shape with a downstream crate's
    /// feature set, and an unused `&self -> u64` default costs nothing.
    fn state_digest(&self) -> u64 {
        0
    }
}

/// The classic per-node strategies under the controller interface: one
/// boxed [`Governor`] per node, cluster-wide hooks ignored.
pub struct PerNodeGovernors {
    governors: Vec<Box<dyn Governor>>,
}

impl PerNodeGovernors {
    /// Wrap one governor per node (checked by the engine against the
    /// cluster size).
    pub fn new(governors: Vec<Box<dyn Governor>>) -> Self {
        PerNodeGovernors { governors }
    }

    /// Number of wrapped governors.
    pub fn len(&self) -> usize {
        self.governors.len()
    }

    /// True when no governors are wrapped.
    pub fn is_empty(&self) -> bool {
        self.governors.is_empty()
    }
}

impl ClusterController for PerNodeGovernors {
    fn name(&self) -> &str {
        "per-node"
    }

    fn initial(&mut self, node: usize, nodes: &[Node]) -> Option<OpIndex> {
        self.governors[node].initial(&nodes[node])
    }

    fn poll_interval(&self, node: usize) -> Option<SimDuration> {
        self.governors[node].poll_interval()
    }

    fn on_tick(&mut self, now: SimTime, node: usize, nodes: &[Node]) -> Option<OpIndex> {
        self.governors[node].on_tick(now, &nodes[node])
    }

    fn on_app_request(
        &mut self,
        now: SimTime,
        node: usize,
        nodes: &[Node],
        req: AppSpeedRequest,
    ) -> Option<OpIndex> {
        self.governors[node].on_app_request(now, &nodes[node], req)
    }
}

/// Global cluster watt budget with optional runtime redistribution.
///
/// Frequency decisions are issued only at sample instants (and at
/// boot), never inside wait/phase hooks — those only update the
/// controller's wait accounting. Between two samples every granted
/// transition settles within the ~10 µs hardware latency, so the
/// worst-case allocation in force at each sample bounds the measured
/// power at that instant: the cap holds at every sample row.
pub struct PowerCapController {
    label: String,
    cap_w: f64,
    policy: CapPolicy,
    /// Worst-case node power per (node, ladder index); built on first
    /// sight of the cluster.
    p_max: Vec<Vec<f64>>,
    /// The allocation currently being enforced (ladder index per node).
    alloc: Vec<OpIndex>,
    /// Whether each rank is currently blocked in communication.
    blocked: Vec<bool>,
    /// Cumulative closed-wait time per rank.
    wait_total: Vec<SimDuration>,
    /// Open-wait start per rank, when blocked.
    wait_since: Vec<SimTime>,
}

impl PowerCapController {
    /// A controller enforcing `cap_w` watts across the whole cluster.
    pub fn new(cap_w: f64, policy: CapPolicy) -> Self {
        assert!(cap_w > 0.0 && cap_w.is_finite(), "cap must be positive");
        PowerCapController {
            label: format!("cap {cap_w:.0}W {}", policy.label()),
            cap_w,
            policy,
            p_max: Vec::new(),
            alloc: Vec::new(),
            blocked: Vec::new(),
            wait_total: Vec::new(),
            wait_since: Vec::new(),
        }
    }

    /// The budget being enforced, watts.
    pub fn cap_w(&self) -> f64 {
        self.cap_w
    }

    /// The division policy.
    pub fn policy(&self) -> CapPolicy {
        self.policy
    }

    fn ensure_tables(&mut self, nodes: &[Node]) {
        if !self.p_max.is_empty() {
            return;
        }
        self.p_max = nodes
            .iter()
            .map(|n| {
                let cfg = n.config();
                (0..cfg.ladder.len())
                    .map(|idx| cfg.power.max_node_power_w(cfg.ladder.point(idx)))
                    .collect()
            })
            .collect();
        self.blocked = vec![false; nodes.len()];
        self.wait_total = vec![SimDuration::ZERO; nodes.len()];
        self.wait_since = vec![SimTime::ZERO; nodes.len()];
        self.alloc = self.plan(nodes.len());
    }

    /// Worst-case cluster power of an allocation, summed in node order
    /// (a fixed float reduction order, so replans are bit-stable).
    fn worst_case_w(&self, alloc: &[OpIndex]) -> f64 {
        alloc
            .iter()
            .enumerate()
            .map(|(i, &idx)| self.p_max[i][idx])
            .sum()
    }

    /// Highest uniform ladder index whose worst-case cluster power fits
    /// the cap (the slowest point when nothing fits — a cap below the
    /// floor cannot be met and is enforced as best-effort).
    fn uniform_fit(&self, n: usize) -> OpIndex {
        let levels = self.p_max.iter().map(|p| p.len()).min().unwrap_or(1);
        let mut fit = 0;
        for idx in 0..levels {
            let total: f64 = (0..n).map(|i| self.p_max[i][idx]).sum();
            if total <= self.cap_w {
                fit = idx;
            }
        }
        fit
    }

    /// Compute the allocation the cap admits right now.
    fn plan(&self, n: usize) -> Vec<OpIndex> {
        // An unconstrained cluster runs flat out: if the cap admits every
        // node at its top point, the controller is inert (an infinite cap
        // is bit-identical to the uncontrolled run).
        let top: Vec<OpIndex> = (0..n).map(|i| self.p_max[i].len() - 1).collect();
        if self.worst_case_w(&top) <= self.cap_w {
            return top;
        }
        match self.policy {
            CapPolicy::Uniform => vec![self.uniform_fit(n); n],
            CapPolicy::Redistribute => self.plan_redistribute(n),
        }
    }

    /// Water-fill the budget over the non-blocked ranks: everyone starts
    /// at the slowest point, blocked ranks stay there, and the runnable
    /// ranks are raised one step at a time in priority order while the
    /// worst-case total stays under the cap.
    fn plan_redistribute(&self, n: usize) -> Vec<OpIndex> {
        let mut alloc: Vec<OpIndex> = vec![0; n];
        let mut total = self.worst_case_w(&alloc);
        let mut order: Vec<usize> = (0..n).filter(|&i| !self.blocked[i]).collect();
        order.sort_by_key(|&i| (self.wait_total[i], i));
        loop {
            let mut raised = false;
            for &i in &order {
                let next = alloc[i] + 1;
                if next >= self.p_max[i].len() {
                    continue;
                }
                let delta = self.p_max[i][next] - self.p_max[i][alloc[i]];
                if total + delta <= self.cap_w {
                    total += delta;
                    alloc[i] = next;
                    raised = true;
                }
            }
            if !raised {
                return alloc;
            }
        }
    }

    /// Emit transitions moving the cluster toward `alloc`. Nodes already
    /// there are left alone; nodes mid-transition are skipped and picked
    /// up at the next sample (this also self-heals transitions a
    /// `dvfs-fail` fault dropped).
    fn emit(&self, nodes: &[Node], out: &mut Vec<Decision>) {
        for (i, node) in nodes.iter().enumerate() {
            if self.alloc[i] != node.op_index() && !node.in_transition() {
                out.push(Decision {
                    node: i,
                    target: self.alloc[i],
                });
            }
        }
    }
}

impl ClusterController for PowerCapController {
    fn name(&self) -> &str {
        &self.label
    }

    fn initial(&mut self, node: usize, nodes: &[Node]) -> Option<OpIndex> {
        self.ensure_tables(nodes);
        Some(self.alloc[node])
    }

    fn wants_runtime_events(&self) -> bool {
        true
    }

    fn on_wait_begin(
        &mut self,
        now: SimTime,
        rank: usize,
        nodes: &[Node],
        _out: &mut Vec<Decision>,
    ) {
        self.ensure_tables(nodes);
        if !self.blocked[rank] {
            self.blocked[rank] = true;
            self.wait_since[rank] = now;
        }
    }

    fn on_wait_end(&mut self, now: SimTime, rank: usize, nodes: &[Node], _out: &mut Vec<Decision>) {
        self.ensure_tables(nodes);
        if self.blocked[rank] {
            self.blocked[rank] = false;
            self.wait_total[rank] = self.wait_total[rank] + now.since(self.wait_since[rank]);
        }
    }

    fn on_sample(&mut self, _now: SimTime, nodes: &[Node], out: &mut Vec<Decision>) {
        self.ensure_tables(nodes);
        self.alloc = self.plan(nodes.len());
        self.emit(nodes, out);
    }

    fn state_digest(&self) -> u64 {
        // Every field a replan reads: cap, policy, the allocation being
        // enforced, and the wait-fairness bookkeeping. `p_max` is derived
        // once from static node config and never mutated, so it is
        // covered by the fields that built it.
        let mut h = fnv_fold(FNV_OFFSET, self.cap_w.to_bits());
        h = fnv_fold(h, self.policy as u64);
        for &idx in &self.alloc {
            h = fnv_fold(h, idx as u64);
        }
        for &b in &self.blocked {
            h = fnv_fold(h, u64::from(b));
        }
        for &w in &self.wait_total {
            h = fnv_fold(h, w.as_ps());
        }
        for &s in &self.wait_since {
            h = fnv_fold(h, s.since(SimTime::ZERO).as_ps());
        }
        h
    }
}

/// FNV-1a basis for [`ClusterController::state_digest`] implementations.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;

/// Fold one word into an FNV-1a digest, byte by byte, little-endian.
fn fnv_fold(h: u64, v: u64) -> u64 {
    v.to_le_bytes()
        .iter()
        .fold(h, |h, &b| (h ^ u64::from(b)).wrapping_mul(0x100_0000_01b3))
}

#[cfg(test)]
mod tests {
    use super::*;
    use cluster_sim::NodeConfig;

    fn nodes(n: usize) -> Vec<Node> {
        (0..n)
            .map(|i| Node::new(i, NodeConfig::inspiron_8600()))
            .collect()
    }

    fn p_max_at(idx: OpIndex) -> f64 {
        let cfg = NodeConfig::inspiron_8600();
        cfg.power.max_node_power_w(cfg.ladder.point(idx))
    }

    #[test]
    fn infinite_cap_allocates_the_top_point_everywhere() {
        let ns = nodes(4);
        let mut c = PowerCapController::new(1e9, CapPolicy::Redistribute);
        for i in 0..4 {
            assert_eq!(c.initial(i, &ns), Some(4));
        }
        let mut out = Vec::new();
        c.on_sample(SimTime::from_secs(1), &ns, &mut out);
        assert!(out.is_empty(), "inert controller must not issue decisions");
    }

    #[test]
    fn uniform_fit_respects_worst_case_accounting() {
        let ns = nodes(4);
        // Budget for exactly four nodes at index 2, not at index 3.
        let cap = 4.0 * p_max_at(2) + 0.5 * (p_max_at(3) - p_max_at(2));
        let mut c = PowerCapController::new(cap, CapPolicy::Uniform);
        for i in 0..4 {
            assert_eq!(c.initial(i, &ns), Some(2));
        }
    }

    #[test]
    fn redistribute_parks_blocked_ranks_and_boosts_the_rest() {
        let ns = nodes(4);
        let cap = 4.0 * p_max_at(2);
        let mut c = PowerCapController::new(cap, CapPolicy::Redistribute);
        let mut out = Vec::new();
        for i in 0..4 {
            c.initial(i, &ns);
        }
        // Ranks 1..4 block; rank 0 keeps computing.
        for r in 1..4 {
            c.on_wait_begin(SimTime::from_secs(1), r, &ns, &mut out);
        }
        c.on_sample(SimTime::from_secs(2), &ns, &mut out);
        let alloc = c.alloc.clone();
        assert_eq!(&alloc[1..], &[0, 0, 0], "blocked ranks parked");
        assert_eq!(alloc[0], 4, "reclaimed budget boosts the runnable rank");
        let worst = c.worst_case_w(&alloc);
        assert!(worst <= cap, "worst-case {worst} over cap {cap}");
    }

    #[test]
    fn plans_never_exceed_the_cap() {
        let ns = nodes(8);
        let floor = 8.0 * p_max_at(0);
        for frac in [0.4, 0.6, 0.8, 1.0] {
            let cap = 8.0 * p_max_at(4) * frac;
            for policy in [CapPolicy::Uniform, CapPolicy::Redistribute] {
                let mut c = PowerCapController::new(cap, policy);
                let mut out = Vec::new();
                for i in 0..8 {
                    c.initial(i, &ns);
                }
                c.on_wait_begin(SimTime::from_secs(1), 3, &ns, &mut out);
                c.on_sample(SimTime::from_secs(2), &ns, &mut out);
                let worst = c.worst_case_w(&c.alloc);
                if cap >= floor {
                    assert!(
                        worst <= cap + 1e-9,
                        "{policy:?} frac {frac}: {worst} > {cap}"
                    );
                } else {
                    // A cap below the cluster floor cannot be met; it is
                    // enforced best-effort with every rank at the floor.
                    assert!(
                        (worst - floor).abs() < 1e-9,
                        "{policy:?} frac {frac}: below-floor cap must park \
                         the whole cluster at the floor ({worst} vs {floor})"
                    );
                }
            }
        }
    }

    #[test]
    fn least_waiting_rank_wins_the_tiebreak_budget() {
        let ns = nodes(2);
        // Room for one node at index 1 and one at index 0, roughly.
        let cap = p_max_at(1) + p_max_at(0);
        let mut c = PowerCapController::new(cap, CapPolicy::Redistribute);
        let mut out = Vec::new();
        for i in 0..2 {
            c.initial(i, &ns);
        }
        // Rank 0 accumulates closed wait time; rank 1 never waits.
        c.on_wait_begin(SimTime::from_secs(1), 0, &ns, &mut out);
        c.on_wait_end(SimTime::from_secs(5), 0, &ns, &mut out);
        c.on_sample(SimTime::from_secs(6), &ns, &mut out);
        assert!(
            c.alloc[1] > c.alloc[0],
            "rank 1 (no wait) must outrank rank 0: {:?}",
            c.alloc
        );
    }

    #[test]
    fn per_node_wrapper_routes_to_each_governor() {
        use crate::governor::StaticGovernor;
        let ns = nodes(2);
        let mut c = PerNodeGovernors::new(vec![
            Box::new(StaticGovernor::pinned(1)),
            Box::new(StaticGovernor::pinned(3)),
        ]);
        assert_eq!(c.len(), 2);
        assert!(!c.is_empty());
        assert_eq!(c.initial(0, &ns), Some(1));
        assert_eq!(c.initial(1, &ns), Some(3));
        assert!(!c.wants_runtime_events());
        assert_eq!(c.poll_interval(0), None);
    }
}
