//! The kernel `conservative` governor — a beyond-the-paper extension.
//!
//! Linux's `conservative` policy differs from both daemons the paper era
//! offered: it moves *one ladder step at a time in both directions*
//! (cpuspeed jumps to max on load; ondemand picks a proportional target).
//! Included for the governor-design ablations: its gentle ascent trades
//! performance for stability on bursty MPI phases.

use cluster_sim::{Node, ProcStat, ProcStatSnapshot};
use power_model::OpIndex;
use sim_core::{SimDuration, SimTime};

use crate::governor::Governor;

/// Tunables for [`ConservativeGovernor`].
#[derive(Debug, Clone)]
pub struct ConservativeConfig {
    /// Sampling interval.
    pub interval: SimDuration,
    /// Utilization at or above which the governor steps up one point.
    pub up_threshold: f64,
    /// Utilization at or below which it steps down one point.
    pub down_threshold: f64,
}

impl Default for ConservativeConfig {
    fn default() -> Self {
        ConservativeConfig {
            interval: SimDuration::from_millis(200),
            up_threshold: 0.80,
            down_threshold: 0.40,
        }
    }
}

/// One node's `conservative` policy state.
#[derive(Debug)]
pub struct ConservativeGovernor {
    config: ConservativeConfig,
    prev: Option<ProcStatSnapshot>,
}

impl ConservativeGovernor {
    /// A governor with custom tunables.
    pub fn new(config: ConservativeConfig) -> Self {
        assert!(config.up_threshold > config.down_threshold);
        assert!(!config.interval.is_zero());
        ConservativeGovernor { config, prev: None }
    }

    /// Kernel-default tunables.
    pub fn stock() -> Self {
        ConservativeGovernor::new(ConservativeConfig::default())
    }
}

impl Governor for ConservativeGovernor {
    fn name(&self) -> &'static str {
        "conservative"
    }

    fn initial(&mut self, node: &Node) -> Option<OpIndex> {
        self.prev = Some(node.proc_stat(SimTime::ZERO));
        None
    }

    fn poll_interval(&self) -> Option<SimDuration> {
        Some(self.config.interval)
    }

    fn on_tick(&mut self, now: SimTime, node: &Node) -> Option<OpIndex> {
        let curr = node.proc_stat(now);
        let decision = self.prev.and_then(|prev| {
            let util = ProcStat::utilization(prev, curr);
            let ladder = &node.config().ladder;
            let cur = node.op_index();
            if util >= self.config.up_threshold && cur != ladder.highest() {
                Some(ladder.step_up(cur))
            } else if util <= self.config.down_threshold && cur != ladder.lowest() {
                Some(ladder.step_down(cur))
            } else {
                None
            }
        });
        self.prev = Some(curr);
        decision
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cluster_sim::NodeConfig;
    use power_model::CpuActivity;

    fn node() -> Node {
        Node::new(0, NodeConfig::inspiron_8600())
    }

    #[test]
    fn steps_up_one_at_a_time() {
        let mut n = node();
        n.complete_transition(SimTime::ZERO, 0);
        let mut g = ConservativeGovernor::stock();
        g.initial(&n);
        n.set_activity(SimTime::ZERO, CpuActivity::Active);
        // Unlike cpuspeed's jump-to-max, one rung only.
        assert_eq!(g.on_tick(SimTime::from_secs(1), &n), Some(1));
    }

    #[test]
    fn steps_down_one_at_a_time() {
        let mut n = node();
        let mut g = ConservativeGovernor::stock();
        g.initial(&n);
        n.set_activity(SimTime::ZERO, CpuActivity::Halt);
        assert_eq!(g.on_tick(SimTime::from_secs(1), &n), Some(3));
    }

    #[test]
    fn holds_in_the_middle_band() {
        let mut n = node();
        let mut g = ConservativeGovernor::stock();
        g.initial(&n);
        n.set_activity(SimTime::ZERO, CpuActivity::Active);
        n.set_activity(
            SimTime::ZERO + SimDuration::from_millis(600),
            CpuActivity::Halt,
        );
        // 60% utilization over the 1 s window: between thresholds.
        assert_eq!(g.on_tick(SimTime::from_secs(1), &n), None);
    }

    #[test]
    fn clamps_at_ladder_ends() {
        let mut n = node();
        let mut g = ConservativeGovernor::stock();
        g.initial(&n);
        n.set_activity(SimTime::ZERO, CpuActivity::Active);
        assert_eq!(g.on_tick(SimTime::from_secs(1), &n), None, "already at max");
    }

    #[test]
    #[should_panic]
    fn inverted_thresholds_rejected() {
        let _ = ConservativeGovernor::new(ConservativeConfig {
            up_threshold: 0.2,
            down_threshold: 0.8,
            ..ConservativeConfig::default()
        });
    }
}
