//! An `ondemand`-style governor — a beyond-the-paper extension.
//!
//! The kernel governor that superseded `cpuspeed` after 2005 picks, on each
//! tick, the *lowest* frequency that would keep utilization under a target
//! rather than stepping one level at a time: `f_needed = f_cur · util /
//! target`, rounded up to the next ladder point; above the up-threshold it
//! still jumps to maximum. Used in ablation benches to ask whether the
//! paper's cpuspeed conclusion is an artifact of that daemon or inherent to
//! utilization-driven control (it is inherent: busy-wait still reads 100%).

use cluster_sim::{Node, ProcStat, ProcStatSnapshot};
use power_model::OpIndex;
use sim_core::{SimDuration, SimTime};

use crate::governor::Governor;

/// Tunables for [`OnDemandGovernor`].
#[derive(Debug, Clone)]
pub struct OnDemandConfig {
    /// Sampling interval (the kernel default is tens of milliseconds; we
    /// default to 100 ms).
    pub interval: SimDuration,
    /// Utilization at or above which the governor jumps to maximum.
    pub up_threshold: f64,
    /// Target utilization used to size the downward pick.
    pub target_util: f64,
}

impl Default for OnDemandConfig {
    fn default() -> Self {
        OnDemandConfig {
            interval: SimDuration::from_millis(100),
            up_threshold: 0.80,
            target_util: 0.70,
        }
    }
}

/// The ondemand policy state for one node.
#[derive(Debug)]
pub struct OnDemandGovernor {
    config: OnDemandConfig,
    prev: Option<ProcStatSnapshot>,
}

impl OnDemandGovernor {
    /// A governor with custom tunables.
    pub fn new(config: OnDemandConfig) -> Self {
        assert!(config.up_threshold > 0.0 && config.up_threshold <= 1.0);
        assert!(config.target_util > 0.0 && config.target_util <= 1.0);
        assert!(!config.interval.is_zero());
        OnDemandGovernor { config, prev: None }
    }

    /// Kernel-default tunables.
    pub fn stock() -> Self {
        OnDemandGovernor::new(OnDemandConfig::default())
    }
}

impl Governor for OnDemandGovernor {
    fn name(&self) -> &'static str {
        "ondemand"
    }

    fn initial(&mut self, node: &Node) -> Option<OpIndex> {
        self.prev = Some(node.proc_stat(SimTime::ZERO));
        None
    }

    fn poll_interval(&self) -> Option<SimDuration> {
        Some(self.config.interval)
    }

    fn on_tick(&mut self, now: SimTime, node: &Node) -> Option<OpIndex> {
        let curr = node.proc_stat(now);
        let decision = match self.prev {
            None => None,
            Some(prev) => {
                let util = ProcStat::utilization(prev, curr);
                let ladder = &node.config().ladder;
                let cur = node.op_index();
                if util >= self.config.up_threshold {
                    (cur != ladder.highest()).then(|| ladder.highest())
                } else {
                    // Lowest point that keeps projected utilization at or
                    // under target: f_needed = f_cur * util / target.
                    let f_needed = node.freq_hz() * util / self.config.target_util;
                    let mut pick = ladder.highest();
                    for (i, p) in ladder.points().iter().enumerate() {
                        if p.freq_hz >= f_needed {
                            pick = i;
                            break;
                        }
                    }
                    (pick != cur).then_some(pick)
                }
            }
        };
        self.prev = Some(curr);
        decision
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cluster_sim::NodeConfig;
    use power_model::CpuActivity;

    fn node() -> Node {
        Node::new(0, NodeConfig::inspiron_8600())
    }

    #[test]
    fn idle_cpu_drops_straight_to_bottom() {
        let mut n = node();
        let mut g = OnDemandGovernor::stock();
        g.initial(&n);
        n.set_activity(SimTime::ZERO, CpuActivity::Halt);
        // Unlike cpuspeed's one-step descent, ondemand goes directly low.
        assert_eq!(g.on_tick(SimTime::from_secs(1), &n), Some(0));
    }

    #[test]
    fn busy_cpu_jumps_to_top() {
        let mut n = node();
        n.complete_transition(SimTime::ZERO, 0);
        let mut g = OnDemandGovernor::stock();
        g.initial(&n);
        n.set_activity(SimTime::ZERO, CpuActivity::Active);
        assert_eq!(g.on_tick(SimTime::from_secs(1), &n), Some(4));
    }

    #[test]
    fn busy_wait_still_defeats_it() {
        // The ablation's answer: utilization-driven control cannot see
        // busy-wait slack regardless of its picking rule.
        let mut n = node();
        let mut g = OnDemandGovernor::stock();
        g.initial(&n);
        n.set_activity(SimTime::ZERO, CpuActivity::BusyWait);
        assert_eq!(g.on_tick(SimTime::from_secs(1), &n), None);
        assert_eq!(n.op_index(), 4);
    }

    #[test]
    fn partial_load_picks_proportional_point() {
        // 35% utilization at 1.4 GHz needs ~0.7 GHz at 70% target: pick
        // the 800 MHz point (first at or above 700 MHz).
        let mut n = node();
        let mut g = OnDemandGovernor::stock();
        g.initial(&n);
        n.set_activity(SimTime::ZERO, CpuActivity::Active);
        n.set_activity(
            SimTime::ZERO + SimDuration::from_millis(350),
            CpuActivity::Halt,
        );
        assert_eq!(g.on_tick(SimTime::from_secs(1), &n), Some(1));
    }

    #[test]
    fn stable_point_returns_none() {
        let mut n = node();
        n.complete_transition(SimTime::ZERO, 4);
        let mut g = OnDemandGovernor::stock();
        g.initial(&n);
        n.set_activity(SimTime::ZERO, CpuActivity::Active);
        assert_eq!(g.on_tick(SimTime::from_secs(1), &n), None);
    }
}
