//! # dvfs — frequency governors for the simulated cluster
//!
//! The paper studies three distributed DVS strategies; each maps onto a
//! governor here, instantiated once per node:
//!
//! 1. **cpuspeed** ([`CpuspeedGovernor`]) — a faithful re-implementation of
//!    the Fedora `cpuspeed` daemon: poll `/proc/stat` on an interval, jump
//!    to the maximum frequency when utilization is high, step down one
//!    level when idle time appears. Its blindness to busy-wait slack is the
//!    paper's first negative result.
//! 2. **static control** ([`StaticGovernor`]) — pin one frequency for the
//!    whole run, synchronized across nodes.
//! 3. **dynamic control** ([`AppDirectedGovernor`]) — honor application
//!    requests inserted around slack-heavy regions (the PowerPack
//!    `set_speed` library calls around `fft()` / transpose steps 2–3).
//!
//! [`OnDemandGovernor`] and [`ConservativeGovernor`] are beyond-the-paper
//! extensions (the kernel governors that later replaced cpuspeed), used
//! in the governor-comparison ablations.
//!
//! Above all of them sits the [`ClusterController`] layer (the `cluster`
//! module): a runtime strategy interface that observes *cross-node*
//! state through engine callbacks. Every governor runs under it via
//! [`PerNodeGovernors`]; [`PowerCapController`] uses it to enforce a
//! global cluster watt budget with optional runtime redistribution.

pub mod app_directed;
pub mod cluster;
pub mod conservative;
pub mod cpuspeed;
pub mod governor;
pub mod ondemand;

pub use app_directed::AppDirectedGovernor;
pub use cluster::{CapPolicy, ClusterController, Decision, PerNodeGovernors, PowerCapController};
pub use conservative::ConservativeGovernor;
pub use cpuspeed::CpuspeedGovernor;
pub use governor::{AppSpeedRequest, Governor, StaticGovernor};
pub use ondemand::OnDemandGovernor;
