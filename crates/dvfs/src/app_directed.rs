//! Application-directed dynamic control — the paper's third strategy.
//!
//! The paper inserts PowerPack library calls into the application: before a
//! slack-heavy region (`fft()`, transpose steps 2–3) the node drops to the
//! lowest operating point; afterwards it restores the previous speed.
//! [`AppDirectedGovernor`] honors those requests (a speed stack supports
//! nesting) and otherwise pins a base operating point, which gives the
//! paper's "Dyn" series: one curve per base point, each dipping to minimum
//! inside the instrumented region.

use cluster_sim::Node;
use power_model::OpIndex;
use sim_core::SimTime;

use crate::governor::{AppSpeedRequest, Governor};

/// Dynamic (application-directed) control with a base operating point.
#[derive(Debug)]
pub struct AppDirectedGovernor {
    base: OpIndex,
    /// Speeds to restore, innermost last.
    stack: Vec<OpIndex>,
}

impl AppDirectedGovernor {
    /// Run at ladder index `base` outside instrumented regions.
    pub fn with_base(base: OpIndex) -> Self {
        AppDirectedGovernor {
            base,
            stack: Vec::new(),
        }
    }

    /// Nesting depth of outstanding requests (for tests/diagnostics).
    pub fn depth(&self) -> usize {
        self.stack.len()
    }
}

impl Governor for AppDirectedGovernor {
    fn name(&self) -> &'static str {
        "dynamic"
    }

    fn initial(&mut self, node: &Node) -> Option<OpIndex> {
        Some(self.base.min(node.config().ladder.highest()))
    }

    fn on_app_request(
        &mut self,
        _now: SimTime,
        node: &Node,
        request: AppSpeedRequest,
    ) -> Option<OpIndex> {
        let ladder = &node.config().ladder;
        match request {
            AppSpeedRequest::Lowest => {
                self.stack.push(node.op_index());
                Some(ladder.lowest())
            }
            AppSpeedRequest::Highest => {
                self.stack.push(node.op_index());
                Some(ladder.highest())
            }
            AppSpeedRequest::Index(idx) => {
                self.stack.push(node.op_index());
                Some(idx.min(ladder.highest()))
            }
            AppSpeedRequest::Restore => self.stack.pop(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cluster_sim::NodeConfig;

    fn node() -> Node {
        Node::new(0, NodeConfig::inspiron_8600())
    }

    #[test]
    fn base_point_applied_at_start() {
        let n = node();
        let mut g = AppDirectedGovernor::with_base(2);
        assert_eq!(g.initial(&n), Some(2));
        assert_eq!(g.name(), "dynamic");
    }

    #[test]
    fn lowest_then_restore_roundtrips() {
        let mut n = node();
        n.complete_transition(SimTime::ZERO, 3); // running at 1.2 GHz
        let mut g = AppDirectedGovernor::with_base(3);
        let down = g.on_app_request(SimTime::ZERO, &n, AppSpeedRequest::Lowest);
        assert_eq!(down, Some(0));
        assert_eq!(g.depth(), 1);
        n.complete_transition(SimTime::ZERO, 0);
        let up = g.on_app_request(SimTime::from_secs(1), &n, AppSpeedRequest::Restore);
        assert_eq!(up, Some(3), "restores the speed in force at entry");
        assert_eq!(g.depth(), 0);
    }

    #[test]
    fn nested_regions_restore_in_order() {
        let mut n = node();
        n.complete_transition(SimTime::ZERO, 4);
        let mut g = AppDirectedGovernor::with_base(4);
        g.on_app_request(SimTime::ZERO, &n, AppSpeedRequest::Index(2));
        n.complete_transition(SimTime::ZERO, 2);
        g.on_app_request(SimTime::ZERO, &n, AppSpeedRequest::Lowest);
        n.complete_transition(SimTime::ZERO, 0);
        assert_eq!(g.depth(), 2);
        assert_eq!(
            g.on_app_request(SimTime::ZERO, &n, AppSpeedRequest::Restore),
            Some(2)
        );
        n.complete_transition(SimTime::ZERO, 2);
        assert_eq!(
            g.on_app_request(SimTime::ZERO, &n, AppSpeedRequest::Restore),
            Some(4)
        );
    }

    #[test]
    fn unmatched_restore_is_ignored() {
        let n = node();
        let mut g = AppDirectedGovernor::with_base(4);
        assert_eq!(
            g.on_app_request(SimTime::ZERO, &n, AppSpeedRequest::Restore),
            None
        );
    }

    #[test]
    fn highest_request_pushes_current() {
        let mut n = node();
        n.complete_transition(SimTime::ZERO, 1);
        let mut g = AppDirectedGovernor::with_base(1);
        assert_eq!(
            g.on_app_request(SimTime::ZERO, &n, AppSpeedRequest::Highest),
            Some(4)
        );
        n.complete_transition(SimTime::ZERO, 4);
        assert_eq!(
            g.on_app_request(SimTime::ZERO, &n, AppSpeedRequest::Restore),
            Some(1)
        );
    }

    #[test]
    fn explicit_index_clamps_to_ladder() {
        let n = node();
        let mut g = AppDirectedGovernor::with_base(0);
        assert_eq!(
            g.on_app_request(SimTime::ZERO, &n, AppSpeedRequest::Index(42)),
            Some(4)
        );
    }
}
