//! The governor interface and the trivial static policy.

use cluster_sim::Node;
use power_model::OpIndex;
use sim_core::{SimDuration, SimTime};

/// An application-level speed request — the simulated equivalent of the
/// PowerPack library's `set_speed()` calls that the paper inserts before
/// and after slack-heavy functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AppSpeedRequest {
    /// Drop to the ladder's lowest point (what the paper's dynamic strategy
    /// does on entry to `fft()` / transpose steps 2–3).
    Lowest,
    /// Go to the ladder's highest point.
    Highest,
    /// Go to a specific operating point.
    Index(OpIndex),
    /// Return to the speed in force before the matching earlier request.
    Restore,
}

/// Per-node frequency policy.
///
/// Governors are passive deciders: the simulation engine calls them and
/// performs any returned retargeting itself (paying transition latency and
/// energy), which keeps hardware mechanics out of policy code.
pub trait Governor {
    /// Human-readable policy name (appears in reports).
    fn name(&self) -> &'static str;

    /// Desired operating point at simulation start, or `None` to keep the
    /// node's boot default.
    fn initial(&mut self, node: &Node) -> Option<OpIndex>;

    /// How often [`Governor::on_tick`] should run, or `None` for purely
    /// event-driven governors.
    fn poll_interval(&self) -> Option<SimDuration> {
        None
    }

    /// Periodic decision point. Returns a new target, or `None` to stay.
    fn on_tick(&mut self, _now: SimTime, _node: &Node) -> Option<OpIndex> {
        None
    }

    /// The application issued a speed request. Returns the operating point
    /// to move to, or `None` to ignore (every policy except dynamic control
    /// ignores these, as in the paper where static/cpuspeed runs leave the
    /// PowerPack calls inert).
    fn on_app_request(
        &mut self,
        _now: SimTime,
        _node: &Node,
        _request: AppSpeedRequest,
    ) -> Option<OpIndex> {
        None
    }
}

/// Pin one operating point for the entire run (the paper's *static
/// control*, also covering the `performance` and `powersave` kernel
/// policies at the ladder ends).
#[derive(Debug, Clone)]
pub struct StaticGovernor {
    target: OpIndex,
    name: &'static str,
}

impl StaticGovernor {
    /// Pin the given ladder index.
    pub fn pinned(target: OpIndex) -> Self {
        StaticGovernor {
            target,
            name: "static",
        }
    }

    /// The kernel `performance` policy: pin the top point. The ladder size
    /// is resolved at `initial()` time.
    pub fn performance() -> Self {
        StaticGovernor {
            target: usize::MAX,
            name: "performance",
        }
    }

    /// The kernel `powersave` policy: pin the bottom point.
    pub fn powersave() -> Self {
        StaticGovernor {
            target: 0,
            name: "powersave",
        }
    }
}

impl Governor for StaticGovernor {
    fn name(&self) -> &'static str {
        self.name
    }

    fn initial(&mut self, node: &Node) -> Option<OpIndex> {
        let ladder = &node.config().ladder;
        Some(self.target.min(ladder.highest()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cluster_sim::NodeConfig;

    fn node() -> Node {
        Node::new(0, NodeConfig::inspiron_8600())
    }

    #[test]
    fn static_pins_requested_index() {
        let n = node();
        let mut g = StaticGovernor::pinned(2);
        assert_eq!(g.initial(&n), Some(2));
        assert_eq!(g.poll_interval(), None);
        assert_eq!(g.on_tick(SimTime::ZERO, &n), None);
        assert_eq!(
            g.on_app_request(SimTime::ZERO, &n, AppSpeedRequest::Lowest),
            None,
            "static control ignores application requests"
        );
    }

    #[test]
    fn performance_and_powersave_resolve_ladder_ends() {
        let n = node();
        assert_eq!(StaticGovernor::performance().initial(&n), Some(4));
        assert_eq!(StaticGovernor::powersave().initial(&n), Some(0));
        assert_eq!(StaticGovernor::performance().name(), "performance");
    }

    #[test]
    fn pinned_index_clamps_to_ladder() {
        let n = node();
        assert_eq!(StaticGovernor::pinned(99).initial(&n), Some(4));
    }
}
