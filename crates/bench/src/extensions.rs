//! Beyond-the-paper studies: the ablations DESIGN.md calls out plus the
//! extension workload. Each has a `src/bin/` wrapper.

use cluster_sim::NodeConfig;
use net_model::NetworkParams;
use power_model::{Component, DvfsLadder};
use powerpack::profile_phases;
use pwrperf::{
    crescendo_of, run_batch, static_crescendo, DvsStrategy, EngineConfig, Experiment, Workload,
};
use sim_core::SimDuration;
use workloads::FtClass;

use crate::banner;

/// Per-component energy breakdown across the ladder — the stacked-bar
/// view PowerPack became known for.
pub fn component_breakdown() {
    banner(
        "Extension",
        "per-component energy breakdown (FT.B, static control)",
    );
    println!(
        "{:>6} {:>10} {:>10} {:>10} {:>8} {:>8} {:>10}",
        "MHz", "cpu_dyn(J)", "cpu_stat(J)", "base(J)", "mem(J)", "nic(J)", "total(J)"
    );
    let ladder = pwrperf::ladder_mhz_desc();
    let results = run_batch(
        ladder
            .iter()
            .map(|&mhz| Experiment::new(Workload::ft_b8(), DvsStrategy::StaticMhz(mhz)))
            .collect(),
    );
    for (mhz, r) in ladder.into_iter().zip(results) {
        let t = &r.total;
        println!(
            "{:>6} {:>10.0} {:>10.0} {:>10.0} {:>8.0} {:>8.0} {:>10.0}",
            mhz,
            t.component(Component::CpuDynamic),
            t.component(Component::CpuStatic),
            t.component(Component::Base),
            t.component(Component::Memory),
            t.component(Component::Nic),
            t.total_j()
        );
    }
    println!("\nOnly CPU dynamic energy responds strongly to DVS; the base draw");
    println!("is why savings saturate around one third on this platform.");
}

/// Phase-level energy attribution for FT.C — what PowerPack's alignment
/// tooling produced for the paper's Figure 4 analysis.
pub fn phase_profile() {
    banner(
        "Extension",
        "phase-level time/energy attribution (FT.C @1.4GHz)",
    );
    let engine = EngineConfig {
        sample_interval: Some(SimDuration::from_secs(1)),
        trace_capacity: 1 << 20,
        ..EngineConfig::default()
    };
    let r = Experiment::new(Workload::ft_c8(), DvsStrategy::StaticMhz(1400))
        .with_engine(engine)
        .run();
    let profiles = profile_phases(&r);
    let mut rows: Vec<_> = profiles.iter().collect();
    rows.sort_by_key(|(_, p)| std::cmp::Reverse(p.total_time));
    let ranks = r.breakdown.len() as f64;
    println!(
        "{:>14} {:>8} {:>12} {:>10} {:>10}",
        "phase", "count", "rank-time(s)", "time %", "energy(J)"
    );
    for (name, p) in rows {
        println!(
            "{:>14} {:>8} {:>12.1} {:>9.1}% {:>10.0}",
            name,
            p.occurrences,
            p.total_time.as_secs_f64(),
            100.0 * p.total_time.as_secs_f64() / (r.duration_secs() * ranks),
            p.energy_j
        );
    }
    println!(
        "\nfft() dominates both time and energy — the paper's rationale for\n\
         instrumenting exactly that function."
    );
}

/// Energy savings vs. node count: does the DVS opportunity grow as the
/// communication fraction grows?
pub fn scaling_nodes() {
    banner(
        "Extension",
        "static-600MHz savings vs node count (FT class A)",
    );
    println!(
        "{:>7} {:>12} {:>12} {:>14}",
        "nodes", "E600/E1400", "D600/D1400", "compute frac"
    );
    for ranks in [2usize, 4, 8, 16] {
        let w = Workload::Ft {
            class: FtClass::A,
            ranks,
        };
        let c = static_crescendo(&w);
        let (e, d) = c.normalized_for(600).unwrap();
        let r = Experiment::new(w, DvsStrategy::StaticMhz(1400)).run();
        let frac: f64 = r
            .breakdown
            .iter()
            .map(|b| b.compute_fraction())
            .sum::<f64>()
            / r.breakdown.len() as f64;
        println!("{ranks:>7} {e:>12.3} {d:>12.3} {:>13.1}%", frac * 100.0);
    }
    println!("\nMore nodes -> smaller per-node compute fraction -> the same energy");
    println!("savings cost less and less delay (the slack absorbs the slowdown).");
}

/// The extension workload: NAS CG under all three strategies.
pub fn extra_cg_crescendo() {
    banner(
        "Extension",
        "NAS CG class B on 8 nodes (memory+allgather bound)",
    );
    let w = Workload::cg_b8();
    let stat = static_crescendo(&w);
    println!(
        "{}",
        pwrperf::report::format_crescendo("CG.B static control", &stat)
    );
    let dynamic = pwrperf::dynamic_crescendo(&w);
    let r = stat.reference();
    let d1400 = dynamic.points().iter().find(|p| p.mhz == 1400).unwrap();
    println!(
        "dynamic (exchange @600MHz, base 1400): E={:.3} D={:.3}",
        d1400.energy_j / r.energy_j,
        d1400.delay_s / r.delay_s
    );
    let (e_cs, d_cs) = pwrperf::cpuspeed_point(&w);
    println!(
        "cpuspeed: E={:.3} D={:.3}",
        e_cs / r.energy_j,
        d_cs / r.delay_s
    );
}

/// Base-power ablation: what if the node were a desktop/server with a
/// larger always-on draw?
pub fn ablation_base_power() {
    banner("Ablation", "FT.B static-600MHz savings vs node base power");
    println!(
        "{:>10} {:>12} {:>12}",
        "base (W)", "E600/E1400", "D600/D1400"
    );
    for base_w in [4.0, 8.0, 16.0, 32.0, 64.0] {
        let mut node = NodeConfig::inspiron_8600();
        node.power.base_w = base_w;
        let node_for_sweep = node.clone();
        let c = crescendo_of(move |mhz| {
            Experiment::new(Workload::ft_b8(), DvsStrategy::StaticMhz(mhz))
                .with_node_config(node_for_sweep.clone())
        });
        let (e, d) = c.normalized_for(600).unwrap();
        println!("{base_w:>10.0} {e:>12.3} {d:>12.3}");
    }
    println!("\nA server-class base draw dilutes CPU savings toward zero — the");
    println!("paper's laptop platform flatters DVS, as its authors knew.");
}

/// Transition-latency ablation: how slow can DVFS switching get before
/// the dynamic strategy stops paying?
pub fn ablation_transition_latency() {
    banner(
        "Ablation",
        "FT.C dynamic control vs DVFS transition latency",
    );
    println!(
        "{:>12} {:>12} {:>12} {:>14}",
        "latency", "E/E(stat1400)", "D/D(stat1400)", "transitions"
    );
    let latencies = [10u64, 100, 1_000, 10_000, 100_000];
    let mut experiments = vec![Experiment::new(
        Workload::ft_c8(),
        DvsStrategy::StaticMhz(1400),
    )];
    experiments.extend(latencies.iter().map(|&latency_us| {
        let mut node = NodeConfig::inspiron_8600();
        node.ladder = DvfsLadder::new(
            node.ladder.points().to_vec(),
            SimDuration::from_micros(latency_us),
        );
        Experiment::new(Workload::ft_c8(), DvsStrategy::DynamicBaseMhz(1400)).with_node_config(node)
    }));
    let mut results = run_batch(experiments);
    let reference = results.remove(0);
    for (latency_us, r) in latencies.into_iter().zip(results) {
        println!(
            "{:>10}us {:>12.3} {:>12.3} {:>14}",
            latency_us,
            r.total_energy_j() / reference.total_energy_j(),
            r.duration_secs() / reference.duration_secs(),
            r.transitions.iter().sum::<u64>()
        );
    }
    println!("\nEven millisecond-scale transitions barely dent function-level");
    println!("dynamic control: fft() regions last tens of seconds.");
}

/// Interconnect ablation: faster networks shrink communication slack.
pub fn ablation_network_bandwidth() {
    banner(
        "Ablation",
        "FT.B static-600MHz savings vs interconnect bandwidth",
    );
    println!("{:>12} {:>12} {:>12}", "link", "E600/E1400", "D600/D1400");
    for (label, bw) in [
        ("10Mb/s", 10e6),
        ("100Mb/s", 100e6),
        ("1Gb/s", 1e9),
        ("10Gb/s", 1e10),
    ] {
        let network = NetworkParams {
            link_bw_bps: bw,
            ..NetworkParams::catalyst_2950_100m()
        };
        let net_for_sweep = network.clone();
        let c = crescendo_of(move |mhz| {
            Experiment::new(Workload::ft_b8(), DvsStrategy::StaticMhz(mhz))
                .with_network(net_for_sweep.clone())
        });
        let (e, d) = c.normalized_for(600).unwrap();
        println!("{label:>12} {e:>12.3} {d:>12.3}");
    }
    println!("\nAs the network speeds up, FT becomes compute-bound: energy savings");
    println!("shrink and the delay penalty grows — DVS slack is platform-relative.");
}

/// Governor ablation: all five policies on one workload, blocking waits.
pub fn governor_comparison() {
    banner(
        "Ablation",
        "five governors on FT.B (blocking-wait transport)",
    );
    let engine = EngineConfig {
        wait_policy: pwrperf::WaitPolicy::PollThenBlock(SimDuration::from_millis(50)),
        ..EngineConfig::default()
    };
    let strategies = [
        DvsStrategy::StaticMhz(1400),
        DvsStrategy::StaticMhz(600),
        DvsStrategy::Cpuspeed,
        DvsStrategy::OnDemand,
        DvsStrategy::Conservative,
        DvsStrategy::DynamicBaseMhz(1400),
    ];
    // The StaticMhz(1400) run doubles as the normalization reference.
    let results = run_batch(
        strategies
            .iter()
            .map(|&strategy| {
                Experiment::new(Workload::ft_b8(), strategy).with_engine(engine.clone())
            })
            .collect(),
    );
    let reference = results[0].clone();
    println!(
        "{:>14} {:>10} {:>10} {:>12}",
        "governor", "E/E0", "D/D0", "transitions"
    );
    for (strategy, r) in strategies.into_iter().zip(results) {
        println!(
            "{:>14} {:>10.3} {:>10.3} {:>12}",
            strategy.label(),
            r.total_energy_j() / reference.total_energy_j(),
            r.duration_secs() / reference.duration_secs(),
            r.transitions.iter().sum::<u64>()
        );
    }
}

/// All-to-all algorithm ablation: round-structured pairwise exchange vs
/// the flood schedule (post everything nonblocking, then waitall).
pub fn ablation_alltoall_algorithm() {
    banner(
        "Ablation",
        "alltoall algorithms: pairwise exchange vs nonblocking flood",
    );
    use cluster_sim::Cluster;
    use dvfs::{Governor, StaticGovernor};
    use mpi_sim::{Engine, Program, ProgramBuilder};

    let run = |flood: bool, ranks: usize, bytes: u64| {
        let cluster = Cluster::paper_testbed(ranks);
        let programs: Vec<Program> = (0..ranks)
            .map(|r| {
                let mut b = ProgramBuilder::new(r, ranks);
                for _ in 0..5 {
                    if flood {
                        b.alltoall_nonblocking(bytes);
                    } else {
                        b.alltoall(bytes);
                    }
                }
                b.build()
            })
            .collect();
        let governors: Vec<Box<dyn Governor>> = (0..ranks)
            .map(|_| Box::new(StaticGovernor::performance()) as Box<dyn Governor>)
            .collect();
        Engine::new(cluster, programs, governors, EngineConfig::default()).run()
    };

    println!(
        "{:>7} {:>10} {:>14} {:>14}",
        "ranks", "msg size", "pairwise (s)", "flood (s)"
    );
    for (ranks, bytes) in [
        (8usize, 64 * 1024u64),
        (8, 4 * 1024 * 1024),
        (15, 1024 * 1024),
    ] {
        let pairwise = run(false, ranks, bytes);
        let flood = run(true, ranks, bytes);
        println!(
            "{:>7} {:>9}K {:>14.3} {:>14.3}",
            ranks,
            bytes / 1024,
            pairwise.duration_secs(),
            flood.duration_secs()
        );
    }
    println!("\nOn a non-blocking switch both schedules saturate the links; the");
    println!("flood variant wins slightly at odd rank counts where the ring");
    println!("schedule leaves links idle between rounds.");
}

/// Automatic slack-directed instrumentation vs the paper's hand-tuned
/// dynamic control.
pub fn auto_instrumentation() {
    banner(
        "Extension",
        "automatic slack-directed DVS (pilot-profile -> instrument -> run)",
    );
    use pwrperf::AutoTuner;
    println!(
        "{:>26} {:>22} {:>10} {:>10} {:>10} {:>10}",
        "workload", "auto-selected phases", "auto E", "auto D", "hand E", "hand D"
    );
    let workloads = [
        Workload::ft_c8(),
        Workload::transpose_paper(),
        Workload::cg_b8(),
        Workload::mg_b8(),
    ];
    // References and hand-tuned runs batch together; the auto-tuner
    // pipelines its own pilot and tuned batches internally.
    let mut baselines = run_batch(
        workloads
            .iter()
            .flat_map(|w| {
                [
                    Experiment::new(w.clone(), DvsStrategy::StaticMhz(1400)),
                    Experiment::new(w.clone(), DvsStrategy::DynamicBaseMhz(1400)),
                ]
            })
            .collect(),
    );
    let outcomes = AutoTuner::default().tune_many(&workloads);
    for (workload, outcome) in workloads.iter().zip(outcomes) {
        let reference = baselines.remove(0);
        let hand = baselines.remove(0);
        println!(
            "{:>26} {:>22} {:>10.3} {:>10.3} {:>10.3} {:>10.3}",
            workload.label(),
            outcome.selected_phases.join(","),
            outcome.tuned.total_energy_j() / reference.total_energy_j(),
            outcome.tuned.duration_secs() / reference.duration_secs(),
            hand.total_energy_j() / reference.total_energy_j(),
            hand.duration_secs() / reference.duration_secs(),
        );
    }
    println!("\nThe profiler re-discovers the paper's hand-chosen regions (fft,");
    println!("exchange/gather, halo) and matches hand-tuned dynamic control.");
}

/// Straggler study on a heterogeneous cluster: one node with a halved
/// ladder ceiling creates imbalance slack everywhere else.
pub fn straggler_study() {
    banner(
        "Extension",
        "heterogeneous cluster: one slow node creates DVS slack on the rest",
    );
    use cluster_sim::{Cluster, NodeConfig};
    use dvfs::{Governor, StaticGovernor};
    use mpi_sim::Engine;
    use power_model::OperatingPoint;

    let ranks = 8;
    let make_cluster = |straggler: bool| {
        let mut configs = vec![NodeConfig::inspiron_8600(); ranks];
        if straggler {
            // Node 7 tops out at 700 MHz (a failing fan, a throttled part).
            let points: Vec<OperatingPoint> = DvfsLadder::pentium_m_1400()
                .points()
                .iter()
                .map(|p| OperatingPoint {
                    freq_hz: p.freq_hz / 2.0,
                    voltage: p.voltage,
                })
                .collect();
            configs[7].ladder = DvfsLadder::new(points, SimDuration::from_micros(10));
        }
        Cluster::from_configs(configs, net_model::NetworkParams::catalyst_2950_100m())
    };
    let run = |straggler: bool, op: usize| {
        let cluster = make_cluster(straggler);
        let governors: Vec<Box<dyn Governor>> = (0..ranks)
            .map(|_| Box::new(StaticGovernor::pinned(op)) as Box<dyn Governor>)
            .collect();
        Engine::new(
            cluster,
            Workload::ft_b8().programs(false),
            governors,
            EngineConfig::default(),
        )
        .run()
    };

    let balanced = run(false, 4);
    let straggled = run(true, 4);
    println!(
        "balanced cluster, all @1400: {:.1} s, {:.0} J",
        balanced.duration_secs(),
        balanced.total_energy_j()
    );
    println!(
        "one straggler,  rest @1400: {:.1} s, {:.0} J (+{:.0}% time)",
        straggled.duration_secs(),
        straggled.total_energy_j(),
        (straggled.duration_secs() / balanced.duration_secs() - 1.0) * 100.0
    );
    // With the straggler pinned anyway, the fast nodes can downshift for
    // nearly free: they were waiting on it.
    let downshifted = run(true, 2);
    println!(
        "one straggler,  rest @1000: {:.1} s, {:.0} J ({:+.1}% time, {:+.1}% energy vs straggled)",
        downshifted.duration_secs(),
        downshifted.total_energy_j(),
        (downshifted.duration_secs() / straggled.duration_secs() - 1.0) * 100.0,
        (downshifted.total_energy_j() / straggled.total_energy_j() - 1.0) * 100.0
    );
    println!("\nLoad imbalance is free energy: the healthy nodes idle-wait on the");
    println!("straggler, so slowing them recovers energy at almost no time cost.");
}

/// Run every extension study.
pub fn all_extensions() {
    component_breakdown();
    phase_profile();
    scaling_nodes();
    extra_cg_crescendo();
    ablation_base_power();
    ablation_transition_latency();
    ablation_network_bandwidth();
    ablation_alltoall_algorithm();
    governor_comparison();
    auto_instrumentation();
    straggler_study();
}
