//! One function per paper table/figure; the `src/bin/` wrappers call these.

use std::path::PathBuf;
use std::sync::Mutex;

use edp_metrics::{iso_efficiency_energy_fraction, Crescendo, DELTA_ENERGY, DELTA_HPC};
use power_model::DvfsLadder;
use powerpack::{CommMicroConfig, MicroConfig};
use pwrperf::calibration::target;
use pwrperf::report::{format_best_points, format_crescendo, format_strategy_comparison};
use pwrperf::{
    crescendo_cached, crescendo_with, ladder_mhz_desc, run_batch, DvsStrategy, EngineConfig,
    Experiment, SweepStore, Topology, Workload,
};

use crate::{banner, print_target_row};

static RESULT_STORE: Mutex<Option<PathBuf>> = Mutex::new(None);
static TOPOLOGY: Mutex<Topology> = Mutex::new(Topology::Flat);
static SHARDS: Mutex<Option<usize>> = Mutex::new(None);

/// Route every ladder crescendo in this module through a [`SweepStore`]
/// at `dir` (`all_figures --store <dir>`): the first regeneration fills
/// the cache, later ones replay it without touching the engine.
pub fn set_result_store(dir: impl Into<PathBuf>) {
    *RESULT_STORE.lock().expect("store dir lock") = Some(dir.into());
}

/// Run every figure on the given interconnect (`all_figures --topology`).
pub fn set_topology(topology: Topology) {
    *TOPOLOGY.lock().expect("topology lock") = topology;
}

/// Shard every run's same-timestamp planning over `n` workers
/// (`all_figures --shards`; results are bit-identical at any count).
pub fn set_shards(n: usize) {
    *SHARDS.lock().expect("shards lock") = Some(n);
}

/// The engine configuration every figure runs with: default knobs plus
/// the module-level topology/shard overrides (the flag wins over
/// `PWRPERF_SHARDS`, which wins over inline planning).
fn base_engine() -> EngineConfig {
    EngineConfig {
        topology: *TOPOLOGY.lock().expect("topology lock"),
        shards: SHARDS
            .lock()
            .expect("shards lock")
            .or_else(pwrperf::env_shards)
            .unwrap_or(1),
        ..EngineConfig::default()
    }
}

fn ladder_crescendo(w: &Workload) -> Crescendo {
    let dir = RESULT_STORE.lock().expect("store dir lock").clone();
    let Some(dir) = dir else {
        return crescendo_with(w, base_engine(), DvsStrategy::StaticMhz);
    };
    let cached = SweepStore::open(&dir).and_then(|mut store| {
        crescendo_cached(w, base_engine(), DvsStrategy::StaticMhz, &mut store)
    });
    match cached {
        Ok(c) => c,
        Err(e) => {
            eprintln!(
                "warning: result store {} unusable ({e}); running uncached",
                dir.display()
            );
            crescendo_with(w, base_engine(), DvsStrategy::StaticMhz)
        }
    }
}

/// All three paper strategies for one workload as a *single* parallel
/// batch — 5 static pins, 5 dynamic bases, and the cpuspeed point (11
/// runs) — instead of three smaller sweeps. Results are identical to
/// `static_crescendo` + `dynamic_crescendo` + `cpuspeed_point`.
fn strategy_suite(w: &Workload) -> (Crescendo, Crescendo, (f64, f64)) {
    let ladder = ladder_mhz_desc();
    let engine = base_engine();
    let mut experiments = Vec::with_capacity(2 * ladder.len() + 1);
    for &mhz in &ladder {
        experiments.push(
            Experiment::new(w.clone(), DvsStrategy::StaticMhz(mhz)).with_engine(engine.clone()),
        );
    }
    for &mhz in &ladder {
        experiments.push(
            Experiment::new(w.clone(), DvsStrategy::DynamicBaseMhz(mhz))
                .with_engine(engine.clone()),
        );
    }
    experiments.push(Experiment::new(w.clone(), DvsStrategy::Cpuspeed).with_engine(engine));
    let mut results = run_batch(experiments);
    let cs = results.pop().expect("cpuspeed result");
    let mut stat = Crescendo::new();
    let mut dyn_c = Crescendo::new();
    for (i, &mhz) in ladder.iter().enumerate() {
        stat.push(mhz, results[i].total_energy_j(), results[i].duration_secs());
        let r = &results[ladder.len() + i];
        dyn_c.push(mhz, r.total_energy_j(), r.duration_secs());
    }
    (stat, dyn_c, (cs.total_energy_j(), cs.duration_secs()))
}

/// Figure 1: energy-delay crescendos for the SPEC proxies.
pub fn fig1_spec_crescendos() {
    banner(
        "Fig. 1",
        "SPEC CFP2000 energy-delay crescendos (mgrid, swim)",
    );
    let mgrid = ladder_crescendo(&Workload::Mgrid);
    let swim = ladder_crescendo(&Workload::Swim);
    println!("{}", format_crescendo("mgrid (CPU-bound)", &mgrid));
    println!("{}", format_crescendo("swim (memory-bound)", &swim));
    println!("Paper shape: mgrid saves little energy at large delay cost;");
    println!("swim's energy falls steadily with modest delay growth.");
}

/// Figure 2: weighted-ED²P iso-efficiency curves.
pub fn fig2_weighted_ed2p_curves() {
    banner(
        "Fig. 2",
        "energy fraction required to break even vs delay factor",
    );
    let deltas = [-1.0, -0.6, -0.2, 0.0, 0.2, 0.6, 1.0];
    print!("{:>8}", "delay");
    for d in deltas {
        print!(" {:>8}", format!("d={d}"));
    }
    println!();
    let mut x = 1.0;
    while x <= 2.0 + 1e-9 {
        print!("{x:>8.2}");
        for d in deltas {
            print!(" {:>8.3}", iso_efficiency_energy_fraction(x, d));
        }
        println!();
        x += 0.1;
    }
    println!("\nPaper callout: at d=0.4, x=1.1 the curve reads ~0.64-0.68.");
}

/// Table 1: best operating points for mgrid and swim.
pub fn table1_spec_best_points() {
    banner("Table 1", "best operating points for mgrid and swim");
    let mgrid = ladder_crescendo(&Workload::Mgrid);
    let swim = ladder_crescendo(&Workload::Swim);
    println!(
        "{}",
        format_best_points(&[("mgrid", &mgrid), ("swim", &swim)])
    );
    println!("Paper: mgrid HPC=1400 energy=600 perf=1400; swim HPC=1000 energy=600 perf=1400.");
}

/// Table 2: the Pentium-M operating points.
pub fn table2_operating_points() {
    banner("Table 2", "frequency and supply-voltage operating points");
    let ladder = DvfsLadder::pentium_m_1400();
    println!("{:>10} {:>14}", "Frequency", "Supply voltage");
    for p in ladder.points().iter().rev() {
        println!("{:>7}MHz {:>13.3}V", p.mhz(), p.voltage);
    }
    println!(
        "transition latency: {} (manufacturer lower bound)",
        ladder.transition_latency()
    );
}

/// Figure 3: FT class B on 8 nodes — cpuspeed point + static crescendo.
pub fn fig3_ft_b_crescendo() {
    banner("Fig. 3", "normalized energy and delay of FT.B on 8 nodes");
    let w = Workload::ft_b8();
    let stat = ladder_crescendo(&w);
    println!("{}", format_crescendo("FT.B static control", &stat));
    let reference = stat.reference();
    let cs = Experiment::new(w.clone(), DvsStrategy::Cpuspeed)
        .with_engine(base_engine())
        .run();
    let (e_cs, d_cs) = (cs.total_energy_j(), cs.duration_secs());
    println!(
        "cpuspeed daemon: E={:.3} D={:.3} (normalized)",
        e_cs / reference.energy_j,
        d_cs / reference.delay_s
    );
    println!("\npaper-vs-measured:");
    if let Some(t) = target("ft_b8", "stat", 600) {
        let (e, d) = stat.normalized_for(600).unwrap();
        print_target_row(&t, e, d);
    }
    if let Some(t) = target("ft_b8", "cpuspeed", 0) {
        print_target_row(&t, e_cs / reference.energy_j, d_cs / reference.delay_s);
    }
}

/// Table 3: best operating points for FT.B.
pub fn table3_ft_b_best_points() {
    banner("Table 3", "best operating points for FT class B on 8 nodes");
    let stat = ladder_crescendo(&Workload::ft_b8());
    println!("{}", format_best_points(&[("FT.B (8 nodes)", &stat)]));
    let gain = edp_metrics::efficiency_gain(&stat, DELTA_HPC);
    println!(
        "HPC-point efficiency gain over 1400 MHz: {:.1}%",
        gain * 100.0
    );
    println!("Paper: HPC=1000, energy=600, performance=1400; gain 16.9%.");
}

/// Figure 4: FT class C on 8 processors under all three strategies.
pub fn fig4_ft_c_strategies() {
    banner(
        "Fig. 4",
        "FT.C on 8 processors: cpuspeed vs static vs dynamic",
    );
    let w = Workload::ft_c8();
    let (stat, dyn_c, (e_cs, d_cs)) = strategy_suite(&w);

    let mut rows = vec![("cpuspeed".to_string(), e_cs, d_cs)];
    for p in stat.points() {
        rows.push((format!("stat {}MHz", p.mhz), p.energy_j, p.delay_s));
    }
    for p in dyn_c.points() {
        rows.push((format!("dyn {}MHz", p.mhz), p.energy_j, p.delay_s));
    }
    println!(
        "{}",
        format_strategy_comparison("FT.C energy & delay", &rows, "stat 1400MHz")
    );
    println!("paper-vs-measured:");
    let reference = stat.reference();
    let dyn_norm = |mhz: u32| {
        dyn_c.points().iter().find(|p| p.mhz == mhz).map(|p| {
            (
                p.energy_j / reference.energy_j,
                p.delay_s / reference.delay_s,
            )
        })
    };
    for (strategy, mhz, measured) in [
        ("stat", 800, stat.normalized_for(800)),
        ("stat", 600, stat.normalized_for(600)),
        ("dyn", 1400, dyn_norm(1400)),
        ("dyn", 1000, dyn_norm(1000)),
    ] {
        if let (Some(t), Some((me, md))) = (target("ft_c8", strategy, mhz), measured) {
            print_target_row(&t, me, md);
        }
    }
    if let Some(t) = target("ft_c8", "cpuspeed", 0) {
        print_target_row(&t, e_cs / reference.energy_j, d_cs / reference.delay_s);
        println!(
            "  note: our wait model busy-polls (MPICH ch_p4), so cpuspeed sees no\n  \
             idle and saves nothing; the paper observed 12.4% on class C."
        );
    }
}

/// Figure 5: the 12K×12K transpose on 15 processors.
pub fn fig5_transpose_strategies() {
    banner("Fig. 5", "parallel matrix transpose on 15 processors");
    let w = Workload::transpose_paper();
    let (stat, dyn_c, (e_cs, d_cs)) = strategy_suite(&w);

    let mut rows = vec![("cpuspeed".to_string(), e_cs, d_cs)];
    for p in stat.points() {
        rows.push((format!("stat {}MHz", p.mhz), p.energy_j, p.delay_s));
    }
    for p in dyn_c.points() {
        rows.push((format!("dyn {}MHz", p.mhz), p.energy_j, p.delay_s));
    }
    println!(
        "{}",
        format_strategy_comparison("transpose energy & delay", &rows, "stat 1400MHz")
    );
    println!("paper-vs-measured:");
    for mhz in [800u32, 600] {
        if let (Some(t), Some((e, d))) =
            (target("transpose15", "stat", mhz), stat.normalized_for(mhz))
        {
            print_target_row(&t, e, d);
        }
    }
    let reference = stat.reference();
    if let Some(t) = target("transpose15", "cpuspeed", 0) {
        print_target_row(&t, e_cs / reference.energy_j, d_cs / reference.delay_s);
    }
    println!(
        "  note: our wait-dominated gather overshoots the paper's absolute energy\n  \
         savings; the strategy ordering and near-zero delay impact match."
    );
}

/// Figure 6: the memory-bound microbenchmark.
pub fn fig6_memory_micro() {
    banner(
        "Fig. 6",
        "normalized energy and delay of memory access (32MB, 128B stride)",
    );
    let c = ladder_crescendo(&Workload::MemoryMicro(MicroConfig::default()));
    println!("{}", format_crescendo("memory microbenchmark", &c));
    if let (Some(t), Some((e, d))) = (target("memory_micro", "stat", 600), c.normalized_for(600)) {
        print_target_row(&t, e, d);
    }
    let gain = edp_metrics::efficiency_gain(&c, DELTA_ENERGY);
    println!(
        "energy-point efficiency gain over 1400 MHz: {:.1}% (paper: 40.7%)",
        gain * 100.0
    );
}

/// Figure 7: the CPU-bound (L2) microbenchmark plus the register variant.
pub fn fig7_cpu_micro() {
    banner(
        "Fig. 7",
        "normalized energy and delay for L2 cache access under DVS",
    );
    // The L2 walk covers only 2048 lines per pass; scale the pass count so
    // the run lasts seconds, as the paper's ACPI methodology required.
    let passes = MicroConfig { passes: 400_000 };
    let l2 = ladder_crescendo(&Workload::CpuMicro(passes.clone()));
    println!("{}", format_crescendo("CPU (L2) microbenchmark", &l2));
    for mhz in [800u32, 600] {
        if let (Some(t), Some((e, d))) = (target("cpu_micro", "stat", mhz), l2.normalized_for(mhz))
        {
            print_target_row(&t, e, d);
        }
    }
    let reg = ladder_crescendo(&Workload::RegisterMicro(MicroConfig { passes: 9_000 }));
    println!();
    println!("{}", format_crescendo("register-only variant", &reg));
    println!("Paper: delay +134% at 600 MHz; energy bottoms mid-ladder and rises at 600.");
}

/// Figure 8: the communication microbenchmarks.
pub fn fig8_comm_micro() {
    banner("Fig. 8", "communication microbenchmarks (round trips)");
    let a = ladder_crescendo(&Workload::Comm(CommMicroConfig::paper_256k()));
    println!("{}", format_crescendo("(a) 256KB round trip", &a));
    if let (Some(t), Some((e, d))) = (target("comm_256k", "stat", 600), a.normalized_for(600)) {
        print_target_row(&t, e, d);
    }
    let b = ladder_crescendo(&Workload::Comm(CommMicroConfig::paper_4k_strided()));
    println!();
    println!("{}", format_crescendo("(b) 4KB message, 64B stride", &b));
    if let (Some(t), Some((e, d))) = (target("comm_4k", "stat", 600), b.normalized_for(600)) {
        print_target_row(&t, e, d);
    }
}

/// Beyond-paper ablation: how the cpuspeed verdict depends on whether MPI
/// waits are visible to `/proc/stat`.
pub fn ablation_wait_policy() {
    banner(
        "Ablation",
        "cpuspeed vs wait visibility (busy-poll vs poll-then-block)",
    );
    use pwrperf::WaitPolicy;
    use sim_core::SimDuration;
    let w = Workload::ft_b8();
    for (label, policy) in [
        ("busy-poll (MPICH ch_p4)", WaitPolicy::BusyPoll),
        (
            "block after 100ms",
            WaitPolicy::PollThenBlock(SimDuration::from_millis(100)),
        ),
        (
            "block after 1s",
            WaitPolicy::PollThenBlock(SimDuration::from_secs(1)),
        ),
    ] {
        let engine = EngineConfig {
            wait_policy: policy,
            ..base_engine()
        };
        let run = Experiment::new(w.clone(), DvsStrategy::Cpuspeed)
            .with_engine(engine.clone())
            .run();
        let base = Experiment::new(w.clone(), DvsStrategy::StaticMhz(1400))
            .with_engine(engine)
            .run();
        println!(
            "  {:>24}: E={:.3} D={:.3} transitions/node={:.1}",
            label,
            run.total_energy_j() / base.total_energy_j(),
            run.duration_secs() / base.duration_secs(),
            run.transitions.iter().sum::<u64>() as f64 / run.transitions.len() as f64,
        );
    }
    println!("\nBlocking waits make communication slack visible to utilization-driven");
    println!("governors; busy-wait transports hide it (the paper's cpuspeed result).");
}

/// Run every regenerator in paper order.
pub fn all() {
    fig1_spec_crescendos();
    fig2_weighted_ed2p_curves();
    table1_spec_best_points();
    table2_operating_points();
    fig3_ft_b_crescendo();
    table3_ft_b_best_points();
    fig4_ft_c_strategies();
    fig5_transpose_strategies();
    fig6_memory_micro();
    fig7_cpu_micro();
    fig8_comm_micro();
    ablation_wait_policy();
}
