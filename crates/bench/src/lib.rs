//! # pwrperf-bench — paper regenerators and performance benchmarks
//!
//! Two kinds of targets live here:
//!
//! * **Figure/table regenerators** (`src/bin/`): one binary per table and
//!   figure in the paper's evaluation, each printing the reproduced
//!   rows/series next to the paper's reported numbers
//!   (`cargo run -p pwrperf-bench --bin fig3_ft_b_crescendo`). The
//!   `all_figures` binary runs every regenerator in sequence.
//! * **Criterion benches** (`benches/`): performance of the simulator
//!   itself (engine event throughput, collective lowering, fair-share
//!   allocation, governor overhead), run with `cargo bench`.

use pwrperf::calibration::PaperTarget;

/// Print a paper-vs-measured comparison row.
pub fn print_target_row(target: &PaperTarget, measured_e: f64, measured_d: f64) {
    println!(
        "  {:>12} @{:>5}MHz  paper E={:.3} D={:.3}  measured E={:.3} D={:.3}  (ΔE={:+.3}, ΔD={:+.3})",
        target.strategy,
        target.mhz,
        target.norm_energy,
        target.norm_delay,
        measured_e,
        measured_d,
        measured_e - target.norm_energy,
        measured_d - target.norm_delay,
    );
}

/// Standard header for a regenerator binary.
pub fn banner(figure: &str, description: &str) {
    println!("==============================================================");
    println!("{figure}: {description}");
    println!("Ge, Feng, Cameron — IPPS 2005 reproduction (simulated cluster)");
    println!("==============================================================");
}

#[cfg(test)]
mod tests {
    use super::*;
    use pwrperf::calibration::target;

    #[test]
    fn helpers_run_without_panicking() {
        banner("Fig. X", "smoke test");
        let t = target("ft_b8", "stat", 600).unwrap();
        print_target_row(&t, 0.68, 1.09);
    }
}

pub mod extensions;
pub mod figures;
