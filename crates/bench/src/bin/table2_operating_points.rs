//! Regenerate the paper artifact; see `pwrperf_bench::figures`.
fn main() {
    pwrperf_bench::figures::table2_operating_points();
}
