//! Regenerate the paper artifact; see `pwrperf_bench::figures`.
fn main() {
    pwrperf_bench::figures::fig7_cpu_micro();
}
