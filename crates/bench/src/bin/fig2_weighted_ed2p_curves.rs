//! Regenerate the paper artifact; see `pwrperf_bench::figures`.
fn main() {
    pwrperf_bench::figures::fig2_weighted_ed2p_curves();
}
