//! Run every beyond-the-paper extension and ablation study.
fn main() {
    pwrperf_bench::extensions::all_extensions();
}
