//! Extension/ablation study; see `pwrperf_bench::extensions`.
fn main() {
    pwrperf_bench::extensions::ablation_alltoall_algorithm();
}
