//! Regenerate the paper artifact; see `pwrperf_bench::figures`.
fn main() {
    pwrperf_bench::figures::fig6_memory_micro();
}
