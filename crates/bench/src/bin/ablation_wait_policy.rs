//! Regenerate the paper artifact; see `pwrperf_bench::figures`.
fn main() {
    pwrperf_bench::figures::ablation_wait_policy();
}
