//! Regenerate the paper artifact; see `pwrperf_bench::figures`.
fn main() {
    pwrperf_bench::figures::fig8_comm_micro();
}
