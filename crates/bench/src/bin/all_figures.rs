//! Regenerate every table and figure in the paper's evaluation, in order.
//!
//! With `--store <dir>`, ladder crescendos are served through the
//! content-addressed result cache: the first (cold) regeneration fills
//! it, subsequent (warm) ones replay the identical results without
//! executing the engine — `scripts/bench.sh` times both modes.
fn main() {
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        match flag.as_str() {
            "--store" => match args.next() {
                Some(dir) => pwrperf_bench::figures::set_result_store(dir),
                None => {
                    eprintln!("error: --store needs a directory");
                    std::process::exit(2);
                }
            },
            other => {
                eprintln!("error: unknown flag '{other}' (usage: all_figures [--store <dir>])");
                std::process::exit(2);
            }
        }
    }
    pwrperf_bench::figures::all();
}
