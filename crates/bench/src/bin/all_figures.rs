//! Regenerate every table and figure in the paper's evaluation, in order.
fn main() {
    pwrperf_bench::figures::all();
}
