//! Regenerate every table and figure in the paper's evaluation, in order.
//!
//! With `--store <dir>`, ladder crescendos are served through the
//! content-addressed result cache: the first (cold) regeneration fills
//! it, subsequent (warm) ones replay the identical results without
//! executing the engine — `scripts/bench.sh` times both modes.
//!
//! `--topology <spec>` and `--shards <n>` apply to every run (the same
//! specs `pwrperf run` takes); `--shards` beats `PWRPERF_SHARDS`, which
//! beats inline planning. Results are bit-identical at any shard count.
fn main() {
    const USAGE: &str = "usage: all_figures [--store <dir>] [--topology <spec>] [--shards <n>]";
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        match flag.as_str() {
            "--store" => match args.next() {
                Some(dir) => pwrperf_bench::figures::set_result_store(dir),
                None => {
                    eprintln!("error: --store needs a directory\n{USAGE}");
                    std::process::exit(2);
                }
            },
            "--topology" => {
                let spec = args.next().unwrap_or_default();
                match pwrperf::Topology::parse(&spec) {
                    Ok(topology) => pwrperf_bench::figures::set_topology(topology),
                    Err(e) => {
                        eprintln!("error: bad --topology spec: {e}\n{USAGE}");
                        std::process::exit(2);
                    }
                }
            }
            "--shards" => {
                let n = args.next().and_then(|v| v.parse::<usize>().ok());
                match n {
                    Some(n) if n >= 1 => pwrperf_bench::figures::set_shards(n),
                    _ => {
                        eprintln!("error: --shards needs a positive integer\n{USAGE}");
                        std::process::exit(2);
                    }
                }
            }
            other => {
                eprintln!("error: unknown flag '{other}' ({USAGE})");
                std::process::exit(2);
            }
        }
    }
    pwrperf_bench::figures::all();
}
