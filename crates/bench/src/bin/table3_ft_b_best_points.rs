//! Regenerate the paper artifact; see `pwrperf_bench::figures`.
fn main() {
    pwrperf_bench::figures::table3_ft_b_best_points();
}
