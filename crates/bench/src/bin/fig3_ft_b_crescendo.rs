//! Regenerate the paper artifact; see `pwrperf_bench::figures`.
fn main() {
    pwrperf_bench::figures::fig3_ft_b_crescendo();
}
