//! Regenerate the paper artifact; see `pwrperf_bench::figures`.
fn main() {
    pwrperf_bench::figures::table1_spec_best_points();
}
