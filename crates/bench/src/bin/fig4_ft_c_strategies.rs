//! Regenerate the paper artifact; see `pwrperf_bench::figures`.
fn main() {
    pwrperf_bench::figures::fig4_ft_c_strategies();
}
