//! Criterion benches for the simulation engine itself: how fast the
//! discrete-event core chews through the paper's workloads.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pwrperf::{DvsStrategy, Experiment, Workload};
use workloads::FtClass;

fn bench_ft_simulation(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulate_ft");
    group.sample_size(20);
    for (label, workload) in [
        ("test_4", Workload::ft_test(4)),
        ("class_b_8", Workload::ft_b8()),
        ("class_c_8", Workload::ft_c8()),
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(label), &workload, |b, w| {
            b.iter(|| Experiment::new(w.clone(), DvsStrategy::StaticMhz(1400)).run())
        });
    }
    group.finish();
}

fn bench_strategies(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulate_strategy");
    group.sample_size(20);
    for strategy in [
        DvsStrategy::StaticMhz(600),
        DvsStrategy::Cpuspeed,
        DvsStrategy::DynamicBaseMhz(1400),
        DvsStrategy::OnDemand,
    ] {
        group.bench_with_input(
            BenchmarkId::from_parameter(strategy.label()),
            &strategy,
            |b, s| {
                b.iter(|| Experiment::new(Workload::ft_b8(), *s).run());
            },
        );
    }
    group.finish();
}

fn bench_transpose(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulate_transpose");
    group.sample_size(20);
    group.bench_function("15_ranks_2_iters", |b| {
        b.iter(|| Experiment::new(Workload::transpose_paper(), DvsStrategy::StaticMhz(1400)).run())
    });
    group.finish();
}

fn bench_rank_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulate_rank_scaling");
    group.sample_size(20);
    for ranks in [2usize, 4, 8, 16] {
        group.bench_with_input(BenchmarkId::from_parameter(ranks), &ranks, |b, &n| {
            b.iter(|| {
                Experiment::new(
                    Workload::Ft {
                        class: FtClass::A,
                        ranks: n,
                    },
                    DvsStrategy::StaticMhz(1400),
                )
                .run()
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_ft_simulation,
    bench_strategies,
    bench_transpose,
    bench_rank_scaling
);
criterion_main!(benches);
