//! Criterion benches for individual substrates: event queue, fair-share
//! allocator, collective lowering, and workload construction.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mpi_sim::ProgramBuilder;
use net_model::fair_share::{max_min_fair, FlowEndpoints};
use sim_core::{DetRng, EventQueue, SimTime};
use workloads::{ft_programs, FtClass, FtConfig};

fn bench_event_queue(c: &mut Criterion) {
    let mut group = c.benchmark_group("event_queue");
    for n in [1_000u64, 100_000] {
        group.bench_with_input(BenchmarkId::new("push_pop", n), &n, |b, &n| {
            b.iter(|| {
                let mut q = EventQueue::new();
                let mut rng = DetRng::new(1);
                for i in 0..n {
                    q.push(SimTime(rng.gen_range(0, 1_000_000)), i);
                }
                let mut count = 0;
                while q.pop().is_some() {
                    count += 1;
                }
                count
            })
        });
    }
    group.finish();
}

fn bench_fair_share(c: &mut Criterion) {
    let mut group = c.benchmark_group("max_min_fair");
    for flows in [8usize, 64, 256] {
        group.bench_with_input(BenchmarkId::from_parameter(flows), &flows, |b, &n| {
            let mut rng = DetRng::new(7);
            let endpoints: Vec<FlowEndpoints> = (0..n)
                .map(|_| FlowEndpoints {
                    src: rng.gen_range(0, 16) as usize,
                    dst: rng.gen_range(0, 16) as usize,
                })
                .collect();
            b.iter(|| max_min_fair(&endpoints, 16, 100.0, 1000.0))
        });
    }
    group.finish();
}

fn bench_collective_lowering(c: &mut Criterion) {
    let mut group = c.benchmark_group("lower_collectives");
    for ranks in [8usize, 64, 256] {
        group.bench_with_input(BenchmarkId::new("alltoall", ranks), &ranks, |b, &n| {
            b.iter(|| {
                let mut builder = ProgramBuilder::new(0, n);
                builder.alltoall(4096);
                builder.build().len()
            })
        });
        group.bench_with_input(BenchmarkId::new("barrier", ranks), &ranks, |b, &n| {
            b.iter(|| {
                let mut builder = ProgramBuilder::new(0, n);
                builder.barrier();
                builder.build().len()
            })
        });
    }
    group.finish();
}

fn bench_workload_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("build_workload");
    group.bench_function("ft_class_c_8ranks", |b| {
        b.iter(|| ft_programs(&FtConfig::paper(FtClass::C, 8)))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_event_queue,
    bench_fair_share,
    bench_collective_lowering,
    bench_workload_build
);
criterion_main!(benches);
