//! ED²P and the paper's weighted generalization.

/// The user weight factor `∂` from the paper's Equation 5.
pub type Delta = f64;

/// All weight on energy (`E²`): the paper's "energy" setting.
pub const DELTA_ENERGY: Delta = -1.0;

/// The paper's experimentally chosen HPC setting.
pub const DELTA_HPC: Delta = 0.2;

/// All weight on performance (`D⁴`): the paper's "performance" setting.
pub const DELTA_PERFORMANCE: Delta = 1.0;

/// Plain energy-delay-squared product `E · D²` (Equation 4).
pub fn ed2p(energy: f64, delay: f64) -> f64 {
    assert!(
        energy >= 0.0 && delay >= 0.0,
        "E and D must be non-negative"
    );
    energy * delay * delay
}

/// Weighted ED²P `E^(1-∂) · D^(2(1+∂))` (Equation 5). Lower is better.
///
/// Panics when `∂` is outside `[-1, 1]` or inputs are negative/non-finite.
pub fn weighted_ed2p(energy: f64, delay: f64, delta: Delta) -> f64 {
    assert!(
        (-1.0..=1.0).contains(&delta),
        "weight factor must satisfy -1 <= delta <= 1, got {delta}"
    );
    assert!(
        energy >= 0.0 && delay >= 0.0 && energy.is_finite() && delay.is_finite(),
        "E and D must be finite and non-negative (E={energy}, D={delay})"
    );
    energy.powf(1.0 - delta) * delay.powf(2.0 * (1.0 + delta))
}

/// The minimum energy-saving fraction that makes a slower point "best"
/// under `∂`, for two points whose delays differ by `delay_ratio >= 1`
/// (the paper's worked example: 5% slower at `∂ = 0.2` needs 13.1%
/// energy savings).
///
/// Solves `E₂/E₁` from `wED2P₂ = wED2P₁` with `D₂/D₁ = delay_ratio`:
/// `E₂/E₁ = delay_ratio^(-2(1+∂)/(1-∂))`; the required saving is
/// `1 - E₂/E₁`. At `∂ = 1` (performance-only) any slowdown is
/// unacceptable, returned as `1.0` (a slower point can never win).
pub fn required_energy_saving(delay_ratio: f64, delta: Delta) -> f64 {
    assert!(delay_ratio >= 1.0, "delay ratio must be >= 1");
    assert!((-1.0..=1.0).contains(&delta));
    if delta >= 1.0 {
        return if delay_ratio > 1.0 { 1.0 } else { 0.0 };
    }
    let exponent = -2.0 * (1.0 + delta) / (1.0 - delta);
    1.0 - delay_ratio.powf(exponent)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn delta_zero_reduces_to_ed2p() {
        let (e, d) = (123.4, 5.6);
        assert!((weighted_ed2p(e, d, 0.0) - ed2p(e, d)).abs() < 1e-9);
    }

    #[test]
    fn delta_one_is_pure_performance() {
        let (e, d) = (999.0, 2.0);
        assert!((weighted_ed2p(e, d, 1.0) - d.powi(4)).abs() < 1e-9);
    }

    #[test]
    fn delta_minus_one_is_pure_energy() {
        let (e, d) = (3.0, 999.0);
        assert!((weighted_ed2p(e, d, -1.0) - e * e).abs() < 1e-9);
    }

    #[test]
    fn paper_worked_example_5pct_slower_needs_13pct_savings() {
        // "For two operating points that differ in performance by 5%,
        //  ∂=0.2 requires a 13.1% energy savings." Equation 5 gives
        //  exactly 1 - 1.05^(-2·1.2/0.8) = 1 - 1.05^-3 = 13.6%; the paper
        //  rounds loosely. We assert the exact value with room for theirs.
        let saving = required_energy_saving(1.05, DELTA_HPC);
        assert!((saving - 0.136).abs() < 0.01, "got {saving}");
    }

    #[test]
    fn paper_figure2_example_10pct_slower_at_delta_04() {
        // Fig. 2 callout: at ∂=0.4 and x=1.1, the paper reads y≈68% off
        // its chart; Equation 5 evaluates to 1.1^(-2·1.4/0.6) = 0.64,
        // i.e. ~36% savings required.
        let saving = required_energy_saving(1.10, 0.4);
        assert!((saving - 0.36).abs() < 0.04, "got {saving}");
    }

    #[test]
    fn performance_delta_rejects_any_slowdown() {
        assert_eq!(required_energy_saving(1.01, DELTA_PERFORMANCE), 1.0);
        assert_eq!(required_energy_saving(1.0, DELTA_PERFORMANCE), 0.0);
    }

    #[test]
    #[should_panic(expected = "-1 <= delta <= 1")]
    fn out_of_range_delta_panics() {
        let _ = weighted_ed2p(1.0, 1.0, 1.5);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_energy_panics() {
        let _ = weighted_ed2p(-1.0, 1.0, 0.0);
    }

    proptest! {
        /// Larger ∂ penalizes delay more: for a point that is slower but
        /// cheaper, increasing ∂ never makes it look better relative to
        /// the fast point.
        #[test]
        fn prop_delta_orders_tradeoffs(
            d1 in 0.0f64..0.9, d2 in 0.0f64..0.9
        ) {
            let (lo, hi) = if d1 <= d2 { (d1, d2) } else { (d2, d1) };
            // Slow-but-cheap vs fast-but-hungry.
            let slow = (0.7f64, 1.2f64);
            let fast = (1.0f64, 1.0f64);
            let ratio_lo = weighted_ed2p(slow.0, slow.1, lo) / weighted_ed2p(fast.0, fast.1, lo);
            let ratio_hi = weighted_ed2p(slow.0, slow.1, hi) / weighted_ed2p(fast.0, fast.1, hi);
            prop_assert!(ratio_hi >= ratio_lo - 1e-12);
        }

        /// Scale invariance: multiplying E by a constant scales the metric
        /// by c^(1-∂) — normalization does not change which point wins.
        #[test]
        fn prop_normalization_preserves_argmin(
            e1 in 0.1f64..10.0, e2 in 0.1f64..10.0,
            dd1 in 0.1f64..10.0, dd2 in 0.1f64..10.0,
            c in 0.1f64..10.0, delta in -0.99f64..0.99
        ) {
            let a = weighted_ed2p(e1, dd1, delta) < weighted_ed2p(e2, dd2, delta);
            let b = weighted_ed2p(c * e1, dd1, delta) < weighted_ed2p(c * e2, dd2, delta);
            prop_assert_eq!(a, b);
        }

        /// required_energy_saving is monotone in both arguments.
        #[test]
        fn prop_required_saving_monotone(
            r in 1.0f64..2.0, delta in -0.9f64..0.9
        ) {
            let s = required_energy_saving(r, delta);
            prop_assert!((0.0..=1.0).contains(&s));
            let s_faster = required_energy_saving(r + 0.05, delta);
            prop_assert!(s_faster >= s - 1e-12, "more slowdown needs more savings");
            let s_perf = required_energy_saving(r, (delta + 0.05).min(0.95));
            prop_assert!(s_perf >= s - 1e-12, "more performance weight needs more savings");
        }
    }
}
