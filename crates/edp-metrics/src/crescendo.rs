//! Energy-delay crescendos over operating points.
//!
//! The paper's recurring plot: run one workload at each operating point,
//! normalize energy and delay to the fastest point, and watch the curves
//! "crescendo" apart as the frequency drops.

/// One operating point's measurement.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CrescendoPoint {
    /// Label, by convention the frequency in MHz (or 0 for non-ladder
    /// strategies like the cpuspeed daemon).
    pub mhz: u32,
    /// Energy, joules.
    pub energy_j: f64,
    /// Delay (time-to-solution), seconds.
    pub delay_s: f64,
}

/// A series of measurements over operating points, fastest first or in any
/// order; normalization always uses the *highest-frequency* entry, as the
/// paper does.
#[derive(Debug, Clone, Default)]
pub struct Crescendo {
    points: Vec<CrescendoPoint>,
}

impl Crescendo {
    /// An empty crescendo.
    pub fn new() -> Self {
        Crescendo { points: Vec::new() }
    }

    /// Assemble a crescendo from `(mhz, energy_j, delay_s)` tuples — the
    /// shape cached sweep results come back in, so a stored ladder sweep
    /// turns into a crescendo without re-running anything.
    pub fn from_pairs(points: impl IntoIterator<Item = (u32, f64, f64)>) -> Self {
        let mut c = Crescendo::new();
        for (mhz, energy_j, delay_s) in points {
            c.push(mhz, energy_j, delay_s);
        }
        c
    }

    /// Add a measurement.
    pub fn push(&mut self, mhz: u32, energy_j: f64, delay_s: f64) {
        assert!(energy_j >= 0.0 && delay_s >= 0.0, "negative measurement");
        self.points.push(CrescendoPoint {
            mhz,
            energy_j,
            delay_s,
        });
    }

    /// Raw points in insertion order.
    pub fn points(&self) -> &[CrescendoPoint] {
        &self.points
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True when no measurements were added.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The reference (highest-MHz) point. Panics when empty.
    pub fn reference(&self) -> CrescendoPoint {
        *self
            .points
            .iter()
            .max_by_key(|p| p.mhz)
            // simlint: allow(panic-path): the doc contract says "Panics when empty"; callers gate on is_empty()
            .expect("crescendo is empty")
    }

    /// `(mhz, normalized_energy, normalized_delay)` for each point, in
    /// insertion order, normalized to the reference point.
    pub fn normalized(&self) -> Vec<(u32, f64, f64)> {
        let r = self.reference();
        assert!(r.energy_j > 0.0 && r.delay_s > 0.0, "degenerate reference");
        self.points
            .iter()
            .map(|p| (p.mhz, p.energy_j / r.energy_j, p.delay_s / r.delay_s))
            .collect()
    }

    /// Normalized values for one labelled point.
    pub fn normalized_for(&self, mhz: u32) -> Option<(f64, f64)> {
        self.normalized()
            .into_iter()
            .find(|(m, _, _)| *m == mhz)
            .map(|(_, e, d)| (e, d))
    }

    /// Energy saving (fraction) and delay increase (fraction) of `mhz`
    /// relative to the reference — the paper's "X% energy saved with Y%
    /// performance impact" phrasing.
    pub fn saving_and_impact(&self, mhz: u32) -> Option<(f64, f64)> {
        self.normalized_for(mhz).map(|(e, d)| (1.0 - e, d - 1.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Crescendo {
        let mut c = Crescendo::new();
        c.push(1400, 100.0, 10.0);
        c.push(1000, 80.0, 10.5);
        c.push(600, 65.0, 11.0);
        c
    }

    #[test]
    fn normalizes_to_highest_frequency() {
        let c = sample();
        let n = c.normalized();
        assert_eq!(n[0], (1400, 1.0, 1.0));
        assert!((n[2].1 - 0.65).abs() < 1e-12);
        assert!((n[2].2 - 1.1).abs() < 1e-12);
    }

    #[test]
    fn reference_found_regardless_of_order() {
        let mut c = Crescendo::new();
        c.push(600, 65.0, 11.0);
        c.push(1400, 100.0, 10.0);
        assert_eq!(c.reference().mhz, 1400);
    }

    #[test]
    fn saving_and_impact_match_paper_phrasing() {
        let c = sample();
        let (saving, impact) = c.saving_and_impact(600).unwrap();
        assert!((saving - 0.35).abs() < 1e-12); // "35% energy saved"
        assert!((impact - 0.10).abs() < 1e-12); // "10% performance impact"
    }

    #[test]
    fn missing_label_returns_none() {
        assert!(sample().normalized_for(800).is_none());
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_reference_panics() {
        Crescendo::new().reference();
    }

    #[test]
    fn len_and_is_empty() {
        assert!(Crescendo::new().is_empty());
        assert_eq!(sample().len(), 3);
    }

    #[test]
    fn from_pairs_matches_push() {
        let c = Crescendo::from_pairs([(1400, 100.0, 10.0), (1000, 80.0, 10.5), (600, 65.0, 11.0)]);
        assert_eq!(c.points(), sample().points());
    }
}
