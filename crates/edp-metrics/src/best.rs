//! Best-operating-point selection (the paper's Equation 6).

use crate::crescendo::Crescendo;
use crate::weighted::{weighted_ed2p, Delta};

/// The operating point (by MHz label) minimizing weighted ED²P under `∂`,
/// evaluated on normalized energy/delay. Ties resolve to the *faster*
/// point (matching the paper's tables, where equal-metric points report
/// the higher frequency). Returns `None` for an empty crescendo.
pub fn best_operating_point(crescendo: &Crescendo, delta: Delta) -> Option<u32> {
    let normalized = if crescendo.is_empty() {
        return None;
    } else {
        crescendo.normalized()
    };
    normalized
        .into_iter()
        .map(|(mhz, e, d)| (mhz, weighted_ed2p(e, d, delta)))
        .min_by(|a, b| {
            a.1.total_cmp(&b.1).then_with(|| b.0.cmp(&a.0)) // prefer higher MHz on ties
        })
        .map(|(mhz, _)| mhz)
}

/// How much more efficient the best point is than the fastest point, as a
/// fraction: `1 - wED2P(best)/wED2P(reference)`. The paper reports this as
/// e.g. "16.9% higher \[efficiency\] than the maximum frequency".
pub fn efficiency_gain(crescendo: &Crescendo, delta: Delta) -> f64 {
    let Some(best) = best_operating_point(crescendo, delta) else {
        return 0.0;
    };
    let reference_mhz = crescendo.reference().mhz;
    let n = crescendo.normalized();
    let metric = |mhz: u32| {
        n.iter()
            .find(|(m, _, _)| *m == mhz)
            .map(|(_, e, d)| weighted_ed2p(*e, *d, delta))
            // simlint: allow(panic-path): both probed frequencies come from this same crescendo's normalized() rows
            .expect("label from this crescendo")
    };
    let reference = metric(reference_mhz);
    if reference <= 0.0 {
        0.0
    } else {
        1.0 - metric(best) / reference
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::weighted::{DELTA_ENERGY, DELTA_HPC, DELTA_PERFORMANCE};

    /// A swim-like crescendo: big energy savings, mild slowdowns.
    fn swim_like() -> Crescendo {
        let mut c = Crescendo::new();
        c.push(1400, 100.0, 10.0);
        c.push(1200, 85.0, 10.3);
        c.push(1000, 73.0, 10.8);
        c.push(800, 63.0, 11.5);
        c.push(600, 55.0, 12.8);
        c
    }

    /// An mgrid-like crescendo: little energy saved, delay explodes.
    fn mgrid_like() -> Crescendo {
        let mut c = Crescendo::new();
        c.push(1400, 100.0, 10.0);
        c.push(1200, 97.0, 11.6);
        c.push(1000, 95.0, 13.9);
        c.push(800, 94.0, 17.4);
        c.push(600, 96.0, 23.2);
        c
    }

    #[test]
    fn performance_delta_always_picks_fastest() {
        assert_eq!(
            best_operating_point(&swim_like(), DELTA_PERFORMANCE),
            Some(1400)
        );
        assert_eq!(
            best_operating_point(&mgrid_like(), DELTA_PERFORMANCE),
            Some(1400)
        );
    }

    #[test]
    fn energy_delta_picks_lowest_energy_point() {
        assert_eq!(best_operating_point(&swim_like(), DELTA_ENERGY), Some(600));
        // mgrid's energy minimum is at 800 MHz, not the bottom.
        assert_eq!(best_operating_point(&mgrid_like(), DELTA_ENERGY), Some(800));
    }

    #[test]
    fn hpc_delta_discriminates_applications() {
        // Memory-bound swim rewards slowing down; CPU-bound mgrid does not.
        let swim = best_operating_point(&swim_like(), DELTA_HPC).unwrap();
        let mgrid = best_operating_point(&mgrid_like(), DELTA_HPC).unwrap();
        assert!(swim <= 1000, "swim best {swim}");
        assert_eq!(mgrid, 1400);
    }

    #[test]
    fn efficiency_gain_positive_when_slowing_wins() {
        let g = efficiency_gain(&swim_like(), DELTA_HPC);
        assert!(g > 0.0 && g < 1.0, "gain {g}");
        // mgrid: fastest is best, gain is zero.
        assert_eq!(efficiency_gain(&mgrid_like(), DELTA_HPC), 0.0);
    }

    #[test]
    fn empty_crescendo_yields_none() {
        assert_eq!(best_operating_point(&Crescendo::new(), 0.0), None);
        assert_eq!(efficiency_gain(&Crescendo::new(), 0.0), 0.0);
    }

    #[test]
    fn tie_prefers_faster_point() {
        let mut c = Crescendo::new();
        c.push(1400, 100.0, 10.0);
        c.push(700, 100.0, 10.0); // identical metric
        assert_eq!(best_operating_point(&c, 0.0), Some(1400));
    }
}
