//! Iso-efficiency tradeoff curves (the paper's Figure 2).
//!
//! Figure 2 plots, for each weight factor `∂`, the *energy fraction*
//! (y-axis, as a percentage) a slower operating point must stay under to
//! break even with the fastest point, against the delay factor (x-axis).
//! The curve is the equality locus of weighted ED²P:
//! `E_frac = delay_factor^(-2(1+∂)/(1-∂))`.

use crate::weighted::Delta;

/// Energy fraction at which a point with `delay_factor ≥ 1` has the same
/// weighted ED²P as the reference: below the curve the slow point wins.
/// At `∂ = 1` the curve is 0 for any slowdown (performance-only users
/// never accept one) and 1 at `delay_factor = 1`.
pub fn iso_efficiency_energy_fraction(delay_factor: f64, delta: Delta) -> f64 {
    assert!(delay_factor >= 1.0, "delay factor must be >= 1");
    assert!((-1.0..=1.0).contains(&delta), "delta out of range");
    if delta >= 1.0 {
        return if delay_factor > 1.0 { 0.0 } else { 1.0 };
    }
    let exponent = -2.0 * (1.0 + delta) / (1.0 - delta);
    delay_factor.powf(exponent)
}

/// Sample a Figure-2 curve at the given delay factors.
pub fn curve(delay_factors: &[f64], delta: Delta) -> Vec<(f64, f64)> {
    delay_factors
        .iter()
        .map(|&x| (x, iso_efficiency_energy_fraction(x, delta)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn paper_callout_point() {
        // "for the line ∂=.4, if 10% performance degradation is acceptable
        //  (x=1.1) then about 32% energy must be saved (y=68%)". The paper
        // reads y off its chart; the exact Equation-5 locus gives
        // 1.1^(-2·1.4/0.6) = 0.64, within chart-reading distance.
        let y = iso_efficiency_energy_fraction(1.1, 0.4);
        assert!((y - 0.64).abs() < 0.05, "y = {y}");
    }

    #[test]
    fn delta_zero_is_inverse_square() {
        // Plain ED2P: E_frac = x^-2.
        let y = iso_efficiency_energy_fraction(2.0, 0.0);
        assert!((y - 0.25).abs() < 1e-12);
    }

    #[test]
    fn delta_minus_one_is_flat() {
        // Energy-only (E²): exponent -2(1+(-1))/(1-(-1)) = 0, so the curve
        // is flat at 1 — any energy saving at all justifies any slowdown.
        let y = iso_efficiency_energy_fraction(1.5, -1.0);
        assert!((y - 1.0).abs() < 1e-12);
    }

    #[test]
    fn performance_only_rejects_everything() {
        assert_eq!(iso_efficiency_energy_fraction(1.001, 1.0), 0.0);
        assert_eq!(iso_efficiency_energy_fraction(1.0, 1.0), 1.0);
    }

    #[test]
    fn curve_samples_match_pointwise() {
        let xs = [1.0, 1.2, 1.5];
        let c = curve(&xs, 0.2);
        assert_eq!(c.len(), 3);
        for (x, y) in c {
            assert!((y - iso_efficiency_energy_fraction(x, 0.2)).abs() < 1e-15);
        }
    }

    proptest! {
        /// Curves for larger ∂ lie strictly below (stricter) for x > 1.
        #[test]
        fn prop_larger_delta_is_stricter(x in 1.01f64..2.0, d1 in -0.9f64..0.9, d2 in -0.9f64..0.9) {
            let (lo, hi) = if d1 <= d2 { (d1, d2) } else { (d2, d1) };
            prop_assert!(
                iso_efficiency_energy_fraction(x, hi) <= iso_efficiency_energy_fraction(x, lo) + 1e-12
            );
        }

        /// The curve is nonincreasing in the delay factor.
        #[test]
        fn prop_monotone_in_delay(d in -0.9f64..0.9) {
            let mut prev = f64::INFINITY;
            for i in 0..20 {
                let x = 1.0 + i as f64 * 0.05;
                let y = iso_efficiency_energy_fraction(x, d);
                prop_assert!(y <= prev + 1e-12);
                prev = y;
            }
        }
    }
}
