//! # edp-metrics — power-performance efficiency metrics
//!
//! The paper's Section 2 metrics, exactly:
//!
//! * **ED²P** = `E · D²` (Martonosi et al.): frequency-independent under
//!   ideal CMOS scaling (`E ∝ f²`, `D ∝ 1/f`), so deviations from constant
//!   reveal application slack.
//! * **Weighted ED²P** = `E^(1-∂) · D^(2(1+∂))`, `-1 ≤ ∂ ≤ 1` (the paper's
//!   Equation 5): `∂ = 1` reduces to `D⁴` (pure performance), `∂ = -1` to
//!   `E²` (pure energy), `∂ = 0` to plain ED²P. The paper uses `∂ = 0.2`
//!   for "HPC".
//! * **Best operating point** (Equation 6): the point minimizing weighted
//!   ED²P over a crescendo.
//! * **Crescendos**: `(energy, delay)` series over operating points,
//!   normalized to the fastest point — the paper's Figures 1, 3, 6, 7, 8.
//! * **Iso-efficiency curves** (Figure 2): the energy fraction required to
//!   break even at a given delay factor under each `∂`.

pub mod best;
pub mod crescendo;
pub mod tradeoff;
pub mod weighted;

pub use best::{best_operating_point, efficiency_gain};
pub use crescendo::{Crescendo, CrescendoPoint};
pub use tradeoff::iso_efficiency_energy_fraction;
pub use weighted::{ed2p, weighted_ed2p, Delta, DELTA_ENERGY, DELTA_HPC, DELTA_PERFORMANCE};
