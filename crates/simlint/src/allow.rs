//! The `// simlint: allow(<rule>[, <rule>...]): <justification>` grammar.
//!
//! An allow-comment suppresses matching findings on its own line, or — when
//! it stands alone on a line — on the next line. The justification text
//! after the rule list is **mandatory**: an allow without one is itself a
//! finding (`bad-allow`), and a justified allow that suppresses nothing is
//! reported as `unused-allow` so stale escapes don't accumulate.

use std::cell::Cell;
use std::collections::HashMap as StdHashMap;

/// One parsed allow-comment.
#[derive(Debug)]
pub struct AllowEntry {
    /// The line the comment itself is on (1-based).
    pub comment_line: usize,
    /// Rule ids listed between the parentheses.
    pub rules: Vec<String>,
    /// Whether non-empty justification text followed the rule list.
    pub justified: bool,
    /// Set when the entry suppressed at least one finding.
    pub used: Cell<bool>,
}

/// All allow-comments of one file, indexed by the lines they govern.
#[derive(Debug, Default)]
pub struct AllowTable {
    entries: Vec<AllowEntry>,
    /// line -> entry indices governing that line.
    by_line: StdHashMap<usize, Vec<usize>>,
}

const MARKER: &str = "simlint:";

impl AllowTable {
    /// Scan raw source text for allow-comments.
    pub fn parse(src: &str) -> AllowTable {
        let mut table = AllowTable::default();
        for (idx, raw) in src.lines().enumerate() {
            let line_no = idx + 1;
            // Find a `//` comment start that is not inside a string: good
            // enough here — a `//` inside a string literal on a line that
            // also says `simlint: allow(` is not a case worth an escaping
            // parser.
            let Some(slash) = raw.find("//") else {
                continue;
            };
            let comment = &raw[slash + 2..];
            let Some(marker) = comment.find(MARKER) else {
                continue;
            };
            let rest = comment[marker + MARKER.len()..].trim_start();
            let Some(rest) = rest.strip_prefix("allow") else {
                continue;
            };
            let rest = rest.trim_start();
            let Some(rest) = rest.strip_prefix('(') else {
                continue;
            };
            let Some(close) = rest.find(')') else {
                continue;
            };
            let rules: Vec<String> = rest[..close]
                .split(',')
                .map(|r| r.trim().to_string())
                .filter(|r| !r.is_empty())
                .collect();
            let tail = rest[close + 1..]
                .trim_start_matches([':', '-', '—', ' ', '\t'])
                .trim();
            let justified = !tail.is_empty();
            let standalone = raw[..slash].trim().is_empty();
            let entry_idx = table.entries.len();
            table.entries.push(AllowEntry {
                comment_line: line_no,
                rules,
                justified,
                used: Cell::new(false),
            });
            table.by_line.entry(line_no).or_default().push(entry_idx);
            if standalone {
                // Governs the next line (the code it annotates).
                table
                    .by_line
                    .entry(line_no + 1)
                    .or_default()
                    .push(entry_idx);
            }
        }
        table
    }

    /// True when a (justified) allow for `rule` governs `line`; marks the
    /// entry used. Unjustified allows do *not* suppress — otherwise a
    /// lazy `allow()` would silence both the original finding and itself.
    pub fn suppresses(&self, line: usize, rule: &str) -> bool {
        let Some(indices) = self.by_line.get(&line) else {
            return false;
        };
        for &i in indices {
            let e = &self.entries[i];
            if e.justified && e.rules.iter().any(|r| r == rule) {
                e.used.set(true);
                return true;
            }
        }
        false
    }

    /// All parsed entries (for the `bad-allow`/`unused-allow` passes).
    pub fn entries(&self) -> &[AllowEntry] {
        &self.entries
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_same_line_allow_with_justification() {
        let t =
            AllowTable::parse("let x = m.get(k); // simlint: allow(panic-path): guarded above\n");
        assert_eq!(t.entries().len(), 1);
        assert!(t.entries()[0].justified);
        assert!(t.suppresses(1, "panic-path"));
        assert!(t.entries()[0].used.get());
        assert!(!t.suppresses(1, "float-eq"));
    }

    #[test]
    fn standalone_allow_governs_next_line() {
        let src = "    // simlint: allow(float-eq): exact sentinel\n    if x == 1.0 {}\n";
        let t = AllowTable::parse(src);
        assert!(t.suppresses(2, "float-eq"));
    }

    #[test]
    fn unjustified_allow_does_not_suppress() {
        let t = AllowTable::parse("x(); // simlint: allow(panic-path)\n");
        assert_eq!(t.entries().len(), 1);
        assert!(!t.entries()[0].justified);
        assert!(!t.suppresses(1, "panic-path"));
    }

    #[test]
    fn multiple_rules_in_one_allow() {
        let t = AllowTable::parse("y(); // simlint: allow(panic-path, float-eq): both fine here\n");
        assert!(t.suppresses(1, "panic-path"));
        assert!(t.suppresses(1, "float-eq"));
    }

    #[test]
    fn em_dash_separator_accepted() {
        let t = AllowTable::parse("z(); // simlint: allow(unit-mix) — converted on the spot\n");
        assert!(t.suppresses(1, "unit-mix"));
    }

    #[test]
    fn non_allow_simlint_comments_ignored() {
        let t = AllowTable::parse("// simlint: this is prose, not a directive\n");
        assert!(t.entries().is_empty());
    }
}
