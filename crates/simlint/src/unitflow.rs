//! The `unit-flow` pass: propagate the `_w/_j/_hz/...` suffix types
//! through let-bindings, call arguments, and return values, so a unit
//! mistake that crosses a statement or function boundary is caught — the
//! per-file `unit-mix` rule only sees a single expression.
//!
//! The inference is suffix-directed: an expression's unit is the suffix
//! of the identifier chain it evaluates (`self.node.power_w` → `_w`,
//! `total_j(...)` → `_j`), additive chains must agree, and any `*`/`/`/`%`
//! clears the unit (products genuinely change dimensions). Bare locals
//! resolve through the environment built from earlier `let`s and the
//! parameter list, which is what makes the flow cross statements.
//!
//! Every `let` is checked, including shadowing re-bindings — the v1
//! suffix-type rule only looked at fields and parameters, so a shadowed
//! `let x_j = ...` escaped entirely.

use std::collections::BTreeMap;

use proc_macro2::{Delimiter, TokenTree};
use syn::{split_top_level_commas, split_top_level_semis};

use crate::config::{blessed_types, unit_suffix, Config};
use crate::model::{FnNode, Workspace};
use crate::rules::Finding;

/// Per-function environment: binding name -> unit suffix.
type Env = BTreeMap<String, &'static str>;

/// Run the pass over every non-test function body.
pub fn check(ws: &Workspace, cfg: &Config) -> Vec<Finding> {
    if !cfg.rule_enabled("unit-flow") {
        return Vec::new();
    }
    let mut findings = Vec::new();
    for f in &ws.fns {
        if f.is_test {
            continue;
        }
        let Some(body) = &f.body else { continue };
        let mut env = Env::new();
        for p in &f.params {
            if let Some(u) = p.unit {
                env.insert(p.name.clone(), u);
            }
        }
        let mut checker = Checker {
            ws,
            f,
            findings: &mut findings,
        };
        checker.check_block(body.stream().tokens(), &mut env, true);
    }
    findings
}

struct Checker<'a> {
    ws: &'a Workspace,
    f: &'a FnNode,
    findings: &'a mut Vec<Finding>,
}

impl Checker<'_> {
    fn push(&mut self, line: usize, column: usize, message: String) {
        self.findings.push(Finding {
            file: self.f.file.clone(),
            line,
            column,
            rule: "unit-flow",
            message,
        });
    }

    /// Walk one brace-block's statements. `is_fn_body` enables the
    /// return-unit check on the tail expression.
    fn check_block(&mut self, tokens: &[TokenTree], env: &mut Env, is_fn_body: bool) {
        let stream = proc_macro2::TokenStream::from(tokens.to_vec());
        let stmts = split_top_level_semis(&stream);
        let n = stmts.len();
        for (k, stmt) in stmts.iter().enumerate() {
            self.check_stmt(stmt, env);
            // Nested blocks see (and may shadow) the enclosing bindings;
            // their inner lets don't leak back out, which over-retains
            // shadowed outer names — acceptable at this altitude.
            for t in stmt {
                self.walk_nested_blocks(t, env);
            }
            if is_fn_body && k + 1 == n && !starts_with_keyword(stmt, "let") {
                self.check_return_unit(stmt, env);
            }
        }
    }

    /// Find brace blocks at any depth in a statement (through paren and
    /// bracket groups) and walk each with a cloned environment.
    fn walk_nested_blocks(&mut self, t: &TokenTree, env: &Env) {
        if let TokenTree::Group(g) = t {
            if g.delimiter() == Delimiter::Brace {
                let mut inner = env.clone();
                self.check_block(g.stream().tokens(), &mut inner, false);
            } else {
                for inner in g.stream().tokens() {
                    self.walk_nested_blocks(inner, env);
                }
            }
        }
    }

    fn check_stmt(&mut self, stmt: &[TokenTree], env: &mut Env) {
        if starts_with_keyword(stmt, "let") {
            self.check_let(stmt, env);
        }
        self.check_call_args(stmt, env);
    }

    /// `let [mut] name [: Ty] = expr` — bind, and cross-check the unit
    /// and the annotated type against the name's suffix.
    fn check_let(&mut self, stmt: &[TokenTree], env: &mut Env) {
        let mut i = 1usize; // past `let`
        if matches!(stmt.get(i), Some(TokenTree::Ident(id)) if *id == "mut") {
            i += 1;
        }
        let Some(TokenTree::Ident(name_tok)) = stmt.get(i) else {
            return; // destructuring patterns
        };
        let name = name_tok.to_string();
        let span = name_tok.span();
        i += 1;
        // Optional `: Type` annotation up to the `=`.
        let eq = stmt[i..]
            .iter()
            .position(
                |t| matches!(t, TokenTree::Punct(p) if p.as_char() == '=' && p.spacing() == proc_macro2::Spacing::Alone),
            )
            .map(|off| i + off);
        let name_unit = unit_suffix(&name);
        if let (Some(u), Some(eq_at)) = (name_unit, eq) {
            if matches!(stmt.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ':') {
                let ty = &stmt[i + 1..eq_at];
                self.check_let_type(&name, u, ty, span);
            }
        }
        let Some(eq_at) = eq else {
            // `let x;` — deferred init; just bind the suffix.
            if let Some(u) = name_unit {
                env.insert(name, u);
            }
            return;
        };
        let rhs = &stmt[eq_at + 1..];
        let rhs_unit = self.infer_unit(rhs, env);
        match (name_unit, rhs_unit) {
            (Some(lu), Some(ru)) if lu != ru => {
                self.push(
                    span.start().line.max(1),
                    span.start().column + 1,
                    format!(
                        "`{name}` ({lu}) is bound to a value carrying `{ru}`; convert \
                         explicitly or rename the binding"
                    ),
                );
            }
            _ => {}
        }
        // Bind: the declared suffix wins; otherwise propagate the RHS
        // unit through the (unsuffixed) name.
        match (name_unit, rhs_unit) {
            (Some(u), _) => {
                env.insert(name, u);
            }
            (None, Some(u)) => {
                env.insert(name, u);
            }
            (None, None) => {
                env.remove(&name);
            }
        }
    }

    /// An annotated `let x_w: f64` must use the blessed numeric type —
    /// this is what catches shadowing re-bindings the v1 rule missed.
    fn check_let_type(
        &mut self,
        name: &str,
        suffix: &'static str,
        ty: &[TokenTree],
        span: proc_macro2::Span,
    ) {
        let blessed = blessed_types(suffix);
        let Some(core) = ty.iter().rev().find_map(|t| match t {
            TokenTree::Ident(id) => {
                let n = id.to_string();
                matches!(
                    n.as_str(),
                    "f32"
                        | "f64"
                        | "u8"
                        | "u16"
                        | "u32"
                        | "u64"
                        | "u128"
                        | "usize"
                        | "i8"
                        | "i16"
                        | "i32"
                        | "i64"
                        | "i128"
                        | "isize"
                )
                .then_some(n)
            }
            _ => None,
        }) else {
            return;
        };
        if !blessed.contains(&core.as_str()) {
            self.push(
                span.start().line.max(1),
                span.start().column + 1,
                format!(
                    "`{name}` is suffixed `{suffix}` but annotated `{core}`; blessed \
                     type(s) for `{suffix}`: {}",
                    blessed.join(", ")
                ),
            );
        }
    }

    /// Check argument units against parameter-name suffixes for every
    /// resolvable call in the statement (recursing into nested groups).
    fn check_call_args(&mut self, tokens: &[TokenTree], env: &Env) {
        for (k, t) in tokens.iter().enumerate() {
            if let TokenTree::Group(g) = t {
                // Brace groups are statement blocks: `check_block` walks
                // them with the right (cloned) environment — recursing
                // here too would double-report.
                if g.delimiter() != Delimiter::Brace {
                    self.check_call_args(g.stream().tokens(), env);
                }
                // A call: preceding ident + paren group. Keywords like
                // `if (...)` fall out naturally — they never resolve to a
                // workspace function.
                if g.delimiter() != Delimiter::Parenthesis || k == 0 {
                    continue;
                }
                let Some(TokenTree::Ident(callee)) = tokens.get(k - 1) else {
                    continue;
                };
                let callee_name = callee.to_string();
                let is_method =
                    k >= 2 && matches!(&tokens[k - 2], TokenTree::Punct(p) if p.as_char() == '.');
                let Some(params) = self.resolve_params(&callee_name, is_method, tokens, k) else {
                    continue;
                };
                let args = split_top_level_commas(g.stream());
                for (ai, arg) in args.iter().enumerate() {
                    let Some(param) = params.get(ai) else { break };
                    let (Some(pu), Some(au)) = (param.1, self.infer_unit(arg, env)) else {
                        continue;
                    };
                    if pu != au {
                        let span = callee.span();
                        self.push(
                            span.start().line.max(1),
                            span.start().column + 1,
                            format!(
                                "argument {} of `{}` carries `{au}` but parameter \
                                 `{}` expects `{pu}`",
                                ai + 1,
                                callee_name,
                                param.0,
                            ),
                        );
                    }
                }
            }
        }
    }

    /// The callee's parameter (name, unit) list, when the call resolves
    /// to workspace functions that all agree on the unit signature.
    fn resolve_params(
        &self,
        callee: &str,
        is_method: bool,
        tokens: &[TokenTree],
        call_at: usize,
    ) -> Option<Vec<(String, Option<&'static str>)>> {
        let candidates: Vec<usize> = if is_method {
            // Resolve through a named receiver's declared type when the
            // receiver is a parameter of the current fn.
            let recv = if call_at >= 3 {
                match &tokens[call_at - 3] {
                    TokenTree::Ident(id) => Some(id.to_string()),
                    _ => None,
                }
            } else {
                None
            };
            match recv
                .and_then(|r| self.f.params.iter().find(|p| p.name == r))
                .and_then(|p| p.ty_name.clone())
            {
                Some(ty) => self.ws.methods_of(&ty, callee).to_vec(),
                None => {
                    let named: Vec<usize> = self
                        .ws
                        .fns_named(callee)
                        .iter()
                        .copied()
                        .filter(|&i| self.ws.fns[i].receiver.is_some())
                        .collect();
                    if named.len() == 1 {
                        named
                    } else {
                        Vec::new()
                    }
                }
            }
        } else {
            self.ws
                .fns_named(callee)
                .iter()
                .copied()
                .filter(|&i| self.ws.fns[i].self_ty.is_none())
                .collect()
        };
        let first = candidates.first().copied()?;
        let sig: Vec<(String, Option<&'static str>)> = self.ws.fns[first]
            .params
            .iter()
            .map(|p| (p.name.clone(), p.unit))
            .collect();
        // All candidates must agree on arity and units, or we stay quiet.
        for &c in &candidates[1..] {
            let other = &self.ws.fns[c].params;
            if other.len() != sig.len() || other.iter().zip(&sig).any(|(a, b)| a.unit != b.1) {
                return None;
            }
        }
        Some(sig)
    }

    /// Tail expression vs the function name's own unit suffix.
    fn check_return_unit(&mut self, stmt: &[TokenTree], env: &Env) {
        let Some(fn_unit) = self.f.ret_unit else {
            return;
        };
        let Some(tail_unit) = self.infer_unit(stmt, env) else {
            return;
        };
        if tail_unit != fn_unit {
            let span = stmt.first().map(|t| t.span()).unwrap_or_default();
            self.push(
                span.start().line.max(1),
                span.start().column + 1,
                format!(
                    "`{}` is suffixed `{fn_unit}` but returns a value carrying `{tail_unit}`",
                    self.f.name
                ),
            );
        }
    }

    /// Infer the unit of an expression token run. `None` means "unknown
    /// or dimension-changing" — only confident answers come back.
    fn infer_unit(&self, tokens: &[TokenTree], env: &Env) -> Option<&'static str> {
        // Strip a trailing `as <ty>` (numeric casts preserve units) and
        // a leading `&`/`*` borrow/deref.
        let mut toks = tokens;
        while let [TokenTree::Punct(p), rest @ ..] = toks {
            if p.as_char() == '&' || p.as_char() == '*' && !rest.is_empty() {
                // A leading `*` is a deref only when followed directly by
                // an ident/group; arithmetic `*` never leads.
                toks = rest;
            } else {
                break;
            }
        }
        if let Some(as_at) = toks
            .iter()
            .position(|t| matches!(t, TokenTree::Ident(id) if *id == "as"))
        {
            toks = &toks[..as_at];
        }
        if toks.is_empty() {
            return None;
        }
        // Split on top-level additive operators; `* / %` clear the unit.
        let mut parts: Vec<&[TokenTree]> = Vec::new();
        let mut start = 0usize;
        for (i, t) in toks.iter().enumerate() {
            if let TokenTree::Punct(p) = t {
                match p.as_char() {
                    // Multiplicative arithmetic changes dimensions —
                    // unless this is a `*` deref at expression start.
                    '*' | '/' | '%' if i > start => return None,
                    '+' | '-' if i > start => {
                        parts.push(&toks[start..i]);
                        start = i + 1;
                    }
                    _ => {}
                }
            }
        }
        parts.push(&toks[start..]);
        let mut unit: Option<&'static str> = None;
        for part in parts {
            let u = self.infer_chain_unit(part, env)?;
            match unit {
                None => unit = Some(u),
                Some(prev) if prev == u => {}
                // Disagreeing additive units: `unit-mix` (per-file)
                // already reports this shape; stay quiet here.
                Some(_) => return None,
            }
        }
        unit
    }

    /// The unit of one postfix chain: nearest suffixed ident wins; a bare
    /// leading local resolves through the environment; a call to a
    /// workspace fn with a suffixed name yields that suffix; a
    /// parenthesized group recurses.
    fn infer_chain_unit(&self, part: &[TokenTree], env: &Env) -> Option<&'static str> {
        match part.first()? {
            TokenTree::Group(g) if g.delimiter() == Delimiter::Parenthesis => {
                if part.len() == 1 {
                    return self.infer_unit(g.stream().tokens(), env);
                }
                None
            }
            _ => {
                let mut leading = true;
                for t in part {
                    match t {
                        TokenTree::Ident(id) => {
                            let n = id.to_string();
                            if n == "self" || n == "Self" {
                                leading = false;
                                continue;
                            }
                            if let Some(u) = unit_suffix(&n) {
                                return Some(u);
                            }
                            if leading {
                                if let Some(&u) = env.get(&n) {
                                    return Some(u);
                                }
                            }
                            leading = false;
                        }
                        TokenTree::Punct(p)
                            if p.as_char() == '.' || p.as_char() == ':' || p.as_char() == '&' => {}
                        TokenTree::Group(g)
                            if matches!(
                                g.delimiter(),
                                Delimiter::Parenthesis | Delimiter::Bracket
                            ) => {}
                        TokenTree::Literal(_) => {}
                        _ => return None,
                    }
                }
                None
            }
        }
    }
}

fn starts_with_keyword(stmt: &[TokenTree], kw: &str) -> bool {
    matches!(stmt.first(), Some(TokenTree::Ident(id)) if *id == kw)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::Workspace;

    fn run(src: &str) -> Vec<Finding> {
        let parsed = syn::parse_file(src).expect("parse");
        let ws = Workspace::build(
            &[("crates/x/src/lib.rs".to_string(), Some(parsed))],
            &Config::workspace_default(),
        );
        check(&ws, &Config::workspace_default())
    }

    #[test]
    fn let_binding_mismatch_is_flagged() {
        let f = run("fn f(energy_j: f64) { let power_w = energy_j; }");
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("power_w"));
    }

    #[test]
    fn shadowed_rebinding_is_still_checked() {
        // The second (shadowing) binding must be checked like the first.
        let f = run("fn f(energy_j: f64) { let power_w = 1.0; let power_w = energy_j; }");
        assert_eq!(f.len(), 1, "{f:?}");
        let f = run("fn f() { let x_j = 1.0; let x_j: u32 = 2; }");
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("annotated `u32`"));
    }

    #[test]
    fn unit_propagates_through_unsuffixed_locals() {
        let f = run("fn f(power_w: f64) { let p = power_w; let total_j = p; }");
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("total_j"));
    }

    #[test]
    fn call_arguments_check_against_parameter_suffixes() {
        let f = run("fn sink(power_w: f64) -> f64 { power_w }\n\
             fn g(energy_j: f64) { sink(energy_j); }");
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("parameter `power_w`"));
    }

    #[test]
    fn return_unit_checks_the_tail_expression() {
        let f = run("fn total_j(power_w: f64) -> f64 { power_w }");
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("total_j"));
    }

    #[test]
    fn products_and_matching_units_stay_quiet() {
        let f = run(
            "fn total_j(power_w: f64, dt_s: f64) -> f64 { power_w * dt_s }\n\
             fn g(a_w: f64, b_w: f64) { let sum_w = a_w + b_w; let c_w = sum_w; }",
        );
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn casts_are_transparent() {
        let f = run("fn f(ticks_us: u64) { let t_us = ticks_us as f64; let t_s = t_us; }");
        // `t_s` binds `_us` flow — mismatch.
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("t_s"));
    }

    #[test]
    fn test_functions_are_exempt() {
        let f = run("#[cfg(test)] mod t { fn f(energy_j: f64) { let power_w = energy_j; } }");
        assert!(f.is_empty(), "{f:?}");
    }
}
