//! Incremental lint cache (`target/simlint-cache.json`).
//!
//! The cache remembers, per workspace-relative file, the FNV-1a hash of
//! its content and whether the last run attributed zero findings to it.
//! On the next run:
//!
//! * **Fast path** — same rule fingerprint, identical file set and
//!   hashes, and the previous run was completely clean: the whole run is
//!   skipped and reports zero findings.
//! * **Partial path** — files whose hash matches a clean entry skip the
//!   per-file rule pass and allow hygiene. The workspace dataflow passes
//!   (shard-purity, unit-flow, controller-discipline) still parse and
//!   analyze *every* file: a change in one file can create a finding
//!   located in another, so finer-grained invalidation of those passes
//!   would be unsound.
//!
//! Any load failure — missing file, old format, foreign fingerprint — is
//! a cache miss, never an error. `--no-cache` bypasses both paths.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::io;
use std::path::{Path, PathBuf};

use crate::config::{Config, RULES};

/// Bump when the cached semantics change so stale files self-invalidate.
const FORMAT: u64 = 1;

/// One cached file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FileEntry {
    /// FNV-1a of the file content.
    pub hash: u64,
    /// True when the last run attributed zero findings to this file.
    pub clean: bool,
}

/// The whole cache document.
#[derive(Debug, Default)]
pub struct Cache {
    /// Hash of everything that can change findings besides file content:
    /// rule catalogue, scope, skip list, and `simlint.toml` text.
    pub fingerprint: u64,
    /// True when the last run had zero findings overall.
    pub workspace_clean: bool,
    pub files: BTreeMap<String, FileEntry>,
}

/// 64-bit FNV-1a.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

/// The configuration fingerprint: any difference forces a full re-run.
pub fn fingerprint(cfg: &Config, toml_text: &str) -> u64 {
    let mut buf = format!("format={FORMAT};");
    for (id, _) in RULES {
        buf.push_str(id);
        buf.push(';');
    }
    for c in &cfg.scope_crates {
        buf.push_str(c);
        buf.push(';');
    }
    for r in &cfg.skip_rules {
        buf.push_str(r);
        buf.push(';');
    }
    for r in &cfg.purity_roots {
        buf.push_str(r);
        buf.push(';');
    }
    for t in &cfg.controller_traits {
        buf.push_str(t);
        buf.push(';');
    }
    buf.push_str(toml_text);
    fnv1a(buf.as_bytes())
}

impl Cache {
    /// Where the cache lives under a workspace root.
    pub fn path(root: &Path) -> PathBuf {
        root.join("target").join("simlint-cache.json")
    }

    /// Load a cache file; `None` on any shape or read problem.
    pub fn load(path: &Path) -> Option<Cache> {
        let text = std::fs::read_to_string(path).ok()?;
        let fingerprint = u64_field(&text, "fingerprint")?;
        let workspace_clean = bool_field(&text, "workspace_clean")?;
        let mut files = BTreeMap::new();
        // Entries render one per line as
        // `    {"path": "...", "hash": "...", "clean": true}`.
        for line in text.lines() {
            let line = line.trim();
            if !line.starts_with("{\"path\":") {
                continue;
            }
            let path = str_field(line, "path")?;
            let hash = u64_field(line, "hash")?;
            let clean = bool_field(line, "clean")?;
            files.insert(unescape(&path), FileEntry { hash, clean });
        }
        Some(Cache {
            fingerprint,
            workspace_clean,
            files,
        })
    }

    /// Write the cache, creating `target/` if needed. Failures are the
    /// caller's to ignore — a missing cache only costs time.
    pub fn store(&self, path: &Path) -> io::Result<()> {
        if let Some(dir) = path.parent() {
            std::fs::create_dir_all(dir)?;
        }
        let mut out = String::new();
        let _ = writeln!(out, "{{");
        let _ = writeln!(out, "  \"fingerprint\": \"{:016x}\",", self.fingerprint);
        let _ = writeln!(out, "  \"workspace_clean\": {},", self.workspace_clean);
        let _ = writeln!(out, "  \"files\": [");
        for (i, (p, e)) in self.files.iter().enumerate() {
            let _ = writeln!(
                out,
                "    {{\"path\": \"{}\", \"hash\": \"{:016x}\", \"clean\": {}}}{}",
                escape(p),
                e.hash,
                e.clean,
                if i + 1 == self.files.len() { "" } else { "," }
            );
        }
        let _ = writeln!(out, "  ]");
        let _ = writeln!(out, "}}");
        std::fs::write(path, out)
    }
}

fn str_field(text: &str, key: &str) -> Option<String> {
    let pat = format!("\"{key}\": \"");
    let start = text.find(&pat)? + pat.len();
    let end = text[start..].find('"')? + start;
    Some(text[start..end].to_string())
}

fn u64_field(text: &str, key: &str) -> Option<u64> {
    u64::from_str_radix(&str_field(text, key)?, 16).ok()
}

fn bool_field(text: &str, key: &str) -> Option<bool> {
    let pat = format!("\"{key}\": ");
    let start = text.find(&pat)? + pat.len();
    let rest = &text[start..];
    if rest.starts_with("true") {
        Some(true)
    } else if rest.starts_with("false") {
        Some(false)
    } else {
        None
    }
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

fn unescape(s: &str) -> String {
    s.replace("\\\"", "\"").replace("\\\\", "\\")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_through_disk_format() {
        let mut c = Cache {
            fingerprint: 0xdead_beef,
            workspace_clean: false,
            files: BTreeMap::new(),
        };
        c.files.insert(
            "crates/dvfs/src/cluster.rs".to_string(),
            FileEntry {
                hash: 42,
                clean: true,
            },
        );
        c.files.insert(
            "crates/mpi-sim/src/engine.rs".to_string(),
            FileEntry {
                hash: 7,
                clean: false,
            },
        );
        let dir = std::env::temp_dir().join("simlint-cache-test");
        let path = dir.join("simlint-cache.json");
        c.store(&path).expect("store");
        let back = Cache::load(&path).expect("load");
        assert_eq!(back.fingerprint, c.fingerprint);
        assert_eq!(back.workspace_clean, c.workspace_clean);
        assert_eq!(back.files, c.files);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn garbage_is_a_miss_not_an_error() {
        let dir = std::env::temp_dir().join("simlint-cache-garbage");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("simlint-cache.json");
        std::fs::write(&path, "not json at all").unwrap();
        assert!(Cache::load(&path).is_none());
        assert!(Cache::load(&dir.join("missing.json")).is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn fingerprint_tracks_config_and_toml() {
        let cfg = Config::workspace_default();
        let a = fingerprint(&cfg, "");
        let b = fingerprint(&cfg, "[purity]\nroots = [\"f\"]\n");
        assert_ne!(a, b);
        let mut skipped = cfg.clone();
        skipped.skip_rules.insert("unit-flow".to_string());
        assert_ne!(a, fingerprint(&skipped, ""));
    }
}
