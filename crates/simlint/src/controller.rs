//! The `controller-discipline` pass: audits every impl of a configured
//! controller trait (by default `ClusterController`) for the two engine
//! contracts the type system cannot express:
//!
//! 1. The engine delivers the runtime hooks (`on_wait_begin`,
//!    `on_wait_end`, `on_phase`, `on_sample`) only when
//!    `wants_runtime_events` returns true. Overriding a hook without
//!    overriding the gate produces a controller whose hooks silently
//!    never fire.
//! 2. Frequency `Decision`s are legal only from sample instants
//!    (DESIGN.md §15): decisions carry settle latencies that must not
//!    punch holes in the middle of modeled phases. The non-sample hooks
//!    may observe state but must not touch their decision out-parameter.

use proc_macro2::{Group, TokenTree};

use crate::config::{
    Config, CONTROLLER_GATE, CONTROLLER_NON_SAMPLE_HOOKS, CONTROLLER_RUNTIME_HOOKS,
};
use crate::model::Workspace;
use crate::rules::Finding;

/// Run the pass over every audited impl.
pub fn check(ws: &Workspace, cfg: &Config) -> Vec<Finding> {
    if !cfg.rule_enabled("controller-discipline") {
        return Vec::new();
    }
    let mut findings = Vec::new();
    for im in &ws.impls {
        let Some(trait_name) = &im.trait_name else {
            continue;
        };
        if !cfg.controller_traits.iter().any(|t| t == trait_name) {
            continue;
        }
        let ty = im.self_ty.as_deref().unwrap_or("_");
        let overrides_gate = im
            .methods
            .iter()
            .any(|&i| ws.fns[i].name == CONTROLLER_GATE);
        for &i in &im.methods {
            let f = &ws.fns[i];
            let hook = f.name.as_str();
            if !CONTROLLER_RUNTIME_HOOKS.contains(&hook) {
                continue;
            }
            if !overrides_gate {
                findings.push(Finding {
                    file: f.file.clone(),
                    line: f.line,
                    column: f.column,
                    rule: "controller-discipline",
                    message: format!(
                        "`{ty}` overrides runtime hook `{hook}` without overriding \
                         `{CONTROLLER_GATE}`; the engine will never deliver it"
                    ),
                });
            }
            if CONTROLLER_NON_SAMPLE_HOOKS.contains(&hook) {
                if let Some(used) = body_emits_decisions(f.body.as_ref(), f.params.last()) {
                    findings.push(Finding {
                        file: f.file.clone(),
                        line: f.line,
                        column: f.column,
                        rule: "controller-discipline",
                        message: format!(
                            "`{ty}::{hook}` {used}; decisions are legal only from \
                             `on_sample` (sample instants, DESIGN.md §15)"
                        ),
                    });
                }
            }
        }
    }
    findings
}

/// Whether a non-sample hook body touches its decision out-parameter or
/// constructs a `Decision` directly. Returns a description of the use, or
/// `None` for a clean body.
fn body_emits_decisions(
    body: Option<&Group>,
    out_param: Option<&crate::model::Param>,
) -> Option<String> {
    let body = body?;
    let out_name = out_param.map(|p| p.name.as_str());
    let mut hit = None;
    scan(body.stream().tokens(), out_name, &mut hit);
    hit
}

fn scan(tokens: &[TokenTree], out_name: Option<&str>, hit: &mut Option<String>) {
    for t in tokens {
        if hit.is_some() {
            return;
        }
        match t {
            TokenTree::Ident(id) => {
                let name = id.to_string();
                if Some(name.as_str()) == out_name {
                    *hit = Some(format!("touches its decision out-parameter `{name}`"));
                } else if name == "Decision" {
                    *hit = Some("constructs a `Decision`".to_string());
                }
            }
            TokenTree::Group(g) => scan(g.stream().tokens(), out_name, hit),
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(src: &str) -> Vec<Finding> {
        let parsed = syn::parse_file(src).expect("parse");
        let ws = Workspace::build(
            &[("crates/x/src/lib.rs".to_string(), Some(parsed))],
            &Config::workspace_default(),
        );
        check(&ws, &Config::workspace_default())
    }

    #[test]
    fn ungated_runtime_hook_is_flagged() {
        let f = run("impl ClusterController for Cap { \
                 fn on_sample(&mut self, now: SimTime, nodes: &[Node], out: &mut Vec<Decision>) {} \
             }");
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("wants_runtime_events"), "{f:?}");
    }

    #[test]
    fn gated_hooks_are_clean() {
        let f = run("impl ClusterController for Cap { \
                 fn wants_runtime_events(&self) -> bool { true } \
                 fn on_sample(&mut self, now: SimTime, nodes: &[Node], out: &mut Vec<Decision>) { \
                     out.push(Decision { node: 0, op: 1 }); \
                 } \
             }");
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn non_sample_hook_emitting_decisions_is_flagged() {
        let f = run("impl ClusterController for Cap { \
                 fn wants_runtime_events(&self) -> bool { true } \
                 fn on_phase(&mut self, now: SimTime, rank: usize, name: &str, begin: bool, \
                             nodes: &[Node], out: &mut Vec<Decision>) { \
                     out.push(Decision { node: 0, op: 1 }); \
                 } \
             }");
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("out-parameter"), "{f:?}");
    }

    #[test]
    fn observing_hooks_with_unused_out_params_are_clean() {
        // `_out` in the signature (not the body) must not trip the scan —
        // the parameter type mentions `Decision` but the body is clean.
        let f = run("impl ClusterController for Cap { \
                 fn wants_runtime_events(&self) -> bool { true } \
                 fn on_wait_begin(&mut self, now: SimTime, rank: usize, nodes: &[Node], \
                                  _out: &mut Vec<Decision>) { \
                     self.waits += 1; \
                 } \
             }");
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn unaudited_traits_are_ignored() {
        let f = run("impl OtherTrait for X { \
                 fn on_sample(&mut self, out: &mut Vec<Decision>) { out.push(1); } \
             }");
        assert!(f.is_empty(), "{f:?}");
    }
}
