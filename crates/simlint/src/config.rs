//! Rule-set configuration: which crates are in scope, which files hold
//! sanctioned escape hatches, what the blessed unit types are, and the
//! dataflow settings (purity roots, controller traits) that `simlint.toml`
//! can override.

use std::collections::BTreeSet;
use std::path::Path;

/// Everything the analyzer needs to know about the workspace's conventions.
/// [`Config::workspace_default`] encodes this repository's rules; callers
/// embedding the linter as a library can build their own.
#[derive(Debug, Clone)]
pub struct Config {
    /// Crate directory names (under `crates/`) whose `src/` trees are
    /// linted in workspace mode. Everything else — `obs` (wall-clock
    /// profiling is its job), `cli`, `bench`, the compat shims, and
    /// simlint itself — is out of scope.
    pub scope_crates: Vec<&'static str>,
    /// Path suffixes (unix-style) where environment reads are sanctioned:
    /// the single `PWRPERF_THREADS` funnel.
    pub env_allowed_files: Vec<&'static str>,
    /// Path suffixes exempt from `float-eq`: the approved epsilon-helper
    /// modules themselves.
    pub float_eq_allowed_files: Vec<&'static str>,
    /// Struct/enum names that must carry `#[must_use]` at declaration.
    pub must_use_types: Vec<&'static str>,
    /// Public functions whose names start with one of these prefixes must
    /// carry `#[must_use]`.
    pub must_use_fn_prefixes: Vec<&'static str>,
    /// Crates whose public `Result`-returning functions must carry
    /// `#[must_use]` (measurement APIs: dropping a reading silently is a
    /// validity bug, not a style nit).
    pub measurement_crates: Vec<&'static str>,
    /// Rule ids disabled for this run.
    pub skip_rules: BTreeSet<String>,
    /// Declared pure roots for the `shard-purity` dataflow pass: bare
    /// names match free functions (`plan_compute`), `Type::method` forms
    /// match inherent/trait methods. Everything transitively reachable
    /// from a root must stay side-effect free. `simlint.toml`'s
    /// `[purity] roots` overrides this list.
    pub purity_roots: Vec<String>,
    /// Trait names whose impls the `controller-discipline` family audits
    /// (`simlint.toml`'s `[controller] traits` overrides).
    pub controller_traits: Vec<String>,
}

/// The `ClusterController` hooks that only fire when
/// `wants_runtime_events` returns true — and whose non-sample members may
/// never emit `Decision`s.
pub const CONTROLLER_RUNTIME_HOOKS: &[&str] =
    &["on_wait_begin", "on_wait_end", "on_phase", "on_sample"];

/// The runtime hooks that must *not* push decisions (decisions are legal
/// only from sample instants — DESIGN.md §15).
pub const CONTROLLER_NON_SAMPLE_HOOKS: &[&str] = &["on_wait_begin", "on_wait_end", "on_phase"];

/// The gate method runtime hooks hide behind.
pub const CONTROLLER_GATE: &str = "wants_runtime_events";

/// The unit suffixes rule `unit-suffix-type` and `unit-mix` recognize, in
/// longest-first order so `_mwh` wins over `_w` and `_mhz`/`_hz` resolve
/// correctly.
pub const UNIT_SUFFIXES: &[&str] = &["_mwh", "_mhz", "_mw", "_hz", "_us", "_w", "_j", "_s"];

/// The blessed numeric types for each suffix: what a field/parameter with
/// that unit suffix must be declared as.
pub fn blessed_types(suffix: &str) -> &'static [&'static str] {
    match suffix {
        // Instantaneous power and energy are continuous model outputs.
        "_w" | "_mw" | "_j" => &["f64"],
        // Battery quanta are whole mWh at the ACPI interface, fractional
        // inside the battery model.
        "_mwh" => &["u64", "f64"],
        // Operating points are exact MHz steps; physics uses Hz floats.
        "_hz" => &["f64"],
        "_mhz" => &["u32", "f64"],
        // Seconds/microseconds as raw numbers (simulated clocks use
        // SimTime/SimDuration and don't carry a unit suffix).
        "_s" => &["f64"],
        "_us" => &["f64", "u64"],
        _ => &[],
    }
}

/// The unit suffix of an identifier, if it ends in one.
pub fn unit_suffix(name: &str) -> Option<&'static str> {
    UNIT_SUFFIXES
        .iter()
        .find(|s| name.ends_with(**s) && name.len() > s.len())
        .copied()
}

/// Every rule id the analyzer knows, with a one-line description
/// (`simlint --list-rules` prints this table; DESIGN.md §11 documents it).
pub const RULES: &[(&str, &str)] = &[
    (
        "nondet-collections",
        "std HashMap/HashSet have nondeterministic iteration; use FxHashMap/FxHashSet/BTreeMap",
    ),
    (
        "wall-clock",
        "Instant::now/SystemTime::now leak host time into sim code; use SimTime or obs::WallTimer",
    ),
    (
        "ambient-rng",
        "thread_rng/rand::random/from_entropy are unseeded; use sim_core::DetRng",
    ),
    (
        "env-read",
        "environment access outside the sanctioned thread_count_with path breaks replay",
    ),
    (
        "unit-suffix-type",
        "fields/params with a unit suffix (_w, _j, _mwh, _hz, ...) must use the blessed numeric type",
    ),
    (
        "unit-mix",
        "additive/comparison arithmetic on identifiers with different unit suffixes",
    ),
    (
        "panic-path",
        "unwrap/expect/panic!/unreachable!/todo! in non-test engine code; return a checked error",
    ),
    (
        "literal-index",
        "indexing by integer literal can panic; use .get()/.first() or justify",
    ),
    (
        "must-use-measurement",
        "measurement results and Result-returning measurement APIs must be #[must_use]",
    ),
    (
        "float-eq",
        "==/!= on floats outside the approved epsilon helpers (sim_core::float)",
    ),
    (
        "bad-allow",
        "a `// simlint: allow(...)` comment without a justification",
    ),
    (
        "unused-allow",
        "a justified allow-comment that suppresses nothing",
    ),
    (
        "shard-purity",
        "functions reachable from declared pure roots must not take &mut self, touch statics, use interior mutability, or call I/O/rng",
    ),
    (
        "unit-flow",
        "unit suffixes must agree across let-bindings, call arguments, and function returns",
    ),
    (
        "controller-discipline",
        "ClusterController runtime hooks must be gated behind wants_runtime_events and emit Decisions only from on_sample",
    ),
];

impl Config {
    /// The rule set for this repository.
    pub fn workspace_default() -> Config {
        Config {
            scope_crates: vec![
                "sim-core",
                "mpi-sim",
                "net-model",
                "power-model",
                "mem-model",
                "cluster-sim",
                "dvfs",
                "powerpack",
                "edp-metrics",
                "workloads",
                "core",
            ],
            env_allowed_files: vec!["crates/core/src/runner.rs"],
            float_eq_allowed_files: vec!["crates/sim-core/src/float.rs"],
            must_use_types: vec!["RunResult", "FaultCounts", "SolverStats"],
            must_use_fn_prefixes: vec!["run_batch", "aligned_"],
            measurement_crates: vec!["power-model", "powerpack"],
            skip_rules: BTreeSet::new(),
            purity_roots: vec![
                "plan_compute".to_string(),
                "Engine::plan_target".to_string(),
                "PowerCapController::plan".to_string(),
            ],
            controller_traits: vec!["ClusterController".to_string()],
        }
    }

    /// The workspace defaults overlaid with `<root>/simlint.toml`, when
    /// present. Only the dataflow sections are file-configurable; the
    /// per-file rule plumbing stays in code.
    pub fn load(root: &Path) -> Config {
        let mut cfg = Config::workspace_default();
        let path = root.join("simlint.toml");
        if let Ok(text) = std::fs::read_to_string(&path) {
            cfg.apply_toml(&text);
        }
        cfg
    }

    /// Overlay `simlint.toml` content: `[purity] roots` and
    /// `[controller] traits` replace the built-in lists when present.
    pub fn apply_toml(&mut self, text: &str) {
        let doc = crate::toml::parse(text);
        if let Some(roots) = doc.list("purity", "roots") {
            self.purity_roots = roots;
        }
        if let Some(traits) = doc.list("controller", "traits") {
            self.controller_traits = traits;
        }
    }

    /// True when `rule` is enabled.
    pub fn rule_enabled(&self, rule: &str) -> bool {
        !self.skip_rules.contains(rule)
    }

    /// True when `rel_path` (unix-style) is one of the `suffixes`.
    pub fn path_matches(rel_path: &str, suffixes: &[&str]) -> bool {
        suffixes
            .iter()
            .any(|s| rel_path == *s || rel_path.ends_with(&format!("/{s}")))
    }
}
