//! The workspace model the dataflow rules run on: a symbol table of every
//! function in the in-scope crates, with receivers, parameter units, and
//! the call sites extracted from each body.
//!
//! Resolution is name-based and deliberately conservative (the shallow
//! `compat/syn` parser has no type inference): method calls resolve
//! through the receiver's *declared* type when it is knowable — `self`
//! receivers through the enclosing impl, parameter receivers through the
//! parameter's type path — and stay unresolved otherwise. An unresolved
//! call is assumed pure (std and out-of-scope code), so the purity pass
//! errs toward silence rather than noise; the `simsan` runtime sanitizer
//! is the dynamic backstop for what name resolution cannot see.

use std::collections::BTreeMap;

use proc_macro2::{Delimiter, Group, TokenTree};
use syn::{split_top_level_commas, Attribute, Item, ItemFn, Receiver};

use crate::config::{unit_suffix, Config};
use crate::scan::{flatten, Flat};

/// One function parameter (excluding `self`).
#[derive(Debug, Clone)]
pub struct Param {
    pub name: String,
    /// Unit suffix carried by the parameter name (`power_w` -> `_w`).
    pub unit: Option<&'static str>,
    /// Last path segment of the declared type (`&Node` -> `Node`,
    /// `Vec<f64>` -> `Vec`), when it is a plain path type.
    pub ty_name: Option<String>,
    /// True for `&mut T` parameters.
    pub by_mut_ref: bool,
}

/// What a method call's receiver chain roots at.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CallBase {
    /// Free or path call: `f(...)`, `Type::f(...)` (qualifier = `Type`).
    Path(Option<String>),
    /// Method call whose receiver chain roots at `self` (`self.m()`,
    /// `self.field.m()`).
    SelfChain,
    /// Method call rooted at a named binding (parameter or local).
    Named(String),
    /// Method call on an expression (call result, literal, group).
    Expr,
}

/// One call site inside a function body.
#[derive(Debug, Clone)]
pub struct CallSite {
    pub callee: String,
    pub base: CallBase,
    /// True for `.m(...)` method-call syntax.
    pub is_method: bool,
    pub line: usize,
    pub column: usize,
}

/// One function in the workspace.
#[derive(Debug)]
pub struct FnNode {
    pub file: String,
    pub line: usize,
    pub column: usize,
    pub name: String,
    /// Enclosing impl's self type, for methods.
    pub self_ty: Option<String>,
    /// Trait being implemented, for trait-impl methods.
    pub trait_name: Option<String>,
    pub receiver: Option<Receiver>,
    pub params: Vec<Param>,
    /// Unit suffix carried by the function name (`total_j` -> `_j`).
    pub ret_unit: Option<&'static str>,
    pub is_test: bool,
    pub body: Option<Group>,
    pub calls: Vec<CallSite>,
}

impl FnNode {
    /// `Type::name` for methods, bare `name` for free functions.
    pub fn qualified(&self) -> String {
        match &self.self_ty {
            Some(ty) => format!("{ty}::{}", self.name),
            None => self.name.clone(),
        }
    }
}

/// One `impl` block (the controller-discipline rules read these).
#[derive(Debug)]
pub struct ImplNode {
    pub file: String,
    pub line: usize,
    pub self_ty: Option<String>,
    pub trait_name: Option<String>,
    /// Indices into [`Workspace::fns`] for the methods defined here.
    pub methods: Vec<usize>,
}

/// The whole-workspace symbol table.
#[derive(Debug, Default)]
pub struct Workspace {
    pub fns: Vec<FnNode>,
    pub impls: Vec<ImplNode>,
    /// name -> fn indices (methods and free functions alike).
    by_name: BTreeMap<String, Vec<usize>>,
    /// (self_ty, name) -> fn indices.
    by_ty_name: BTreeMap<(String, String), Vec<usize>>,
}

impl Workspace {
    /// Build the model from parsed files (`(rel_path, parsed)` pairs;
    /// files that failed to parse are simply absent from the model).
    pub fn build(files: &[(String, Option<syn::File>)], _cfg: &Config) -> Workspace {
        let mut ws = Workspace::default();
        for (rel, parsed) in files {
            let Some(file) = parsed else { continue };
            let file_test = crate::rules::path_is_test(rel);
            ws.collect_items(rel, &file.items, None, None, file_test);
        }
        for (i, f) in ws.fns.iter().enumerate() {
            ws.by_name.entry(f.name.clone()).or_default().push(i);
            if let Some(ty) = &f.self_ty {
                ws.by_ty_name
                    .entry((ty.clone(), f.name.clone()))
                    .or_default()
                    .push(i);
            }
        }
        ws
    }

    /// All functions named `name`.
    pub fn fns_named(&self, name: &str) -> &[usize] {
        self.by_name.get(name).map(Vec::as_slice).unwrap_or(&[])
    }

    /// All methods `ty::name`.
    pub fn methods_of(&self, ty: &str, name: &str) -> &[usize] {
        self.by_ty_name
            .get(&(ty.to_string(), name.to_string()))
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    fn collect_items(
        &mut self,
        rel: &str,
        items: &[Item],
        self_ty: Option<&str>,
        trait_name: Option<&str>,
        in_test: bool,
    ) {
        for item in items {
            let item_test = in_test || attrs_mark_test(item.attrs());
            match item {
                Item::Fn(f) => {
                    self.push_fn(rel, f, self_ty, trait_name, item_test);
                }
                Item::Mod(m) => {
                    if let Some(content) = &m.content {
                        self.collect_items(rel, content, None, None, item_test);
                    }
                }
                Item::Impl(im) => {
                    let ty = im.self_ty_ident();
                    let tr = im.trait_ident();
                    let first_fn = self.fns.len();
                    self.collect_items(rel, &im.items, ty.as_deref(), tr.as_deref(), item_test);
                    self.impls.push(ImplNode {
                        file: rel.to_string(),
                        line: im.span.start().line.max(1),
                        self_ty: ty,
                        trait_name: tr,
                        methods: (first_fn..self.fns.len()).collect(),
                    });
                }
                Item::Trait(tr) => {
                    // Default method bodies live under the trait's name as
                    // their self type, so `Trait::method` resolves.
                    let name = tr.ident();
                    self.collect_items(rel, &tr.items, name.as_deref(), None, item_test);
                }
                _ => {}
            }
        }
    }

    fn push_fn(
        &mut self,
        rel: &str,
        f: &ItemFn,
        self_ty: Option<&str>,
        trait_name: Option<&str>,
        is_test: bool,
    ) {
        let name = f.sig.ident.to_string();
        let params = parse_params(f);
        let calls = match &f.body {
            Some(body) => extract_calls(body),
            None => Vec::new(),
        };
        self.fns.push(FnNode {
            file: rel.to_string(),
            line: f.sig.ident.span().start().line.max(1),
            column: f.sig.ident.span().start().column + 1,
            ret_unit: unit_suffix(&name),
            name,
            self_ty: self_ty.map(str::to_string),
            trait_name: trait_name.map(str::to_string),
            receiver: f.sig.receiver(),
            params,
            is_test,
            body: f.body.clone(),
            calls,
        });
    }
}

fn attrs_mark_test(attrs: &[Attribute]) -> bool {
    attrs.iter().any(|a| a.is_cfg_test() || a.is_test_marker())
}

/// Non-`self` parameters with their unit suffix, declared type's last
/// path segment, and `&mut`-ness.
fn parse_params(f: &ItemFn) -> Vec<Param> {
    let mut out = Vec::new();
    for part in split_top_level_commas(&f.sig.inputs) {
        let mut i = 0usize;
        while matches!(&part[i..], [TokenTree::Punct(p), TokenTree::Group(_), ..] if p.as_char() == '#')
        {
            i += 2;
        }
        if matches!(part.get(i), Some(TokenTree::Ident(id)) if *id == "mut") {
            i += 1;
        }
        let Some(TokenTree::Ident(pname)) = part.get(i) else {
            continue; // `self` forms, destructuring patterns
        };
        let name = pname.to_string();
        if name == "self" {
            continue;
        }
        if !matches!(part.get(i + 1), Some(TokenTree::Punct(p)) if p.as_char() == ':') {
            continue;
        }
        let ty = &part[i + 2..];
        let by_mut_ref = matches!(ty.first(), Some(TokenTree::Punct(p)) if p.as_char() == '&')
            && matches!(ty.get(1), Some(TokenTree::Ident(id)) if *id == "mut");
        out.push(Param {
            unit: unit_suffix(&name),
            name,
            ty_name: ty_last_segment(ty),
            by_mut_ref,
        });
    }
    out
}

/// The last path segment of a declared type, skipping `&`/`mut`/`dyn`/
/// `impl` prefixes and stopping at generics: `&mut cluster::Node` ->
/// `Node`, `Vec<f64>` -> `Vec`. Tuples, slices, and fn types yield `None`.
pub fn ty_last_segment(tokens: &[TokenTree]) -> Option<String> {
    let mut last = None;
    let mut after_tick = false;
    for t in tokens {
        match t {
            TokenTree::Punct(p) if p.as_char() == '&' || p.as_char() == ':' => {}
            TokenTree::Punct(p) if p.as_char() == '\'' => after_tick = true,
            TokenTree::Ident(_) if after_tick => after_tick = false,
            TokenTree::Ident(i) if *i == "mut" || *i == "dyn" || *i == "impl" => {}
            TokenTree::Ident(i) => last = Some(i.to_string()),
            TokenTree::Punct(p) if p.as_char() == '<' => break,
            _ => return None,
        }
    }
    last
}

/// Keywords that look like `ident (group)` but are not calls.
const NON_CALL_KEYWORDS: &[&str] = &[
    "if", "else", "while", "match", "for", "in", "loop", "return", "break", "continue", "as",
    "let", "move", "fn", "unsafe", "where", "dyn", "impl", "ref", "mut",
];

/// Extract every call site from a body, recursing through nested groups.
pub fn extract_calls(body: &Group) -> Vec<CallSite> {
    let mut out = Vec::new();
    extract_from_tokens(body.stream().tokens(), &mut out);
    out
}

fn extract_from_tokens(tokens: &[TokenTree], out: &mut Vec<CallSite>) {
    let flats = flatten(tokens);
    for i in 0..flats.len() {
        let Flat::Ident(id) = &flats[i] else {
            continue;
        };
        let name = id.to_string();
        if NON_CALL_KEYWORDS.contains(&name.as_str()) {
            continue;
        }
        // A call is `ident (...)`; `ident ! (...)` is a macro, skipped
        // here (the purity pass has its own macro sink table).
        if !matches!(
            flats.get(i + 1),
            Some(Flat::Group(g)) if g.delimiter() == Delimiter::Parenthesis
        ) {
            // Turbofish `ident :: < .. > ( .. )` still counts as a call;
            // anything else is not one.
            if !is_turbofish_call(&flats, i) {
                continue;
            }
        }
        let span = id.span();
        let site = match flats.get(i.wrapping_sub(1)) {
            Some(Flat::Op(op, _)) if op == "." => CallSite {
                callee: name,
                base: chain_base(&flats, i - 1),
                is_method: true,
                line: span.start().line.max(1),
                column: span.start().column + 1,
            },
            Some(Flat::Op(op, _)) if op == "::" => {
                let qualifier = match flats.get(i.wrapping_sub(2)) {
                    Some(Flat::Ident(q)) => Some(q.to_string()),
                    _ => None,
                };
                CallSite {
                    callee: name,
                    base: CallBase::Path(qualifier),
                    is_method: false,
                    line: span.start().line.max(1),
                    column: span.start().column + 1,
                }
            }
            _ => CallSite {
                callee: name,
                base: CallBase::Path(None),
                is_method: false,
                line: span.start().line.max(1),
                column: span.start().column + 1,
            },
        };
        out.push(site);
    }
    for t in tokens {
        if let TokenTree::Group(g) = t {
            extract_from_tokens(g.stream().tokens(), out);
        }
    }
}

/// `ident :: < ... > (` — a turbofish call.
fn is_turbofish_call(flats: &[Flat<'_>], i: usize) -> bool {
    matches!(flats.get(i + 1), Some(Flat::Op(op, _)) if op == "::")
        && matches!(flats.get(i + 2), Some(Flat::Op(op, _)) if op == "<")
}

/// Walk backwards from the `.` at `dot` to find what the receiver chain
/// roots at: `self`, a named binding, or an expression.
fn chain_base(flats: &[Flat<'_>], dot: usize) -> CallBase {
    let mut i = dot;
    let mut root: Option<CallBase> = None;
    while i > 0 {
        i -= 1;
        match &flats[i] {
            Flat::Ident(id) => {
                let name = id.to_string();
                if name == "self" {
                    root = Some(CallBase::SelfChain);
                } else {
                    root = Some(CallBase::Named(name));
                }
                // Chain continues only across a `.`/`::` separator.
                if i == 0 || !matches!(&flats[i - 1], Flat::Op(op, _) if op == "." || op == "::") {
                    break;
                }
            }
            // Tuple index (`p.0`) extends the chain.
            Flat::Lit(_) => {
                root = Some(CallBase::Expr);
                if i == 0 || !matches!(&flats[i - 1], Flat::Op(op, _) if op == "." || op == "::") {
                    break;
                }
            }
            Flat::Op(op, _) if op == "." || op == "::" => {}
            Flat::Group(g)
                if matches!(g.delimiter(), Delimiter::Parenthesis | Delimiter::Bracket) =>
            {
                root = Some(CallBase::Expr);
            }
            _ => break,
        }
    }
    root.unwrap_or(CallBase::Expr)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model(src: &str) -> Workspace {
        let parsed = syn::parse_file(src).expect("parse");
        Workspace::build(
            &[("crates/x/src/lib.rs".to_string(), Some(parsed))],
            &Config::workspace_default(),
        )
    }

    #[test]
    fn symbol_table_records_receivers_and_types() {
        let ws = model(
            "pub fn free(a_w: f64, node: &Node) -> f64 { node.freq_hz() }\n\
             impl Engine { fn plan(&self) {} fn step(&mut self, out: &mut Vec<u32>) {} }",
        );
        assert_eq!(ws.fns.len(), 3);
        let free = &ws.fns[ws.fns_named("free")[0]];
        assert_eq!(free.self_ty, None);
        assert_eq!(free.params.len(), 2);
        assert_eq!(free.params[0].unit, Some("_w"));
        assert_eq!(free.params[1].ty_name.as_deref(), Some("Node"));
        assert!(!free.params[1].by_mut_ref);
        let plan = &ws.fns[ws.methods_of("Engine", "plan")[0]];
        assert_eq!(plan.receiver, Some(Receiver::Ref));
        let step = &ws.fns[ws.methods_of("Engine", "step")[0]];
        assert_eq!(step.receiver, Some(Receiver::RefMut));
        assert!(step.params[0].by_mut_ref);
    }

    #[test]
    fn call_sites_distinguish_bases() {
        let ws = model(
            "fn f(node: &Node) { plan_compute(node); self.queue.push(1); \
             node.freq_hz(); Node::config(node); v.len(); (a + b).abs(); }",
        );
        let f = &ws.fns[0];
        let calls: Vec<(&str, &CallBase)> = f
            .calls
            .iter()
            .map(|c| (c.callee.as_str(), &c.base))
            .collect();
        assert!(calls.contains(&("plan_compute", &CallBase::Path(None))));
        assert!(calls.contains(&("push", &CallBase::SelfChain)));
        assert!(calls.contains(&("freq_hz", &CallBase::Named("node".to_string()))));
        assert!(calls.contains(&("config", &CallBase::Path(Some("Node".to_string())))));
        assert!(calls.contains(&("len", &CallBase::Named("v".to_string()))));
        assert!(calls.contains(&("abs", &CallBase::Expr)));
    }

    #[test]
    fn macros_and_keywords_are_not_calls() {
        let ws = model("fn f() { println!(\"x\"); if (a) { g(); } match (b) { _ => h() } }");
        let names: Vec<&str> = ws.fns[0].calls.iter().map(|c| c.callee.as_str()).collect();
        assert!(!names.contains(&"println"));
        assert!(!names.contains(&"if"));
        assert!(!names.contains(&"match"));
        assert!(names.contains(&"g"));
        assert!(names.contains(&"h"));
    }

    #[test]
    fn trait_default_methods_resolve_under_the_trait_name() {
        let ws = model("trait Gov { fn tick(&mut self) { self.helper(); } fn helper(&self) {} }");
        assert_eq!(ws.methods_of("Gov", "tick").len(), 1);
        assert_eq!(ws.methods_of("Gov", "helper").len(), 1);
    }

    #[test]
    fn impl_nodes_record_trait_and_methods() {
        let ws = model(
            "impl ClusterController for Cap { fn on_sample(&mut self) {} }\n\
             impl Cap { fn emit(&self) {} }",
        );
        assert_eq!(ws.impls.len(), 2);
        assert_eq!(ws.impls[0].trait_name.as_deref(), Some("ClusterController"));
        assert_eq!(ws.impls[0].self_ty.as_deref(), Some("Cap"));
        assert_eq!(ws.impls[0].methods.len(), 1);
        assert_eq!(ws.impls[1].trait_name, None);
    }
}
