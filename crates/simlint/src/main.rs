//! simlint CLI.
//!
//! ```text
//! simlint [--json] [--deny] [--list-rules] [--root DIR] [--skip-rule ID]... [PATH...]
//! ```
//!
//! With no PATHs, lints every in-scope crate of the enclosing workspace
//! (found by walking up to a `Cargo.toml` with `[workspace]`). `--deny`
//! makes any finding exit nonzero — that is what CI runs.

use std::path::PathBuf;
use std::process::ExitCode;

use simlint::{
    config::RULES, find_workspace_root, lint_paths, lint_workspace, render_json, render_text,
    Config,
};

fn main() -> ExitCode {
    let mut json = false;
    let mut deny = false;
    let mut root_arg: Option<PathBuf> = None;
    let mut paths: Vec<PathBuf> = Vec::new();
    let mut cfg = Config::workspace_default();

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--json" => json = true,
            "--deny" => deny = true,
            "--list-rules" => {
                for (id, desc) in RULES {
                    println!("{id:<22} {desc}");
                }
                return ExitCode::SUCCESS;
            }
            "--root" => match args.next() {
                Some(dir) => root_arg = Some(PathBuf::from(dir)),
                None => return usage_error("--root needs a directory"),
            },
            "--skip-rule" => match args.next() {
                Some(id) => {
                    if !RULES.iter().any(|(r, _)| *r == id) {
                        return usage_error(&format!("unknown rule `{id}` (see --list-rules)"));
                    }
                    cfg.skip_rules.insert(id);
                }
                None => return usage_error("--skip-rule needs a rule id"),
            },
            "--help" | "-h" => {
                println!(
                    "usage: simlint [--json] [--deny] [--list-rules] [--root DIR] \
                     [--skip-rule ID]... [PATH...]"
                );
                return ExitCode::SUCCESS;
            }
            other if other.starts_with('-') => {
                return usage_error(&format!("unknown flag `{other}`"));
            }
            other => paths.push(PathBuf::from(other)),
        }
    }

    let cwd = match std::env::current_dir() {
        Ok(d) => d,
        Err(e) => {
            eprintln!("simlint: cannot read current dir: {e}");
            return ExitCode::from(2);
        }
    };
    let root = match root_arg.or_else(|| find_workspace_root(&cwd)) {
        Some(r) => r,
        None => {
            eprintln!("simlint: no workspace root found (pass --root)");
            return ExitCode::from(2);
        }
    };

    let result = if paths.is_empty() {
        lint_workspace(&root, &cfg)
    } else {
        lint_paths(&root, &paths, &cfg)
    };
    let findings = match result {
        Ok(f) => f,
        Err(e) => {
            eprintln!("simlint: {e}");
            return ExitCode::from(2);
        }
    };

    if json {
        print!("{}", render_json(&findings));
    } else {
        print!("{}", render_text(&findings));
    }
    if deny && !findings.is_empty() {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

fn usage_error(msg: &str) -> ExitCode {
    eprintln!("simlint: {msg}");
    ExitCode::from(2)
}
