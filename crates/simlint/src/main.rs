//! simlint CLI.
//!
//! ```text
//! simlint [--json|--sarif] [--deny] [--no-cache] [--list-rules]
//!         [--root DIR] [--skip-rule ID]... [PATH...]
//! ```
//!
//! With no PATHs, lints every in-scope crate of the enclosing workspace
//! (found by walking up to a `Cargo.toml` with `[workspace]`), consulting
//! the incremental cache in `target/simlint-cache.json` unless
//! `--no-cache` is given. Explicit PATHs are always linted fresh.
//! `--deny` makes any finding exit nonzero — that is what CI runs.

use std::path::PathBuf;
use std::process::ExitCode;

use simlint::{
    config::RULES, find_workspace_root, lint_paths, lint_workspace_cached, render_json,
    render_sarif, render_text, Config,
};

enum Format {
    Text,
    Json,
    Sarif,
}

fn main() -> ExitCode {
    let mut format = Format::Text;
    let mut deny = false;
    let mut no_cache = false;
    let mut root_arg: Option<PathBuf> = None;
    let mut paths: Vec<PathBuf> = Vec::new();
    let mut skip_rules: Vec<String> = Vec::new();

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--json" => format = Format::Json,
            "--sarif" => format = Format::Sarif,
            "--deny" => deny = true,
            "--no-cache" => no_cache = true,
            "--list-rules" => {
                for (id, desc) in RULES {
                    println!("{id:<22} {desc}");
                }
                return ExitCode::SUCCESS;
            }
            "--root" => match args.next() {
                Some(dir) => root_arg = Some(PathBuf::from(dir)),
                None => return usage_error("--root needs a directory"),
            },
            "--skip-rule" => match args.next() {
                Some(id) => {
                    if !RULES.iter().any(|(r, _)| *r == id) {
                        return usage_error(&format!("unknown rule `{id}` (see --list-rules)"));
                    }
                    skip_rules.push(id);
                }
                None => return usage_error("--skip-rule needs a rule id"),
            },
            "--help" | "-h" => {
                println!(
                    "usage: simlint [--json|--sarif] [--deny] [--no-cache] [--list-rules] \
                     [--root DIR] [--skip-rule ID]... [PATH...]"
                );
                return ExitCode::SUCCESS;
            }
            other if other.starts_with('-') => {
                return usage_error(&format!("unknown flag `{other}`"));
            }
            other => paths.push(PathBuf::from(other)),
        }
    }

    let cwd = match std::env::current_dir() {
        Ok(d) => d,
        Err(e) => {
            eprintln!("simlint: cannot read current dir: {e}");
            return ExitCode::from(2);
        }
    };
    let root = match root_arg.or_else(|| find_workspace_root(&cwd)) {
        Some(r) => r,
        None => {
            eprintln!("simlint: no workspace root found (pass --root)");
            return ExitCode::from(2);
        }
    };
    // `simlint.toml` overlays the built-in dataflow config; CLI skips win.
    let mut cfg = Config::load(&root);
    cfg.skip_rules.extend(skip_rules);

    let result = if paths.is_empty() {
        // Cache only helps (and is only sound) in full-workspace mode;
        // the skip-rule set is part of its fingerprint.
        lint_workspace_cached(&root, &cfg, !no_cache)
    } else {
        lint_paths(&root, &paths, &cfg)
    };
    let findings = match result {
        Ok(f) => f,
        Err(e) => {
            eprintln!("simlint: {e}");
            return ExitCode::from(2);
        }
    };

    match format {
        Format::Text => print!("{}", render_text(&findings)),
        Format::Json => print!("{}", render_json(&findings)),
        Format::Sarif => print!("{}", render_sarif(&findings)),
    }
    if deny && !findings.is_empty() {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

fn usage_error(msg: &str) -> ExitCode {
    eprintln!("simlint: {msg}");
    ExitCode::from(2)
}
