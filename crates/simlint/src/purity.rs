//! The `shard-purity` dataflow pass.
//!
//! Starting from the configured pure roots (`plan_compute`, the snapshot
//! candidates — `simlint.toml [purity] roots`), walk the call graph
//! breadth-first and flag anything that could make a shard-planned or
//! replayed computation diverge: `&mut self` receivers on the path,
//! assignments to `static mut` state, interior mutability, and I/O or
//! ambient-rng sinks. Every finding carries the full call chain from the
//! root to the sink so the report reads as a path, not a point.
//!
//! Resolution is conservative (see `model.rs`): unresolved calls are
//! assumed pure. The `simsan` engine feature is the runtime cross-check.

use std::collections::VecDeque;

use proc_macro2::{Delimiter, Group, TokenTree};

use crate::config::Config;
use crate::model::{CallBase, CallSite, FnNode, Workspace};
use crate::rules::Finding;
use crate::scan::{flatten, Flat};

/// Types whose presence in a pure region means shared mutable state.
const INTERIOR_MUT_TYPES: &[&str] = &[
    "Cell",
    "RefCell",
    "Mutex",
    "RwLock",
    "UnsafeCell",
    "OnceCell",
    "OnceLock",
    "LazyCell",
    "LazyLock",
];

/// Macros that perform I/O.
const IO_MACROS: &[&str] = &["println", "print", "eprintln", "eprint", "dbg"];

/// Idents that mean I/O when they appear at all (method or path position).
const IO_IDENTS: &[&str] = &["stdout", "stderr", "read_to_string", "write_all"];

/// Path qualifiers that mean I/O (`fs::read`, `File::open`).
const IO_QUALIFIERS: &[&str] = &["fs", "File"];

/// Ambient randomness.
const RNG_IDENTS: &[&str] = &["thread_rng", "from_entropy"];

/// Methods that mutate through a shared reference (interior mutability).
const INTERIOR_MUT_METHODS: &[&str] = &[
    "borrow_mut",
    "lock",
    "store",
    "fetch_add",
    "fetch_sub",
    "get_or_init",
    "get_or_insert_with",
];

/// Run the pass over the whole workspace model.
pub fn check(ws: &Workspace, cfg: &Config) -> Vec<Finding> {
    if !cfg.rule_enabled("shard-purity") {
        return Vec::new();
    }
    let mut findings = Vec::new();
    // parent[i] = (caller idx, call line) once visited; roots are their
    // own parents (None).
    let mut visited = vec![false; ws.fns.len()];
    let mut parent: Vec<Option<(usize, usize)>> = vec![None; ws.fns.len()];
    let mut queue = VecDeque::new();

    for root in &cfg.purity_roots {
        for &idx in resolve_root(ws, root) {
            if ws.fns[idx].is_test || visited[idx] {
                continue;
            }
            visited[idx] = true;
            queue.push_back(idx);
            let f = &ws.fns[idx];
            if f.receiver.is_some_and(|r| r.is_mut()) {
                findings.push(finding(
                    ws,
                    &parent,
                    idx,
                    f.line,
                    f.column,
                    &format!("pure root `{}` takes `&mut self`", f.qualified()),
                ));
            }
        }
    }

    while let Some(idx) = queue.pop_front() {
        let f = &ws.fns[idx];
        if let Some(body) = &f.body {
            scan_body_sinks(ws, &parent, idx, body, &mut findings);
        }
        for call in &f.calls {
            let (mut_violation, targets) = resolve_call(ws, f, call);
            if let Some(desc) = mut_violation {
                findings.push(finding(ws, &parent, idx, call.line, call.column, &desc));
            }
            for t in targets {
                if ws.fns[t].is_test || visited[t] {
                    continue;
                }
                visited[t] = true;
                parent[t] = Some((idx, call.line));
                queue.push_back(t);
            }
        }
    }
    findings
}

/// Indices matching a configured root: `Type::method` matches methods, a
/// bare name matches every function with that name (free fns and methods).
fn resolve_root<'w>(ws: &'w Workspace, root: &str) -> &'w [usize] {
    match root.split_once("::") {
        Some((ty, name)) => ws.methods_of(ty, name),
        None => ws.fns_named(root),
    }
}

/// Resolve one call site in `f`: an optional `&mut self` violation
/// description, plus the callee indices to traverse into.
fn resolve_call(ws: &Workspace, f: &FnNode, call: &CallSite) -> (Option<String>, Vec<usize>) {
    match &call.base {
        // `self.m()` / `self.field.m()`: resolve within the enclosing
        // type first; a field-hop method lives on another type, so fall
        // back to the workspace-unique method of that name.
        CallBase::SelfChain => {
            let own: Vec<usize> = f
                .self_ty
                .as_deref()
                .map(|ty| ws.methods_of(ty, &call.callee).to_vec())
                .unwrap_or_default();
            let candidates = if own.is_empty() {
                let named: Vec<usize> = ws
                    .fns_named(&call.callee)
                    .iter()
                    .copied()
                    .filter(|&i| ws.fns[i].receiver.is_some())
                    .collect();
                if named.len() == 1 {
                    named
                } else {
                    Vec::new()
                }
            } else {
                own
            };
            let mutating = !candidates.is_empty()
                && candidates
                    .iter()
                    .all(|&i| ws.fns[i].receiver.is_some_and(|r| r.is_mut()));
            let desc = mutating.then(|| {
                format!(
                    "calls `{}` which takes `&mut self` on a value reached through `self`",
                    ws.fns[candidates[0]].qualified()
                )
            });
            (desc, candidates)
        }
        // Method on a named binding: a parameter's declared type makes
        // this precise; locals stay unresolved (mutating a local is pure).
        CallBase::Named(base) => {
            let param = f.params.iter().find(|p| p.name == *base);
            match param.and_then(|p| p.ty_name.as_deref()) {
                Some(ty) => {
                    let candidates = ws.methods_of(ty, &call.callee).to_vec();
                    let mutating = !candidates.is_empty()
                        && candidates
                            .iter()
                            .all(|&i| ws.fns[i].receiver.is_some_and(|r| r.is_mut()));
                    let desc = mutating.then(|| {
                        format!(
                            "calls `{}::{}` which takes `&mut self` on parameter `{base}`",
                            ty, call.callee
                        )
                    });
                    (desc, candidates)
                }
                None if param.is_some() => {
                    // Parameter of unknown type: flag only when every
                    // method of that name in the workspace mutates.
                    let named: Vec<usize> = ws
                        .fns_named(&call.callee)
                        .iter()
                        .copied()
                        .filter(|&i| ws.fns[i].receiver.is_some())
                        .collect();
                    let mutating = !named.is_empty()
                        && named
                            .iter()
                            .all(|&i| ws.fns[i].receiver.is_some_and(|r| r.is_mut()));
                    let desc = mutating.then(|| {
                        format!(
                            "calls `.{}()` which takes `&mut self` on parameter `{base}`",
                            call.callee
                        )
                    });
                    let targets = if named.len() == 1 { named } else { Vec::new() };
                    (desc, targets)
                }
                // A local: its mutation is invisible outside the pure
                // region; don't traverse (no declared type to resolve by).
                None => (None, Vec::new()),
            }
        }
        CallBase::Expr => (None, Vec::new()),
        CallBase::Path(Some(qual)) => {
            let typed = ws.methods_of(qual, &call.callee);
            if !typed.is_empty() {
                return (None, typed.to_vec());
            }
            // Module-qualified free call: match free functions by name.
            let free: Vec<usize> = ws
                .fns_named(&call.callee)
                .iter()
                .copied()
                .filter(|&i| ws.fns[i].self_ty.is_none())
                .collect();
            (None, free)
        }
        CallBase::Path(None) => {
            let free: Vec<usize> = ws
                .fns_named(&call.callee)
                .iter()
                .copied()
                .filter(|&i| ws.fns[i].self_ty.is_none())
                .collect();
            (None, free)
        }
    }
}

/// Scan one reachable body for direct sinks.
fn scan_body_sinks(
    ws: &Workspace,
    parent: &[Option<(usize, usize)>],
    idx: usize,
    body: &Group,
    findings: &mut Vec<Finding>,
) {
    scan_tokens(ws, parent, idx, body.stream().tokens(), findings);
}

fn scan_tokens(
    ws: &Workspace,
    parent: &[Option<(usize, usize)>],
    idx: usize,
    tokens: &[TokenTree],
    findings: &mut Vec<Finding>,
) {
    let flats = flatten(tokens);
    for (i, flat) in flats.iter().enumerate() {
        let Flat::Ident(id) = flat else { continue };
        let name = id.to_string();
        let span = id.span();
        let line = span.start().line.max(1);
        let column = span.start().column + 1;
        let is_macro = matches!(flats.get(i + 1), Some(Flat::Op(op, _)) if op == "!");
        let after_dot = i > 0 && matches!(&flats[i - 1], Flat::Op(op, _) if op == ".");
        let before_call = matches!(
            flats.get(i + 1),
            Some(Flat::Group(g)) if g.delimiter() == Delimiter::Parenthesis
        );
        let qualifies = matches!(flats.get(i + 1), Some(Flat::Op(op, _)) if op == "::");

        let sink: Option<String> = if INTERIOR_MUT_TYPES.contains(&name.as_str())
            || (name.starts_with("Atomic") && name.len() > "Atomic".len())
        {
            Some(format!("uses interior mutability (`{name}`)"))
        } else if is_macro && IO_MACROS.contains(&name.as_str()) {
            Some(format!("performs I/O (`{name}!`)"))
        } else if IO_IDENTS.contains(&name.as_str()) {
            Some(format!("performs I/O (`{name}`)"))
        } else if qualifies && IO_QUALIFIERS.contains(&name.as_str()) {
            Some(format!("performs I/O (`{name}::...`)"))
        } else if RNG_IDENTS.contains(&name.as_str())
            || (name == "random"
                && i >= 2
                && matches!(&flats[i - 1], Flat::Op(op, _) if op == "::")
                && matches!(&flats[i - 2], Flat::Ident(q) if *q == "rand"))
        {
            Some(format!("draws ambient randomness (`{name}`)"))
        } else if after_dot && before_call && INTERIOR_MUT_METHODS.contains(&name.as_str()) {
            Some(format!("mutates through a shared reference (`.{name}()`)"))
        } else if is_static_assign(&name, &flats, i) {
            Some(format!("assigns to static `{name}`"))
        } else {
            None
        };
        if let Some(desc) = sink {
            findings.push(finding(ws, parent, idx, line, column, &desc));
        }
    }
    for t in tokens {
        if let TokenTree::Group(g) = t {
            scan_tokens(ws, parent, idx, g.stream().tokens(), findings);
        }
    }
}

/// `SCREAMING_CASE = ...` / `+=` / `-=`: an assignment to a static.
/// (Consts cannot be assigned, so an all-caps assignment target is a
/// `static mut` — or close enough to deserve a look.)
fn is_static_assign(name: &str, flats: &[Flat<'_>], i: usize) -> bool {
    if name.len() < 2
        || !name
            .chars()
            .all(|c| c.is_ascii_uppercase() || c == '_' || c.is_ascii_digit())
    {
        return false;
    }
    // Not a path segment of something else (`E::VARIANT = x` in a match
    // guard is not assignment; also skip `Self::CAP` reads).
    if i > 0 && matches!(&flats[i - 1], Flat::Op(op, _) if op == "::" || op == ".") {
        return false;
    }
    matches!(
        flats.get(i + 1),
        Some(Flat::Op(op, _)) if matches!(op.as_str(), "=" | "+=" | "-=" | "*=" | "/=" | "%=" | "|=" | "&=" | "^=")
    )
}

/// Build a finding whose message leads with the root→here call chain.
fn finding(
    ws: &Workspace,
    parent: &[Option<(usize, usize)>],
    idx: usize,
    line: usize,
    column: usize,
    desc: &str,
) -> Finding {
    let mut chain = vec![idx];
    let mut cur = idx;
    while let Some((p, _)) = parent[cur] {
        chain.push(p);
        cur = p;
    }
    chain.reverse();
    let path: Vec<String> = chain
        .iter()
        .map(|&i| format!("`{}`", ws.fns[i].qualified()))
        .collect();
    let f = &ws.fns[idx];
    Finding {
        file: f.file.clone(),
        line,
        column,
        rule: "shard-purity",
        message: format!(
            "{}: {} (reached from pure root {})",
            path.join(" → "),
            desc,
            path.first().cloned().unwrap_or_default()
        ),
    }
}
