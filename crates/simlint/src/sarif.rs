//! SARIF 2.1.0 rendering — the minimal shape GitHub code scanning needs
//! to turn findings into PR annotations: one run, the `simlint` driver
//! with the rule catalogue, and one result per finding with a physical
//! location. Hand-rolled like `render_json`; the container has no serde.

use std::collections::BTreeSet;
use std::fmt::Write as _;

use crate::config::RULES;
use crate::rules::Finding;

/// Render findings as a SARIF 2.1.0 log.
pub fn render_sarif(findings: &[Finding]) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"$schema\": \"https://json.schemastore.org/sarif-2.1.0.json\",\n");
    out.push_str("  \"version\": \"2.1.0\",\n");
    out.push_str("  \"runs\": [\n    {\n");
    out.push_str("      \"tool\": {\n        \"driver\": {\n");
    out.push_str("          \"name\": \"simlint\",\n");
    out.push_str("          \"rules\": [");
    // Catalogue rules plus any ad-hoc ids findings carry (e.g. `parse`).
    let mut ids: Vec<&str> = RULES.iter().map(|(id, _)| *id).collect();
    let known: BTreeSet<&str> = ids.iter().copied().collect();
    let mut extra: Vec<&str> = findings
        .iter()
        .map(|f| f.rule)
        .filter(|r| !known.contains(r))
        .collect::<BTreeSet<_>>()
        .into_iter()
        .collect();
    ids.append(&mut extra);
    for (i, id) in ids.iter().enumerate() {
        let desc = RULES
            .iter()
            .find(|(r, _)| r == id)
            .map(|(_, d)| *d)
            .unwrap_or("");
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "\n            {{\"id\": \"{}\", \"shortDescription\": {{\"text\": \"{}\"}}}}",
            esc(id),
            esc(desc)
        );
    }
    out.push_str("\n          ]\n        }\n      },\n");
    out.push_str("      \"results\": [");
    for (i, f) in findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "\n        {{\n          \"ruleId\": \"{}\",\n          \"level\": \"error\",\n          \
             \"message\": {{\"text\": \"{}\"}},\n          \"locations\": [\n            \
             {{\"physicalLocation\": {{\"artifactLocation\": {{\"uri\": \"{}\"}}, \
             \"region\": {{\"startLine\": {}, \"startColumn\": {}}}}}}}\n          ]\n        }}",
            esc(f.rule),
            esc(&f.message),
            esc(&f.file),
            f.line,
            f.column
        );
    }
    if !findings.is_empty() {
        out.push_str("\n      ");
    }
    out.push_str("]\n    }\n  ]\n}\n");
    out
}

fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sarif_shape_carries_schema_rules_and_locations() {
        let findings = vec![Finding {
            file: "crates/dvfs/src/cluster.rs".to_string(),
            line: 12,
            column: 5,
            rule: "shard-purity",
            message: "`plan_compute` \u{2192} `freq_hz`: takes `&mut self`".to_string(),
        }];
        let s = render_sarif(&findings);
        assert!(s.contains("\"version\": \"2.1.0\""));
        assert!(s.contains("sarif-2.1.0.json"));
        assert!(s.contains("\"name\": \"simlint\""));
        assert!(s.contains("\"id\": \"shard-purity\""));
        assert!(s.contains("\"ruleId\": \"shard-purity\""));
        assert!(s.contains("\"uri\": \"crates/dvfs/src/cluster.rs\""));
        assert!(s.contains("\"startLine\": 12"));
        assert!(s.contains("\"startColumn\": 5"));
        // Balanced braces/brackets — a cheap structural sanity check.
        assert_eq!(s.matches('{').count(), s.matches('}').count());
        assert_eq!(s.matches('[').count(), s.matches(']').count());
    }

    #[test]
    fn empty_findings_render_an_empty_results_array() {
        let s = render_sarif(&[]);
        assert!(s.contains("\"results\": []"));
        assert_eq!(s.matches('{').count(), s.matches('}').count());
    }
}
