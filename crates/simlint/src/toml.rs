//! A deliberately tiny TOML subset parser for `simlint.toml`.
//!
//! The container has no toml crate, and the analyzer's configuration
//! surface is flat: `[section]` headers, `key = "string"`, and
//! `key = ["a", "b"]` string arrays. Comments (`#`) and blank lines are
//! skipped; anything else is ignored rather than an error, so a config
//! typo degrades to "built-in defaults" instead of breaking the lint run.

use std::collections::BTreeMap;

/// One parsed value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Value {
    Str(String),
    List(Vec<String>),
}

/// A parsed document: section -> key -> value.
#[derive(Debug, Default)]
pub struct Doc {
    sections: BTreeMap<String, BTreeMap<String, Value>>,
}

impl Doc {
    /// The string list at `[section] key`, if present.
    pub fn list(&self, section: &str, key: &str) -> Option<Vec<String>> {
        match self.sections.get(section)?.get(key)? {
            Value::List(v) => Some(v.clone()),
            Value::Str(s) => Some(vec![s.clone()]),
        }
    }

    /// The string at `[section] key`, if present.
    pub fn string(&self, section: &str, key: &str) -> Option<String> {
        match self.sections.get(section)?.get(key)? {
            Value::Str(s) => Some(s.clone()),
            Value::List(_) => None,
        }
    }
}

/// Parse the subset. Never fails; unparseable lines are skipped.
pub fn parse(text: &str) -> Doc {
    let mut doc = Doc::default();
    let mut section = String::new();
    for raw in text.lines() {
        let line = strip_comment(raw).trim();
        if line.is_empty() {
            continue;
        }
        if let Some(name) = line.strip_prefix('[').and_then(|l| l.strip_suffix(']')) {
            section = name.trim().to_string();
            continue;
        }
        let Some((key, value)) = line.split_once('=') else {
            continue;
        };
        let key = key.trim().to_string();
        let Some(value) = parse_value(value.trim()) else {
            continue;
        };
        doc.sections
            .entry(section.clone())
            .or_default()
            .insert(key, value);
    }
    doc
}

/// Drop a `#` comment that is not inside a quoted string.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

fn parse_value(v: &str) -> Option<Value> {
    if let Some(inner) = v.strip_prefix('[').and_then(|v| v.strip_suffix(']')) {
        let items = inner
            .split(',')
            .map(str::trim)
            .filter(|s| !s.is_empty())
            .filter_map(unquote)
            .collect();
        return Some(Value::List(items));
    }
    unquote(v).map(Value::Str)
}

fn unquote(s: &str) -> Option<String> {
    s.strip_prefix('"')
        .and_then(|s| s.strip_suffix('"'))
        .map(|s| s.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_sections_strings_and_lists() {
        let doc = parse(
            "# config\n[purity]\nroots = [\"plan_compute\", \"Engine::plan_target\"]\n\n\
             [controller]\ntraits = [\"ClusterController\"] # audited traits\nname = \"x\"\n",
        );
        assert_eq!(
            doc.list("purity", "roots"),
            Some(vec![
                "plan_compute".to_string(),
                "Engine::plan_target".to_string()
            ])
        );
        assert_eq!(
            doc.list("controller", "traits"),
            Some(vec!["ClusterController".to_string()])
        );
        assert_eq!(doc.string("controller", "name"), Some("x".to_string()));
        assert_eq!(doc.list("missing", "key"), None);
    }

    #[test]
    fn junk_lines_are_skipped_not_fatal() {
        let doc = parse("???\n[s]\nk = not-quoted\nok = \"v\"\n");
        assert_eq!(doc.string("s", "k"), None);
        assert_eq!(doc.string("s", "ok"), Some("v".to_string()));
    }

    #[test]
    fn hash_inside_quotes_is_not_a_comment() {
        let doc = parse("[s]\nk = \"a#b\"\n");
        assert_eq!(doc.string("s", "k"), Some("a#b".to_string()));
    }
}
