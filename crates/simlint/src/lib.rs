//! simlint — a static-analysis pass over the simulator crates.
//!
//! Built on the vendored `compat/syn` + `compat/proc-macro2` shims (the
//! same offline pattern as the proptest/criterion shims), it parses every
//! `.rs` file in the in-scope crates and enforces the determinism,
//! unit-safety, error-discipline, and float-equality conventions that the
//! replay guarantee rests on. See DESIGN.md §11 for the rule catalogue and
//! the allow-comment grammar.
//!
//! Library layout:
//!
//! * [`config`] — rule ids, scope, blessed unit types, dataflow settings;
//! * [`toml`] — the tiny TOML subset `simlint.toml` is written in;
//! * [`allow`] — the `// simlint: allow(rule): why` grammar;
//! * [`scan`] — token-stream flattening and unit-chain walkers;
//! * [`rules`] — the per-file rule implementations ([`lint_source`]);
//! * [`model`] — the workspace symbol table and call graph;
//! * [`purity`], [`unitflow`], [`controller`] — the dataflow rule
//!   families built on the model (DESIGN.md §16);
//! * [`cache`] — the incremental content-hash cache;
//! * [`sarif`] — SARIF 2.1.0 rendering;
//! * this module — file discovery, orchestration, and rendering.

pub mod allow;
pub mod cache;
pub mod config;
pub mod controller;
pub mod model;
pub mod purity;
pub mod rules;
pub mod sarif;
pub mod scan;
pub mod toml;
pub mod unitflow;

use std::collections::BTreeSet;
use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use allow::AllowTable;
use cache::{Cache, FileEntry};

pub use config::Config;
pub use rules::{lint_source, Finding};
pub use sarif::render_sarif;

/// Walk upward from `start` to the directory whose `Cargo.toml` declares
/// `[workspace]`.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start.to_path_buf());
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(text) = fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(d);
            }
        }
        dir = d.parent().map(Path::to_path_buf);
    }
    None
}

/// Every `.rs` file in the in-scope crates' `src/` trees, as
/// `(workspace-relative unix path, absolute path)` pairs, sorted so runs
/// are deterministic.
pub fn discover_files(root: &Path, cfg: &Config) -> io::Result<Vec<(String, PathBuf)>> {
    let mut out = Vec::new();
    for krate in &cfg.scope_crates {
        let src = root.join("crates").join(krate).join("src");
        if src.is_dir() {
            walk_rs(&src, &mut out)?;
        }
    }
    let mut pairs: Vec<(String, PathBuf)> = out
        .into_iter()
        .map(|abs| (rel_unix(root, &abs), abs))
        .collect();
    pairs.sort();
    Ok(pairs)
}

fn walk_rs(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let path = entry?.path();
        if path.is_dir() {
            walk_rs(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

fn rel_unix(root: &Path, abs: &Path) -> String {
    let rel = abs.strip_prefix(root).unwrap_or(abs);
    rel.to_string_lossy().replace('\\', "/")
}

/// The full analysis over in-memory sources: per-file rules, the
/// workspace dataflow families (shard-purity, unit-flow,
/// controller-discipline), and allow hygiene — all sharing one allow
/// table per file so `// simlint: allow(...)` works uniformly. Findings
/// come back sorted by (file, line, column, rule).
pub fn analyze_sources(files: &[(String, String)], cfg: &Config) -> Vec<Finding> {
    analyze_sources_skipping(files, cfg, &BTreeSet::new())
}

/// [`analyze_sources`] with an incremental-cache skip set: files in
/// `skip` bypass the per-file pass and hygiene (they were clean and
/// unchanged), but still feed the workspace model — a change elsewhere
/// can surface a dataflow finding in any file.
fn analyze_sources_skipping(
    files: &[(String, String)],
    cfg: &Config,
    skip: &BTreeSet<String>,
) -> Vec<Finding> {
    let mut findings = Vec::new();
    let mut parsed: Vec<(String, Option<syn::File>)> = Vec::with_capacity(files.len());
    let mut allows: Vec<(String, AllowTable)> = Vec::with_capacity(files.len());
    for (rel, src) in files {
        let table = AllowTable::parse(src);
        if !skip.contains(rel) {
            findings.extend(rules::lint_source_with(rel, src, cfg, &table));
        }
        parsed.push((rel.clone(), syn::parse_file(src).ok()));
        allows.push((rel.clone(), table));
    }
    let ws = model::Workspace::build(&parsed, cfg);
    let mut dataflow = Vec::new();
    dataflow.extend(purity::check(&ws, cfg));
    dataflow.extend(unitflow::check(&ws, cfg));
    dataflow.extend(controller::check(&ws, cfg));
    for f in dataflow {
        let table = allows.iter().find(|(r, _)| *r == f.file).map(|(_, t)| t);
        if table.is_some_and(|t| t.suppresses(f.line, f.rule)) {
            continue;
        }
        findings.push(f);
    }
    for (rel, table) in &allows {
        if !skip.contains(rel) {
            findings.extend(rules::allow_hygiene(rel, table, cfg));
        }
    }
    sort_findings(&mut findings);
    findings
}

/// Lint the whole workspace under `root` with `cfg`; findings come back
/// sorted by (file, line, column, rule). Uncached.
pub fn lint_workspace(root: &Path, cfg: &Config) -> io::Result<Vec<Finding>> {
    lint_workspace_cached(root, cfg, false)
}

/// Workspace lint with the incremental cache (`target/simlint-cache.json`)
/// consulted and refreshed when `use_cache` is true.
pub fn lint_workspace_cached(
    root: &Path,
    cfg: &Config,
    use_cache: bool,
) -> io::Result<Vec<Finding>> {
    let files = discover_files(root, cfg)?;
    let mut sources: Vec<(String, String)> = Vec::with_capacity(files.len());
    for (rel, abs) in files {
        sources.push((rel, fs::read_to_string(&abs)?));
    }
    let toml_text = fs::read_to_string(root.join("simlint.toml")).unwrap_or_default();
    let fp = cache::fingerprint(cfg, &toml_text);
    let cache_path = Cache::path(root);
    let prior = if use_cache {
        Cache::load(&cache_path).filter(|c| c.fingerprint == fp)
    } else {
        None
    };
    let hashes: Vec<u64> = sources
        .iter()
        .map(|(_, src)| cache::fnv1a(src.as_bytes()))
        .collect();
    if let Some(prior) = &prior {
        let unchanged = prior.workspace_clean
            && prior.files.len() == sources.len()
            && sources
                .iter()
                .zip(&hashes)
                .all(|((rel, _), h)| prior.files.get(rel).map(|e| e.hash) == Some(*h));
        if unchanged {
            return Ok(Vec::new());
        }
    }
    let skip: BTreeSet<String> = match &prior {
        Some(prior) => sources
            .iter()
            .zip(&hashes)
            .filter(|((rel, _), h)| {
                prior.files.get(rel.as_str())
                    == Some(&FileEntry {
                        hash: **h,
                        clean: true,
                    })
            })
            .map(|((rel, _), _)| rel.clone())
            .collect(),
        None => BTreeSet::new(),
    };
    let findings = analyze_sources_skipping(&sources, cfg, &skip);
    if use_cache {
        let dirty: BTreeSet<&str> = findings.iter().map(|f| f.file.as_str()).collect();
        let mut next = Cache {
            fingerprint: fp,
            workspace_clean: findings.is_empty(),
            files: Default::default(),
        };
        for ((rel, _), h) in sources.iter().zip(&hashes) {
            next.files.insert(
                rel.clone(),
                FileEntry {
                    hash: *h,
                    clean: !dirty.contains(rel.as_str()),
                },
            );
        }
        // Best-effort: a cache that fails to write only costs time.
        let _ = next.store(&cache_path);
    }
    Ok(findings)
}

/// Lint an explicit set of files (paths relative to `root` or absolute).
/// The workspace model is built from just these files, so dataflow
/// findings that need cross-file context may be partial; uncached.
pub fn lint_paths(root: &Path, paths: &[PathBuf], cfg: &Config) -> io::Result<Vec<Finding>> {
    let mut sources = Vec::new();
    for p in paths {
        let abs = if p.is_absolute() {
            p.clone()
        } else {
            root.join(p)
        };
        let src = fs::read_to_string(&abs)?;
        sources.push((rel_unix(root, &abs), src));
    }
    Ok(analyze_sources(&sources, cfg))
}

fn sort_findings(findings: &mut [Finding]) {
    findings.sort_by(|a, b| {
        (a.file.as_str(), a.line, a.column, a.rule).cmp(&(
            b.file.as_str(),
            b.line,
            b.column,
            b.rule,
        ))
    });
}

/// rustc-style text rendering: `file:line:col: error[rule]: message`.
pub fn render_text(findings: &[Finding]) -> String {
    let mut out = String::new();
    for f in findings {
        let _ = writeln!(
            out,
            "{}:{}:{}: error[{}]: {}",
            f.file, f.line, f.column, f.rule, f.message
        );
    }
    if findings.is_empty() {
        out.push_str("simlint: no findings\n");
    } else {
        let _ = writeln!(
            out,
            "simlint: {} finding{}",
            findings.len(),
            if findings.len() == 1 { "" } else { "s" }
        );
    }
    out
}

/// JSON rendering: `{"findings": [...], "count": N}`. Hand-rolled — the
/// container has no serde and the shape is flat.
pub fn render_json(findings: &[Finding]) -> String {
    let mut out = String::from("{\n  \"findings\": [");
    for (i, f) in findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "\n    {{\"file\": \"{}\", \"line\": {}, \"column\": {}, \"rule\": \"{}\", \"message\": \"{}\"}}",
            json_escape(&f.file),
            f.line,
            f.column,
            f.rule,
            json_escape(&f.message)
        );
    }
    if !findings.is_empty() {
        out.push_str("\n  ");
    }
    let _ = write!(out, "],\n  \"count\": {}\n}}\n", findings.len());
    out
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}
