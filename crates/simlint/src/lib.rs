//! simlint — a static-analysis pass over the simulator crates.
//!
//! Built on the vendored `compat/syn` + `compat/proc-macro2` shims (the
//! same offline pattern as the proptest/criterion shims), it parses every
//! `.rs` file in the in-scope crates and enforces the determinism,
//! unit-safety, error-discipline, and float-equality conventions that the
//! replay guarantee rests on. See DESIGN.md §11 for the rule catalogue and
//! the allow-comment grammar.
//!
//! Library layout:
//!
//! * [`config`] — rule ids, scope, blessed unit types;
//! * [`allow`] — the `// simlint: allow(rule): why` grammar;
//! * [`scan`] — token-stream flattening and unit-chain walkers;
//! * [`rules`] — the rule implementations ([`lint_source`]);
//! * this module — file discovery, orchestration, and rendering.

pub mod allow;
pub mod config;
pub mod rules;
pub mod scan;

use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

pub use config::Config;
pub use rules::{lint_source, Finding};

/// Walk upward from `start` to the directory whose `Cargo.toml` declares
/// `[workspace]`.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start.to_path_buf());
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(text) = fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(d);
            }
        }
        dir = d.parent().map(Path::to_path_buf);
    }
    None
}

/// Every `.rs` file in the in-scope crates' `src/` trees, as
/// `(workspace-relative unix path, absolute path)` pairs, sorted so runs
/// are deterministic.
pub fn discover_files(root: &Path, cfg: &Config) -> io::Result<Vec<(String, PathBuf)>> {
    let mut out = Vec::new();
    for krate in &cfg.scope_crates {
        let src = root.join("crates").join(krate).join("src");
        if src.is_dir() {
            walk_rs(&src, &mut out)?;
        }
    }
    let mut pairs: Vec<(String, PathBuf)> = out
        .into_iter()
        .map(|abs| (rel_unix(root, &abs), abs))
        .collect();
    pairs.sort();
    Ok(pairs)
}

fn walk_rs(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let path = entry?.path();
        if path.is_dir() {
            walk_rs(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

fn rel_unix(root: &Path, abs: &Path) -> String {
    let rel = abs.strip_prefix(root).unwrap_or(abs);
    rel.to_string_lossy().replace('\\', "/")
}

/// Lint the whole workspace under `root` with `cfg`; findings come back
/// sorted by (file, line, column, rule).
pub fn lint_workspace(root: &Path, cfg: &Config) -> io::Result<Vec<Finding>> {
    let files = discover_files(root, cfg)?;
    let mut findings = Vec::new();
    for (rel, abs) in files {
        let src = fs::read_to_string(&abs)?;
        findings.extend(lint_source(&rel, &src, cfg));
    }
    sort_findings(&mut findings);
    Ok(findings)
}

/// Lint an explicit set of files (paths relative to `root` or absolute).
pub fn lint_paths(root: &Path, paths: &[PathBuf], cfg: &Config) -> io::Result<Vec<Finding>> {
    let mut findings = Vec::new();
    for p in paths {
        let abs = if p.is_absolute() {
            p.clone()
        } else {
            root.join(p)
        };
        let src = fs::read_to_string(&abs)?;
        findings.extend(lint_source(&rel_unix(root, &abs), &src, cfg));
    }
    sort_findings(&mut findings);
    Ok(findings)
}

fn sort_findings(findings: &mut [Finding]) {
    findings.sort_by(|a, b| {
        (a.file.as_str(), a.line, a.column, a.rule).cmp(&(
            b.file.as_str(),
            b.line,
            b.column,
            b.rule,
        ))
    });
}

/// rustc-style text rendering: `file:line:col: error[rule]: message`.
pub fn render_text(findings: &[Finding]) -> String {
    let mut out = String::new();
    for f in findings {
        let _ = writeln!(
            out,
            "{}:{}:{}: error[{}]: {}",
            f.file, f.line, f.column, f.rule, f.message
        );
    }
    if findings.is_empty() {
        out.push_str("simlint: no findings\n");
    } else {
        let _ = writeln!(
            out,
            "simlint: {} finding{}",
            findings.len(),
            if findings.len() == 1 { "" } else { "s" }
        );
    }
    out
}

/// JSON rendering: `{"findings": [...], "count": N}`. Hand-rolled — the
/// container has no serde and the shape is flat.
pub fn render_json(findings: &[Finding]) -> String {
    let mut out = String::from("{\n  \"findings\": [");
    for (i, f) in findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "\n    {{\"file\": \"{}\", \"line\": {}, \"column\": {}, \"rule\": \"{}\", \"message\": \"{}\"}}",
            json_escape(&f.file),
            f.line,
            f.column,
            f.rule,
            json_escape(&f.message)
        );
    }
    if !findings.is_empty() {
        out.push_str("\n  ");
    }
    let _ = write!(out, "],\n  \"count\": {}\n}}\n", findings.len());
    out
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}
