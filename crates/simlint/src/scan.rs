//! Token-stream utilities shared by the rules: a flattened single-level
//! view of a stream with multi-character operators reassembled from
//! adjacent punct tokens (`==`, `->`, `+=`, `::`, ...).

use proc_macro2::{Delimiter, Group, Ident, Literal, Spacing, Span, TokenTree};

/// One element of a flattened stream level. Groups stay opaque — callers
/// recurse into them explicitly.
pub enum Flat<'a> {
    Ident(&'a Ident),
    Lit(&'a Literal),
    /// An operator assembled from one or more adjacent punct characters.
    Op(String, Span),
    Group(&'a Group),
}

impl Flat<'_> {
    pub fn span(&self) -> Span {
        match self {
            Flat::Ident(i) => i.span(),
            Flat::Lit(l) => l.span(),
            Flat::Op(_, s) => *s,
            Flat::Group(g) => g.span(),
        }
    }
}

/// Multi-character operators, longest first so greedy munching picks the
/// right split (`<<=` before `<<` before `<`).
const MULTI_OPS: &[&str] = &[
    "<<=", ">>=", "..=", "...", "::", "->", "=>", "==", "!=", "<=", ">=", "+=", "-=", "*=", "/=",
    "%=", "^=", "&=", "|=", "&&", "||", "<<", ">>", "..",
];

/// Flatten one level of a token stream, assembling operator runs.
pub fn flatten(tokens: &[TokenTree]) -> Vec<Flat<'_>> {
    let mut out = Vec::with_capacity(tokens.len());
    let mut i = 0usize;
    while i < tokens.len() {
        match &tokens[i] {
            TokenTree::Ident(id) => {
                out.push(Flat::Ident(id));
                i += 1;
            }
            TokenTree::Literal(l) => {
                out.push(Flat::Lit(l));
                i += 1;
            }
            TokenTree::Group(g) => {
                out.push(Flat::Group(g));
                i += 1;
            }
            TokenTree::Punct(_) => {
                // Collect the joint run: puncts that are literally adjacent.
                let start = i;
                let mut run = String::new();
                while let Some(TokenTree::Punct(p)) = tokens.get(i) {
                    run.push(p.as_char());
                    i += 1;
                    if p.spacing() == Spacing::Alone {
                        break;
                    }
                }
                // Greedily munch known multi-char ops out of the run.
                let run_tokens = &tokens[start..i];
                let mut pos = 0usize;
                while pos < run.len() {
                    let rest = &run[pos..];
                    let op = MULTI_OPS
                        .iter()
                        .find(|m| rest.starts_with(**m))
                        .map(|m| m.to_string())
                        .unwrap_or_else(|| rest[..1].to_string());
                    let first = run_tokens[pos].span();
                    let last = run_tokens[pos + op.len() - 1].span();
                    out.push(Flat::Op(op.clone(), first.join(last)));
                    pos += op.len();
                }
            }
        }
    }
    out
}

/// True when the literal is float-shaped: has a decimal point or exponent
/// (and is not a hex/octal/binary literal), or an explicit f32/f64 suffix.
pub fn is_float_literal(lit: &Literal) -> bool {
    let r = lit.repr();
    if !r.starts_with(|c: char| c.is_ascii_digit()) {
        return false;
    }
    if r.starts_with("0x") || r.starts_with("0X") || r.starts_with("0o") || r.starts_with("0b") {
        return false;
    }
    r.contains('.') || r.ends_with("f32") || r.ends_with("f64") || {
        // 1e9-style exponent.
        r.bytes().any(|b| b == b'e' || b == b'E')
    }
}

/// True when the literal is a plain integer (digits/underscores with an
/// optional integer suffix) — the `x[0]` shape `literal-index` flags.
pub fn is_int_literal(lit: &Literal) -> bool {
    let r = lit.repr();
    if !r.starts_with(|c: char| c.is_ascii_digit()) {
        return false;
    }
    !is_float_literal(lit)
}

/// Walk backwards from `idx` (exclusive) over a path-ish chain — idents,
/// `.`/`::` separators, and call/index groups — and return the unit suffix
/// of the nearest suffixed identifier, with its name. Stops at the first
/// element that cannot extend a postfix chain, so `a + b_w` seen from `+`'s
/// left side stops at `a` without crossing the operator.
pub fn chain_suffix_back(flats: &[Flat<'_>], idx: usize) -> Option<(String, &'static str)> {
    let mut i = idx;
    while i > 0 {
        i -= 1;
        match &flats[i] {
            Flat::Ident(id) => {
                let name = id.to_string();
                if let Some(suf) = crate::config::unit_suffix(&name) {
                    return Some((name, suf));
                }
                // `self.x_w` / `a.b.c_j`: keep walking only across a
                // separator.
                if i == 0 || !matches!(&flats[i - 1], Flat::Op(op, _) if op == "." || op == "::") {
                    return None;
                }
            }
            // Tuple indices (`p.1`) extend a chain.
            Flat::Lit(_) => {}
            Flat::Op(op, _) if op == "." || op == "::" => {}
            Flat::Group(g)
                if matches!(g.delimiter(), Delimiter::Parenthesis | Delimiter::Bracket) => {}
            _ => return None,
        }
    }
    None
}

/// Forward counterpart of [`chain_suffix_back`]: the unit suffix of the
/// nearest suffixed identifier in the postfix chain starting at `idx`
/// (`self.drawn_j`, `f(x).y_w`, `p.0.rate_hz`).
pub fn chain_suffix_fwd(flats: &[Flat<'_>], idx: usize) -> Option<(String, &'static str)> {
    let mut i = idx;
    loop {
        match flats.get(i)? {
            Flat::Ident(id) => {
                let name = id.to_string();
                if let Some(suf) = crate::config::unit_suffix(&name) {
                    return Some((name, suf));
                }
                i += 1;
            }
            // Tuple index (`.0`) or a leading literal; either way the
            // chain can keep going only through a separator.
            Flat::Lit(_) => i += 1,
            _ => return None,
        }
        // Postfix call/index groups keep the chain alive.
        while matches!(
            flats.get(i),
            Some(Flat::Group(g)) if matches!(g.delimiter(), Delimiter::Parenthesis | Delimiter::Bracket)
        ) {
            i += 1;
        }
        match flats.get(i) {
            Some(Flat::Op(op, _)) if op == "." || op == "::" => i += 1,
            _ => return None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proc_macro2::TokenStream;

    fn flats_of(src: &str) -> (TokenStream, Vec<String>) {
        let ts: TokenStream = src.parse().expect("lex");
        let rendered = flatten(ts.tokens())
            .iter()
            .map(|f| match f {
                Flat::Ident(i) => format!("I:{i}"),
                Flat::Lit(l) => format!("L:{l}"),
                Flat::Op(o, _) => format!("O:{o}"),
                Flat::Group(_) => "G".to_string(),
            })
            .collect();
        (ts, rendered)
    }

    #[test]
    fn ops_reassemble_greedily() {
        let (_ts, f) = flats_of("a == b != c -> d <= e += f :: g .. h <<= i");
        assert!(f.contains(&"O:==".to_string()));
        assert!(f.contains(&"O:!=".to_string()));
        assert!(f.contains(&"O:->".to_string()));
        assert!(f.contains(&"O:<=".to_string()));
        assert!(f.contains(&"O:+=".to_string()));
        assert!(f.contains(&"O:::".to_string()));
        assert!(f.contains(&"O:..".to_string()));
        assert!(f.contains(&"O:<<=".to_string()));
    }

    #[test]
    fn turbofish_splits_into_colons_then_angle() {
        let (_ts, f) = flats_of("x::<u32>");
        assert_eq!(f, vec!["I:x", "O:::", "O:<", "I:u32", "O:>"]);
    }

    #[test]
    fn float_literal_shapes() {
        let ts: TokenStream = "1.0 1e9 0.6e9 1.0f64 2f32 7 0xFF 1_000u64".parse().unwrap();
        let lits: Vec<bool> = ts
            .tokens()
            .iter()
            .map(|t| match t {
                proc_macro2::TokenTree::Literal(l) => is_float_literal(l),
                _ => panic!(),
            })
            .collect();
        assert_eq!(
            lits,
            vec![true, true, true, true, true, false, false, false]
        );
    }

    #[test]
    fn chain_walks_through_self_fields() {
        let ts: TokenStream = "self . initial_mwh - self . drawn_j".parse().unwrap();
        let flats = flatten(ts.tokens());
        let op_idx = flats
            .iter()
            .position(|f| matches!(f, Flat::Op(o, _) if o == "-"))
            .unwrap();
        assert_eq!(
            chain_suffix_back(&flats, op_idx).map(|(_, s)| s),
            Some("_mwh")
        );
        assert_eq!(
            chain_suffix_fwd(&flats, op_idx + 1).map(|(_, s)| s),
            Some("_j")
        );
    }

    #[test]
    fn chain_stops_at_operators() {
        let ts: TokenStream = "a + b - c_w".parse().unwrap();
        let flats = flatten(ts.tokens());
        let minus = flats
            .iter()
            .position(|f| matches!(f, Flat::Op(o, _) if o == "-"))
            .unwrap();
        // Left of `-` is plain `b`; the walk must not cross `+` to reach
        // anything else.
        assert_eq!(chain_suffix_back(&flats, minus), None);
    }

    #[test]
    fn method_calls_preserve_the_receiver_suffix() {
        let ts: TokenStream = "a_w . abs ( ) - x_j".parse().unwrap();
        let flats = flatten(ts.tokens());
        let minus = flats
            .iter()
            .position(|f| matches!(f, Flat::Op(o, _) if o == "-"))
            .unwrap();
        assert_eq!(chain_suffix_back(&flats, minus).map(|(_, s)| s), Some("_w"));
    }
}
