//! The rule implementations: one file in, findings out.
//!
//! Four families (DESIGN.md §11):
//!
//! * **determinism** — `nondet-collections`, `wall-clock`, `ambient-rng`,
//!   `env-read`;
//! * **unit-safety** — `unit-suffix-type`, `unit-mix`;
//! * **error discipline** — `panic-path`, `literal-index`,
//!   `must-use-measurement`;
//! * **float equality** — `float-eq`.
//!
//! Plus allow-comment hygiene: `bad-allow`, `unused-allow`, and `parse`
//! for files the parser cannot read.
//!
//! Test code (a `#[cfg(test)]` module, a `#[test]` fn, a `*_tests.rs`
//! file, or anything under `tests/`/`benches/`/`examples/`) keeps the
//! determinism rules — replay bugs in tests are still bugs — but is exempt
//! from the unit-safety, error-discipline, and float-equality families:
//! tests unwrap freely and assert exact floats *on purpose* (bit-identical
//! replay is this repo's headline invariant).

use proc_macro2::{Delimiter, Group, Span, TokenStream, TokenTree};
use syn::{split_top_level_commas, Attribute, Field, Item, ItemFn, Signature, Visibility};

use crate::allow::AllowTable;
use crate::config::{blessed_types, unit_suffix, Config};
use crate::scan::{
    chain_suffix_back, chain_suffix_fwd, flatten, is_float_literal, is_int_literal, Flat,
};

/// One diagnostic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Workspace-relative path, unix separators.
    pub file: String,
    /// 1-based line.
    pub line: usize,
    /// 1-based column (rustc convention; spans store 0-based).
    pub column: usize,
    /// Rule id (`nondet-collections`, ...).
    pub rule: &'static str,
    pub message: String,
}

/// Lint one file's source text (per-file rules + allow hygiene).
pub fn lint_source(rel_path: &str, src: &str, cfg: &Config) -> Vec<Finding> {
    let allows = AllowTable::parse(src);
    let mut findings = lint_source_with(rel_path, src, cfg, &allows);
    findings.extend(allow_hygiene(rel_path, &allows, cfg));
    findings
}

/// The per-file rules against a caller-owned allow table. The workspace
/// passes share the same table, so their suppressions count as "used" and
/// hygiene (run separately via [`allow_hygiene`]) sees the whole picture.
pub fn lint_source_with(
    rel_path: &str,
    src: &str,
    cfg: &Config,
    allows: &AllowTable,
) -> Vec<Finding> {
    let mut ctx = Ctx {
        cfg,
        rel_path,
        crate_name: crate_of(rel_path),
        allows,
        findings: Vec::new(),
        in_test_file: path_is_test(rel_path),
    };
    match syn::parse_file(src) {
        Ok(file) => {
            ctx.walk_items(&file.items, ctx.in_test_file);
        }
        Err(e) => {
            ctx.raw_push(Finding {
                file: rel_path.to_string(),
                line: e.pos.line.max(1),
                column: e.pos.column + 1,
                rule: "parse",
                message: format!("cannot parse file: {}", e.message),
            });
        }
    }
    ctx.findings
}

/// `bad-allow` / `unused-allow` hygiene. Run after every pass that can
/// mark entries used has finished.
pub fn allow_hygiene(rel_path: &str, allows: &AllowTable, cfg: &Config) -> Vec<Finding> {
    let mut out = Vec::new();
    for e in allows.entries() {
        if !e.justified {
            if cfg.rule_enabled("bad-allow") {
                out.push(Finding {
                    file: rel_path.to_string(),
                    line: e.comment_line,
                    column: 1,
                    rule: "bad-allow",
                    message: format!(
                        "allow({}) has no justification; write `// simlint: allow({}): <why>`",
                        e.rules.join(", "),
                        e.rules.join(", "),
                    ),
                });
            }
        } else if !e.used.get() && cfg.rule_enabled("unused-allow") {
            out.push(Finding {
                file: rel_path.to_string(),
                line: e.comment_line,
                column: 1,
                rule: "unused-allow",
                message: format!(
                    "allow({}) suppresses nothing; remove the stale escape",
                    e.rules.join(", ")
                ),
            });
        }
    }
    out
}

/// The crate directory name a `crates/<name>/...` path belongs to.
fn crate_of(rel_path: &str) -> Option<String> {
    let mut parts = rel_path.split('/');
    if parts.next()? != "crates" {
        return None;
    }
    parts.next().map(|s| s.to_string())
}

pub(crate) fn path_is_test(rel_path: &str) -> bool {
    rel_path.contains("/tests/")
        || rel_path.contains("/benches/")
        || rel_path.contains("/examples/")
        || rel_path.ends_with("_tests.rs")
        || rel_path.rsplit('/').next().is_some_and(|f| f == "tests.rs")
}

fn attrs_mark_test(attrs: &[Attribute]) -> bool {
    attrs.iter().any(|a| a.is_cfg_test() || a.is_test_marker())
}

struct Ctx<'c> {
    cfg: &'c Config,
    rel_path: &'c str,
    crate_name: Option<String>,
    allows: &'c AllowTable,
    findings: Vec<Finding>,
    in_test_file: bool,
}

impl Ctx<'_> {
    fn push(&mut self, rule: &'static str, span: Span, message: String) {
        if !self.cfg.rule_enabled(rule) {
            return;
        }
        let line = span.start().line.max(1);
        if self.allows.suppresses(line, rule) {
            return;
        }
        self.raw_push(Finding {
            file: self.rel_path.to_string(),
            line,
            column: span.start().column + 1,
            rule,
            message,
        });
    }

    fn raw_push(&mut self, finding: Finding) {
        self.findings.push(finding);
    }

    fn walk_items(&mut self, items: &[Item], in_test: bool) {
        for item in items {
            let item_test = in_test || attrs_mark_test(item.attrs());
            match item {
                Item::Fn(f) => self.visit_fn(f, item_test),
                Item::Struct(s) => {
                    self.check_must_use_type(
                        &s.ident.to_string(),
                        &s.attrs,
                        s.ident.span(),
                        item_test,
                    );
                    for field in &s.fields {
                        self.check_field(field, item_test);
                    }
                }
                Item::Enum(e) => {
                    self.check_must_use_type(
                        &e.ident.to_string(),
                        &e.attrs,
                        e.ident.span(),
                        item_test,
                    );
                    for v in &e.variants {
                        for field in &v.fields {
                            self.check_field(field, item_test);
                        }
                    }
                }
                Item::Mod(m) => {
                    if let Some(content) = &m.content {
                        self.walk_items(content, item_test);
                    }
                }
                Item::Impl(im) => {
                    self.scan_stream(im.header.tokens(), item_test);
                    self.walk_items(&im.items, item_test);
                }
                Item::Trait(tr) => {
                    self.scan_stream(tr.header.tokens(), item_test);
                    self.walk_items(&tr.items, item_test);
                }
                Item::Verbatim(v) => {
                    self.scan_stream(v.tokens.tokens(), item_test);
                }
            }
        }
    }

    fn visit_fn(&mut self, f: &ItemFn, in_test: bool) {
        self.check_fn_params(&f.sig, in_test);
        self.check_fn_must_use(f, in_test);
        // Return-type and signature streams still carry determinism
        // concerns (e.g. `-> HashMap<...>`).
        self.scan_stream(f.sig.inputs.tokens(), in_test);
        self.scan_stream(f.sig.output.tokens(), in_test);
        if let Some(body) = &f.body {
            self.scan_stream(body.stream().tokens(), in_test);
        }
    }

    // -- unit-safety ------------------------------------------------------

    fn check_field(&mut self, field: &Field, in_test: bool) {
        if in_test {
            return;
        }
        let Some(ident) = &field.ident else {
            return;
        };
        let name = ident.to_string();
        let Some(suffix) = unit_suffix(&name) else {
            // Fields without a unit suffix still get their types scanned
            // for nondeterministic collections.
            self.scan_stream(field.ty.tokens(), in_test);
            return;
        };
        self.check_unit_type(&name, suffix, &field.ty, ident.span());
        self.scan_stream(field.ty.tokens(), in_test);
    }

    fn check_fn_params(&mut self, sig: &Signature, in_test: bool) {
        if in_test {
            return;
        }
        for part in split_top_level_commas(&sig.inputs) {
            let mut i = 0usize;
            // Skip parameter attributes.
            while matches!(&part[i..], [TokenTree::Punct(p), TokenTree::Group(_), ..] if p.as_char() == '#')
            {
                i += 2;
            }
            if matches!(part.get(i), Some(TokenTree::Ident(id)) if *id == "mut") {
                i += 1;
            }
            let Some(TokenTree::Ident(pname)) = part.get(i) else {
                continue; // `self`, `&self`, pattern bindings
            };
            let name = pname.to_string();
            if name == "self" {
                continue;
            }
            if !matches!(part.get(i + 1), Some(TokenTree::Punct(p)) if p.as_char() == ':') {
                continue;
            }
            let ty = TokenStream::from(part[i + 2..].to_vec());
            if let Some(suffix) = unit_suffix(&name) {
                self.check_unit_type(&name, suffix, &ty, pname.span());
            }
        }
    }

    /// A suffixed field/param must resolve to the blessed numeric type:
    /// the innermost primitive numeric of the declared type (`f64`,
    /// `Vec<f64>`, `Option<u64>`, `[f64; N]` all resolve).
    fn check_unit_type(&mut self, name: &str, suffix: &str, ty: &TokenStream, span: Span) {
        let blessed = blessed_types(suffix);
        let mut numeric: Option<String> = None;
        collect_numeric_idents(ty, &mut numeric);
        match numeric {
            Some(n) if blessed.contains(&n.as_str()) => {}
            Some(n) => self.push(
                "unit-suffix-type",
                span,
                format!(
                    "`{name}` is suffixed `{suffix}` but typed `{n}`; blessed type(s) for `{suffix}`: {}",
                    blessed.join(", ")
                ),
            ),
            None => self.push(
                "unit-suffix-type",
                span,
                format!(
                    "`{name}` is suffixed `{suffix}` but its type has no blessed numeric core ({}); \
                     rename it or use the blessed type",
                    blessed.join(", ")
                ),
            ),
        }
    }

    // -- must-use ---------------------------------------------------------

    fn check_must_use_type(&mut self, name: &str, attrs: &[Attribute], span: Span, in_test: bool) {
        if in_test || !self.cfg.must_use_types.contains(&name) {
            return;
        }
        if !attrs.iter().any(|a| a.is_must_use()) {
            self.push(
                "must-use-measurement",
                span,
                format!("`{name}` is a measurement result; mark the type `#[must_use]`"),
            );
        }
    }

    fn check_fn_must_use(&mut self, f: &ItemFn, in_test: bool) {
        if in_test || f.vis != Visibility::Public {
            return;
        }
        let name = f.sig.ident.to_string();
        let has = f.attrs.iter().any(|a| a.is_must_use());
        if has {
            return;
        }
        if self
            .cfg
            .must_use_fn_prefixes
            .iter()
            .any(|p| name.starts_with(p))
        {
            self.push(
                "must-use-measurement",
                f.sig.ident.span(),
                format!("`{name}` produces measurement results; mark it `#[must_use]`"),
            );
            return;
        }
        let in_measurement_crate = self
            .crate_name
            .as_deref()
            .is_some_and(|c| self.cfg.measurement_crates.contains(&c));
        if in_measurement_crate {
            let returns_result = f
                .sig
                .output
                .tokens()
                .iter()
                .any(|t| matches!(t, TokenTree::Ident(i) if *i == "Result"));
            if returns_result {
                self.push(
                    "must-use-measurement",
                    f.sig.ident.span(),
                    format!(
                        "measurement API `{name}` returns a Result; mark it `#[must_use]` so a \
                         dropped reading (or error) cannot pass silently"
                    ),
                );
            }
        }
    }

    // -- expression-level scan -------------------------------------------

    /// Pattern rules over one stream level, recursing into groups.
    fn scan_stream(&mut self, tokens: &[TokenTree], in_test: bool) {
        let flats = flatten(tokens);
        for (i, flat) in flats.iter().enumerate() {
            match flat {
                Flat::Ident(id) => {
                    let name = id.to_string();
                    self.check_forbidden_ident(&name, &flats, i, in_test);
                }
                Flat::Op(op, span) => {
                    self.check_ops(op, *span, &flats, i, in_test);
                }
                Flat::Group(g) => {
                    self.check_literal_index(g, &flats, i, in_test);
                }
                Flat::Lit(_) => {}
            }
        }
        for t in tokens {
            if let TokenTree::Group(g) = t {
                self.scan_stream(g.stream().tokens(), in_test);
            }
        }
    }

    fn check_forbidden_ident(&mut self, name: &str, flats: &[Flat<'_>], i: usize, in_test: bool) {
        let span = flats[i].span();
        match name {
            // Determinism rules stay on in test code.
            "HashMap" | "HashSet" => self.push(
                "nondet-collections",
                span,
                format!(
                    "`{name}` iterates in nondeterministic order; use `FxHashMap`/`FxHashSet` \
                     (sim-core) for lookup tables or `BTreeMap`/`BTreeSet` where iteration \
                     order reaches output"
                ),
            ),
            "Instant" | "SystemTime" if next_is_path_call(flats, i, "now") => self.push(
                "wall-clock",
                span,
                format!(
                    "`{name}::now()` reads the host clock; simulation state must come \
                     from `SimTime` (host-timing telemetry belongs in `obs::WallTimer`)"
                ),
            ),
            "thread_rng" | "from_entropy" => self.push(
                "ambient-rng",
                span,
                format!("`{name}` is seeded from the environment; use `sim_core::DetRng` with an explicit seed"),
            ),
            "rand" if next_is_path_call(flats, i, "random") => self.push(
                "ambient-rng",
                span,
                "`rand::random` is seeded from the environment; use `sim_core::DetRng` \
                 with an explicit seed"
                    .to_string(),
            ),
            "env" => {
                if Config::path_matches(self.rel_path, &self.cfg.env_allowed_files) {
                    return;
                }
                if let Some(f) = next_path_segment(flats, i) {
                    if matches!(
                        f.as_str(),
                        "var" | "var_os" | "vars" | "vars_os" | "set_var" | "remove_var"
                    ) {
                        self.push(
                            "env-read",
                            span,
                            format!(
                                "`env::{f}` outside the sanctioned `thread_count_with` funnel \
                                 (crates/core/src/runner.rs) makes runs depend on ambient state"
                            ),
                        );
                    }
                }
            }
            "panic" | "unreachable" | "todo" | "unimplemented" if !in_test => {
                if matches!(flats.get(i + 1), Some(Flat::Op(op, _)) if op == "!") {
                    self.push(
                        "panic-path",
                        span,
                        format!(
                            "`{name}!` in engine code aborts a whole batch; return a checked \
                             error (see MeasurementError) or justify with an allow"
                        ),
                    );
                }
            }
            "unwrap" | "expect" if !in_test => {
                let after_dot = i > 0 && matches!(&flats[i - 1], Flat::Op(op, _) if op == ".");
                let called = matches!(
                    flats.get(i + 1),
                    Some(Flat::Group(g)) if g.delimiter() == Delimiter::Parenthesis
                );
                if after_dot && called {
                    self.push(
                        "panic-path",
                        span,
                        format!(
                            "`.{name}()` in engine code panics on the unhappy path; propagate \
                             a checked error or justify with an allow"
                        ),
                    );
                }
            }
            _ => {}
        }
    }

    fn check_ops(&mut self, op: &str, span: Span, flats: &[Flat<'_>], i: usize, in_test: bool) {
        if in_test {
            return;
        }
        let additive_or_cmp = matches!(op, "+" | "-" | "+=" | "-=" | "<" | ">" | "<=" | ">=");
        let eq = matches!(op, "==" | "!=");
        if !additive_or_cmp && !eq {
            return;
        }
        // unit-mix: both operands carry (different) unit suffixes.
        let left = chain_suffix_back(flats, i);
        let right = chain_suffix_fwd(flats, i + 1);
        if let (Some((ln, ls)), Some((rn, rs))) = (&left, &right) {
            if ls != rs {
                self.push(
                    "unit-mix",
                    span,
                    format!(
                        "`{ln}` ({ls}) {op} `{rn}` ({rs}) mixes units in one expression; \
                         convert into a named intermediate first"
                    ),
                );
                return;
            }
        }
        // float-eq: exact equality where an operand is visibly a float.
        if eq && !Config::path_matches(self.rel_path, &self.cfg.float_eq_allowed_files) {
            let float_neighbor = |f: Option<&Flat<'_>>| match f {
                Some(Flat::Lit(l)) => is_float_literal(l),
                Some(Flat::Ident(id)) => {
                    let n = id.to_string();
                    unit_suffix(&n).is_some()
                        || matches!(n.as_str(), "NAN" | "INFINITY" | "NEG_INFINITY" | "EPSILON")
                }
                _ => false,
            };
            if float_neighbor(i.checked_sub(1).and_then(|j| flats.get(j)))
                || float_neighbor(flats.get(i + 1))
            {
                self.push(
                    "float-eq",
                    span,
                    format!(
                        "`{op}` on floats compares bit patterns; use `sim_core::float::approx_eq`, \
                         or `sim_core::float::exact_eq` when bitwise equality is the point"
                    ),
                );
            }
        }
    }

    fn check_literal_index(&mut self, g: &Group, flats: &[Flat<'_>], i: usize, in_test: bool) {
        if in_test || g.delimiter() != Delimiter::Bracket {
            return;
        }
        // Exactly one integer literal inside the brackets.
        let inner = g.stream().tokens();
        let [TokenTree::Literal(lit)] = inner else {
            return;
        };
        if !is_int_literal(lit) {
            return;
        }
        // Must be an index expression: preceded by an ident or a
        // call/index group (not an array literal or attribute).
        let indexes = match i.checked_sub(1).map(|j| &flats[j]) {
            Some(Flat::Ident(_)) => true,
            Some(Flat::Group(pg)) => {
                matches!(pg.delimiter(), Delimiter::Parenthesis | Delimiter::Bracket)
            }
            _ => false,
        };
        if indexes {
            self.push(
                "literal-index",
                g.span(),
                format!(
                    "indexing with `[{}]` panics when the slice is shorter; use `.get({})` / \
                     `.first()` or justify with an allow",
                    lit, lit
                ),
            );
        }
    }
}

/// `collect_numeric_idents` resolves a declared type to its primitive
/// numeric core, recursing into generic arguments; the *last* primitive
/// seen wins (`Vec<f64>` → `f64`).
fn collect_numeric_idents(ty: &TokenStream, out: &mut Option<String>) {
    for t in ty.tokens() {
        match t {
            TokenTree::Ident(id) => {
                let n = id.to_string();
                if matches!(
                    n.as_str(),
                    "f32"
                        | "f64"
                        | "u8"
                        | "u16"
                        | "u32"
                        | "u64"
                        | "u128"
                        | "usize"
                        | "i8"
                        | "i16"
                        | "i32"
                        | "i64"
                        | "i128"
                        | "isize"
                ) {
                    *out = Some(n);
                }
            }
            TokenTree::Group(g) => collect_numeric_idents(g.stream(), out),
            _ => {}
        }
    }
}

/// Does `flats[i]` begin a `X::seg` path whose next segment is `seg`?
fn next_is_path_call(flats: &[Flat<'_>], i: usize, seg: &str) -> bool {
    matches!(
        (flats.get(i + 1), flats.get(i + 2)),
        (Some(Flat::Op(op, _)), Some(Flat::Ident(id))) if op == "::" && *id == seg
    )
}

/// The path segment after `flats[i]` (`env::var` → `var`), if any.
fn next_path_segment(flats: &[Flat<'_>], i: usize) -> Option<String> {
    match (flats.get(i + 1), flats.get(i + 2)) {
        (Some(Flat::Op(op, _)), Some(Flat::Ident(id))) if op == "::" => Some(id.to_string()),
        _ => None,
    }
}
