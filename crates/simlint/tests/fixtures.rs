//! Fixture self-tests: each rule family has a bad fixture that must fire
//! the expected rules and a good fixture that must be silent. Fixtures
//! live under `tests/fixtures/` and are parsed, never compiled.

use std::collections::BTreeSet;

use simlint::{analyze_sources, lint_source, Config, Finding};

/// Lint a fixture as if it lived at `rel_path` inside the workspace.
fn lint_fixture(name: &str, rel_path: &str) -> Vec<Finding> {
    let path = format!("{}/tests/fixtures/{name}", env!("CARGO_MANIFEST_DIR"));
    let src = std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {path}: {e}"));
    lint_source(rel_path, &src, &Config::workspace_default())
}

/// Run the full analysis (per-file + dataflow families) on one fixture.
fn analyze_fixture(name: &str, rel_path: &str) -> Vec<Finding> {
    let path = format!("{}/tests/fixtures/{name}", env!("CARGO_MANIFEST_DIR"));
    let src = std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {path}: {e}"));
    analyze_sources(&[(rel_path.to_string(), src)], &Config::workspace_default())
}

fn rule_set(findings: &[Finding]) -> BTreeSet<&'static str> {
    findings.iter().map(|f| f.rule).collect()
}

fn count_rule(findings: &[Finding], rule: &str) -> usize {
    findings.iter().filter(|f| f.rule == rule).count()
}

#[test]
fn determinism_bad_fires_all_four_rules() {
    let f = lint_fixture("determinism_bad.rs", "crates/sim-core/src/fixture.rs");
    let rules = rule_set(&f);
    assert!(rules.contains("nondet-collections"), "{f:?}");
    assert!(rules.contains("wall-clock"), "{f:?}");
    assert!(rules.contains("ambient-rng"), "{f:?}");
    assert!(rules.contains("env-read"), "{f:?}");
    // Determinism rules stay active inside #[cfg(test)] modules.
    assert!(
        f.iter()
            .any(|x| x.rule == "nondet-collections" && x.line > 30),
        "test-mod HashMap must still be flagged: {f:?}"
    );
}

#[test]
fn determinism_good_is_silent() {
    let f = lint_fixture("determinism_good.rs", "crates/sim-core/src/fixture.rs");
    assert!(f.is_empty(), "{f:?}");
}

#[test]
fn env_read_is_sanctioned_only_in_the_runner_funnel() {
    let f = lint_fixture("determinism_bad.rs", "crates/core/src/runner.rs");
    assert_eq!(count_rule(&f, "env-read"), 0, "{f:?}");
    let f = lint_fixture("determinism_bad.rs", "crates/core/src/other.rs");
    assert!(count_rule(&f, "env-read") > 0, "{f:?}");
}

#[test]
fn units_bad_fires_type_and_mix_rules() {
    let f = lint_fixture("units_bad.rs", "crates/power-model/src/fixture.rs");
    assert_eq!(count_rule(&f, "unit-suffix-type"), 3, "{f:?}");
    assert_eq!(count_rule(&f, "unit-mix"), 3, "{f:?}");
}

#[test]
fn units_good_is_silent() {
    let f = lint_fixture("units_good.rs", "crates/power-model/src/fixture.rs");
    assert!(f.is_empty(), "{f:?}");
}

#[test]
fn errors_bad_fires_panic_index_and_must_use_rules() {
    let f = lint_fixture("errors_bad.rs", "crates/power-model/src/fixture.rs");
    // unwrap, expect, panic!, unreachable!
    assert_eq!(count_rule(&f, "panic-path"), 4, "{f:?}");
    assert_eq!(count_rule(&f, "literal-index"), 1, "{f:?}");
    // RunResult type, run_batch_ prefix, Result in a measurement crate.
    assert_eq!(count_rule(&f, "must-use-measurement"), 3, "{f:?}");
}

#[test]
fn errors_good_is_silent() {
    let f = lint_fixture("errors_good.rs", "crates/power-model/src/fixture.rs");
    assert!(f.is_empty(), "{f:?}");
}

#[test]
fn result_rule_only_applies_in_measurement_crates() {
    // Same bad fixture linted under a non-measurement crate: the bare
    // Result-returning fn is no longer flagged, the rest still is.
    let f = lint_fixture("errors_bad.rs", "crates/dvfs/src/fixture.rs");
    assert_eq!(count_rule(&f, "must-use-measurement"), 2, "{f:?}");
}

#[test]
fn float_bad_fires_on_each_comparison() {
    let f = lint_fixture("float_bad.rs", "crates/sim-core/src/fixture.rs");
    assert_eq!(count_rule(&f, "float-eq"), 4, "{f:?}");
}

#[test]
fn float_good_is_silent() {
    let f = lint_fixture("float_good.rs", "crates/sim-core/src/fixture.rs");
    assert!(f.is_empty(), "{f:?}");
}

#[test]
fn float_rule_is_exempt_in_the_helper_module_itself() {
    let f = lint_fixture("float_bad.rs", "crates/sim-core/src/float.rs");
    assert_eq!(count_rule(&f, "float-eq"), 0, "{f:?}");
}

#[test]
fn allow_bad_reports_hygiene_and_keeps_the_finding() {
    let f = lint_fixture("allow_bad.rs", "crates/sim-core/src/fixture.rs");
    // The unjustified allow does not suppress...
    assert_eq!(count_rule(&f, "literal-index"), 1, "{f:?}");
    // ...and is itself a finding; the stale justified allow is too.
    assert_eq!(count_rule(&f, "bad-allow"), 1, "{f:?}");
    assert_eq!(count_rule(&f, "unused-allow"), 1, "{f:?}");
}

#[test]
fn allow_good_suppresses_everything() {
    let f = lint_fixture("allow_good.rs", "crates/sim-core/src/fixture.rs");
    assert!(f.is_empty(), "{f:?}");
}

#[test]
fn skip_rule_disables_a_rule() {
    let path = format!("{}/tests/fixtures/float_bad.rs", env!("CARGO_MANIFEST_DIR"));
    let src = std::fs::read_to_string(path).unwrap();
    let mut cfg = Config::workspace_default();
    cfg.skip_rules.insert("float-eq".to_string());
    let f = lint_source("crates/sim-core/src/fixture.rs", &src, &cfg);
    assert!(f.is_empty(), "{f:?}");
}

#[test]
fn purity_bad_reports_full_call_chains() {
    let f = analyze_fixture("purity_bad.rs", "crates/dvfs/src/fixture.rs");
    assert_eq!(count_rule(&f, "shard-purity"), 3, "{f:?}");
    // The mutating method call is flagged at its call site in `helper`,
    // with the chain from the root.
    assert!(
        f.iter().any(|x| x.rule == "shard-purity"
            && x.message.contains("`plan_compute` → `helper`")
            && x.message.contains("Node::bump")
            && x.message.contains("&mut self")),
        "{f:?}"
    );
    // The I/O sink two hops down carries the three-link chain.
    assert!(
        f.iter().any(|x| x.rule == "shard-purity"
            && x.message.contains("`plan_compute` → `helper` → `log_plan`")
            && x.message.contains("println")),
        "{f:?}"
    );
    // The static assignment is a sink too.
    assert!(
        f.iter()
            .any(|x| x.rule == "shard-purity" && x.message.contains("COUNTER")),
        "{f:?}"
    );
}

#[test]
fn purity_good_is_silent() {
    let f = analyze_fixture("purity_good.rs", "crates/dvfs/src/fixture.rs");
    assert!(f.is_empty(), "{f:?}");
}

#[test]
fn unitflow_bad_fires_across_statements_and_calls() {
    let f = analyze_fixture("unitflow_bad.rs", "crates/powerpack/src/fixture.rs");
    assert_eq!(count_rule(&f, "unit-flow"), 4, "{f:?}");
    // The shadowed re-binding (v1 escape) is checked like the first.
    assert!(
        f.iter()
            .any(|x| x.rule == "unit-flow" && x.message.contains("annotated `u32`")),
        "{f:?}"
    );
    // Cross-function: the call argument against the parameter suffix.
    assert!(
        f.iter()
            .any(|x| x.rule == "unit-flow" && x.message.contains("parameter `dt_s`")),
        "{f:?}"
    );
    // The return-unit check on the function's own suffix.
    assert!(
        f.iter()
            .any(|x| x.rule == "unit-flow" && x.message.contains("`reading_w` is suffixed")),
        "{f:?}"
    );
}

#[test]
fn unitflow_good_is_silent() {
    let f = analyze_fixture("unitflow_good.rs", "crates/powerpack/src/fixture.rs");
    assert!(f.is_empty(), "{f:?}");
}

#[test]
fn controller_bad_fires_gate_and_emission_rules() {
    let f = analyze_fixture("controller_bad.rs", "crates/dvfs/src/fixture.rs");
    assert_eq!(count_rule(&f, "controller-discipline"), 2, "{f:?}");
    assert!(
        f.iter().any(|x| x.message.contains("wants_runtime_events")),
        "{f:?}"
    );
    assert!(
        f.iter().any(|x| x.message.contains("out-parameter")),
        "{f:?}"
    );
}

#[test]
fn controller_good_is_silent_and_its_allow_counts_as_used() {
    // The gated controller has one justified allow on an observing hook;
    // the workspace pass must both suppress the finding and mark the
    // allow used so hygiene stays quiet.
    let f = analyze_fixture("controller_good.rs", "crates/dvfs/src/fixture.rs");
    assert!(f.is_empty(), "{f:?}");
}

#[test]
fn findings_carry_rustc_style_positions() {
    let f = lint_fixture("float_bad.rs", "crates/sim-core/src/fixture.rs");
    let first = &f[0];
    assert_eq!(first.file, "crates/sim-core/src/fixture.rs");
    // `factor == 1.0` on line 4; column is 1-based.
    assert_eq!(first.line, 4);
    assert!(first.column > 1);
}
