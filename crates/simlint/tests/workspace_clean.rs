//! Golden test: the workspace itself must be simlint-clean. Any new
//! violation fails CI here even before the `--deny` run in the workflow.

use simlint::{lint_workspace, render_json, render_text, Config};
use std::path::Path;

fn workspace_root() -> &'static Path {
    // crates/simlint -> crates -> workspace root
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("simlint manifest dir has a workspace root two levels up")
}

#[test]
fn workspace_has_zero_findings() {
    let findings = lint_workspace(workspace_root(), &Config::workspace_default())
        .expect("workspace lint must not hit IO/parse errors");
    assert!(
        findings.is_empty(),
        "workspace is not simlint-clean:\n{}",
        render_text(&findings)
    );
}

#[test]
fn json_report_is_empty_and_well_formed() {
    let findings = lint_workspace(workspace_root(), &Config::workspace_default())
        .expect("workspace lint must not hit IO/parse errors");
    let json = render_json(&findings);
    assert!(json.contains("\"count\": 0"), "{json}");
    assert!(
        json.starts_with('{') && json.trim_end().ends_with('}'),
        "{json}"
    );
}

#[test]
fn cli_deny_mode_exits_clean_on_the_workspace() {
    let out = std::process::Command::new(env!("CARGO_BIN_EXE_simlint"))
        .args(["--json", "--deny", "--root"])
        .arg(workspace_root())
        .output()
        .expect("spawn simlint binary");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        out.status.success(),
        "simlint --deny failed:\n{stdout}\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(stdout.contains("\"count\": 0"), "{stdout}");
}
