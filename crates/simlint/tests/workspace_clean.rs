//! Golden test: the workspace itself must be simlint-clean — under the
//! full configuration (`simlint.toml` dataflow roots included). Any new
//! violation fails CI here even before the `--deny` run in the workflow.

use simlint::{lint_workspace, lint_workspace_cached, render_json, render_text, Config};
use std::path::Path;

fn workspace_root() -> &'static Path {
    // crates/simlint -> crates -> workspace root
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("simlint manifest dir has a workspace root two levels up")
}

/// The configuration the CLI runs with: defaults plus `simlint.toml`
/// (purity roots, controller traits).
fn real_config() -> Config {
    Config::load(workspace_root())
}

#[test]
fn workspace_has_zero_findings() {
    let findings = lint_workspace(workspace_root(), &real_config())
        .expect("workspace lint must not hit IO/parse errors");
    assert!(
        findings.is_empty(),
        "workspace is not simlint-clean:\n{}",
        render_text(&findings)
    );
}

#[test]
fn json_report_is_empty_and_well_formed() {
    let findings = lint_workspace(workspace_root(), &real_config())
        .expect("workspace lint must not hit IO/parse errors");
    let json = render_json(&findings);
    assert!(json.contains("\"count\": 0"), "{json}");
    assert!(
        json.starts_with('{') && json.trim_end().ends_with('}'),
        "{json}"
    );
}

#[test]
fn cached_passes_agree_with_the_uncached_pass() {
    // First cached pass fills target/simlint-cache.json; the second hits
    // the clean-workspace fast path. Both must report exactly what the
    // uncached pass reports (zero findings, per the golden test above).
    let root = workspace_root();
    let cfg = real_config();
    let cold = lint_workspace_cached(root, &cfg, true).expect("cold cached pass");
    let warm = lint_workspace_cached(root, &cfg, true).expect("warm cached pass");
    assert!(cold.is_empty(), "{}", render_text(&cold));
    assert_eq!(cold, warm);
    assert!(
        root.join("target/simlint-cache.json").is_file(),
        "cached pass must persist the cache file"
    );
}

#[test]
fn cli_deny_mode_exits_clean_on_the_workspace() {
    let out = std::process::Command::new(env!("CARGO_BIN_EXE_simlint"))
        .args(["--json", "--deny", "--root"])
        .arg(workspace_root())
        .output()
        .expect("spawn simlint binary");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        out.status.success(),
        "simlint --deny failed:\n{stdout}\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(stdout.contains("\"count\": 0"), "{stdout}");
}
