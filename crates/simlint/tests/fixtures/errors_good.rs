//! Fixture: disciplined error handling produces zero findings.

#[must_use]
pub struct RunResult {
    pub joules: f64,
}

fn careful(v: &[u32], x: Option<u32>) -> Option<u32> {
    let first = v.first()?;
    let y = x?;
    Some(first + y)
}

#[must_use]
pub fn run_batch_fixture() -> u32 {
    0
}

#[must_use]
pub fn read_sensor() -> Result<f64, String> {
    Ok(0.0)
}

#[cfg(test)]
mod tests {
    // Tests unwrap freely: panic-path and literal-index are exempt here.
    #[test]
    fn unwraps_fine() {
        let v = [1u32, 2];
        assert_eq!(v[0], 1);
        let x: Option<u32> = Some(2);
        assert_eq!(x.unwrap(), 2);
    }
}
