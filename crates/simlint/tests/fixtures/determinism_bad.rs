//! Fixture: every determinism rule should fire. Never compiled — only
//! parsed by the fixture self-tests.

use std::collections::HashMap;
use std::collections::HashSet;
use std::time::{Instant, SystemTime};

fn wall_clock() -> f64 {
    let _t = Instant::now();
    let _s = SystemTime::now();
    0.0
}

fn lookup() -> HashMap<u32, u32> {
    let mut m: HashMap<u32, u32> = HashMap::new();
    m.insert(1, 2);
    let _s: HashSet<u32> = HashSet::new();
    m
}

fn ambient() -> f64 {
    let mut rng = thread_rng();
    rng.gen::<f64>() + rand::random::<f64>()
}

fn threads() -> Option<String> {
    std::env::var("PWRPERF_THREADS").ok()
}

#[cfg(test)]
mod tests {
    // Determinism rules stay active even in test code: a test that reads
    // the clock or iterates a std HashMap flakes.
    use std::collections::HashMap;

    #[test]
    fn still_flagged() {
        let _m: HashMap<u32, u32> = HashMap::new();
        let _t = std::time::Instant::now();
    }
}
