//! Fixture: error-discipline violations — panic paths, literal indexing,
//! and measurement APIs without `#[must_use]`. Linted under a
//! measurement-crate path so the Result rule applies.

pub struct RunResult {
    pub joules: f64,
}

fn panicky(v: &[u32], x: Option<u32>) -> u32 {
    let first = v[0];
    let y = x.unwrap();
    let z = x.expect("boom");
    if first > 3 {
        panic!("nope");
    }
    match y {
        0 => unreachable!(),
        _ => y + z,
    }
}

pub fn run_batch_fixture() -> u32 {
    0
}

pub fn read_sensor() -> Result<f64, String> {
    Ok(0.0)
}
