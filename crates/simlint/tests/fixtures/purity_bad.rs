//! Fixture: shard-purity violations reached from the `plan_compute` pure
//! root. Parsed by the analyzer, never compiled.

pub struct Node {
    freq: f64,
}

impl Node {
    pub fn bump(&mut self) -> f64 {
        self.freq += 1.0;
        self.freq
    }
}

pub fn plan_compute(node: &Node) -> f64 {
    helper(node)
}

fn helper(node: &Node) -> f64 {
    log_plan();
    COUNTER += 1;
    node.bump()
}

fn log_plan() {
    println!("planning");
}
