//! Fixture: exact float equality outside the epsilon helpers.

fn sentinel(factor: f64) -> bool {
    factor == 1.0
}

fn nonzero(power_w: f64) -> bool {
    power_w != 0.0
}

fn reversed(x: f64) -> bool {
    0.5 == x
}

fn suffixed_operands(a_w: f64, b_w: f64) -> bool {
    a_w == b_w
}
