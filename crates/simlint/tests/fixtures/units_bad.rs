//! Fixture: unit-safety violations — wrong declared types for suffixed
//! fields/params, and mixed-suffix arithmetic.

pub struct Meter {
    /// `_w` must be f64, not u32.
    pub watts_w: u32,
    /// `_mwh` must be u64 or f64; a String has no numeric core.
    pub cap_mwh: String,
    /// `_mhz` must be u32 or f64, not i16.
    pub step_mhz: i16,
}

fn mixes(power_w: f64, energy_j: f64) -> f64 {
    power_w + energy_j
}

fn compares(rate_hz: f64, period_s: f64) -> bool {
    rate_hz < period_s
}

fn accumulates(mut total_j: f64, reading_mwh: f64) -> f64 {
    total_j += reading_mwh;
    total_j
}
