//! Fixture: allow-comment hygiene — an unjustified allow suppresses
//! nothing (and is itself reported), and a justified allow that matches
//! nothing is reported as stale.

fn unjustified(v: &[u32]) -> u32 {
    v[0] // simlint: allow(literal-index)
}

// simlint: allow(panic-path): justified, but the next line never panics
fn stale() -> u32 {
    0
}
