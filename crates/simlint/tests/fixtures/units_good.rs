//! Fixture: blessed unit types and the hoist-the-conversion idiom
//! produce zero findings.

const J_PER_MWH: f64 = 3.6;

pub struct Meter {
    pub power_w: f64,
    pub idle_mw: f64,
    pub cap_mwh: u64,
    pub exact_mwh: f64,
    pub step_mhz: u32,
    pub clock_hz: f64,
    pub window_s: f64,
    pub poll_us: u64,
    pub history_w: Vec<f64>,
    pub maybe_j: Option<f64>,
}

fn drain(initial_mwh: f64, drawn_j: f64) -> f64 {
    // Mixed units converted into a named intermediate first: no finding.
    let drawn_mwh = drawn_j / J_PER_MWH;
    initial_mwh - drawn_mwh
}

fn same_unit(a_w: f64, b_w: f64) -> f64 {
    a_w + b_w
}

fn chained(m: &Meter, extra_w: f64) -> f64 {
    m.power_w + extra_w
}
