//! Fixture: approved float comparisons produce zero findings.

use sim_core::float::{approx_eq, exact_eq};

fn close(a: f64, b: f64) -> bool {
    approx_eq(a, b, 1e-9)
}

fn sentinel(factor: f64) -> bool {
    exact_eq(factor, 1.0)
}

fn integers(n: u64) -> bool {
    // Integer equality is fine.
    n == 0
}

fn ordering(a: f64) -> bool {
    // Ordered comparisons on floats are fine; only ==/!= are flagged.
    a < 1.0 && a >= 0.0
}
