//! Fixture: unit-flow violations across let-bindings, call arguments,
//! and return values — including the shadowed re-binding that escaped
//! the v1 per-declaration rule.

pub fn total_j(power_w: f64, dt_s: f64) -> f64 {
    power_w * dt_s
}

pub fn drain(cap_mwh: f64) -> f64 {
    let level_mwh = cap_mwh;
    let level_mwh: u32 = 0;
    let leak_w = cap_mwh;
    total_j(leak_w, leak_w)
}

pub fn reading_w(energy_j: f64) -> f64 {
    energy_j
}
