//! Fixture: the same shape as `purity_bad.rs` with every sink removed —
//! shared references all the way down, no statics, no I/O.

pub struct Node {
    freq: f64,
}

impl Node {
    pub fn freq_value(&self) -> f64 {
        self.freq
    }

    /// Mutation exists on the type but is never on a pure path.
    pub fn set(&mut self, freq: f64) {
        self.freq = freq;
    }
}

pub fn plan_compute(node: &Node) -> f64 {
    helper(node)
}

fn helper(node: &Node) -> f64 {
    let mut scratch = Vec::new();
    scratch.push(node.freq_value());
    scratch.iter().sum()
}
