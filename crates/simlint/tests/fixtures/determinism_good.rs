//! Fixture: the sanctioned determinism idioms produce zero findings.

use sim_core::{DetRng, FxHashMap, FxHashSet};
use std::collections::{BTreeMap, BTreeSet};

fn lookup() -> BTreeMap<u32, u32> {
    let mut m = BTreeMap::new();
    m.insert(1, 2);
    let _fx: FxHashMap<u32, u32> = FxHashMap::default();
    let _set: FxHashSet<u32> = FxHashSet::default();
    let _ordered: BTreeSet<u32> = BTreeSet::new();
    m
}

fn seeded(seed: u64) -> u64 {
    let mut rng = DetRng::new(seed);
    rng.next_u64()
}
