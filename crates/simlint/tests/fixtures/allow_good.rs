//! Fixture: justified allows on both same-line and standalone forms
//! suppress their findings and produce nothing else.

fn same_line(v: &[u32]) -> u32 {
    v[0] // simlint: allow(literal-index): fixture exercises the same-line form
}

fn standalone(x: Option<u32>) -> u32 {
    // simlint: allow(panic-path): fixture exercises the standalone form
    x.unwrap()
}

fn multi(v: &[f64]) -> bool {
    // simlint: allow(literal-index, float-eq): fixture exercises a multi-rule allow
    v[0] == 1.0
}
