//! Fixture: controller-discipline violations — a runtime hook overridden
//! without the `wants_runtime_events` gate, emitting decisions from a
//! non-sample instant.

pub struct BadCap {
    budget_w: f64,
}

impl ClusterController for BadCap {
    fn on_phase(
        &mut self,
        now: SimTime,
        rank: usize,
        name: &str,
        begin: bool,
        nodes: &[Node],
        out: &mut Vec<Decision>,
    ) {
        out.push(Decision { node: rank, op: 0 });
    }
}
