//! Fixture: a disciplined controller — runtime hooks gated, decisions
//! only from `on_sample`, and one justified escape for an observing hook.

pub struct GoodCap {
    budget_w: f64,
    waits: u64,
}

impl ClusterController for GoodCap {
    fn wants_runtime_events(&self) -> bool {
        true
    }

    // simlint: allow(controller-discipline): drains stale decisions on wait entry; audited in review
    fn on_wait_begin(
        &mut self,
        now: SimTime,
        rank: usize,
        nodes: &[Node],
        out: &mut Vec<Decision>,
    ) {
        out.clear();
    }

    fn on_wait_end(
        &mut self,
        now: SimTime,
        rank: usize,
        nodes: &[Node],
        _out: &mut Vec<Decision>,
    ) {
        self.waits += 1;
    }

    fn on_sample(&mut self, now: SimTime, nodes: &[Node], out: &mut Vec<Decision>) {
        out.push(Decision { node: 0, op: 1 });
    }
}
