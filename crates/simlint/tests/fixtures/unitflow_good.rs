//! Fixture: unit flow that stays consistent — shadowing with a
//! dimension-changing product, suffix-true calls and returns.

pub fn total_j(power_w: f64, dt_s: f64) -> f64 {
    power_w * dt_s
}

pub fn drain_mwh(cap_mwh: f64, frac: f64) -> f64 {
    let level_mwh = cap_mwh;
    let level_mwh = level_mwh * frac;
    level_mwh
}

pub fn consume(power_w: f64, dt_s: f64) -> f64 {
    let e_j = total_j(power_w, dt_s);
    e_j
}
