//! Dataflow checks against the *real* workspace sources: prove the
//! shard-purity pass traverses the actual `plan_compute` call chain by
//! injecting a `&mut self` leak into one of its callees and watching the
//! analyzer catch it — and that the pristine sources stay clean.

use simlint::{analyze_sources, Config, Finding};
use std::path::{Path, PathBuf};

fn workspace_root() -> &'static Path {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("simlint manifest dir has a workspace root two levels up")
}

fn read(rel: &str) -> (String, String) {
    let abs: PathBuf = workspace_root().join(rel);
    let src = std::fs::read_to_string(&abs).unwrap_or_else(|e| panic!("read {rel}: {e}"));
    (rel.to_string(), src)
}

fn purity_findings(files: &[(String, String)]) -> Vec<Finding> {
    analyze_sources(files, &Config::workspace_default())
        .into_iter()
        .filter(|f| f.rule == "shard-purity")
        .collect()
}

#[test]
fn injected_mut_self_leak_under_plan_compute_is_caught() {
    let engine = read("crates/mpi-sim/src/engine.rs");
    let (node_rel, node_src) = read("crates/cluster-sim/src/node.rs");

    // Baseline: the pristine pair is purity-clean.
    let clean = purity_findings(&[engine.clone(), (node_rel.clone(), node_src.clone())]);
    assert!(clean.is_empty(), "pristine sources not clean: {clean:?}");

    // Inject the leak: `Node::freq_hz` (called from `plan_compute`)
    // grows a `&mut self` receiver.
    let leaked = node_src.replace("pub fn freq_hz(&self", "pub fn freq_hz(&mut self");
    assert_ne!(
        leaked, node_src,
        "node.rs no longer defines `freq_hz(&self)` — update this test"
    );

    let found = purity_findings(&[engine, (node_rel, leaked)]);
    let hit = found
        .iter()
        .find(|f| f.message.contains("freq_hz") && f.message.contains("&mut self"))
        .unwrap_or_else(|| panic!("leak not caught; purity findings: {found:?}"));
    // The report names the pure root and lands in the calling file.
    assert!(hit.message.contains("plan_compute"), "{hit:?}");
    assert_eq!(hit.file, "crates/mpi-sim/src/engine.rs", "{hit:?}");
}
