//! Compute-segment work units and their timing at a given frequency.

use sim_core::{cycles_to_duration, SimDuration};

use crate::hierarchy::MemHierarchy;

/// A compute segment, decomposed the way DVFS sees it.
///
/// * `cpu_cycles` — core cycles of instruction execution including L1 hits;
///   time contribution scales as `1/f`.
/// * `l2_accesses` — references served by the on-die L2; each costs
///   `l2_latency_cycles`, also scaling as `1/f`.
/// * `dram_accesses` — references served by DRAM; each costs the effective
///   DRAM latency regardless of core frequency. The CPU is in the
///   `MemStall` activity state for that time.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct WorkUnit {
    /// Core execution cycles (frequency-scaled).
    pub cpu_cycles: f64,
    /// L2 cache references (frequency-scaled, on-die).
    pub l2_accesses: f64,
    /// DRAM references (frequency-invariant stall time).
    pub dram_accesses: f64,
}

/// How a segment's duration divides between CPU-active time and
/// memory-stall time at a particular frequency.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimeSplit {
    /// Time with the CPU in the `Active` state.
    pub active: SimDuration,
    /// Time with the CPU in the `MemStall` state.
    pub stall: SimDuration,
}

impl TimeSplit {
    /// Total segment duration.
    pub fn total(&self) -> SimDuration {
        self.active + self.stall
    }
}

impl WorkUnit {
    /// A segment of pure core execution (registers/L1 only).
    pub fn pure_cpu(cycles: f64) -> Self {
        WorkUnit {
            cpu_cycles: cycles,
            ..WorkUnit::default()
        }
    }

    /// No work at all.
    pub const ZERO: WorkUnit = WorkUnit {
        cpu_cycles: 0.0,
        l2_accesses: 0.0,
        dram_accesses: 0.0,
    };

    /// True when the segment contains no work.
    pub fn is_zero(&self) -> bool {
        use sim_core::float::exact_eq;
        exact_eq(self.cpu_cycles, 0.0)
            && exact_eq(self.l2_accesses, 0.0)
            && exact_eq(self.dram_accesses, 0.0)
    }

    /// Frequency-scaled cycles: core execution plus on-die L2 service.
    #[inline]
    pub fn scaled_cycles(&self, hier: &MemHierarchy) -> f64 {
        self.cpu_cycles + self.l2_accesses * hier.l2_latency_cycles
    }

    /// Duration at core frequency `freq_hz`, split into active and stall
    /// portions.
    #[inline(always)]
    pub fn split(&self, hier: &MemHierarchy, freq_hz: f64) -> TimeSplit {
        let active = cycles_to_duration(self.scaled_cycles(hier), freq_hz);
        let stall = hier.effective_dram_latency().mul_f64(self.dram_accesses);
        TimeSplit { active, stall }
    }

    /// Total duration at `freq_hz`.
    pub fn duration(&self, hier: &MemHierarchy, freq_hz: f64) -> SimDuration {
        self.split(hier, freq_hz).total()
    }

    /// Fraction of the segment's duration that scales with frequency,
    /// evaluated at `freq_hz` (the paper's "CPU efficiency" inverse:
    /// low values mean DVS opportunity).
    pub fn scaled_fraction(&self, hier: &MemHierarchy, freq_hz: f64) -> f64 {
        let s = self.split(hier, freq_hz);
        let total = s.total();
        if total.is_zero() {
            0.0
        } else {
            s.active.ratio(total)
        }
    }

    /// Element-wise sum of two segments.
    pub fn add(&self, other: &WorkUnit) -> WorkUnit {
        WorkUnit {
            cpu_cycles: self.cpu_cycles + other.cpu_cycles,
            l2_accesses: self.l2_accesses + other.l2_accesses,
            dram_accesses: self.dram_accesses + other.dram_accesses,
        }
    }

    /// Scale all components by a non-negative factor (workload jitter,
    /// problem-size scaling).
    pub fn scale(&self, factor: f64) -> WorkUnit {
        assert!(factor >= 0.0 && factor.is_finite(), "bad scale {factor}");
        WorkUnit {
            cpu_cycles: self.cpu_cycles * factor,
            l2_accesses: self.l2_accesses * factor,
            dram_accesses: self.dram_accesses * factor,
        }
    }

    /// The remaining work after completing `fraction` of the segment
    /// (uniform progress assumption; used when a DVFS transition lands
    /// mid-segment and the engine must re-time the remainder).
    pub fn remainder(&self, fraction_done: f64) -> WorkUnit {
        let f = fraction_done.clamp(0.0, 1.0);
        self.scale(1.0 - f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn hier() -> MemHierarchy {
        MemHierarchy::pentium_m_1400()
    }

    #[test]
    fn pure_cpu_scales_inversely_with_frequency() {
        let w = WorkUnit::pure_cpu(1.4e9); // one second at 1.4 GHz
        let d_fast = w.duration(&hier(), 1.4e9);
        let d_slow = w.duration(&hier(), 0.6e9);
        assert!((d_fast.as_secs_f64() - 1.0).abs() < 1e-9);
        // Paper Fig. 7: at 600 MHz, the CPU-bound delay is +134% = 1.4/0.6.
        assert!((d_slow.as_secs_f64() / d_fast.as_secs_f64() - 1.4 / 0.6).abs() < 1e-9);
        assert_eq!(w.scaled_fraction(&hier(), 1.4e9), 1.0);
    }

    #[test]
    fn dram_time_is_frequency_invariant() {
        let w = WorkUnit {
            dram_accesses: 1e6,
            ..WorkUnit::default()
        };
        let d_fast = w.duration(&hier(), 1.4e9);
        let d_slow = w.duration(&hier(), 0.6e9);
        assert_eq!(d_fast, d_slow);
        assert!((d_fast.as_secs_f64() - 1e6 * 110e-9).abs() < 1e-9);
        assert_eq!(w.scaled_fraction(&hier(), 1.4e9), 0.0);
    }

    #[test]
    fn l2_counts_as_scaled_cycles() {
        let w = WorkUnit {
            l2_accesses: 100.0,
            ..WorkUnit::default()
        };
        assert_eq!(w.scaled_cycles(&hier()), 1000.0);
        let s = w.split(&hier(), 1e9);
        assert_eq!(s.stall, SimDuration::ZERO);
        assert!((s.active.as_secs_f64() - 1e-6).abs() < 1e-12);
    }

    #[test]
    fn mixed_segment_splits_correctly() {
        let w = WorkUnit {
            cpu_cycles: 1e9, // 1s at 1 GHz
            l2_accesses: 0.0,
            dram_accesses: 1e7, // 1.1s of stall
        };
        let s = w.split(&hier(), 1e9);
        assert!((s.active.as_secs_f64() - 1.0).abs() < 1e-9);
        assert!((s.stall.as_secs_f64() - 1.1).abs() < 1e-9);
        let frac = w.scaled_fraction(&hier(), 1e9);
        assert!((frac - 1.0 / 2.1).abs() < 1e-6);
    }

    #[test]
    fn add_scale_remainder_compose() {
        let a = WorkUnit {
            cpu_cycles: 10.0,
            l2_accesses: 4.0,
            dram_accesses: 2.0,
        };
        let b = a.add(&a);
        assert_eq!(b.cpu_cycles, 20.0);
        let half = b.scale(0.5);
        assert_eq!(half, a);
        let rem = b.remainder(0.75);
        assert!((rem.cpu_cycles - 5.0).abs() < 1e-12);
        assert!(WorkUnit::ZERO.is_zero());
        assert!(b.remainder(2.0).is_zero()); // clamped
    }

    proptest! {
        /// Duration is monotonically nonincreasing in frequency.
        #[test]
        fn prop_duration_monotone_in_frequency(
            cpu in 0.0f64..1e9, l2 in 0.0f64..1e7, dram in 0.0f64..1e6
        ) {
            let w = WorkUnit { cpu_cycles: cpu, l2_accesses: l2, dram_accesses: dram };
            let h = hier();
            let freqs = [0.6e9, 0.8e9, 1.0e9, 1.2e9, 1.4e9];
            for pair in freqs.windows(2) {
                prop_assert!(w.duration(&h, pair[0]) >= w.duration(&h, pair[1]));
            }
        }

        /// split().total() always equals duration().
        #[test]
        fn prop_split_consistent(
            cpu in 0.0f64..1e9, dram in 0.0f64..1e6, f in 0.5e9f64..2.0e9
        ) {
            let w = WorkUnit { cpu_cycles: cpu, l2_accesses: 0.0, dram_accesses: dram };
            let h = hier();
            prop_assert_eq!(w.split(&h, f).total(), w.duration(&h, f));
        }

        /// scaled_fraction stays in [0,1].
        #[test]
        fn prop_fraction_bounded(
            cpu in 0.0f64..1e9, l2 in 0.0f64..1e6, dram in 0.0f64..1e6
        ) {
            let w = WorkUnit { cpu_cycles: cpu, l2_accesses: l2, dram_accesses: dram };
            let f = w.scaled_fraction(&hier(), 1.0e9);
            prop_assert!((0.0..=1.0).contains(&f));
        }
    }
}
