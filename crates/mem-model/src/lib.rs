//! # mem-model — memory hierarchy and compute-segment cost model
//!
//! The paper's crescendos are explained by one decomposition (its Section 4
//! "power-performance analysis"): execution time splits into a part that
//! scales with CPU frequency (instruction execution and on-die cache access)
//! and a part that does not (DRAM latency, network wire time). This crate
//! owns that decomposition for compute:
//!
//! * [`MemHierarchy`] — the Pentium M memory system (32 KB L1D, 1 MB on-die
//!   L2, DDR SDRAM with ~110 ns load latency, 64 B lines).
//! * [`WorkUnit`] — a compute segment as `(cpu_cycles, l2_accesses,
//!   dram_accesses)`; its duration at frequency `f` is
//!   `(cpu_cycles + l2_accesses · L2_cycles) / f + dram_accesses · t_mem`.
//! * [`AccessPattern`] — classifies a strided buffer walk (the paper's
//!   microbenchmark shape: a buffer of size S walked with stride k) onto the
//!   hierarchy, producing the `WorkUnit` that the PowerPack microbenchmarks
//!   and the application models are built from.

pub mod hierarchy;
pub mod pattern;
pub mod work;

pub use hierarchy::MemHierarchy;
pub use pattern::{streaming_work, AccessPattern};
pub use work::{TimeSplit, WorkUnit};
