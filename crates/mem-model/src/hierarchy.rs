//! Memory-hierarchy parameters.

use sim_core::SimDuration;

/// Cache/memory parameters of one node.
#[derive(Debug, Clone)]
pub struct MemHierarchy {
    /// L1 data cache capacity, bytes.
    pub l1_bytes: u64,
    /// L2 unified cache capacity, bytes (on-die: access time scales with
    /// core frequency).
    pub l2_bytes: u64,
    /// Cache line size, bytes.
    pub line_bytes: u64,
    /// L2 hit latency in core cycles.
    pub l2_latency_cycles: f64,
    /// DRAM load-to-use latency (frequency-independent). The paper quotes
    /// 110 ns for its platform.
    pub dram_latency: SimDuration,
    /// Fraction of DRAM latency hidden by memory-level parallelism and
    /// hardware prefetch, in `[0, 1)`. Applied as `t_eff = t·(1-overlap)`.
    pub mlp_overlap: f64,
}

impl MemHierarchy {
    /// The Pentium M 1.4 GHz / Dell Inspiron 8600 memory system used by the
    /// paper: 32 KB L1D, 1 MB on-die L2, 64 B lines, 110 ns DDR latency.
    pub fn pentium_m_1400() -> Self {
        MemHierarchy {
            l1_bytes: 32 * 1024,
            l2_bytes: 1024 * 1024,
            line_bytes: 64,
            l2_latency_cycles: 10.0,
            dram_latency: SimDuration::from_nanos(110),
            mlp_overlap: 0.0,
        }
    }

    /// Effective DRAM stall time per miss after overlap.
    #[inline]
    pub fn effective_dram_latency(&self) -> SimDuration {
        self.dram_latency.mul_f64(1.0 - self.mlp_overlap)
    }

    /// Panic on nonsensical parameters; used by the cluster builder.
    pub fn validate(&self) {
        assert!(self.l1_bytes > 0 && self.l2_bytes >= self.l1_bytes);
        assert!(self.line_bytes > 0 && self.line_bytes <= self.l1_bytes);
        assert!(self.l2_latency_cycles >= 0.0 && self.l2_latency_cycles.is_finite());
        assert!((0.0..1.0).contains(&self.mlp_overlap));
    }
}

impl Default for MemHierarchy {
    fn default() -> Self {
        MemHierarchy::pentium_m_1400()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pentium_m_matches_paper_platform() {
        let h = MemHierarchy::pentium_m_1400();
        assert_eq!(h.l1_bytes, 32 * 1024);
        assert_eq!(h.l2_bytes, 1024 * 1024);
        assert_eq!(h.dram_latency, SimDuration::from_nanos(110));
        h.validate();
    }

    #[test]
    fn overlap_scales_effective_latency() {
        let mut h = MemHierarchy::pentium_m_1400();
        h.mlp_overlap = 0.5;
        assert_eq!(h.effective_dram_latency(), SimDuration::from_nanos(55));
    }

    #[test]
    #[should_panic]
    fn validate_rejects_l2_smaller_than_l1() {
        let mut h = MemHierarchy::pentium_m_1400();
        h.l2_bytes = 1024;
        h.validate();
    }
}
