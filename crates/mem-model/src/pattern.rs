//! Strided access-pattern classification.
//!
//! The paper's PowerPack microbenchmarks all have the same shape: walk a
//! buffer of size `S` with stride `k`, reading and writing elements. Where
//! those references land in the hierarchy determines the benchmark's DVS
//! behaviour:
//!
//! * `S` = 32 MB, `k` = 128 B → every reference misses to DRAM (Fig. 6).
//! * `S` = 256 KB, `k` = 128 B → every reference hits the on-die L2
//!   (Fig. 7), which the paper counts as CPU-intensive.
//! * register-only loops → pure core execution (Fig. 7's "even more
//!   striking" variant).
//!
//! [`AccessPattern::classify`] turns `(buffer, stride, accesses)` into a
//! [`WorkUnit`] using steady-state reasoning: a buffer larger than a cache
//! level, walked with a stride at least one line, misses that level on
//! every reference.

use crate::hierarchy::MemHierarchy;
use crate::work::WorkUnit;

/// A strided walk over a buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessPattern {
    /// Buffer footprint, bytes.
    pub buffer_bytes: u64,
    /// Distance between consecutive references, bytes.
    pub stride_bytes: u64,
    /// Total number of references performed.
    pub accesses: u64,
}

/// Core cycles of loop overhead charged per reference (address generation,
/// compare, branch, read-modify-write). Fitted to the paper's memory
/// microbenchmark delay at 600 MHz (+5.4%).
pub const CYCLES_PER_ACCESS: f64 = 6.0;

impl AccessPattern {
    /// One full pass over the buffer (touching every `stride`-th byte).
    pub fn one_pass(buffer_bytes: u64, stride_bytes: u64) -> Self {
        assert!(stride_bytes > 0, "stride must be positive");
        AccessPattern {
            buffer_bytes,
            stride_bytes,
            accesses: buffer_bytes / stride_bytes,
        }
    }

    /// `passes` repeated walks over the buffer.
    pub fn passes(buffer_bytes: u64, stride_bytes: u64, passes: u64) -> Self {
        let one = AccessPattern::one_pass(buffer_bytes, stride_bytes);
        AccessPattern {
            accesses: one.accesses * passes,
            ..one
        }
    }

    /// Steady-state hierarchy level this walk is served from, and the
    /// fraction of references that miss the caches.
    ///
    /// With stride >= line size, every reference touches a new line, so a
    /// buffer bigger than L2 misses on every reference. With stride < line,
    /// only `stride/line` of references start a new line; the rest hit L1.
    fn miss_fraction(&self, hier: &MemHierarchy) -> f64 {
        if self.stride_bytes >= hier.line_bytes {
            1.0
        } else {
            self.stride_bytes as f64 / hier.line_bytes as f64
        }
    }

    /// Classify the walk into a [`WorkUnit`].
    pub fn classify(&self, hier: &MemHierarchy) -> WorkUnit {
        let n = self.accesses as f64;
        let base_cycles = n * CYCLES_PER_ACCESS;
        if self.buffer_bytes <= hier.l1_bytes {
            // Everything L1-resident: pure core execution.
            WorkUnit::pure_cpu(base_cycles)
        } else if self.buffer_bytes <= hier.l2_bytes {
            // Served by the on-die L2.
            let f = self.miss_fraction(hier);
            WorkUnit {
                cpu_cycles: base_cycles,
                l2_accesses: n * f,
                dram_accesses: 0.0,
            }
        } else {
            // Served by DRAM. The L2 fill is part of the miss and fully
            // overlapped by the (frequency-invariant) DRAM latency, so it
            // adds no frequency-scaled cycles.
            let f = self.miss_fraction(hier);
            WorkUnit {
                cpu_cycles: base_cycles,
                l2_accesses: 0.0,
                dram_accesses: n * f,
            }
        }
    }
}

/// Work for streaming `bytes` of data through DRAM sequentially (stride =
/// one element, hardware-friendly): one miss per cache line plus `cycles
/// per element` of core work. Used by the application models for their
/// streaming phases.
pub fn streaming_work(
    bytes: u64,
    elem_bytes: u64,
    cycles_per_elem: f64,
    hier: &MemHierarchy,
) -> WorkUnit {
    assert!(elem_bytes > 0);
    let elems = bytes as f64 / elem_bytes as f64;
    let lines = bytes as f64 / hier.line_bytes as f64;
    // Fills overlap the DRAM misses; no frequency-scaled L2 charge.
    WorkUnit {
        cpu_cycles: elems * cycles_per_elem,
        l2_accesses: 0.0,
        dram_accesses: lines,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn hier() -> MemHierarchy {
        MemHierarchy::pentium_m_1400()
    }

    #[test]
    fn paper_memory_microbenchmark_is_dram_bound() {
        // 32 MB buffer, 128 B stride: every reference from main memory.
        let p = AccessPattern::one_pass(32 * 1024 * 1024, 128);
        let w = p.classify(&hier());
        assert_eq!(w.dram_accesses, p.accesses as f64);
        // Memory stalls dominate execution time at top frequency.
        assert!(w.scaled_fraction(&hier(), 1.4e9) < 0.35);
    }

    #[test]
    fn paper_cpu_microbenchmark_is_l2_bound() {
        // 256 KB buffer, 128 B stride: L2 hits, zero DRAM.
        let p = AccessPattern::one_pass(256 * 1024, 128);
        let w = p.classify(&hier());
        assert_eq!(w.dram_accesses, 0.0);
        assert_eq!(w.l2_accesses, p.accesses as f64);
        assert_eq!(w.scaled_fraction(&hier(), 1.4e9), 1.0);
    }

    #[test]
    fn l1_resident_walk_is_pure_cpu() {
        let p = AccessPattern::one_pass(16 * 1024, 64);
        let w = p.classify(&hier());
        assert_eq!(w.l2_accesses, 0.0);
        assert_eq!(w.dram_accesses, 0.0);
        assert!(w.cpu_cycles > 0.0);
    }

    #[test]
    fn sub_line_stride_hits_mostly_l1() {
        // 4 KB message walked with 64 B stride in a huge buffer would miss
        // every line; with a 16 B stride only a quarter of refs miss.
        let p = AccessPattern::one_pass(32 * 1024 * 1024, 16);
        let w = p.classify(&hier());
        assert!((w.dram_accesses - p.accesses as f64 * 0.25).abs() < 1.0);
    }

    #[test]
    fn passes_multiply_accesses() {
        let p = AccessPattern::passes(1024 * 1024 * 8, 128, 10);
        assert_eq!(p.accesses, (8 * 1024 * 1024 / 128) * 10);
    }

    #[test]
    fn streaming_work_counts_lines() {
        let h = hier();
        let w = streaming_work(64 * 1024 * 1024, 8, 2.0, &h);
        assert!((w.dram_accesses - (64.0 * 1024.0 * 1024.0 / 64.0)).abs() < 1.0);
        assert!((w.cpu_cycles - (64.0 * 1024.0 * 1024.0 / 8.0) * 2.0).abs() < 1.0);
    }

    #[test]
    #[should_panic(expected = "stride must be positive")]
    fn zero_stride_panics() {
        let _ = AccessPattern::one_pass(1024, 0);
    }

    proptest! {
        /// Larger buffers never produce less DRAM traffic per access.
        #[test]
        fn prop_dram_monotone_in_footprint(
            small_kb in 1u64..64, big_mb in 2u64..64, stride in 64u64..512
        ) {
            let h = hier();
            let small = AccessPattern { buffer_bytes: small_kb * 1024, stride_bytes: stride, accesses: 1000 };
            let big = AccessPattern { buffer_bytes: big_mb * 1024 * 1024, stride_bytes: stride, accesses: 1000 };
            prop_assert!(big.classify(&h).dram_accesses >= small.classify(&h).dram_accesses);
        }

        /// Classification never produces negative or non-finite counts.
        #[test]
        fn prop_classification_sane(
            buf in 1u64..(256*1024*1024), stride in 1u64..4096, acc in 0u64..1_000_000
        ) {
            let w = AccessPattern { buffer_bytes: buf, stride_bytes: stride, accesses: acc }.classify(&hier());
            prop_assert!(w.cpu_cycles >= 0.0 && w.cpu_cycles.is_finite());
            prop_assert!(w.l2_accesses >= 0.0 && w.l2_accesses.is_finite());
            prop_assert!(w.dram_accesses >= 0.0 && w.dram_accesses.is_finite());
            prop_assert!(w.dram_accesses <= acc as f64 + 1e-9);
        }
    }
}
