//! Phase-level profiling — PowerPack's core use case.
//!
//! The paper instruments applications with phase markers (`fft()`,
//! transpose steps) and aligns them with the power profiles to attribute
//! time and energy to program phases. This module replays a run's trace
//! (PhaseBegin/PhaseEnd records) against its power samples and produces
//! per-phase totals.

use std::collections::BTreeMap;

use mpi_sim::{RunResult, SampleRow};
use sim_core::{FxHashMap, SimDuration, SimTime, TraceEvent, TraceKind};

/// Aggregated statistics for one named phase.
#[derive(Debug, Clone, Default)]
pub struct PhaseProfile {
    /// How many (rank, interval) occurrences were observed.
    pub occurrences: u64,
    /// Total rank-time inside the phase (summed across ranks).
    pub total_time: SimDuration,
    /// Approximate energy attributed to the phase, joules (per-node power
    /// sampled at the engine's sampling interval, integrated over the
    /// phase's intervals). Zero when the run carried no samples.
    pub energy_j: f64,
}

/// Per-phase profiles keyed by phase name. A `BTreeMap` so iterating a
/// profile (reports, CSV export) visits phases in a stable order.
pub type PhaseMap = BTreeMap<String, PhaseProfile>;

/// Collect matched (rank, name, start, end) intervals from a trace.
/// Unbalanced markers (an end without a begin, or a begin never closed)
/// are ignored, mirroring the paper's tooling which drops truncated
/// records at run edges.
pub fn phase_intervals(trace: &[TraceEvent]) -> Vec<(usize, &'static str, SimTime, SimTime)> {
    let mut open: FxHashMap<(usize, &'static str), SimTime> = FxHashMap::default();
    let mut out = Vec::new();
    for ev in trace {
        let Some(name) = ev.detail.phase() else {
            continue;
        };
        match ev.kind {
            TraceKind::PhaseBegin => {
                open.insert((ev.node, name), ev.time);
            }
            TraceKind::PhaseEnd => {
                if let Some(start) = open.remove(&(ev.node, name)) {
                    out.push((ev.node, name, start, ev.time));
                }
            }
            _ => {}
        }
    }
    out
}

/// Cumulative energy of `node` at time `t`, linearly interpolated from
/// the sampled cumulative-energy series (with an implicit `(0, 0)` point
/// before the first sample). Beyond the last sample, extrapolates with
/// the last sampled power. `None` when the run carried no samples.
fn energy_at(samples: &[SampleRow], node: usize, t: SimTime) -> Option<f64> {
    if samples.is_empty() {
        return None;
    }
    // Implicit origin.
    let (mut t0, mut e0) = (SimTime::ZERO, 0.0f64);
    for s in samples {
        let (t1, e1) = (s.time, s.node_energy_j[node]);
        if t <= t1 {
            let span = t1.since(t0).as_secs_f64();
            if span <= 0.0 {
                return Some(e1);
            }
            let frac = t.since(t0).as_secs_f64() / span;
            return Some(e0 + (e1 - e0) * frac);
        }
        t0 = t1;
        e0 = e1;
    }
    // Past the last sample: extrapolate with its instantaneous power.
    let last = samples.last()?;
    let tail_j = last.node_power_w[node] * t.since(last.time).as_secs_f64();
    Some(last.node_energy_j[node] + tail_j)
}

/// Energy consumed by `node` over `[start, end]`, from the sample series.
fn interval_energy(
    samples: &[SampleRow],
    node: usize,
    start: SimTime,
    end: SimTime,
) -> Option<f64> {
    Some((energy_at(samples, node, end)? - energy_at(samples, node, start)?).max(0.0))
}

/// Profile every named phase in a run.
pub fn profile_phases(result: &RunResult) -> PhaseMap {
    let mut map: PhaseMap = PhaseMap::new();
    for (node, name, start, end) in phase_intervals(&result.trace) {
        let entry = map.entry(name.to_string()).or_default();
        entry.occurrences += 1;
        let span = end.since(start);
        entry.total_time += span;
        if let Some(e) = interval_energy(&result.samples, node, start, end) {
            entry.energy_j += e;
        }
    }
    map
}

/// Fraction of total rank-time spent in `phase` (across all ranks), in
/// `[0, 1]`; zero when the phase never occurred.
pub fn phase_time_fraction(result: &RunResult, phase: &str) -> f64 {
    let profiles = profile_phases(result);
    let Some(p) = profiles.get(phase) else {
        return 0.0;
    };
    let ranks = result.breakdown.len().max(1) as f64;
    p.total_time.as_secs_f64() / (result.duration_secs() * ranks)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_core::TraceKind;

    fn ev(t: u64, node: usize, kind: TraceKind, name: &'static str) -> TraceEvent {
        TraceEvent {
            time: SimTime::from_secs(t),
            node,
            kind,
            detail: sim_core::TraceDetail::Phase(name),
        }
    }

    #[test]
    fn intervals_match_begin_end_pairs() {
        let trace = vec![
            ev(1, 0, TraceKind::PhaseBegin, "fft"),
            ev(3, 0, TraceKind::PhaseEnd, "fft"),
            ev(4, 1, TraceKind::PhaseBegin, "fft"),
            ev(9, 1, TraceKind::PhaseEnd, "fft"),
        ];
        let iv = phase_intervals(&trace);
        assert_eq!(iv.len(), 2);
        assert_eq!(iv[0].0, 0);
        assert_eq!(iv[1].3.since(iv[1].2), SimDuration::from_secs(5));
    }

    #[test]
    fn unbalanced_markers_are_dropped() {
        let trace = vec![
            ev(1, 0, TraceKind::PhaseEnd, "orphan"),
            ev(2, 0, TraceKind::PhaseBegin, "dangling"),
        ];
        assert!(phase_intervals(&trace).is_empty());
    }

    #[test]
    fn nested_distinct_phases_both_captured() {
        let trace = vec![
            ev(0, 0, TraceKind::PhaseBegin, "outer"),
            ev(1, 0, TraceKind::PhaseBegin, "inner"),
            ev(2, 0, TraceKind::PhaseEnd, "inner"),
            ev(5, 0, TraceKind::PhaseEnd, "outer"),
        ];
        let iv = phase_intervals(&trace);
        assert_eq!(iv.len(), 2);
    }

    #[test]
    fn profile_aggregates_time_and_energy() {
        use power_model::EnergyReport;
        let trace = vec![
            ev(0, 0, TraceKind::PhaseBegin, "comm"),
            ev(10, 0, TraceKind::PhaseEnd, "comm"),
        ];
        let samples: Vec<SampleRow> = (0..=10)
            .map(|s| SampleRow {
                time: SimTime::from_secs(s),
                node_power_w: vec![20.0],
                node_energy_j: vec![20.0 * s as f64], // cumulative at 20 W
                node_mhz: vec![1400],
                node_battery_mwh: vec![0],
            })
            .collect();
        let result = RunResult {
            duration: SimDuration::from_secs(10),
            per_node: vec![EnergyReport::default()],
            total: EnergyReport::default(),
            breakdown: vec![Default::default()],
            transitions: vec![0],
            samples,
            trace,
            trace_dropped: 0,
            freq_residency: vec![],
            events: 0,
            faults: Default::default(),
            metrics: None,
            causal: None,
            attribution: None,
        };
        let profiles = profile_phases(&result);
        let comm = &profiles["comm"];
        assert_eq!(comm.occurrences, 1);
        assert_eq!(comm.total_time, SimDuration::from_secs(10));
        assert!((comm.energy_j - 200.0).abs() < 1e-9);
        assert!((phase_time_fraction(&result, "comm") - 1.0).abs() < 1e-9);
        assert_eq!(phase_time_fraction(&result, "absent"), 0.0);
    }
}
