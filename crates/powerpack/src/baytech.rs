//! Baytech remote power-strip measurement (GPML50 over SNMP).
//!
//! The paper's second, independent measurement channel: the managed power
//! strip reports per-outlet power once per minute. Coarser than ACPI in
//! time but measures wall power directly — the paper uses it to verify the
//! battery numbers. We reproduce it as minute-window averages over the
//! engine's ground-truth samples.

use mpi_sim::SampleRow;
use sim_core::SimDuration;

/// Per-outlet (node) average power in each full minute window, watts.
/// Windows are `[k·60 s, (k+1)·60 s)`; the trailing partial window is
/// dropped, as the strip only reports completed periods.
pub fn baytech_minute_averages(samples: &[SampleRow]) -> Vec<Vec<f64>> {
    minute_averages(samples, SimDuration::from_secs(60))
}

/// Generalized window averaging (exposed for tests and ablations).
pub fn minute_averages(samples: &[SampleRow], window: SimDuration) -> Vec<Vec<f64>> {
    let Some(first) = samples.first() else {
        return Vec::new();
    };
    let nodes = first.node_power_w.len();
    let w = window.as_ps();
    assert!(w > 0, "window must be positive");
    let mut out: Vec<Vec<f64>> = Vec::new();
    let mut counts: Vec<u64> = Vec::new();
    for s in samples {
        let idx = (s.time.0 / w) as usize;
        while out.len() <= idx {
            out.push(vec![0.0; nodes]);
            counts.push(0);
        }
        for (node, p) in s.node_power_w.iter().enumerate() {
            out[idx][node] += p;
        }
        counts[idx] += 1;
    }
    // Drop the final (possibly partial) window; average the rest.
    if !out.is_empty() {
        out.pop();
        counts.pop();
    }
    for (row, c) in out.iter_mut().zip(counts) {
        if c > 0 {
            for v in row.iter_mut() {
                *v /= c as f64;
            }
        }
    }
    out
}

/// Strip-measured energy per node: sum of minute averages × 60 s, joules.
/// Undercounts the trailing partial minute, as the real strip does.
pub fn baytech_energy(samples: &[SampleRow]) -> Vec<f64> {
    let windows = baytech_minute_averages(samples);
    let Some(first_window) = windows.first() else {
        return samples
            .first()
            .map(|s| vec![0.0; s.node_power_w.len()])
            .unwrap_or_default();
    };
    let nodes = first_window.len();
    (0..nodes)
        .map(|n| windows.iter().map(|w| w[n] * 60.0).sum())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_core::SimTime;

    fn log(powers: &[f64]) -> Vec<SampleRow> {
        powers
            .iter()
            .enumerate()
            .map(|(s, &p)| SampleRow {
                time: SimTime::from_secs(s as u64),
                node_power_w: vec![p],
                node_energy_j: vec![0.0],
                node_mhz: vec![1400],
                node_battery_mwh: vec![0],
            })
            .collect()
    }

    #[test]
    fn constant_power_averages_exactly() {
        let samples = log(&[25.0; 180]); // 3 minutes at 25 W
        let windows = baytech_minute_averages(&samples);
        assert_eq!(windows.len(), 2, "partial last window dropped");
        for w in &windows {
            assert!((w[0] - 25.0).abs() < 1e-12);
        }
    }

    #[test]
    fn energy_matches_power_for_full_windows() {
        let samples = log(&[30.0; 121]); // exactly 2 full windows + 1 sample
        let e = baytech_energy(&samples);
        assert!((e[0] - 2.0 * 60.0 * 30.0).abs() < 1e-9);
    }

    #[test]
    fn step_change_lands_in_correct_window() {
        let mut powers = vec![10.0; 60];
        powers.extend(vec![40.0; 61]);
        let windows = baytech_minute_averages(&log(&powers));
        assert_eq!(windows.len(), 2);
        assert!((windows[0][0] - 10.0).abs() < 1e-12);
        assert!((windows[1][0] - 40.0).abs() < 1e-12);
    }

    #[test]
    fn sub_minute_run_reports_nothing() {
        let samples = log(&[30.0; 30]);
        assert!(baytech_minute_averages(&samples).is_empty());
        assert_eq!(baytech_energy(&samples), vec![0.0]);
    }

    #[test]
    fn empty_input_is_empty() {
        assert!(baytech_minute_averages(&[]).is_empty());
        assert!(baytech_energy(&[]).is_empty());
    }
}
