//! The PowerPack microbenchmarks (paper Figures 6–8).
//!
//! Four probes, each isolating one system component's response to DVS:
//!
//! * **memory-bound** — read/write a 32 MB buffer with a 128 B stride:
//!   every reference misses to DRAM (Figure 6);
//! * **CPU-bound** — the same walk over a 256 KB buffer: every reference
//!   hits the on-die L2, so all time scales with frequency (Figure 7);
//! * **register-only** — arithmetic with no memory traffic at all (the
//!   "even more striking" variant in the Figure 7 discussion);
//! * **communication** — two ranks ping-ponging (a) a 256 KB message and
//!   (b) a 4 KB message assembled with a 64 B stride (Figure 8).

use mem_model::{AccessPattern, MemHierarchy, WorkUnit};
use mpi_sim::{Program, ProgramBuilder};

/// Configuration for the single-node microbenchmarks.
#[derive(Debug, Clone)]
pub struct MicroConfig {
    /// Number of passes over the buffer (scales runtime).
    pub passes: u64,
}

impl Default for MicroConfig {
    fn default() -> Self {
        MicroConfig { passes: 400 }
    }
}

/// Configuration for the two-rank communication microbenchmarks.
#[derive(Debug, Clone)]
pub struct CommMicroConfig {
    /// Message payload, bytes.
    pub message_bytes: u64,
    /// Stride used to assemble the message from memory (the paper's 64 B
    /// stride variant); `None` for contiguous payloads.
    pub assemble_stride: Option<u64>,
    /// Number of round trips.
    pub round_trips: u64,
}

impl CommMicroConfig {
    /// Paper Figure 8(a): 256 KB round trips.
    pub fn paper_256k() -> Self {
        CommMicroConfig {
            message_bytes: 256 * 1024,
            assemble_stride: None,
            round_trips: 200,
        }
    }

    /// Paper Figure 8(b): 4 KB messages with a 64 B stride.
    pub fn paper_4k_strided() -> Self {
        CommMicroConfig {
            message_bytes: 4 * 1024,
            assemble_stride: Some(64),
            round_trips: 2000,
        }
    }
}

/// The paper's memory benchmark: 32 MB buffer, 128 B stride — every
/// reference fetched from main memory.
pub fn memory_bound_program(config: &MicroConfig) -> Program {
    strided_walk_program(32 * 1024 * 1024, 128, config.passes)
}

/// The paper's CPU benchmark: 256 KB buffer, 128 B stride — every
/// reference an on-die L2 hit.
pub fn cpu_bound_program(config: &MicroConfig) -> Program {
    strided_walk_program(256 * 1024, 128, config.passes)
}

/// Register-only arithmetic: the work a memory pass would do, minus all
/// memory traffic (so durations are comparable across the three probes).
pub fn register_program(config: &MicroConfig) -> Program {
    let accesses_per_pass = 32 * 1024 * 1024 / 128;
    let cycles =
        config.passes as f64 * accesses_per_pass as f64 * mem_model::pattern::CYCLES_PER_ACCESS;
    let mut b = ProgramBuilder::new(0, 1);
    b.phase_begin("register");
    b.compute(WorkUnit::pure_cpu(cycles));
    b.phase_end("register");
    b.build()
}

fn strided_walk_program(buffer: u64, stride: u64, passes: u64) -> Program {
    let hier = MemHierarchy::pentium_m_1400();
    let work = AccessPattern::passes(buffer, stride, passes).classify(&hier);
    let mut b = ProgramBuilder::new(0, 1);
    b.phase_begin("walk");
    b.compute(work);
    b.phase_end("walk");
    b.build()
}

/// Two-rank ping-pong programs `(rank0, rank1)`.
pub fn comm_roundtrip_programs(config: &CommMicroConfig) -> Vec<Program> {
    assert!(config.round_trips > 0, "need at least one round trip");
    let hier = MemHierarchy::pentium_m_1400();
    // Message assembly cost from strided memory (Figure 8b's stride).
    let assemble = config.assemble_stride.map(|stride| {
        AccessPattern {
            buffer_bytes: 32 * 1024 * 1024, // strided gathers from a large source
            stride_bytes: stride,
            accesses: config.message_bytes / stride.min(config.message_bytes),
        }
        .classify(&hier)
    });

    (0..2usize)
        .map(|rank| {
            let mut b = ProgramBuilder::new(rank, 2);
            b.phase_begin("pingpong");
            for _ in 0..config.round_trips {
                if let Some(w) = assemble {
                    b.compute(w);
                }
                if rank == 0 {
                    b.send(1, config.message_bytes, 1);
                    b.recv(1, config.message_bytes, 2);
                } else {
                    b.recv(0, config.message_bytes, 1);
                    b.send(0, config.message_bytes, 2);
                }
            }
            b.phase_end("pingpong");
            b.build()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpi_sim::Op;

    fn total_work(p: &Program) -> WorkUnit {
        p.ops()
            .iter()
            .filter_map(|op| match op {
                Op::Compute(w) => Some(*w),
                _ => None,
            })
            .fold(WorkUnit::ZERO, |acc, w| acc.add(&w))
    }

    #[test]
    fn memory_probe_is_dram_dominated() {
        let hier = MemHierarchy::pentium_m_1400();
        let w = total_work(&memory_bound_program(&MicroConfig { passes: 1 }));
        assert!(w.dram_accesses > 0.0);
        assert!(w.scaled_fraction(&hier, 1.4e9) < 0.35);
    }

    #[test]
    fn cpu_probe_is_fully_scaled() {
        let hier = MemHierarchy::pentium_m_1400();
        let w = total_work(&cpu_bound_program(&MicroConfig { passes: 1 }));
        assert_eq!(w.dram_accesses, 0.0);
        assert_eq!(w.scaled_fraction(&hier, 1.4e9), 1.0);
        assert!(w.l2_accesses > 0.0);
    }

    #[test]
    fn register_probe_touches_no_memory() {
        let w = total_work(&register_program(&MicroConfig { passes: 1 }));
        assert_eq!(w.dram_accesses, 0.0);
        assert_eq!(w.l2_accesses, 0.0);
        assert!(w.cpu_cycles > 0.0);
    }

    #[test]
    fn comm_programs_pair_up() {
        let p = comm_roundtrip_programs(&CommMicroConfig {
            message_bytes: 1024,
            assemble_stride: None,
            round_trips: 3,
        });
        assert_eq!(p.len(), 2);
        let sends = |prog: &Program| {
            prog.ops()
                .iter()
                .filter(|op| matches!(op, Op::Send { .. }))
                .count()
        };
        assert_eq!(sends(&p[0]), 3);
        assert_eq!(sends(&p[1]), 3);
    }

    #[test]
    fn strided_assembly_adds_memory_work() {
        let plain = comm_roundtrip_programs(&CommMicroConfig {
            message_bytes: 4096,
            assemble_stride: None,
            round_trips: 1,
        });
        let strided = comm_roundtrip_programs(&CommMicroConfig::paper_4k_strided());
        let w_plain = total_work(&plain[0]);
        let w_strided = total_work(&strided[0]);
        assert!(w_strided.dram_accesses > w_plain.dram_accesses);
    }

    #[test]
    fn paper_configs_match_figures() {
        let a = CommMicroConfig::paper_256k();
        assert_eq!(a.message_bytes, 256 * 1024);
        assert!(a.assemble_stride.is_none());
        let b = CommMicroConfig::paper_4k_strided();
        assert_eq!(b.message_bytes, 4 * 1024);
        assert_eq!(b.assemble_stride, Some(64));
    }

    #[test]
    #[should_panic(expected = "at least one round trip")]
    fn zero_round_trips_rejected() {
        let _ = comm_roundtrip_programs(&CommMicroConfig {
            message_bytes: 1,
            assemble_stride: None,
            round_trips: 0,
        });
    }
}
