//! The paper's repeatability protocol.
//!
//! Before every measurement the authors (1) fully charge all batteries,
//! (2) disconnect wall power, (3) let the system discharge ~5 minutes to
//! stabilize, then (4) run; and they repeat each experiment at least three
//! times, discarding outliers. [`ExperimentProtocol`] reproduces the
//! statistical half: repeated runs, mean/σ, and 2σ outlier flagging.

use mpi_sim::RunResult;
use sim_core::OnlineStats;

/// Protocol configuration.
#[derive(Debug, Clone)]
pub struct ExperimentProtocol {
    /// Number of repetitions ("at least 3 times or more").
    pub repetitions: usize,
    /// Z-score beyond which a run is flagged as an outlier.
    pub outlier_sigma: f64,
}

impl Default for ExperimentProtocol {
    fn default() -> Self {
        ExperimentProtocol {
            repetitions: 3,
            outlier_sigma: 2.0,
        }
    }
}

/// Aggregated protocol outcome.
#[derive(Debug, Clone)]
pub struct ProtocolOutcome {
    /// Total-energy samples per repetition, joules.
    pub energies_j: Vec<f64>,
    /// Duration samples per repetition, seconds.
    pub durations_s: Vec<f64>,
    /// Mean energy over non-outlier runs.
    pub mean_energy_j: f64,
    /// Mean duration over non-outlier runs.
    pub mean_duration_s: f64,
    /// Indices of runs flagged as outliers (by energy).
    pub outliers: Vec<usize>,
}

impl ExperimentProtocol {
    /// Execute `run` `repetitions` times (the closure receives the
    /// repetition index so callers can vary seeds the way a real rerun
    /// perturbs the machine) and aggregate.
    pub fn execute(&self, mut run: impl FnMut(usize) -> RunResult) -> ProtocolOutcome {
        assert!(self.repetitions >= 1, "protocol needs at least one run");
        let results: Vec<RunResult> = (0..self.repetitions).map(&mut run).collect();
        let energies: Vec<f64> = results.iter().map(|r| r.total_energy_j()).collect();
        let durations: Vec<f64> = results.iter().map(|r| r.duration_secs()).collect();

        let mut stats = OnlineStats::new();
        for &e in &energies {
            stats.push(e);
        }
        let sigma = stats.stddev();
        let outliers: Vec<usize> = if sigma > 0.0 {
            energies
                .iter()
                .enumerate()
                .filter(|(_, &e)| ((e - stats.mean()) / sigma).abs() > self.outlier_sigma)
                .map(|(i, _)| i)
                .collect()
        } else {
            Vec::new()
        };

        let keep = |i: &usize| !outliers.contains(i);
        let kept: Vec<usize> = (0..self.repetitions).filter(keep).collect();
        let mean_energy = kept.iter().map(|&i| energies[i]).sum::<f64>() / kept.len() as f64;
        let mean_duration = kept.iter().map(|&i| durations[i]).sum::<f64>() / kept.len() as f64;

        ProtocolOutcome {
            energies_j: energies,
            durations_s: durations,
            mean_energy_j: mean_energy,
            mean_duration_s: mean_duration,
            outliers,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use power_model::EnergyReport;
    use sim_core::SimDuration;

    fn fake_run(energy: f64, secs: f64) -> RunResult {
        RunResult {
            duration: SimDuration::from_secs_f64(secs),
            per_node: vec![],
            total: EnergyReport {
                base_j: energy,
                ..EnergyReport::default()
            },
            breakdown: vec![],
            transitions: vec![],
            samples: vec![],
            trace: vec![],
            trace_dropped: 0,
            freq_residency: vec![],
            events: 0,
            faults: Default::default(),
            metrics: None,
            causal: None,
            attribution: None,
        }
    }

    #[test]
    fn aggregates_identical_runs() {
        let outcome = ExperimentProtocol::default().execute(|_| fake_run(100.0, 10.0));
        assert_eq!(outcome.energies_j, vec![100.0; 3]);
        assert!(outcome.outliers.is_empty());
        assert!((outcome.mean_energy_j - 100.0).abs() < 1e-12);
        assert!((outcome.mean_duration_s - 10.0).abs() < 1e-12);
    }

    #[test]
    fn flags_gross_outlier() {
        let energies = [100.0, 101.0, 99.0, 100.5, 99.5, 100.2, 100.8, 99.2, 500.0];
        let p = ExperimentProtocol {
            repetitions: energies.len(),
            outlier_sigma: 2.0,
        };
        let outcome = p.execute(|i| fake_run(energies[i], 10.0));
        assert_eq!(outcome.outliers, vec![8]);
        assert!(
            (outcome.mean_energy_j - 100.025).abs() < 0.1,
            "outlier excluded from mean: {}",
            outcome.mean_energy_j
        );
    }

    #[test]
    fn run_index_is_passed_through() {
        let p = ExperimentProtocol {
            repetitions: 4,
            outlier_sigma: 10.0,
        };
        let outcome = p.execute(|i| fake_run(100.0 + i as f64, 10.0));
        assert_eq!(outcome.energies_j, vec![100.0, 101.0, 102.0, 103.0]);
    }

    #[test]
    #[should_panic(expected = "at least one run")]
    fn zero_repetitions_rejected() {
        let p = ExperimentProtocol {
            repetitions: 0,
            outlier_sigma: 2.0,
        };
        let _ = p.execute(|_| fake_run(1.0, 1.0));
    }
}
