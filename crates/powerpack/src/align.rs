//! Timestamp-driven profile alignment.
//!
//! The paper: "we created software to filter and align data sets from
//! individual nodes for use in power and performance analysis". In the
//! simulation every node shares one clock, so alignment reduces to
//! aggregations over the engine's sample rows — but the interfaces mirror
//! the real tool's outputs: cluster power profiles and per-node averages.

use mpi_sim::{RunResult, SampleRow};
use sim_core::SimTime;

use crate::phases::phase_intervals;

/// Cluster-wide power profile: `(time, total watts)` per sample.
pub fn aligned_cluster_power(samples: &[SampleRow]) -> Vec<(SimTime, f64)> {
    samples
        .iter()
        .map(|s| (s.time, s.node_power_w.iter().sum()))
        .collect()
}

/// Time-average power of each node over the sampled window, watts.
pub fn node_average_power(samples: &[SampleRow]) -> Vec<f64> {
    if samples.is_empty() {
        return Vec::new();
    }
    let nodes = samples[0].node_power_w.len();
    let mut sums = vec![0.0f64; nodes];
    for s in samples {
        for (i, p) in s.node_power_w.iter().enumerate() {
            sums[i] += p;
        }
    }
    for v in &mut sums {
        *v /= samples.len() as f64;
    }
    sums
}

/// The node whose average power deviates most from the cluster mean, with
/// its deviation — the paper's outlier filter applied spatially (a node
/// with a sick battery or meter shows up here).
pub fn most_deviant_node(samples: &[SampleRow]) -> Option<(usize, f64)> {
    let avgs = node_average_power(samples);
    if avgs.is_empty() {
        return None;
    }
    let mean: f64 = avgs.iter().sum::<f64>() / avgs.len() as f64;
    avgs.iter()
        .enumerate()
        .map(|(i, &p)| (i, (p - mean).abs()))
        .max_by(|a, b| a.1.total_cmp(&b.1))
}

/// Align the exported power samples with the run's phase spans: every
/// sample row is tagged with the names of phases active (on any node) at
/// its timestamp, in first-begin order. This is the join the paper's
/// post-processing performs between the external power profile and the
/// application's instrumentation timeline; samples falling outside every
/// span get an empty tag list rather than being dropped, so the profile
/// keeps its sampling cadence.
pub fn align_samples_with_spans(result: &RunResult) -> Vec<(SimTime, f64, Vec<&'static str>)> {
    let intervals = phase_intervals(&result.trace);
    aligned_cluster_power(&result.samples)
        .into_iter()
        .map(|(t, watts)| {
            let mut active: Vec<&'static str> = Vec::new();
            for &(_, name, start, end) in &intervals {
                if start <= t && t <= end && !active.contains(&name) {
                    active.push(name);
                }
            }
            (t, watts, active)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(t: u64, powers: Vec<f64>) -> SampleRow {
        SampleRow {
            time: SimTime::from_secs(t),
            node_energy_j: vec![0.0; powers.len()],
            node_mhz: vec![1400; powers.len()],
            node_battery_mwh: vec![0; powers.len()],
            node_power_w: powers,
        }
    }

    #[test]
    fn cluster_power_sums_nodes() {
        let samples = vec![row(0, vec![10.0, 20.0]), row(1, vec![12.0, 18.0])];
        let profile = aligned_cluster_power(&samples);
        assert_eq!(profile.len(), 2);
        assert!((profile[0].1 - 30.0).abs() < 1e-12);
        assert!((profile[1].1 - 30.0).abs() < 1e-12);
    }

    #[test]
    fn node_averages_are_per_node_means() {
        let samples = vec![row(0, vec![10.0, 30.0]), row(1, vec![20.0, 30.0])];
        let avg = node_average_power(&samples);
        assert!((avg[0] - 15.0).abs() < 1e-12);
        assert!((avg[1] - 30.0).abs() < 1e-12);
    }

    #[test]
    fn deviant_node_identified() {
        let samples = vec![
            row(0, vec![30.0, 30.0, 55.0]),
            row(1, vec![30.0, 30.0, 55.0]),
        ];
        let (node, dev) = most_deviant_node(&samples).unwrap();
        assert_eq!(node, 2);
        assert!(dev > 10.0);
    }

    #[test]
    fn empty_inputs_are_empty() {
        assert!(aligned_cluster_power(&[]).is_empty());
        assert!(node_average_power(&[]).is_empty());
        assert!(most_deviant_node(&[]).is_none());
    }

    #[test]
    fn samples_tagged_with_active_spans() {
        use mpi_sim::RunResult;
        use power_model::EnergyReport;
        use sim_core::{SimDuration, TraceDetail, TraceEvent, TraceKind};

        let ev = |t: u64, kind, name| TraceEvent {
            time: SimTime::from_secs(t),
            node: 0,
            kind,
            detail: TraceDetail::Phase(name),
        };
        let result = RunResult {
            duration: SimDuration::from_secs(4),
            per_node: vec![EnergyReport::default()],
            total: EnergyReport::default(),
            breakdown: vec![Default::default()],
            transitions: vec![0],
            samples: (0..=4).map(|t| row(t, vec![25.0])).collect(),
            trace: vec![
                ev(1, TraceKind::PhaseBegin, "fft"),
                ev(3, TraceKind::PhaseEnd, "fft"),
            ],
            trace_dropped: 0,
            freq_residency: vec![],
            events: 0,
            metrics: None,
        };
        let aligned = align_samples_with_spans(&result);
        assert_eq!(aligned.len(), 5);
        let tags: Vec<&[&str]> = aligned.iter().map(|(_, _, a)| a.as_slice()).collect();
        assert_eq!(
            tags[0],
            &[] as &[&str],
            "sample before the span is untagged"
        );
        assert_eq!(tags[1], &["fft"]);
        assert_eq!(tags[3], &["fft"], "span end is inclusive");
        assert_eq!(tags[4], &[] as &[&str]);
        assert!((aligned[2].1 - 25.0).abs() < 1e-12);
    }
}
