//! Timestamp-driven profile alignment.
//!
//! The paper: "we created software to filter and align data sets from
//! individual nodes for use in power and performance analysis". In the
//! simulation every node shares one clock, so alignment reduces to
//! aggregations over the engine's sample rows — but the interfaces mirror
//! the real tool's outputs: cluster power profiles and per-node averages.

use mpi_sim::{RunResult, SampleRow};
use sim_core::SimTime;

use crate::phases::phase_intervals;

/// Cluster-wide power profile: `(time, total watts)` per sample.
#[must_use]
pub fn aligned_cluster_power(samples: &[SampleRow]) -> Vec<(SimTime, f64)> {
    samples
        .iter()
        .map(|s| (s.time, s.node_power_w.iter().sum()))
        .collect()
}

/// Time-average power of each node over the sampled window, watts.
pub fn node_average_power(samples: &[SampleRow]) -> Vec<f64> {
    let Some(first) = samples.first() else {
        return Vec::new();
    };
    let nodes = first.node_power_w.len();
    let mut sums = vec![0.0f64; nodes];
    for s in samples {
        for (i, p) in s.node_power_w.iter().enumerate() {
            sums[i] += p;
        }
    }
    for v in &mut sums {
        *v /= samples.len() as f64;
    }
    sums
}

/// The node whose average power deviates most from the cluster mean, with
/// its deviation — the paper's outlier filter applied spatially (a node
/// with a sick battery or meter shows up here).
pub fn most_deviant_node(samples: &[SampleRow]) -> Option<(usize, f64)> {
    let avgs = node_average_power(samples);
    if avgs.is_empty() {
        return None;
    }
    let mean: f64 = avgs.iter().sum::<f64>() / avgs.len() as f64;
    avgs.iter()
        .enumerate()
        .map(|(i, &p)| (i, (p - mean).abs()))
        .max_by(|a, b| a.1.total_cmp(&b.1))
}

/// Nodes whose time-average power deviates from the cluster mean by more
/// than `rel_threshold` (a fraction of that mean, e.g. `0.25`). This is
/// the decision rule behind the paper's data filtering: a node with a
/// stuck battery, biased meter, or injected fault reads far enough from
/// its peers that its profile should not pollute cluster aggregates.
pub fn outlier_nodes(samples: &[SampleRow], rel_threshold: f64) -> Vec<usize> {
    let avgs = node_average_power(samples);
    if avgs.is_empty() {
        return Vec::new();
    }
    let mean: f64 = avgs.iter().sum::<f64>() / avgs.len() as f64;
    if mean.is_nan() || mean <= 0.0 {
        return Vec::new();
    }
    avgs.iter()
        .enumerate()
        .filter(|&(_, &p)| (p - mean).abs() / mean > rel_threshold)
        .map(|(i, _)| i)
        .collect()
}

/// [`aligned_cluster_power`] with outlier nodes actually excluded from the
/// aggregate: returns the filtered `(time, total watts)` profile plus the
/// node indices that were dropped (per [`outlier_nodes`] at
/// `rel_threshold`). With no outliers the profile is bit-identical to the
/// unfiltered one.
#[must_use]
pub fn aligned_cluster_power_filtered(
    samples: &[SampleRow],
    rel_threshold: f64,
) -> (Vec<(SimTime, f64)>, Vec<usize>) {
    let excluded = outlier_nodes(samples, rel_threshold);
    if excluded.is_empty() {
        return (aligned_cluster_power(samples), excluded);
    }
    let profile = samples
        .iter()
        .map(|s| {
            let total = s
                .node_power_w
                .iter()
                .enumerate()
                .filter(|(i, _)| !excluded.contains(i))
                .map(|(_, p)| p)
                .sum();
            (s.time, total)
        })
        .collect();
    (profile, excluded)
}

/// Align the exported power samples with the run's phase spans: every
/// sample row is tagged with the names of phases active (on any node) at
/// its timestamp, in first-begin order. This is the join the paper's
/// post-processing performs between the external power profile and the
/// application's instrumentation timeline; samples falling outside every
/// span get an empty tag list rather than being dropped, so the profile
/// keeps its sampling cadence.
pub fn align_samples_with_spans(result: &RunResult) -> Vec<(SimTime, f64, Vec<&'static str>)> {
    let intervals = phase_intervals(&result.trace);
    let profile = aligned_cluster_power(&result.samples);

    // Sweep instead of rescanning every interval per sample (the legacy
    // O(samples × intervals) join): visit samples in time order, opening
    // intervals as their starts pass and dropping them once their
    // inclusive ends do. Per-sample work is proportional to the intervals
    // actually open at that instant. The open set is kept in first-begin
    // (original) order so tag order and dedup match the full scan exactly.
    let mut by_start: Vec<usize> = (0..intervals.len()).collect();
    by_start.sort_by_key(|&i| intervals[i].2);
    let mut sample_order: Vec<usize> = (0..profile.len()).collect();
    sample_order.sort_by_key(|&s| profile[s].0);

    let mut tags: Vec<Vec<&'static str>> = vec![Vec::new(); profile.len()];
    let mut open: Vec<usize> = Vec::new();
    let mut next = 0;
    for &s in &sample_order {
        let t = profile[s].0;
        while next < by_start.len() && intervals[by_start[next]].2 <= t {
            let idx = by_start[next];
            let at = open.partition_point(|&o| o < idx);
            open.insert(at, idx);
            next += 1;
        }
        open.retain(|&i| t <= intervals[i].3);
        let active = &mut tags[s];
        for &i in &open {
            let name = intervals[i].1;
            if !active.contains(&name) {
                active.push(name);
            }
        }
    }
    profile
        .into_iter()
        .zip(tags)
        .map(|((t, watts), active)| (t, watts, active))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(t: u64, powers: Vec<f64>) -> SampleRow {
        SampleRow {
            time: SimTime::from_secs(t),
            node_energy_j: vec![0.0; powers.len()],
            node_mhz: vec![1400; powers.len()],
            node_battery_mwh: vec![0; powers.len()],
            node_power_w: powers,
        }
    }

    #[test]
    fn cluster_power_sums_nodes() {
        let samples = vec![row(0, vec![10.0, 20.0]), row(1, vec![12.0, 18.0])];
        let profile = aligned_cluster_power(&samples);
        assert_eq!(profile.len(), 2);
        assert!((profile[0].1 - 30.0).abs() < 1e-12);
        assert!((profile[1].1 - 30.0).abs() < 1e-12);
    }

    #[test]
    fn node_averages_are_per_node_means() {
        let samples = vec![row(0, vec![10.0, 30.0]), row(1, vec![20.0, 30.0])];
        let avg = node_average_power(&samples);
        assert!((avg[0] - 15.0).abs() < 1e-12);
        assert!((avg[1] - 30.0).abs() < 1e-12);
    }

    #[test]
    fn deviant_node_identified() {
        let samples = vec![
            row(0, vec![30.0, 30.0, 55.0]),
            row(1, vec![30.0, 30.0, 55.0]),
        ];
        let (node, dev) = most_deviant_node(&samples).unwrap();
        assert_eq!(node, 2);
        assert!(dev > 10.0);
    }

    #[test]
    fn empty_inputs_are_empty() {
        assert!(aligned_cluster_power(&[]).is_empty());
        assert!(node_average_power(&[]).is_empty());
        assert!(most_deviant_node(&[]).is_none());
    }

    #[test]
    fn samples_tagged_with_active_spans() {
        use mpi_sim::RunResult;
        use power_model::EnergyReport;
        use sim_core::{SimDuration, TraceDetail, TraceEvent, TraceKind};

        let ev = |t: u64, kind, name| TraceEvent {
            time: SimTime::from_secs(t),
            node: 0,
            kind,
            detail: TraceDetail::Phase(name),
        };
        let result = RunResult {
            duration: SimDuration::from_secs(4),
            per_node: vec![EnergyReport::default()],
            total: EnergyReport::default(),
            breakdown: vec![Default::default()],
            transitions: vec![0],
            samples: (0..=4).map(|t| row(t, vec![25.0])).collect(),
            trace: vec![
                ev(1, TraceKind::PhaseBegin, "fft"),
                ev(3, TraceKind::PhaseEnd, "fft"),
            ],
            trace_dropped: 0,
            freq_residency: vec![],
            events: 0,
            faults: Default::default(),
            metrics: None,
            causal: None,
            attribution: None,
        };
        let aligned = align_samples_with_spans(&result);
        assert_eq!(aligned.len(), 5);
        let tags: Vec<&[&str]> = aligned.iter().map(|(_, _, a)| a.as_slice()).collect();
        assert_eq!(
            tags[0],
            &[] as &[&str],
            "sample before the span is untagged"
        );
        assert_eq!(tags[1], &["fft"]);
        assert_eq!(tags[3], &["fft"], "span end is inclusive");
        assert_eq!(tags[4], &[] as &[&str]);
        assert!((aligned[2].1 - 25.0).abs() < 1e-12);
    }

    #[test]
    fn sweep_matches_full_scan_on_overlapping_spans() {
        use mpi_sim::RunResult;
        use power_model::EnergyReport;
        use sim_core::{SimDuration, TraceDetail, TraceEvent, TraceKind};

        let ev = |t: u64, node: usize, kind, name| TraceEvent {
            time: SimTime::from_secs(t),
            node,
            kind,
            detail: TraceDetail::Phase(name),
        };
        // Overlapping, nested, and repeated spans across nodes; the "io"
        // span begins later but must still tag behind "fft" (first-begin
        // order), and duplicate "fft" spans must dedup to one tag.
        let trace = vec![
            ev(1, 0, TraceKind::PhaseBegin, "fft"),
            ev(2, 1, TraceKind::PhaseBegin, "io"),
            ev(2, 1, TraceKind::PhaseBegin, "fft"),
            ev(4, 1, TraceKind::PhaseEnd, "fft"),
            ev(5, 0, TraceKind::PhaseEnd, "fft"),
            ev(6, 1, TraceKind::PhaseEnd, "io"),
        ];
        let result = RunResult {
            duration: SimDuration::from_secs(8),
            per_node: vec![EnergyReport::default(); 2],
            total: EnergyReport::default(),
            breakdown: vec![Default::default(); 2],
            transitions: vec![0; 2],
            samples: (0..=8).map(|t| row(t, vec![20.0, 20.0])).collect(),
            trace,
            trace_dropped: 0,
            freq_residency: vec![],
            events: 0,
            faults: Default::default(),
            metrics: None,
            causal: None,
            attribution: None,
        };
        let intervals = phase_intervals(&result.trace);
        // Reference: the legacy full scan, inlined.
        let expect: Vec<Vec<&str>> = aligned_cluster_power(&result.samples)
            .into_iter()
            .map(|(t, _)| {
                let mut active: Vec<&'static str> = Vec::new();
                for &(_, name, start, end) in &intervals {
                    if start <= t && t <= end && !active.contains(&name) {
                        active.push(name);
                    }
                }
                active
            })
            .collect();
        let got: Vec<Vec<&str>> = align_samples_with_spans(&result)
            .into_iter()
            .map(|(_, _, a)| a)
            .collect();
        assert_eq!(got, expect);
        assert_eq!(got[3], vec!["fft", "io"], "first-begin order, deduped");
    }

    #[test]
    fn outlier_nodes_flags_deviant_meter() {
        let samples = vec![
            row(0, vec![30.0, 30.0, 60.0]),
            row(1, vec![30.0, 30.0, 60.0]),
        ];
        assert_eq!(outlier_nodes(&samples, 0.25), vec![2]);
        assert!(outlier_nodes(&samples, 2.0).is_empty());
        assert!(outlier_nodes(&[], 0.25).is_empty());
    }

    #[test]
    fn filtered_cluster_power_excludes_outliers() {
        let samples = vec![
            row(0, vec![30.0, 30.0, 60.0]),
            row(1, vec![30.0, 30.0, 60.0]),
        ];
        let (profile, excluded) = aligned_cluster_power_filtered(&samples, 0.25);
        assert_eq!(excluded, vec![2]);
        assert!((profile[0].1 - 60.0).abs() < 1e-12);
        assert!((profile[1].1 - 60.0).abs() < 1e-12);
        // No outliers => bit-identical to the unfiltered profile.
        let healthy = vec![row(0, vec![30.0, 31.0]), row(1, vec![31.0, 30.0])];
        let (p, e) = aligned_cluster_power_filtered(&healthy, 0.25);
        assert!(e.is_empty());
        assert_eq!(p, aligned_cluster_power(&healthy));
    }
}
