//! Battery-life estimation — how long a cluster of battery-powered nodes
//! can sustain a workload, the operational question behind the paper's
//! DC-powered methodology.

use mpi_sim::RunResult;
use power_model::battery::J_PER_MWH;

/// Estimated battery life, in seconds, of the *worst* (hungriest) node
/// when each node runs from a pack of `capacity_mwh`, assuming the run's
/// average per-node power is sustained. `None` for zero-power runs.
pub fn battery_life_secs(result: &RunResult, capacity_mwh: f64) -> Option<f64> {
    assert!(capacity_mwh > 0.0);
    let duration = result.duration_secs();
    if duration <= 0.0 {
        return None;
    }
    let worst_power = result
        .per_node
        .iter()
        .map(|r| r.total_j() / duration)
        .fold(0.0f64, f64::max);
    if worst_power <= 0.0 {
        None
    } else {
        Some(capacity_mwh * J_PER_MWH / worst_power)
    }
}

/// How many complete runs of this workload a full pack supports on the
/// hungriest node (the paper's iterate-until-measurable protocol in
/// reverse). Zero-energy runs return `None`.
pub fn runs_per_charge(result: &RunResult, capacity_mwh: f64) -> Option<f64> {
    let life = battery_life_secs(result, capacity_mwh)?;
    Some(life / result.duration_secs())
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpi_sim::RankBreakdown;
    use power_model::EnergyReport;
    use sim_core::SimDuration;

    fn run_at(power_w: f64, secs: f64) -> RunResult {
        RunResult {
            duration: SimDuration::from_secs_f64(secs),
            per_node: vec![EnergyReport {
                base_j: power_w * secs,
                ..EnergyReport::default()
            }],
            total: EnergyReport {
                base_j: power_w * secs,
                ..EnergyReport::default()
            },
            breakdown: vec![RankBreakdown::default()],
            transitions: vec![0],
            samples: vec![],
            trace: vec![],
            trace_dropped: 0,
            freq_residency: vec![],
            events: 0,
            faults: Default::default(),
            metrics: None,
            causal: None,
            attribution: None,
        }
    }

    #[test]
    fn life_is_capacity_over_power() {
        // 72 Wh at 36 W -> 2 hours.
        let r = run_at(36.0, 100.0);
        let life = battery_life_secs(&r, 72_000.0).unwrap();
        assert!((life - 7200.0).abs() < 1e-6);
    }

    #[test]
    fn slower_point_lives_longer() {
        let fast = run_at(30.0, 100.0);
        let slow = run_at(18.0, 110.0);
        let lf = battery_life_secs(&fast, 72_000.0).unwrap();
        let ls = battery_life_secs(&slow, 72_000.0).unwrap();
        assert!(ls > lf);
        // But per-*run* economics can differ: check runs_per_charge.
        let rf = runs_per_charge(&fast, 72_000.0).unwrap();
        let rs = runs_per_charge(&slow, 72_000.0).unwrap();
        assert!(rs > rf, "less energy per run -> more runs per charge");
    }

    #[test]
    fn degenerate_runs_return_none() {
        let r = run_at(0.0, 100.0);
        assert!(battery_life_secs(&r, 72_000.0).is_none());
        let mut z = run_at(30.0, 100.0);
        z.duration = SimDuration::ZERO;
        assert!(battery_life_secs(&z, 72_000.0).is_none());
    }

    #[test]
    #[should_panic]
    fn zero_capacity_rejected() {
        let _ = battery_life_secs(&run_at(30.0, 1.0), 0.0);
    }
}
