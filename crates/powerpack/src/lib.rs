//! # powerpack — the measurement framework
//!
//! The paper's PowerPack suite, rebuilt over the simulation:
//!
//! * [`acpi`] — energy measurement by smart-battery polling: readings in
//!   whole mWh that refresh only every 15–20 s, measured as the difference
//!   between the readings bracketing a run (`libbattery.a`'s method);
//! * [`baytech`] — the Baytech remote power strip: per-outlet power
//!   averages reported once a minute over SNMP;
//! * [`align`] — timestamp-driven merging of per-node profiles into
//!   cluster power series (the paper's filter-and-align post-processing);
//! * [`protocol`] — the paper's repeatability protocol: discharge
//!   stabilization, repeated runs, outlier detection;
//! * [`micro`] — the PowerPack microbenchmarks that profile each system
//!   component under DVS: memory-bound (32 MB, 128 B stride), CPU-bound
//!   (256 KB L2-resident walk), register-only, and the two communication
//!   benchmarks (256 KB round trip; 4 KB messages with 64 B stride).

pub mod acpi;
pub mod align;
pub mod battery_life;
pub mod baytech;
pub mod export;
pub mod micro;
pub mod phases;
pub mod protocol;

pub use acpi::{acpi_measured_energy, AcpiPoller};
pub use align::{
    align_samples_with_spans, aligned_cluster_power, aligned_cluster_power_filtered,
    most_deviant_node, node_average_power, outlier_nodes,
};
pub use battery_life::{battery_life_secs, runs_per_charge};
pub use baytech::{baytech_energy, baytech_minute_averages};
pub use export::{samples_to_csv, summary_to_csv, trace_to_csv};
pub use micro::{
    comm_roundtrip_programs, cpu_bound_program, memory_bound_program, register_program,
    CommMicroConfig, MicroConfig,
};
pub use phases::{phase_intervals, phase_time_fraction, profile_phases, PhaseMap, PhaseProfile};
pub use protocol::{ExperimentProtocol, ProtocolOutcome};
