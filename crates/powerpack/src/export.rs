//! CSV export of profiles — the file format PowerPack's post-processing
//! scripts consumed. Pure string builders: callers decide where to write.

use mpi_sim::{RunResult, SampleRow};
use sim_core::{TraceEvent, TraceKind};

/// Power/energy samples as CSV: one row per sample, one power and one
/// energy column per node, plus per-node frequency.
pub fn samples_to_csv(samples: &[SampleRow]) -> String {
    let mut out = String::new();
    let Some(first) = samples.first() else {
        return out;
    };
    let nodes = first.node_power_w.len();
    out.push_str("time_s");
    for n in 0..nodes {
        out.push_str(&format!(
            ",power_w_{n},energy_j_{n},mhz_{n},battery_mwh_{n}"
        ));
    }
    out.push('\n');
    for s in samples {
        out.push_str(&format!("{:.6}", s.time.as_secs_f64()));
        for n in 0..nodes {
            out.push_str(&format!(
                ",{:.3},{:.3},{},{}",
                s.node_power_w[n], s.node_energy_j[n], s.node_mhz[n], s.node_battery_mwh[n]
            ));
        }
        out.push('\n');
    }
    out
}

/// Trace events as CSV (`time_s,node,kind,detail`).
pub fn trace_to_csv(trace: &[TraceEvent]) -> String {
    let mut out = String::from("time_s,node,kind,detail\n");
    for ev in trace {
        let kind = match ev.kind {
            TraceKind::PhaseBegin => "phase_begin",
            TraceKind::PhaseEnd => "phase_end",
            TraceKind::FreqChange => "freq_change",
            TraceKind::MsgStart => "msg_start",
            TraceKind::MsgEnd => "msg_end",
            TraceKind::Sample => "sample",
            TraceKind::Control => "control",
            TraceKind::Other => "other",
        };
        // Details are engine-generated (no commas/quotes by construction),
        // but escape defensively.
        let detail = ev.detail.to_string().replace('"', "\"\"");
        out.push_str(&format!(
            "{:.9},{},{kind},\"{detail}\"\n",
            ev.time.as_secs_f64(),
            ev.node
        ));
    }
    out
}

/// A run summary as CSV (one row per node: energy components, breakdown).
pub fn summary_to_csv(result: &RunResult) -> String {
    let mut out = String::from(
        "node,cpu_dynamic_j,cpu_static_j,base_j,memory_j,nic_j,transition_j,total_j,\
         compute_s,mem_stall_s,wait_busy_s,wait_blocked_s,transition_s,transitions\n",
    );
    for (node, (report, breakdown)) in result.per_node.iter().zip(&result.breakdown).enumerate() {
        out.push_str(&format!(
            "{node},{:.3},{:.3},{:.3},{:.3},{:.3},{:.6},{:.3},{:.4},{:.4},{:.4},{:.4},{:.4},{}\n",
            report.cpu_dynamic_j,
            report.cpu_static_j,
            report.base_j,
            report.memory_j,
            report.nic_j,
            report.transition_j,
            report.total_j(),
            breakdown.compute.as_secs_f64(),
            breakdown.mem_stall.as_secs_f64(),
            breakdown.wait_busy.as_secs_f64(),
            breakdown.wait_blocked.as_secs_f64(),
            breakdown.transition.as_secs_f64(),
            result.transitions[node],
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpi_sim::RankBreakdown;
    use power_model::EnergyReport;
    use sim_core::{SimDuration, SimTime};

    fn sample(t: u64) -> SampleRow {
        SampleRow {
            time: SimTime::from_secs(t),
            node_power_w: vec![30.0, 31.0],
            node_energy_j: vec![30.0 * t as f64, 31.0 * t as f64],
            node_mhz: vec![1400, 600],
            node_battery_mwh: vec![72000, 71999],
        }
    }

    #[test]
    fn samples_csv_has_header_and_rows() {
        let csv = samples_to_csv(&[sample(0), sample(1)]);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].starts_with("time_s,power_w_0"));
        assert!(lines[0].contains("battery_mwh_1"));
        assert!(lines[2].contains("31.000"));
        assert!(lines[2].contains(",600,"));
    }

    #[test]
    fn empty_samples_export_empty() {
        assert!(samples_to_csv(&[]).is_empty());
    }

    #[test]
    fn trace_csv_escapes_and_labels() {
        let trace = vec![TraceEvent {
            time: SimTime::from_secs(1),
            node: 3,
            kind: TraceKind::PhaseBegin,
            detail: sim_core::TraceDetail::Phase("fft"),
        }];
        let csv = trace_to_csv(&trace);
        assert!(csv.contains("phase_begin"));
        assert!(csv.contains("\"fft\""));
        assert!(csv.lines().count() == 2);
    }

    #[test]
    fn summary_csv_one_row_per_node() {
        let result = RunResult {
            duration: SimDuration::from_secs(10),
            per_node: vec![EnergyReport::default(); 2],
            total: EnergyReport::default(),
            breakdown: vec![RankBreakdown::default(); 2],
            transitions: vec![4, 0],
            samples: vec![],
            trace: vec![],
            trace_dropped: 0,
            freq_residency: vec![],
            events: 0,
            faults: Default::default(),
            metrics: None,
            causal: None,
            attribution: None,
        };
        let csv = summary_to_csv(&result);
        assert_eq!(csv.lines().count(), 3);
        assert!(csv.lines().nth(1).unwrap().starts_with("0,"));
        assert!(csv.lines().nth(1).unwrap().ends_with(",4"));
    }
}
