//! ACPI smart-battery energy measurement (`libbattery.a`).
//!
//! The battery registers refresh every 15–20 seconds and report whole mWh.
//! The paper measures a run's energy as `(reading_before - reading_after)
//! × 3.6 J` per node, which is why it runs long problems or iterates
//! executions: the quantization and refresh error amortize over minutes.
//!
//! [`AcpiPoller`] replays an engine sample log the way the ACPI interface
//! would have exposed it: a reading taken at time `t` returns the battery
//! state at the last refresh boundary at or before `t`.

use mpi_sim::SampleRow;
use power_model::battery::J_PER_MWH;
use sim_core::{SimDuration, SimTime};

/// Replays battery readings at a fixed refresh period over a sample log.
#[derive(Debug)]
pub struct AcpiPoller<'a> {
    samples: &'a [SampleRow],
    refresh: SimDuration,
}

impl<'a> AcpiPoller<'a> {
    /// A poller over `samples` (engine output, sampled at least as often
    /// as `refresh`; the paper's hardware refreshes every 15–20 s).
    pub fn new(samples: &'a [SampleRow], refresh: SimDuration) -> Self {
        assert!(!refresh.is_zero(), "refresh period must be positive");
        AcpiPoller { samples, refresh }
    }

    /// The paper's platform: an 18 s refresh (middle of the 15–20 s band).
    pub fn paper(samples: &'a [SampleRow]) -> Self {
        AcpiPoller::new(samples, SimDuration::from_secs(18))
    }

    /// The battery reading (mWh) for `node` as ACPI would report it at
    /// `t`: the value captured at the last refresh boundary at or before
    /// `t`. `None` when no sample precedes that boundary (reading would
    /// be the pre-run full value).
    pub fn reading_at(&self, node: usize, t: SimTime) -> Option<u64> {
        let period = self.refresh.as_ps();
        let boundary = SimTime((t.0 / period) * period);
        self.samples
            .iter()
            .take_while(|s| s.time <= boundary)
            .last()
            .map(|s| s.node_battery_mwh[node])
    }

    /// Refresh period in force.
    pub fn refresh(&self) -> SimDuration {
        self.refresh
    }
}

/// Measure each node's run energy the paper's way: difference between the
/// battery readings bracketing the run (first sample vs. the last
/// refreshed reading), in joules.
///
/// Returns one value per node; empty input yields an empty vector.
pub fn acpi_measured_energy(samples: &[SampleRow], refresh: SimDuration) -> Vec<f64> {
    let (Some(first), Some(last)) = (samples.first(), samples.last()) else {
        return Vec::new();
    };
    let poller = AcpiPoller::new(samples, refresh);
    let nodes = first.node_battery_mwh.len();
    let end = last.time;
    (0..nodes)
        .map(|node| {
            let before = first.node_battery_mwh[node];
            let after = poller.reading_at(node, end).unwrap_or(before);
            (before.saturating_sub(after)) as f64 * J_PER_MWH
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Synthetic sample log: one node draining `watts` for `secs` seconds,
    /// sampled every second.
    fn drain_log(watts: f64, secs: u64) -> Vec<SampleRow> {
        let full = 72_000.0f64;
        (0..=secs)
            .map(|s| {
                let drawn_j = watts * s as f64;
                SampleRow {
                    time: SimTime::from_secs(s),
                    node_power_w: vec![watts],
                    node_energy_j: vec![drawn_j],
                    node_mhz: vec![1400],
                    node_battery_mwh: vec![(full - drawn_j / J_PER_MWH).floor() as u64],
                }
            })
            .collect()
    }

    #[test]
    fn long_run_measurement_is_accurate() {
        // 30 W for 10 minutes = 18 kJ = 5000 mWh: quantization and refresh
        // staleness are sub-percent.
        let log = drain_log(30.0, 600);
        let measured = acpi_measured_energy(&log, SimDuration::from_secs(18));
        let truth = 30.0 * 600.0;
        let err = (measured[0] - truth).abs() / truth;
        assert!(err < 0.05, "relative error {err}");
    }

    #[test]
    fn short_run_suffers_refresh_error() {
        // 30 W for 20 s: the final reading may be up to 18 s stale, losing
        // a large fraction of the energy — the reason the paper iterates
        // short codes.
        let log = drain_log(30.0, 20);
        let measured = acpi_measured_energy(&log, SimDuration::from_secs(18));
        let truth = 30.0 * 20.0;
        assert!(
            measured[0] < truth,
            "short-run ACPI measurement should undercount"
        );
        let err = (truth - measured[0]) / truth;
        assert!(err > 0.05, "expected visible refresh error, got {err}");
    }

    #[test]
    fn reading_at_respects_refresh_boundaries() {
        let log = drain_log(36.0, 100); // 10 J/s = ~2.78 mWh per second
        let p = AcpiPoller::new(&log, SimDuration::from_secs(20));
        // At t=39 s the last refresh was t=20 s.
        let r39 = p.reading_at(0, SimTime::from_secs(39)).unwrap();
        let r20 = log[20].node_battery_mwh[0];
        assert_eq!(r39, r20);
        // At t=40 s it refreshes.
        let r40 = p.reading_at(0, SimTime::from_secs(40)).unwrap();
        assert_eq!(r40, log[40].node_battery_mwh[0]);
        assert!(r40 < r39);
    }

    #[test]
    fn empty_samples_measure_nothing() {
        assert!(acpi_measured_energy(&[], SimDuration::from_secs(18)).is_empty());
    }

    #[test]
    fn paper_poller_uses_18s() {
        let log = drain_log(30.0, 60);
        let p = AcpiPoller::paper(&log);
        assert_eq!(p.refresh(), SimDuration::from_secs(18));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_refresh_rejected() {
        let log: Vec<SampleRow> = Vec::new();
        let _ = AcpiPoller::new(&log, SimDuration::ZERO);
    }
}
