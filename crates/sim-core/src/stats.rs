//! Accumulators used throughout the simulation.
//!
//! * [`TimeWeighted`] integrates a piecewise-constant signal over simulated
//!   time — the power model uses it to turn watts into joules, and the
//!   simulated `/proc/stat` uses it to account busy vs. idle jiffies.
//! * [`OnlineStats`] is a Welford mean/variance accumulator used by the
//!   measurement framework to summarize repeated experiments.

use crate::time::{SimDuration, SimTime};

/// Integrates a piecewise-constant `f64` signal over simulated time.
///
/// The signal holds its current value until [`TimeWeighted::set`] is called
/// with a new one; the integral accumulates `value * dt` in
/// `unit * seconds` (watts in, joules out).
#[derive(Debug, Clone)]
pub struct TimeWeighted {
    last_change: SimTime,
    value: f64,
    integral: f64,
}

impl TimeWeighted {
    /// Start integrating `initial` from time `start`.
    pub fn new(start: SimTime, initial: f64) -> Self {
        TimeWeighted {
            last_change: start,
            value: initial,
            integral: 0.0,
        }
    }

    /// Change the signal to `value` at time `now`, accumulating the segment
    /// that just ended. `now` must not precede the previous change.
    #[inline]
    pub fn set(&mut self, now: SimTime, value: f64) {
        self.advance(now);
        self.value = value;
    }

    /// Accumulate up to `now` without changing the value.
    #[inline]
    pub fn advance(&mut self, now: SimTime) {
        // Always-on: `since` saturates, so a backwards `now` would silently
        // drop the open segment from the integral in release builds —
        // energy-accounting corruption, not a debug-only nicety.
        assert!(
            now >= self.last_change,
            "time went backwards: {now:?} < {:?}",
            self.last_change
        );
        let dt = now.since(self.last_change).as_secs_f64();
        self.integral += self.value * dt;
        self.last_change = now;
    }

    /// The current signal value.
    pub fn value(&self) -> f64 {
        self.value
    }

    /// The integral up to the last `set`/`advance` call, in `unit * seconds`.
    pub fn integral(&self) -> f64 {
        self.integral
    }

    /// The integral including the still-open segment ending at `now`.
    /// `now` must not precede the last `set`/`advance` (signals are only
    /// readable at or after their latest change).
    #[inline]
    pub fn integral_at(&self, now: SimTime) -> f64 {
        // Always-on for the same reason as `advance`: saturating `since`
        // would silently truncate the reported integral.
        assert!(
            now >= self.last_change,
            "integral_at({now:?}) precedes last change {:?}",
            self.last_change
        );
        self.integral + self.value * now.since(self.last_change).as_secs_f64()
    }

    /// Time-weighted average over `[start, now]` given the originating start
    /// time; zero if the window is empty.
    pub fn average(&self, start: SimTime, now: SimTime) -> f64 {
        let span = now.since(start).as_secs_f64();
        if span <= 0.0 {
            0.0
        } else {
            self.integral_at(now) / span
        }
    }
}

/// Welford online mean/variance over a stream of samples.
#[derive(Debug, Clone, Default)]
pub struct OnlineStats {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl OnlineStats {
    /// An empty accumulator.
    pub fn new() -> Self {
        OnlineStats {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Add one sample.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of samples seen.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean, or 0 when empty.
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Unbiased sample variance, or 0 with fewer than two samples.
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn stddev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest sample, or +inf when empty.
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest sample, or -inf when empty.
    pub fn max(&self) -> f64 {
        self.max
    }
}

/// Convenience: duration-weighted sum of `(value, duration)` segments,
/// returning `unit * seconds`.
pub fn weighted_integral(segments: &[(f64, SimDuration)]) -> f64 {
    segments.iter().map(|(v, d)| v * d.as_secs_f64()).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn constant_signal_integrates_linearly() {
        let mut tw = TimeWeighted::new(SimTime::ZERO, 30.0); // 30 W
        tw.advance(SimTime::from_secs(10));
        assert!((tw.integral() - 300.0).abs() < 1e-9); // 300 J
    }

    #[test]
    fn step_change_splits_integral() {
        let mut tw = TimeWeighted::new(SimTime::ZERO, 10.0);
        tw.set(SimTime::from_secs(5), 20.0);
        tw.advance(SimTime::from_secs(10));
        assert!((tw.integral() - (50.0 + 100.0)).abs() < 1e-9);
        assert_eq!(tw.value(), 20.0);
    }

    #[test]
    fn integral_at_includes_open_segment() {
        let tw = TimeWeighted::new(SimTime::ZERO, 2.0);
        assert!((tw.integral_at(SimTime::from_secs(3)) - 6.0).abs() < 1e-9);
    }

    #[test]
    fn average_over_window() {
        let mut tw = TimeWeighted::new(SimTime::ZERO, 0.0);
        tw.set(SimTime::from_secs(5), 10.0);
        let avg = tw.average(SimTime::ZERO, SimTime::from_secs(10));
        assert!((avg - 5.0).abs() < 1e-9);
        // Empty window yields zero rather than NaN.
        assert_eq!(
            tw.average(SimTime::from_secs(3), SimTime::from_secs(3)),
            0.0
        );
    }

    #[test]
    fn online_stats_basic() {
        let mut s = OnlineStats::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.push(x);
        }
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.variance() - 32.0 / 7.0).abs() < 1e-12);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
    }

    #[test]
    fn online_stats_empty_and_single() {
        let mut s = OnlineStats::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
        s.push(3.0);
        assert_eq!(s.mean(), 3.0);
        assert_eq!(s.variance(), 0.0);
    }

    #[test]
    fn weighted_integral_sums_segments() {
        let segs = [
            (10.0, SimDuration::from_secs(2)),
            (5.0, SimDuration::from_secs(4)),
        ];
        assert!((weighted_integral(&segs) - 40.0).abs() < 1e-9);
    }

    proptest! {
        /// The time-weighted integral of a sequence of steps equals the
        /// hand-computed sum of value*dt segments.
        #[test]
        fn prop_integral_matches_manual(steps in proptest::collection::vec((0.0f64..100.0, 1u64..1000), 1..50)) {
            let mut tw = TimeWeighted::new(SimTime::ZERO, 0.0);
            let mut manual = 0.0;
            let mut t = SimTime::ZERO;
            let mut current = 0.0f64;
            for (v, dt_ms) in steps {
                let dt = SimDuration::from_millis(dt_ms);
                manual += current * dt.as_secs_f64();
                t += dt;
                tw.set(t, v);
                current = v;
            }
            prop_assert!((tw.integral() - manual).abs() < 1e-6 * manual.abs().max(1.0));
        }

        /// Welford mean matches the naive mean.
        #[test]
        fn prop_welford_mean(xs in proptest::collection::vec(-1e6f64..1e6, 1..200)) {
            let mut s = OnlineStats::new();
            for &x in &xs { s.push(x); }
            let naive = xs.iter().sum::<f64>() / xs.len() as f64;
            prop_assert!((s.mean() - naive).abs() < 1e-6 * naive.abs().max(1.0));
        }
    }
}
