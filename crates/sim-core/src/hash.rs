//! A fast, deterministic hasher for the simulator's small integer keys.
//!
//! `std`'s default hasher is SipHash behind a per-process random seed:
//! robust against adversarial keys, but an order of magnitude slower than
//! needed for `(rank, rank, tag)` message keys, and randomly seeded — an
//! unnecessary source of run-to-run variation in a simulator that promises
//! bit-identical replays. This is the multiply-rotate scheme used by the
//! Firefox and rustc codebases (commonly known as FxHash): not
//! collision-resistant, entirely sufficient for trusted small keys, and
//! the same in every process.

use std::hash::{BuildHasherDefault, Hasher};

/// Multiply-rotate hasher over machine words. Deterministic: no random
/// state, so identical keys hash identically in every run and process.
#[derive(Debug, Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

const ROTATE: u32 = 5;
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(ROTATE) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            // simlint: allow(panic-path): chunks_exact(8) guarantees 8-byte slices
            self.add(u64::from_le_bytes(chunk.try_into().unwrap()));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut word = [0u8; 8];
            word[..rest.len()].copy_from_slice(rest);
            self.add(u64::from_le_bytes(word));
        }
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.add(v as u64);
    }

    #[inline]
    fn write_u16(&mut self, v: u16) {
        self.add(v as u64);
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.add(v as u64);
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.add(v);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.add(v as u64);
    }
}

/// `BuildHasher` for [`FxHasher`]; stateless, so map construction is free.
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` keyed with [`FxHasher`].
// simlint: allow(nondet-collections): this IS the sanctioned deterministic alias the rule points everyone at
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, FxBuildHasher>;

/// A `HashSet` keyed with [`FxHasher`].
// simlint: allow(nondet-collections): this IS the sanctioned deterministic alias the rule points everyone at
pub type FxHashSet<T> = std::collections::HashSet<T, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_hasher_instances() {
        let hash = |v: u64| {
            let mut h = FxHasher::default();
            h.write_u64(v);
            h.finish()
        };
        assert_eq!(hash(42), hash(42));
        assert_ne!(hash(42), hash(43));
    }

    #[test]
    fn byte_slices_hash_consistently() {
        let hash = |b: &[u8]| {
            let mut h = FxHasher::default();
            h.write(b);
            h.finish()
        };
        assert_eq!(hash(b"hello world"), hash(b"hello world"));
        assert_ne!(hash(b"hello world"), hash(b"hello worle"));
    }

    #[test]
    fn map_and_set_aliases_work() {
        let mut m: FxHashMap<(usize, usize, u32), u64> = FxHashMap::default();
        m.insert((1, 2, 3), 99);
        assert_eq!(m.get(&(1, 2, 3)), Some(&99));
        let mut s: FxHashSet<usize> = FxHashSet::default();
        assert!(s.insert(7));
        assert!(!s.insert(7));
    }
}
