//! The approved float-comparison helpers.
//!
//! Raw `==`/`!=` on `f64` is forbidden in engine code (simlint's
//! `float-eq` rule): most call sites actually mean "close enough", and the
//! few that really mean bitwise identity should say so. These helpers are
//! the two vocabularies — everything else in the workspace goes through
//! them.

/// Absolute-epsilon comparison: `|a - b| <= eps`. NaN never compares
/// equal to anything.
#[inline]
pub fn approx_eq(a: f64, b: f64, eps: f64) -> bool {
    (a - b).abs() <= eps
}

/// Relative comparison: `|a - b| <= rel * max(|a|, |b|)`, with an
/// absolute floor of `rel` itself so values near zero still match.
#[inline]
pub fn rel_eq(a: f64, b: f64, rel: f64) -> bool {
    let scale = a.abs().max(b.abs()).max(1.0);
    (a - b).abs() <= rel * scale
}

/// Intentional exact comparison, for sentinel values (`factor == 1.0`
/// meaning "fault not armed", `cycles == 0.0` meaning "no work") where the
/// value was *assigned*, never computed, and bitwise identity is the
/// contract. The name exists so the intent survives review.
#[inline]
pub fn exact_eq(a: f64, b: f64) -> bool {
    a == b
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn approx_eq_tolerates_eps() {
        assert!(approx_eq(1.0, 1.0 + 1e-12, 1e-9));
        assert!(!approx_eq(1.0, 1.1, 1e-9));
        assert!(!approx_eq(f64::NAN, f64::NAN, 1e-9));
    }

    #[test]
    fn rel_eq_scales_with_magnitude() {
        assert!(rel_eq(1e12, 1e12 * (1.0 + 1e-10), 1e-9));
        assert!(!rel_eq(1e12, 1.01e12, 1e-9));
        // Near-zero values use the absolute floor.
        assert!(rel_eq(0.0, 1e-12, 1e-9));
    }

    #[test]
    fn exact_eq_is_bitwise() {
        assert!(exact_eq(1.0, 1.0));
        assert!(!exact_eq(1.0, 1.0 + f64::EPSILON));
        assert!(!exact_eq(f64::NAN, f64::NAN));
    }
}
