//! Deterministic pseudo-random numbers for workload jitter.
//!
//! The simulation must be reproducible: the same seed yields the same event
//! trace on every platform. We implement xoshiro256** seeded via splitmix64
//! (the reference seeding procedure) rather than pulling in a full RNG crate
//! for the handful of draws the workload generators need.

/// A small, fast, deterministic PRNG (xoshiro256**).
#[derive(Debug, Clone)]
pub struct DetRng {
    state: [u64; 4],
}

fn splitmix64(seed: &mut u64) -> u64 {
    *seed = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *seed;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl DetRng {
    /// Create a generator from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        let mut s = seed;
        let state = [
            splitmix64(&mut s),
            splitmix64(&mut s),
            splitmix64(&mut s),
            splitmix64(&mut s),
        ];
        DetRng { state }
    }

    /// Derive an independent child stream, e.g. one per cluster node, so
    /// per-node jitter does not depend on the order nodes are simulated.
    pub fn fork(&self, stream: u64) -> DetRng {
        // Mix the stream id into fresh splitmix output from our state.
        let [s0, ..] = self.state;
        let mut s = s0 ^ stream.wrapping_mul(0xA076_1D64_78BD_642F);
        let state = [
            splitmix64(&mut s),
            splitmix64(&mut s),
            splitmix64(&mut s),
            splitmix64(&mut s),
        ];
        DetRng { state }
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        let [s0, s1, s2, s3] = &mut self.state;
        let result = s1.wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = *s1 << 17;
        *s2 ^= *s0;
        *s3 ^= *s1;
        *s1 ^= *s2;
        *s0 ^= *s3;
        *s2 ^= t;
        *s3 = s3.rotate_left(45);
        result
    }

    /// Uniform float in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        // 53 top bits -> uniform double in [0,1).
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[lo, hi)`. Panics if the range is empty.
    pub fn gen_range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range [{lo}, {hi})");
        let span = hi - lo;
        // Multiply-shift bounded rejection-free mapping (bias < 2^-64·span,
        // negligible for simulation jitter).
        let hi128 = ((self.next_u64() as u128 * span as u128) >> 64) as u64;
        lo + hi128
    }

    /// A multiplicative jitter factor uniform in `[1-amplitude, 1+amplitude]`.
    ///
    /// Used to perturb per-rank work so the simulated cluster exhibits the
    /// mild natural imbalance real clusters show. `amplitude` is clamped to
    /// `[0, 0.99]`.
    pub fn jitter(&mut self, amplitude: f64) -> f64 {
        let a = amplitude.clamp(0.0, 0.99);
        1.0 - a + 2.0 * a * self.next_f64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = DetRng::new(42);
        let mut b = DetRng::new(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = DetRng::new(1);
        let mut b = DetRng::new(2);
        let same = (0..100).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 2);
    }

    #[test]
    fn forked_streams_are_independent_and_deterministic() {
        let root = DetRng::new(7);
        let mut c1 = root.fork(0);
        let mut c1_again = root.fork(0);
        let mut c2 = root.fork(1);
        assert_eq!(c1.next_u64(), c1_again.next_u64());
        assert_ne!(c1.next_u64(), c2.next_u64());
    }

    #[test]
    fn f64_mean_is_near_half() {
        let mut rng = DetRng::new(99);
        let n = 10_000;
        let mean: f64 = (0..n).map(|_| rng.next_f64()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        DetRng::new(0).gen_range(5, 5);
    }

    proptest! {
        #[test]
        fn prop_f64_in_unit_interval(seed in any::<u64>()) {
            let mut rng = DetRng::new(seed);
            for _ in 0..100 {
                let x = rng.next_f64();
                prop_assert!((0.0..1.0).contains(&x));
            }
        }

        #[test]
        fn prop_gen_range_in_bounds(seed in any::<u64>(), lo in 0u64..1000, span in 1u64..1000) {
            let mut rng = DetRng::new(seed);
            for _ in 0..50 {
                let x = rng.gen_range(lo, lo + span);
                prop_assert!(x >= lo && x < lo + span);
            }
        }

        #[test]
        fn prop_jitter_bounds(seed in any::<u64>(), amp in 0.0f64..0.99) {
            let mut rng = DetRng::new(seed);
            for _ in 0..50 {
                let j = rng.jitter(amp);
                prop_assert!(j >= 1.0 - amp - 1e-12 && j <= 1.0 + amp + 1e-12);
            }
        }
    }
}
