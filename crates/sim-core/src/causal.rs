//! Causal event identity for "blame analysis".
//!
//! When [`causal` recording] is enabled, the engine logs the observable
//! life of every message (post → flow start → drain → delivery) and every
//! blocking wait it released, each wait carrying the identity of the
//! message whose completion ended it. That is exactly the dependency
//! information a critical-path walk needs: in this engine a blocked rank
//! resumes *only* when a message completes (sender side at drain, receiver
//! side at delivery), so the wait→cause edges plus each rank's local
//! execution order form the full happens-before DAG of the run.
//!
//! The types here are pure data — recorded by `mpi-sim`, solved by
//! `obs::causal` — so neither crate needs to depend on the other's
//! internals to agree on edge identity.
//!
//! [`causal` recording]: ../../mpi_sim/struct.EngineConfig.html

use crate::time::SimTime;

/// Index into [`CausalLog::msgs`]; identical to the engine's internal
/// message arena index, recorded in lockstep.
pub type CausalMsgId = usize;

/// The observable life of one point-to-point message (collectives are
/// lowered onto p2p before they reach the engine, so this covers their
/// fan-in/fan-out edges too).
#[derive(Debug, Clone, PartialEq)]
pub struct MsgRecord {
    /// Sending rank.
    pub src: usize,
    /// Receiving rank.
    pub dst: usize,
    /// Payload size.
    pub bytes: u64,
    /// Tag in the reserved collective-internal range.
    pub collective: bool,
    /// When the sender posted.
    pub posted_at: SimTime,
    /// When the payload entered the network: the send post for eager
    /// traffic, the rendezvous match otherwise. `None` only for a message
    /// whose flow never started (a run cut short).
    pub flow_started_at: Option<SimTime>,
    /// When the payload fully drained into the network (sender-side
    /// completion).
    pub drained_at: Option<SimTime>,
    /// When the payload arrived at the receiver (drain + wire latency).
    pub delivered_at: Option<SimTime>,
}

impl MsgRecord {
    /// The instant the network took over: the latest rank-local action
    /// (send post or rendezvous match) that enabled the flow. Falls back
    /// to the post time for flows that never started.
    pub fn enabled_at(&self) -> SimTime {
        self.flow_started_at.unwrap_or(self.posted_at)
    }

    /// The rank whose action at [`MsgRecord::enabled_at`] put the payload
    /// on the wire: the sender when the flow started at the send post
    /// (eager, or rendezvous matched by an earlier receive), otherwise
    /// the receiver whose later rendezvous match released it.
    pub fn enabler(&self) -> usize {
        if self.enabled_at() == self.posted_at {
            self.src
        } else {
            self.dst
        }
    }
}

/// Which message completion released a blocking wait.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WaitCause {
    /// The rank's own send drained into the network.
    SendDrained(CausalMsgId),
    /// A message the rank was receiving arrived.
    RecvDelivered(CausalMsgId),
}

impl WaitCause {
    /// The message whose completion ended the wait.
    pub fn msg(self) -> CausalMsgId {
        match self {
            WaitCause::SendDrained(id) | WaitCause::RecvDelivered(id) => id,
        }
    }
}

/// One blocking wait (a blocked `Send`/`Recv`/`SendRecv` or `WaitAll`)
/// from entry to the message completion that released it, with the node's
/// cumulative energy meter read at both ends so the joules burned while
/// blocked can be attributed without re-integrating the power model.
#[derive(Debug, Clone, PartialEq)]
pub struct WaitRecord {
    /// The waiting rank.
    pub rank: usize,
    /// When the rank blocked.
    pub start: SimTime,
    /// When the releasing completion arrived (`end >= start`).
    pub end: SimTime,
    /// The completion that released the wait. For a wait on several
    /// conditions (`SendRecv`, `WaitAll`) this is the *last* one — the
    /// one that actually gated progress.
    pub cause: WaitCause,
    /// Node cumulative energy at `start`, joules.
    pub energy_start_j: f64,
    /// Node cumulative energy at `end`, joules.
    pub energy_end_j: f64,
}

/// One DVFS transition stall: the frequency switch gates the node's rank
/// locally for the ladder's transition latency.
#[derive(Debug, Clone, PartialEq)]
pub struct DvfsRecord {
    /// The transitioning node.
    pub node: usize,
    /// When the transition began.
    pub start: SimTime,
    /// When the new operating point took effect.
    pub end: SimTime,
}

/// The full causal log of one run: message lifecycles, released waits
/// (chronological per rank, appended in event order), DVFS transition
/// edges, and per-rank completion marks.
///
/// Everything here derives from simulated state in sequential dispatch
/// order, so the log is bit-identical at every shard count.
#[derive(Debug, Clone, PartialEq)]
pub struct CausalLog {
    /// Every posted message, indexed by [`CausalMsgId`].
    pub msgs: Vec<MsgRecord>,
    /// Every released wait, in global event order (per-rank subsequences
    /// are therefore chronological and non-overlapping).
    pub waits: Vec<WaitRecord>,
    /// Every DVFS transition performed.
    pub dvfs: Vec<DvfsRecord>,
    /// Per-rank program completion time.
    pub finish: Vec<SimTime>,
    /// Per-rank node cumulative energy at program completion, joules.
    pub finish_energy_j: Vec<f64>,
}

impl CausalLog {
    /// An empty log for `ranks` ranks.
    pub fn new(ranks: usize) -> Self {
        CausalLog {
            msgs: Vec::new(),
            waits: Vec::new(),
            dvfs: Vec::new(),
            finish: vec![SimTime::ZERO; ranks],
            finish_energy_j: vec![0.0; ranks],
        }
    }

    /// Number of ranks the log covers.
    pub fn ranks(&self) -> usize {
        self.finish.len()
    }

    /// The last rank completion — the run's makespan as an instant. The
    /// lowest-numbered rank wins ties, deterministically.
    pub fn last_finisher(&self) -> Option<(usize, SimTime)> {
        let mut best: Option<(usize, SimTime)> = None;
        for (r, &t) in self.finish.iter().enumerate() {
            if best.map(|(_, bt)| t > bt).unwrap_or(true) {
                best = Some((r, t));
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn msg(posted: u64, flow: u64) -> MsgRecord {
        MsgRecord {
            src: 0,
            dst: 1,
            bytes: 64,
            collective: false,
            posted_at: SimTime(posted),
            flow_started_at: Some(SimTime(flow)),
            drained_at: Some(SimTime(flow + 10)),
            delivered_at: Some(SimTime(flow + 12)),
        }
    }

    #[test]
    fn enabler_is_sender_for_eager_and_receiver_for_rendezvous() {
        // Flow started at the send post: the sender enabled it.
        assert_eq!(msg(5, 5).enabler(), 0);
        // Flow started later (rendezvous matched by the recv): receiver.
        assert_eq!(msg(5, 9).enabler(), 1);
    }

    #[test]
    fn last_finisher_breaks_ties_toward_the_lowest_rank() {
        let mut log = CausalLog::new(3);
        log.finish = vec![SimTime(7), SimTime(9), SimTime(9)];
        assert_eq!(log.last_finisher(), Some((1, SimTime(9))));
        assert_eq!(CausalLog::new(0).last_finisher(), None);
    }

    #[test]
    fn wait_cause_exposes_its_message() {
        assert_eq!(WaitCause::SendDrained(3).msg(), 3);
        assert_eq!(WaitCause::RecvDelivered(4).msg(), 4);
    }
}
