//! Simulated time with picosecond resolution.
//!
//! All simulation components share one monotonically increasing clock.
//! Picoseconds in a `u64` cover ~213 days of simulated time, far beyond the
//! minutes-long runs the paper measures, while still representing a
//! 1.4 GHz CPU cycle (714.28 ps) with sub-0.1% rounding error.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// Picoseconds per nanosecond.
pub const PS_PER_NS: u64 = 1_000;
/// Picoseconds per microsecond.
pub const PS_PER_US: u64 = 1_000_000;
/// Picoseconds per millisecond.
pub const PS_PER_MS: u64 = 1_000_000_000;
/// Picoseconds per second.
pub const PS_PER_SEC: u64 = 1_000_000_000_000;

/// An absolute point on the simulated clock, in picoseconds since the start
/// of the simulation.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(pub u64);

/// A span of simulated time, in picoseconds.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(pub u64);

impl SimTime {
    /// The beginning of the simulation.
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable instant; used as an "infinitely far away"
    /// sentinel for deadlines that are never reached.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Instant `secs` seconds after simulation start.
    pub fn from_secs(secs: u64) -> Self {
        SimTime(secs * PS_PER_SEC)
    }

    /// Elapsed time since `earlier`. Saturates to zero rather than wrapping,
    /// so callers comparing against stale timestamps get a zero span.
    #[inline]
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// This instant expressed in (possibly fractional) seconds.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / PS_PER_SEC as f64
    }
}

impl SimDuration {
    /// The empty span.
    pub const ZERO: SimDuration = SimDuration(0);
    /// The largest representable span.
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// A span of whole picoseconds.
    pub fn from_ps(ps: u64) -> Self {
        SimDuration(ps)
    }

    /// A span of whole nanoseconds.
    pub fn from_nanos(ns: u64) -> Self {
        SimDuration(ns * PS_PER_NS)
    }

    /// A span of whole microseconds.
    pub fn from_micros(us: u64) -> Self {
        SimDuration(us * PS_PER_US)
    }

    /// A span of whole milliseconds.
    pub fn from_millis(ms: u64) -> Self {
        SimDuration(ms * PS_PER_MS)
    }

    /// A span of whole seconds.
    pub fn from_secs(secs: u64) -> Self {
        SimDuration(secs * PS_PER_SEC)
    }

    /// A span of fractional seconds, rounded to the nearest picosecond.
    /// Negative and NaN inputs clamp to zero; spans beyond `u64` saturate.
    #[inline]
    pub fn from_secs_f64(secs: f64) -> Self {
        if secs.is_nan() || secs <= 0.0 {
            return SimDuration::ZERO;
        }
        let ps = secs * PS_PER_SEC as f64;
        if ps >= u64::MAX as f64 {
            SimDuration::MAX
        } else {
            // Round half away from zero, matching `f64::round`, without the
            // libm call (this conversion sits on the engine's hot path).
            // `ps as u64` truncates; above 2^53 `ps` has no fractional part
            // so the truncation is already exact.
            let whole = ps as u64;
            let rounded = whole + (ps - whole as f64 >= 0.5) as u64;
            SimDuration(rounded)
        }
    }

    /// The span in (possibly fractional) seconds.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / PS_PER_SEC as f64
    }

    /// The span in whole picoseconds.
    pub fn as_ps(self) -> u64 {
        self.0
    }

    /// True when the span is zero.
    pub fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Saturating subtraction: `self - other`, or zero if `other` is larger.
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }

    /// Multiply the span by a non-negative factor, rounding to the nearest
    /// picosecond and saturating at the representable maximum.
    #[inline]
    pub fn mul_f64(self, factor: f64) -> SimDuration {
        SimDuration::from_secs_f64(self.as_secs_f64() * factor)
    }

    /// The ratio `self / other` as a float; zero when `other` is zero.
    #[inline]
    pub fn ratio(self, other: SimDuration) -> f64 {
        if other.0 == 0 {
            0.0
        } else {
            self.0 as f64 / other.0 as f64
        }
    }
}

/// Time for `cycles` CPU cycles at clock frequency `freq_hz`.
///
/// This is the single conversion point between the "work" domain (cycles,
/// which scale with DVFS frequency) and the time domain.
#[inline]
pub fn cycles_to_duration(cycles: f64, freq_hz: f64) -> SimDuration {
    assert!(freq_hz > 0.0, "frequency must be positive, got {freq_hz}");
    SimDuration::from_secs_f64(cycles / freq_hz)
}

/// Number of whole cycles a CPU at `freq_hz` completes in `dur`
/// (floating-point; fractional cycles are meaningful for progress tracking).
#[inline]
pub fn duration_to_cycles(dur: SimDuration, freq_hz: f64) -> f64 {
    dur.as_secs_f64() * freq_hz
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimTime {
        // simlint: allow(panic-path): overflowing the 580-year picosecond clock is a caller bug; operator impls cannot return Result
        SimTime(self.0.checked_add(rhs.0).expect("SimTime overflow"))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(
            self.0
                .checked_sub(rhs.0)
                // simlint: allow(panic-path): subtracting a later time is a caller bug; operator impls cannot return Result
                .expect("SimTime subtraction underflow"),
        )
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        // simlint: allow(panic-path): overflowing the 580-year picosecond span is a caller bug; operator impls cannot return Result
        SimDuration(self.0.checked_add(rhs.0).expect("SimDuration overflow"))
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(
            self.0
                .checked_sub(rhs.0)
                // simlint: allow(panic-path): subtracting a longer span is a caller bug; operator impls cannot return Result
                .expect("SimDuration subtraction underflow"),
        )
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        // simlint: allow(panic-path): overflowing the 580-year picosecond span is a caller bug; operator impls cannot return Result
        SimDuration(self.0.checked_mul(rhs).expect("SimDuration overflow"))
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> SimDuration {
        iter.fold(SimDuration::ZERO, |a, b| a + b)
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={}", format_ps(self.0))
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", format_ps(self.0))
    }
}

impl fmt::Debug for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", format_ps(self.0))
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", format_ps(self.0))
    }
}

/// Render a picosecond count with a human-friendly unit.
fn format_ps(ps: u64) -> String {
    if ps >= PS_PER_SEC {
        format!("{:.3}s", ps as f64 / PS_PER_SEC as f64)
    } else if ps >= PS_PER_MS {
        format!("{:.3}ms", ps as f64 / PS_PER_MS as f64)
    } else if ps >= PS_PER_US {
        format!("{:.3}us", ps as f64 / PS_PER_US as f64)
    } else if ps >= PS_PER_NS {
        format!("{:.3}ns", ps as f64 / PS_PER_NS as f64)
    } else {
        format!("{ps}ps")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_arithmetic_roundtrips() {
        let t = SimTime::ZERO + SimDuration::from_micros(5);
        assert_eq!(t.0, 5 * PS_PER_US);
        assert_eq!(t - SimTime::ZERO, SimDuration::from_micros(5));
    }

    #[test]
    fn since_saturates() {
        let a = SimTime(100);
        let b = SimTime(200);
        assert_eq!(a.since(b), SimDuration::ZERO);
        assert_eq!(b.since(a), SimDuration(100));
    }

    #[test]
    fn from_secs_f64_clamps_pathological_inputs() {
        assert_eq!(SimDuration::from_secs_f64(-1.0), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::NAN), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(1e30), SimDuration::MAX);
    }

    #[test]
    fn cycle_conversion_matches_pentium_m() {
        // One cycle at 1.4 GHz is ~714.29 ps.
        let d = cycles_to_duration(1.0, 1.4e9);
        assert_eq!(d.0, 714);
        // A million cycles at 1 GHz is exactly 1 ms.
        let d = cycles_to_duration(1e6, 1e9);
        assert_eq!(d, SimDuration::from_millis(1));
    }

    #[test]
    fn cycle_conversion_roundtrip() {
        let d = cycles_to_duration(1e9, 0.6e9);
        let cycles = duration_to_cycles(d, 0.6e9);
        assert!((cycles - 1e9).abs() / 1e9 < 1e-9);
    }

    #[test]
    #[should_panic(expected = "frequency must be positive")]
    fn zero_frequency_panics() {
        let _ = cycles_to_duration(1.0, 0.0);
    }

    #[test]
    fn duration_seconds_roundtrip() {
        let d = SimDuration::from_secs_f64(12.345);
        assert!((d.as_secs_f64() - 12.345).abs() < 1e-9);
    }

    #[test]
    fn display_picks_sane_units() {
        assert_eq!(SimDuration::from_nanos(110).to_string(), "110.000ns");
        assert_eq!(SimDuration::from_micros(10).to_string(), "10.000us");
        assert_eq!(SimDuration::from_secs(3).to_string(), "3.000s");
        assert_eq!(SimDuration(12).to_string(), "12ps");
    }

    #[test]
    fn mul_and_div_scale() {
        let d = SimDuration::from_millis(10);
        assert_eq!(d * 3, SimDuration::from_millis(30));
        assert_eq!(d / 2, SimDuration::from_millis(5));
        assert_eq!(d.mul_f64(0.5), SimDuration::from_millis(5));
    }

    #[test]
    fn ratio_handles_zero_denominator() {
        assert_eq!(SimDuration(5).ratio(SimDuration::ZERO), 0.0);
        assert_eq!(SimDuration(5).ratio(SimDuration(10)), 0.5);
    }

    #[test]
    fn sum_of_durations() {
        let total: SimDuration = (1..=4).map(SimDuration::from_secs).sum();
        assert_eq!(total, SimDuration::from_secs(10));
    }
}
