//! Bounded in-memory simulation trace.
//!
//! The PowerPack framework in the paper coordinates and aligns measurement
//! records from many nodes. Our simulated equivalent logs structured
//! [`TraceEvent`]s (phase markers, frequency transitions, message
//! lifecycles) that the `powerpack` crate later filters and aligns the same
//! way the paper's post-processing tools do, and that the `obs` crate
//! renders as a Perfetto timeline.
//!
//! Events carry a typed [`TraceDetail`] payload rather than a string:
//! recording is allocation-free (the detail is a `Copy` enum), exporters
//! get structure instead of re-parsing text, and the old string forms are
//! still available through `Display`.

use std::fmt;

use crate::time::SimTime;

/// What kind of thing happened.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TraceKind {
    /// A program phase began (e.g. entering `fft()`).
    PhaseBegin,
    /// A program phase ended.
    PhaseEnd,
    /// A DVFS transition was requested or completed.
    FreqChange,
    /// A message entered the network.
    MsgStart,
    /// A message fully arrived.
    MsgEnd,
    /// A measurement sample was taken (battery/meter poll).
    Sample,
    /// Governor decision or other control action.
    Control,
    /// Anything else.
    Other,
}

/// Typed event payload. `Copy`, so recording never allocates and exporters
/// (CSV, Perfetto) can destructure instead of parsing strings.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TraceDetail {
    /// Nothing beyond the kind.
    None,
    /// A named program phase (PhaseBegin / PhaseEnd).
    Phase(&'static str),
    /// An outgoing message: destination rank and payload size.
    MsgTo {
        /// Destination rank.
        dst: usize,
        /// Payload size in bytes.
        bytes: u64,
    },
    /// An arriving message: source rank.
    MsgFrom {
        /// Source rank.
        src: usize,
    },
    /// A DVFS retarget: operating frequencies before and after.
    Freq {
        /// Frequency before the transition, MHz.
        from_mhz: u32,
        /// Frequency after the transition, MHz.
        to_mhz: u32,
    },
    /// Free-form static label (control actions, samples).
    Label(&'static str),
}

impl TraceDetail {
    /// The phase name, when this detail marks a phase.
    pub fn phase(&self) -> Option<&'static str> {
        match self {
            TraceDetail::Phase(name) => Some(name),
            _ => None,
        }
    }
}

impl fmt::Display for TraceDetail {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceDetail::None => Ok(()),
            TraceDetail::Phase(name) | TraceDetail::Label(name) => f.write_str(name),
            TraceDetail::MsgTo { dst, bytes } => write!(f, "->{dst} {bytes}B"),
            TraceDetail::MsgFrom { src } => write!(f, "<-{src}"),
            TraceDetail::Freq { from_mhz, to_mhz } => write!(f, "{from_mhz}->{to_mhz}"),
        }
    }
}

/// One timestamped trace record.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceEvent {
    /// When it happened.
    pub time: SimTime,
    /// Which node it happened on (`usize::MAX` = cluster-wide).
    pub node: usize,
    /// Category for filtering.
    pub kind: TraceKind,
    /// Structured detail, e.g. `Phase("fft")` or `Freq { 1400, 600 }`.
    pub detail: TraceDetail,
}

/// Node id used for cluster-wide (not node-specific) events.
pub const CLUSTER_NODE: usize = usize::MAX;

/// A bounded event log. When the capacity is reached, the oldest events are
/// discarded (the paper notes their tools must cope with "large amounts of
/// data for typical scientific application runs" — we bound memory instead).
#[derive(Debug)]
pub struct Trace {
    events: std::collections::VecDeque<TraceEvent>,
    capacity: usize,
    dropped: u64,
    enabled: bool,
}

impl Trace {
    /// A trace holding at most `capacity` events.
    pub fn new(capacity: usize) -> Self {
        Trace {
            events: std::collections::VecDeque::with_capacity(capacity.min(4096)),
            capacity,
            dropped: 0,
            enabled: true,
        }
    }

    /// A disabled trace that records nothing (zero overhead in hot loops
    /// beyond a branch).
    pub fn disabled() -> Self {
        let mut t = Trace::new(0);
        t.enabled = false;
        t
    }

    /// Whether events are being recorded.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Record an event.
    pub fn record(&mut self, time: SimTime, node: usize, kind: TraceKind, detail: TraceDetail) {
        self.record_with(time, node, kind, || detail);
    }

    /// Record an event, building the detail lazily: `detail` runs only if
    /// the event will actually be retained (or counted as dropped), so a
    /// disabled trace pays nothing — not even the detail's construction.
    pub fn record_with(
        &mut self,
        time: SimTime,
        node: usize,
        kind: TraceKind,
        detail: impl FnOnce() -> TraceDetail,
    ) {
        if !self.enabled {
            return;
        }
        if self.capacity == 0 {
            self.dropped += 1;
            return;
        }
        if self.events.len() == self.capacity {
            self.events.pop_front();
            self.dropped += 1;
        }
        self.events.push_back(TraceEvent {
            time,
            node,
            kind,
            detail: detail(),
        });
    }

    /// All retained events in chronological order.
    pub fn events(&self) -> impl Iterator<Item = &TraceEvent> {
        self.events.iter()
    }

    /// Retained events matching `kind`.
    pub fn of_kind(&self, kind: TraceKind) -> impl Iterator<Item = &TraceEvent> {
        self.events.iter().filter(move |e| e.kind == kind)
    }

    /// Retained events for one node.
    pub fn for_node(&self, node: usize) -> impl Iterator<Item = &TraceEvent> {
        self.events.iter().filter(move |e| e.node == node)
    }

    /// How many events were discarded due to the capacity bound.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when nothing is retained.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(trace: &mut Trace, t: u64, node: usize, kind: TraceKind) {
        trace.record(SimTime(t), node, kind, TraceDetail::Label("x"));
    }

    #[test]
    fn records_in_order() {
        let mut t = Trace::new(10);
        ev(&mut t, 1, 0, TraceKind::PhaseBegin);
        ev(&mut t, 2, 0, TraceKind::PhaseEnd);
        let times: Vec<u64> = t.events().map(|e| e.time.0).collect();
        assert_eq!(times, vec![1, 2]);
    }

    #[test]
    fn capacity_drops_oldest() {
        let mut t = Trace::new(3);
        for i in 0..5 {
            ev(&mut t, i, 0, TraceKind::Other);
        }
        assert_eq!(t.len(), 3);
        assert_eq!(t.dropped(), 2);
        let times: Vec<u64> = t.events().map(|e| e.time.0).collect();
        assert_eq!(times, vec![2, 3, 4]);
    }

    #[test]
    fn filters_by_kind_and_node() {
        let mut t = Trace::new(10);
        ev(&mut t, 1, 0, TraceKind::FreqChange);
        ev(&mut t, 2, 1, TraceKind::FreqChange);
        ev(&mut t, 3, 0, TraceKind::Sample);
        assert_eq!(t.of_kind(TraceKind::FreqChange).count(), 2);
        assert_eq!(t.for_node(0).count(), 2);
        assert_eq!(t.for_node(1).count(), 1);
    }

    #[test]
    fn disabled_trace_records_nothing() {
        let mut t = Trace::disabled();
        ev(&mut t, 1, 0, TraceKind::Other);
        assert!(t.is_empty());
        assert!(!t.is_enabled());
    }

    #[test]
    fn disabled_trace_never_runs_the_detail_closure() {
        let mut t = Trace::disabled();
        let mut ran = false;
        t.record_with(SimTime(1), 0, TraceKind::Other, || {
            ran = true;
            TraceDetail::None
        });
        assert!(!ran, "disabled trace must not build details");

        // An enabled zero-capacity trace counts the drop without building
        // the detail either.
        let mut t = Trace::new(0);
        let mut ran = false;
        t.record_with(SimTime(1), 0, TraceKind::Other, || {
            ran = true;
            TraceDetail::None
        });
        assert!(!ran);
        assert_eq!(t.dropped(), 1);
    }

    #[test]
    fn zero_capacity_counts_drops() {
        let mut t = Trace::new(0);
        ev(&mut t, 1, 0, TraceKind::Other);
        assert!(t.is_empty());
        assert_eq!(t.dropped(), 1);
    }

    #[test]
    fn detail_display_matches_legacy_strings() {
        assert_eq!(TraceDetail::Phase("fft").to_string(), "fft");
        assert_eq!(
            TraceDetail::MsgTo {
                dst: 3,
                bytes: 1024
            }
            .to_string(),
            "->3 1024B"
        );
        assert_eq!(TraceDetail::MsgFrom { src: 2 }.to_string(), "<-2");
        assert_eq!(
            TraceDetail::Freq {
                from_mhz: 1400,
                to_mhz: 600
            }
            .to_string(),
            "1400->600"
        );
        assert_eq!(TraceDetail::None.to_string(), "");
        assert_eq!(TraceDetail::Phase("fft").phase(), Some("fft"));
        assert_eq!(TraceDetail::MsgFrom { src: 2 }.phase(), None);
    }
}
