//! A global deduplicating string interner for `&'static str` payloads.
//!
//! Several hot-path types carry `&'static str` fields so recording them
//! never allocates ([`crate::trace::TraceDetail::Phase`], program phase
//! markers). Decoding those types back from a persisted byte stream (the
//! SweepStore result cache) needs to mint equivalent `&'static str`
//! values at runtime. [`intern_static`] does that by leaking each
//! *distinct* string exactly once and handing the same reference back on
//! every later request, so the leaked footprint is bounded by the set of
//! distinct names ever decoded — in practice the handful of phase labels
//! a workload defines.

use std::collections::BTreeSet;
use std::sync::Mutex;

static POOL: Mutex<BTreeSet<&'static str>> = Mutex::new(BTreeSet::new());

/// Return a `&'static str` equal to `s`, leaking at most one copy per
/// distinct string for the life of the process. Deterministic: the same
/// input always yields the same pointer within a process, and only the
/// string *contents* ever reach simulation state.
pub fn intern_static(s: &str) -> &'static str {
    let mut pool = POOL.lock().unwrap_or_else(|poisoned| poisoned.into_inner());
    if let Some(existing) = pool.get(s) {
        return existing;
    }
    let leaked: &'static str = Box::leak(s.to_owned().into_boxed_str());
    pool.insert(leaked);
    leaked
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn returns_equal_contents() {
        assert_eq!(intern_static("fft"), "fft");
        assert_eq!(intern_static(""), "");
    }

    #[test]
    fn dedupes_to_the_same_pointer() {
        let a = intern_static("sweepstore-test-phase");
        let owned = String::from("sweepstore-test-phase");
        let b = intern_static(&owned);
        assert!(std::ptr::eq(a, b), "same contents must intern once");
    }

    #[test]
    fn distinct_strings_stay_distinct() {
        assert_ne!(intern_static("alpha"), intern_static("beta"));
    }
}
