//! Deterministic fault injection: typed fault specifications and counters.
//!
//! The paper's measurement pipeline is built to survive imperfect
//! instruments — quantized ACPI batteries, a "sick battery or meter" node
//! the post-processing filters out, per-node performance variation. A
//! [`FaultSpec`] describes such imperfections for one simulated run:
//! straggler nodes, stuck or noisy battery registers, skipped sampling
//! windows, DVFS transition failures and latency spikes, and degraded
//! network links. The spec is plain data; the engine owns the runtime
//! that draws from a [`crate::DetRng`] seeded by [`FaultSpec::seed`], so
//! the same spec plus the same seed reproduces the same faults bit for
//! bit, on any worker-thread count.
//!
//! An empty spec (the default) injects nothing and leaves the engine's
//! output bit-identical to a build without fault support.

/// One injectable imperfection. Node indices refer to cluster positions;
/// the engine validates them against the actual cluster size.
#[derive(Debug, Clone, PartialEq)]
pub enum Fault {
    /// Node `node` is a straggler: every compute segment costs
    /// `factor` times the cycles (factor > 1 slows the node down).
    /// Memory-stall time and network time are unaffected, like a CPU
    /// running hot and throttling.
    ComputeSlowdown {
        /// Target node.
        node: usize,
        /// Cycle multiplier, > 0 (1.0 is a no-op).
        factor: f64,
    },
    /// Node `node`'s battery register freezes after `after_s` simulated
    /// seconds: every later poll repeats the last reading (the paper's
    /// "sick battery").
    BatteryStuck {
        /// Target node.
        node: usize,
        /// Simulated seconds after which readings freeze.
        after_s: f64,
    },
    /// Node `node`'s battery readings carry uniform noise of up to
    /// `amplitude_mwh` in either direction (a flaky ACPI controller).
    BatteryNoise {
        /// Target node.
        node: usize,
        /// Maximum deviation, whole mWh.
        amplitude_mwh: u64,
    },
    /// Node `node`'s sampled power is scaled by `factor` — a
    /// miscalibrated external meter. Only the measurement tap
    /// (`SampleRow::node_power_w`) is biased; ground-truth energy is
    /// untouched, so the outlier filter can catch the lie.
    MeterBias {
        /// Target node.
        node: usize,
        /// Power multiplier, > 0.
        factor: f64,
    },
    /// Each periodic sampling window is skipped with this probability
    /// (an ACPI poll that timed out). Sampling cadence resumes at the
    /// next window.
    SampleSkip {
        /// Skip probability in [0, 1].
        probability: f64,
    },
    /// DVFS transition requests on `node` fail with this probability:
    /// the governor's decision is silently dropped and the node stays
    /// at its current operating point.
    DvfsFail {
        /// Target node.
        node: usize,
        /// Failure probability in [0, 1].
        probability: f64,
    },
    /// DVFS transitions on `node` take `factor` times the ladder's
    /// nominal latency (a slow voltage regulator).
    DvfsLatency {
        /// Target node.
        node: usize,
        /// Latency multiplier, > 0.
        factor: f64,
    },
    /// Node `node`'s network link runs at `bandwidth_factor` of the
    /// nominal link rate (duplex mismatch, a failing cable).
    DegradedLink {
        /// Target node.
        node: usize,
        /// Bandwidth multiplier in (0, 1].
        bandwidth_factor: f64,
    },
}

impl Fault {
    /// The node this fault targets, if it is node-scoped.
    pub fn node(&self) -> Option<usize> {
        match *self {
            Fault::ComputeSlowdown { node, .. }
            | Fault::BatteryStuck { node, .. }
            | Fault::BatteryNoise { node, .. }
            | Fault::MeterBias { node, .. }
            | Fault::DvfsFail { node, .. }
            | Fault::DvfsLatency { node, .. }
            | Fault::DegradedLink { node, .. } => Some(node),
            Fault::SampleSkip { .. } => None,
        }
    }
}

/// A complete fault-injection plan for one run: a seed for the fault RNG
/// streams plus the list of faults to arm. Attached to the engine
/// configuration; the default (empty) spec injects nothing and keeps the
/// simulation bit-identical to a fault-free build.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultSpec {
    /// Seed for the fault RNG (independent of workload jitter seeds).
    pub seed: u64,
    /// Faults to arm.
    pub faults: Vec<Fault>,
}

/// Seed used when a spec string does not name one.
pub const DEFAULT_FAULT_SEED: u64 = 0x5EED_FA17;

impl Default for FaultSpec {
    fn default() -> Self {
        FaultSpec {
            seed: DEFAULT_FAULT_SEED,
            faults: Vec::new(),
        }
    }
}

impl FaultSpec {
    /// An empty spec with an explicit seed.
    pub fn new(seed: u64) -> Self {
        FaultSpec {
            seed,
            faults: Vec::new(),
        }
    }

    /// Builder-style: arm one more fault.
    pub fn with(mut self, fault: Fault) -> Self {
        self.faults.push(fault);
        self
    }

    /// True when nothing is armed — the engine skips fault bookkeeping
    /// entirely and output is bit-identical to a fault-free run.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// Parse the CLI spec grammar: comma-separated entries, each
    /// `kind:args` with colon-separated fields.
    ///
    /// ```text
    /// seed:<u64>                     fault RNG seed (default 0x5EEDFA17)
    /// slow:<node>:<factor>           compute slowdown (straggler)
    /// battery-stuck:<node>:<secs>    battery register freezes after t
    /// battery-noise:<node>:<mwh>     ± uniform noise on battery reads
    /// meter-bias:<node>:<factor>     sampled power scaled by factor
    /// skip-sample:<prob>             drop each sampling window w.p. p
    /// dvfs-fail:<node>:<prob>        transition requests fail w.p. p
    /// dvfs-latency:<node>:<factor>   transition latency scaled by factor
    /// weak-link:<node>:<factor>      link bandwidth scaled to factor
    /// ```
    ///
    /// An empty string parses to the empty spec.
    pub fn parse(spec: &str) -> Result<FaultSpec, String> {
        let mut out = FaultSpec::default();
        for entry in spec.split(',') {
            let entry = entry.trim();
            if entry.is_empty() {
                continue;
            }
            let mut fields = entry.split(':');
            let kind = fields.next().unwrap_or("");
            let rest: Vec<&str> = fields.collect();
            match kind {
                "seed" => {
                    out.seed = parse_one(entry, &rest)?
                        .parse::<u64>()
                        .map_err(|_| format!("bad seed in '{entry}'"))?;
                }
                "slow" => {
                    let (node, factor) = parse_node_f64(entry, &rest)?;
                    check_positive(entry, factor)?;
                    out.faults.push(Fault::ComputeSlowdown { node, factor });
                }
                "battery-stuck" => {
                    let (node, after_s) = parse_node_f64(entry, &rest)?;
                    if !(after_s >= 0.0 && after_s.is_finite()) {
                        return Err(format!("'{entry}': time must be >= 0 seconds"));
                    }
                    out.faults.push(Fault::BatteryStuck { node, after_s });
                }
                "battery-noise" => {
                    let (node, raw) = parse_node_field(entry, &rest)?;
                    let amplitude_mwh = raw
                        .parse::<u64>()
                        .map_err(|_| format!("bad mWh amplitude in '{entry}'"))?;
                    out.faults.push(Fault::BatteryNoise {
                        node,
                        amplitude_mwh,
                    });
                }
                "meter-bias" => {
                    let (node, factor) = parse_node_f64(entry, &rest)?;
                    check_positive(entry, factor)?;
                    out.faults.push(Fault::MeterBias { node, factor });
                }
                "skip-sample" => {
                    let probability = parse_one(entry, &rest)?
                        .parse::<f64>()
                        .map_err(|_| format!("bad probability in '{entry}'"))?;
                    check_probability(entry, probability)?;
                    out.faults.push(Fault::SampleSkip { probability });
                }
                "dvfs-fail" => {
                    let (node, probability) = parse_node_f64(entry, &rest)?;
                    check_probability(entry, probability)?;
                    out.faults.push(Fault::DvfsFail { node, probability });
                }
                "dvfs-latency" => {
                    let (node, factor) = parse_node_f64(entry, &rest)?;
                    check_positive(entry, factor)?;
                    out.faults.push(Fault::DvfsLatency { node, factor });
                }
                "weak-link" => {
                    let (node, bandwidth_factor) = parse_node_f64(entry, &rest)?;
                    if !(bandwidth_factor > 0.0 && bandwidth_factor <= 1.0) {
                        return Err(format!("'{entry}': bandwidth factor must be in (0, 1]"));
                    }
                    out.faults.push(Fault::DegradedLink {
                        node,
                        bandwidth_factor,
                    });
                }
                other => {
                    return Err(format!(
                        "unknown fault kind '{other}' (in '{entry}'); see --faults grammar"
                    ))
                }
            }
        }
        Ok(out)
    }

    /// The largest node index any fault targets, if any is node-scoped.
    pub fn max_node(&self) -> Option<usize> {
        self.faults.iter().filter_map(Fault::node).max()
    }
}

fn parse_one<'a>(entry: &str, rest: &[&'a str]) -> Result<&'a str, String> {
    match rest {
        [v] => Ok(v),
        _ => Err(format!("'{entry}': expected one value after the kind")),
    }
}

fn parse_node_field<'a>(entry: &str, rest: &[&'a str]) -> Result<(usize, &'a str), String> {
    match rest {
        [node, value] => {
            let node = node
                .parse::<usize>()
                .map_err(|_| format!("bad node index in '{entry}'"))?;
            Ok((node, value))
        }
        _ => Err(format!("'{entry}': expected <node>:<value>")),
    }
}

fn parse_node_f64(entry: &str, rest: &[&str]) -> Result<(usize, f64), String> {
    let (node, raw) = parse_node_field(entry, rest)?;
    let value = raw
        .parse::<f64>()
        .map_err(|_| format!("bad number in '{entry}'"))?;
    Ok((node, value))
}

fn check_positive(entry: &str, value: f64) -> Result<(), String> {
    if value > 0.0 && value.is_finite() {
        Ok(())
    } else {
        Err(format!("'{entry}': factor must be positive and finite"))
    }
}

fn check_probability(entry: &str, value: f64) -> Result<(), String> {
    if (0.0..=1.0).contains(&value) {
        Ok(())
    } else {
        Err(format!("'{entry}': probability must be in [0, 1]"))
    }
}

/// How many of each fault the engine actually injected during a run,
/// plus measurement errors it degraded instead of panicking on. Always
/// present in the run result; all-zero when no faults were armed.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
#[must_use]
pub struct FaultCounts {
    /// Compute segments stretched by a straggler factor.
    pub compute_slowdowns: u64,
    /// DVFS transition requests dropped by an injected failure.
    pub dvfs_failures: u64,
    /// DVFS transitions whose latency was spiked.
    pub dvfs_latency_spikes: u64,
    /// Battery polls that repeated a frozen reading.
    pub battery_stuck_reads: u64,
    /// Battery polls perturbed by injected noise.
    pub battery_noisy_reads: u64,
    /// Measurement-layer errors (e.g. a battery reading that went the
    /// wrong way) degraded to the last good reading instead of panicking.
    pub battery_errors: u64,
    /// Periodic sampling windows skipped outright.
    pub samples_skipped: u64,
    /// Per-node power samples scaled by a meter bias.
    pub meter_biased_samples: u64,
    /// Nodes whose network link was degraded at startup.
    pub degraded_links: u64,
}

impl FaultCounts {
    /// Total injected-fault events (including degraded measurement
    /// errors).
    pub fn total(&self) -> u64 {
        self.compute_slowdowns
            + self.dvfs_failures
            + self.dvfs_latency_spikes
            + self.battery_stuck_reads
            + self.battery_noisy_reads
            + self.battery_errors
            + self.samples_skipped
            + self.meter_biased_samples
            + self.degraded_links
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_spec_is_empty() {
        let s = FaultSpec::default();
        assert!(s.is_empty());
        assert_eq!(s.seed, DEFAULT_FAULT_SEED);
        assert_eq!(s.max_node(), None);
    }

    #[test]
    fn empty_string_parses_to_empty_spec() {
        assert_eq!(FaultSpec::parse("").unwrap(), FaultSpec::default());
        assert_eq!(FaultSpec::parse(" , ").unwrap(), FaultSpec::default());
    }

    #[test]
    fn full_grammar_round_trips() {
        let s = FaultSpec::parse(
            "seed:42,slow:2:1.5,battery-stuck:0:10,battery-noise:1:5,\
             meter-bias:1:1.3,skip-sample:0.2,dvfs-fail:2:0.1,\
             dvfs-latency:2:4,weak-link:3:0.25",
        )
        .unwrap();
        assert_eq!(s.seed, 42);
        assert_eq!(s.faults.len(), 8);
        assert!(!s.is_empty());
        assert_eq!(s.max_node(), Some(3));
        assert_eq!(
            s.faults[0],
            Fault::ComputeSlowdown {
                node: 2,
                factor: 1.5
            }
        );
        assert_eq!(
            s.faults[8 - 1],
            Fault::DegradedLink {
                node: 3,
                bandwidth_factor: 0.25
            }
        );
    }

    #[test]
    fn whitespace_is_tolerated() {
        let s = FaultSpec::parse(" slow:0:2.0 , seed:7 ").unwrap();
        assert_eq!(s.seed, 7);
        assert_eq!(s.faults.len(), 1);
    }

    #[test]
    fn bad_entries_are_rejected() {
        for bad in [
            "frobnicate:1:2",
            "slow:1",
            "slow:x:2",
            "slow:1:0",
            "slow:1:-3",
            "skip-sample:1.5",
            "dvfs-fail:0:2",
            "weak-link:0:0",
            "weak-link:0:1.5",
            "battery-noise:0:-1",
            "battery-stuck:0:-5",
            "seed:abc",
            "slow:1:2:3",
        ] {
            assert!(FaultSpec::parse(bad).is_err(), "'{bad}' should not parse");
        }
    }

    #[test]
    fn builder_accumulates_faults() {
        let s = FaultSpec::new(9).with(Fault::SampleSkip { probability: 0.5 });
        assert_eq!(s.seed, 9);
        assert_eq!(s.faults.len(), 1);
        assert_eq!(s.faults[0].node(), None);
    }

    #[test]
    fn counts_total_sums_every_field() {
        let c = FaultCounts {
            compute_slowdowns: 1,
            dvfs_failures: 2,
            dvfs_latency_spikes: 3,
            battery_stuck_reads: 4,
            battery_noisy_reads: 5,
            battery_errors: 6,
            samples_skipped: 7,
            meter_biased_samples: 8,
            degraded_links: 9,
        };
        assert_eq!(c.total(), 45);
        assert_eq!(FaultCounts::default().total(), 0);
    }
}
