//! # sim-core — deterministic discrete-event simulation core
//!
//! Foundation for the `pwrperf` reproduction of Ge, Feng and Cameron,
//! *"Improvement of Power-Performance Efficiency for High-End Computing"*
//! (IPPS 2005). Every higher-level substrate (cluster, network, MPI runtime,
//! DVFS governors, measurement framework) is built on the primitives here:
//!
//! * [`SimTime`] / [`SimDuration`] — picosecond-resolution simulated time.
//!   A 1.4 GHz Pentium-M cycle is ~714 ps; minutes-long cluster runs fit in a
//!   `u64` with five orders of magnitude to spare.
//! * [`EventQueue`] — a stable priority queue of timestamped events.
//!   Ties are broken by insertion sequence number so simulations are
//!   bit-for-bit reproducible regardless of heap internals.
//! * [`DetRng`] — a small deterministic PRNG (splitmix64-seeded
//!   xoshiro256**) used for workload jitter. Same seed, same stream.
//! * [`TimeWeighted`] — time-weighted integrators used by the power model
//!   and the simulated `/proc/stat`.
//! * [`trace`] — a bounded in-memory trace for debugging and for the
//!   PowerPack-style profile alignment tools.
//! * [`faults`] — typed, seed-deterministic fault-injection specs
//!   (stragglers, sick batteries, flaky DVFS, weak links) consumed by the
//!   engine; empty specs are guaranteed bit-identical to no spec at all.

pub mod causal;
pub mod event;
pub mod faults;
pub mod float;
pub mod hash;
pub mod intern;
pub mod rng;
pub mod stats;
pub mod time;
pub mod trace;

pub use causal::{CausalLog, CausalMsgId, DvfsRecord, MsgRecord, WaitCause, WaitRecord};
pub use event::{EventQueue, QueuedEvent};
pub use faults::{Fault, FaultCounts, FaultSpec, DEFAULT_FAULT_SEED};
pub use hash::{FxBuildHasher, FxHashMap, FxHashSet};
pub use intern::intern_static;
pub use rng::DetRng;
pub use stats::{OnlineStats, TimeWeighted};
pub use time::{cycles_to_duration, duration_to_cycles, SimDuration, SimTime};
pub use trace::{Trace, TraceDetail, TraceEvent, TraceKind};
