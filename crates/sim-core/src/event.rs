//! Stable, deterministic event queue.
//!
//! A discrete-event simulation is only reproducible if simultaneous events
//! pop in a defined order. [`EventQueue`] therefore tags every pushed event
//! with a monotonically increasing sequence number and orders by
//! `(time, seq)`: earlier times first, and among equal times, earlier
//! insertions first (FIFO). The key is a total order, so runs are
//! bit-for-bit identical across platforms and heap implementations.
//!
//! ## Cancellation
//!
//! Cancellation uses a slot/generation tombstone scheme instead of a
//! hash set of cancelled handles: each pushed event borrows a slot from a
//! small slab (recycled once the event pops or is cancelled) and its
//! handle packs `(slot, generation)`. Cancelling bumps the slot's
//! generation, so the stale heap entry is recognized and skipped when it
//! reaches the front — O(1) cancel with no per-event allocation, and an
//! exact live count at all times.

use crate::time::SimTime;

/// An event with its scheduled time and tie-breaking sequence number.
#[derive(Debug, Clone)]
pub struct QueuedEvent<E> {
    /// When the event fires.
    pub time: SimTime,
    /// Insertion order, used to break ties deterministically.
    pub seq: u64,
    /// The payload delivered to the simulation.
    pub event: E,
}

struct Entry<E> {
    time: SimTime,
    seq: u64,
    /// Packed `(generation << 32) | slot` identifying the slab slot this
    /// entry was live in when pushed.
    handle: u64,
    event: E,
}

impl<E> Entry<E> {
    /// Heap ordering key: earlier time first, then insertion order.
    /// `seq` is unique, so this is a total order and any correct heap
    /// pops entries in exactly the same sequence.
    #[inline]
    fn key(&self) -> (SimTime, u64) {
        (self.time, self.seq)
    }
}

/// A 4-ary min-heap on `Entry::key()`. Replaces `std`'s binary
/// `BinaryHeap`: the wider node fits one cache line of keys, halves the
/// tree depth, and benches ~25% faster on the engine's push/pop mix.
/// Pop order is identical — the key is a total order.
struct MinHeap<E> {
    data: Vec<Entry<E>>,
}

const ARITY: usize = 4;

impl<E> MinHeap<E> {
    fn with_capacity(capacity: usize) -> Self {
        MinHeap {
            data: Vec::with_capacity(capacity),
        }
    }

    #[inline]
    fn peek(&self) -> Option<&Entry<E>> {
        self.data.first()
    }

    fn push(&mut self, entry: Entry<E>) {
        self.data.push(entry);
        // Sift up.
        let mut i = self.data.len() - 1;
        while i > 0 {
            let parent = (i - 1) / ARITY;
            if self.data[i].key() < self.data[parent].key() {
                self.data.swap(i, parent);
                i = parent;
            } else {
                break;
            }
        }
    }

    fn pop(&mut self) -> Option<Entry<E>> {
        if self.data.is_empty() {
            return None;
        }
        let root = self.data.swap_remove(0);
        // Sift the relocated tail element down.
        let len = self.data.len();
        let mut i = 0;
        loop {
            let first_child = i * ARITY + 1;
            if first_child >= len {
                break;
            }
            let last_child = (first_child + ARITY).min(len);
            let mut min_child = first_child;
            for c in first_child + 1..last_child {
                if self.data[c].key() < self.data[min_child].key() {
                    min_child = c;
                }
            }
            if self.data[min_child].key() < self.data[i].key() {
                self.data.swap(i, min_child);
                i = min_child;
            } else {
                break;
            }
        }
        Some(root)
    }
}

fn unpack(handle: u64) -> (usize, u32) {
    ((handle & 0xFFFF_FFFF) as usize, (handle >> 32) as u32)
}

fn pack(slot: usize, generation: u32) -> u64 {
    ((generation as u64) << 32) | slot as u64
}

/// A deterministic min-priority queue of simulation events.
///
/// ```
/// use sim_core::{EventQueue, SimTime};
///
/// let mut q = EventQueue::new();
/// q.push(SimTime(20), "late");
/// q.push(SimTime(10), "early");
/// q.push(SimTime(10), "early-second");
/// assert_eq!(q.len(), 3);
/// assert_eq!(q.pop().unwrap().event, "early");
/// assert_eq!(q.pop().unwrap().event, "early-second");
/// assert_eq!(q.pop().unwrap().event, "late");
/// assert!(q.pop().is_none());
/// ```
pub struct EventQueue<E> {
    heap: MinHeap<E>,
    next_seq: u64,
    /// Current generation per slot. A heap entry whose packed generation
    /// differs from its slot's current generation is a tombstone.
    generations: Vec<u32>,
    free_slots: Vec<u32>,
    /// Exact number of live (pushed, not cancelled, not popped) events.
    live: usize,
    /// Events returned by [`EventQueue::pop`] over the queue's lifetime.
    processed: u64,
    /// Events ever pushed.
    pushed: u64,
    /// Events cancelled before firing (each leaves a heap tombstone).
    cancelled: u64,
    /// High-water mark of the live event count.
    depth_hwm: usize,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// An empty queue.
    pub fn new() -> Self {
        Self::with_capacity(0)
    }

    /// An empty queue pre-reserving room for `capacity` concurrently
    /// pending events (heap and slab), so steady-state pushes never
    /// reallocate.
    pub fn with_capacity(capacity: usize) -> Self {
        EventQueue {
            heap: MinHeap::with_capacity(capacity),
            next_seq: 0,
            generations: Vec::with_capacity(capacity),
            free_slots: Vec::with_capacity(capacity),
            live: 0,
            processed: 0,
            pushed: 0,
            cancelled: 0,
            depth_hwm: 0,
        }
    }

    /// Schedule `event` at `time`. Returns a handle that can later be passed
    /// to [`EventQueue::cancel`].
    pub fn push(&mut self, time: SimTime, event: E) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        let slot = match self.free_slots.pop() {
            Some(s) => s as usize,
            None => {
                self.generations.push(0);
                self.generations.len() - 1
            }
        };
        let handle = pack(slot, self.generations[slot]);
        self.heap.push(Entry {
            time,
            seq,
            handle,
            event,
        });
        self.live += 1;
        self.pushed += 1;
        if self.live > self.depth_hwm {
            self.depth_hwm = self.live;
        }
        handle
    }

    /// Cancel a previously scheduled event by handle. The slot's
    /// generation is bumped immediately (making the heap entry a
    /// tombstone dropped when it reaches the front) and the live count is
    /// decremented, so [`EventQueue::len`] stays exact. Cancelling an
    /// unknown or already-fired handle is a no-op.
    pub fn cancel(&mut self, handle: u64) {
        let (slot, generation) = unpack(handle);
        if let Some(current) = self.generations.get_mut(slot) {
            if *current == generation {
                *current = current.wrapping_add(1);
                self.free_slots.push(slot as u32);
                self.live -= 1;
                self.cancelled += 1;
            }
        }
    }

    /// Remove and return the earliest live event, or `None` if empty.
    pub fn pop(&mut self) -> Option<QueuedEvent<E>> {
        while let Some(entry) = self.heap.pop() {
            let (slot, generation) = unpack(entry.handle);
            if self.generations[slot] != generation {
                continue; // tombstone of a cancelled event
            }
            self.generations[slot] = generation.wrapping_add(1);
            self.free_slots.push(slot as u32);
            self.live -= 1;
            self.processed += 1;
            return Some(QueuedEvent {
                time: entry.time,
                seq: entry.seq,
                event: entry.event,
            });
        }
        None
    }

    /// Reinsert an event previously returned by [`EventQueue::pop`],
    /// undoing that pop: the event keeps its original `(time, seq)` key,
    /// so the pop order of everything in the queue is unchanged, and the
    /// pop's effect on the lifetime counters is reversed (`processed` is
    /// decremented; nothing is counted as pushed). This makes a
    /// pop/inspect/unpop peek of the next few events invisible to every
    /// observable statistic — the engine's shard planner relies on that
    /// to stay bit-identical to a planner-free run. Unpop in **reverse
    /// pop order** so the slot slab is restored exactly and later pushes
    /// allocate the same slots they would have without the peek.
    ///
    /// The event is live again under a fresh generation, so a handle
    /// kept from its original `push` no longer cancels it.
    pub fn unpop(&mut self, ev: QueuedEvent<E>) {
        let slot = match self.free_slots.pop() {
            Some(s) => s as usize,
            None => {
                self.generations.push(0);
                self.generations.len() - 1
            }
        };
        let handle = pack(slot, self.generations[slot]);
        self.heap.push(Entry {
            time: ev.time,
            seq: ev.seq,
            handle,
            event: ev.event,
        });
        self.live += 1;
        self.processed -= 1;
    }

    /// The timestamp of the earliest live event without removing it.
    /// Takes `&mut self` to discard tombstones blocking the heap front.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        loop {
            match self.heap.peek() {
                None => return None,
                Some(entry) => {
                    let (slot, generation) = unpack(entry.handle);
                    if self.generations[slot] != generation {
                        self.heap.pop();
                    } else {
                        return Some(entry.time);
                    }
                }
            }
        }
    }

    /// Exact number of live events (cancelled entries are not counted).
    pub fn len(&self) -> usize {
        self.live
    }

    /// True when no live events remain.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Total events this queue has dispatched (popped live, ever) — the
    /// simulator's work metric, e.g. for events-per-second throughput.
    pub fn processed_total(&self) -> u64 {
        self.processed
    }

    /// Total events ever pushed.
    pub fn pushed_total(&self) -> u64 {
        self.pushed
    }

    /// Total events cancelled before firing. Each cancellation leaves a
    /// heap tombstone, so `cancelled_total / pushed_total` is the fraction
    /// of heap traffic wasted on dead entries.
    pub fn cancelled_total(&self) -> u64 {
        self.cancelled
    }

    /// Highest number of simultaneously live events the queue ever held.
    pub fn depth_high_water(&self) -> usize {
        self.depth_hwm
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(SimTime(30), 3);
        q.push(SimTime(10), 1);
        q.push(SimTime(20), 2);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|e| e.event)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn equal_times_pop_fifo() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.push(SimTime(42), i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|e| e.event)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn cancel_skips_event() {
        let mut q = EventQueue::new();
        let a = q.push(SimTime(1), "a");
        q.push(SimTime(2), "b");
        q.cancel(a);
        assert_eq!(q.pop().unwrap().event, "b");
        assert!(q.pop().is_none());
    }

    #[test]
    fn cancel_unknown_handle_is_noop() {
        let mut q = EventQueue::new();
        q.push(SimTime(1), "a");
        q.cancel(pack(999, 0));
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop().unwrap().event, "a");
    }

    #[test]
    fn cancel_already_popped_handle_is_noop() {
        let mut q = EventQueue::new();
        let a = q.push(SimTime(1), "a");
        assert_eq!(q.pop().unwrap().event, "a");
        q.cancel(a); // slot was recycled at pop; stale handle must not match
        let b = q.push(SimTime(2), "b");
        q.cancel(a); // still stale even while the slot is live again
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop().unwrap().event, "b");
        let _ = b;
    }

    #[test]
    fn len_is_exact_under_cancellation() {
        let mut q = EventQueue::new();
        let a = q.push(SimTime(1), "a");
        let b = q.push(SimTime(2), "b");
        q.push(SimTime(3), "c");
        assert_eq!(q.len(), 3);
        q.cancel(a);
        assert_eq!(q.len(), 2);
        q.cancel(a); // double-cancel must not double-count
        assert_eq!(q.len(), 2);
        q.cancel(b);
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
        q.pop();
        assert_eq!(q.len(), 0);
        assert!(q.is_empty());
    }

    #[test]
    fn slots_are_recycled() {
        let mut q = EventQueue::new();
        for round in 0..100 {
            let h = q.push(SimTime(round), round);
            if round % 2 == 0 {
                q.cancel(h);
            } else {
                q.pop();
            }
        }
        // One slot (recycled every round) plus at most a handful of
        // tombstone-displaced ones — not one per push.
        assert!(
            q.generations.len() <= 2,
            "slab grew to {}",
            q.generations.len()
        );
    }

    #[test]
    fn peek_time_skips_cancelled_head() {
        let mut q = EventQueue::new();
        let a = q.push(SimTime(1), "a");
        q.push(SimTime(5), "b");
        q.cancel(a);
        assert_eq!(q.peek_time(), Some(SimTime(5)));
        assert!(!q.is_empty());
        q.pop();
        assert!(q.is_empty());
    }

    #[test]
    fn empty_queue_behaves() {
        let mut q: EventQueue<()> = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.len(), 0);
        assert_eq!(q.peek_time(), None);
        assert!(q.pop().is_none());
    }

    #[test]
    fn lifetime_counters_track_push_cancel_pop() {
        let mut q = EventQueue::new();
        let a = q.push(SimTime(1), "a");
        q.push(SimTime(2), "b");
        q.push(SimTime(3), "c");
        assert_eq!(q.depth_high_water(), 3);
        q.cancel(a);
        q.cancel(a); // double-cancel must not double-count
        while q.pop().is_some() {}
        assert_eq!(q.pushed_total(), 3);
        assert_eq!(q.cancelled_total(), 1);
        assert_eq!(q.processed_total(), 2);
        assert_eq!(q.depth_high_water(), 3, "high water survives draining");
    }

    #[test]
    fn unpop_restores_order_and_counters() {
        let mut q = EventQueue::new();
        for i in 0..5 {
            q.push(SimTime(10 + (i / 2) as u64), i);
        }
        let a = q.pop().unwrap();
        let b = q.pop().unwrap();
        let c = q.pop().unwrap();
        // Reverse pop order, as the contract requires.
        q.unpop(c);
        q.unpop(b);
        q.unpop(a);
        assert_eq!(q.len(), 5);
        assert_eq!(q.pushed_total(), 5, "unpop must not count as a push");
        assert_eq!(q.processed_total(), 0, "peek must be invisible");
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|e| e.event)).collect();
        assert_eq!(order, vec![0, 1, 2, 3, 4]);
        assert_eq!(q.processed_total(), 5);
    }

    #[test]
    fn unpop_restores_slot_slab() {
        let mut q = EventQueue::new();
        q.push(SimTime(1), "a");
        q.push(SimTime(2), "b");
        let a = q.pop().unwrap();
        q.unpop(a);
        // The peek must not have grown the slab: both live events fit in
        // the two slots that existed before it.
        assert_eq!(q.generations.len(), 2);
        assert_eq!(q.pop().unwrap().event, "a");
        assert_eq!(q.pop().unwrap().event, "b");
    }

    #[test]
    fn unpopped_event_keeps_fifo_position_among_ties() {
        let mut q = EventQueue::new();
        q.push(SimTime(7), "first");
        q.push(SimTime(7), "second");
        q.push(SimTime(7), "third");
        let first = q.pop().unwrap();
        let second = q.pop().unwrap();
        q.unpop(second);
        q.unpop(first);
        // A push after the peek must still pop last among the ties.
        q.push(SimTime(7), "fourth");
        let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|e| e.event)).collect();
        assert_eq!(order, vec!["first", "second", "third", "fourth"]);
    }

    #[test]
    fn with_capacity_does_not_change_behavior() {
        let mut q = EventQueue::with_capacity(64);
        q.push(SimTime(2), "b");
        q.push(SimTime(1), "a");
        assert_eq!(q.pop().unwrap().event, "a");
        assert_eq!(q.pop().unwrap().event, "b");
    }

    proptest! {
        /// Whatever is pushed pops back in nondecreasing time order with
        /// FIFO tie-breaking — the invariant determinism rests on.
        #[test]
        fn prop_stable_time_order(times in proptest::collection::vec(0u64..1000, 1..200)) {
            let mut q = EventQueue::new();
            for (i, t) in times.iter().enumerate() {
                q.push(SimTime(*t), i);
            }
            let mut last: Option<(SimTime, usize)> = None;
            while let Some(ev) = q.pop() {
                if let Some((lt, li)) = last {
                    prop_assert!(ev.time >= lt);
                    if ev.time == lt {
                        prop_assert!(ev.event > li, "FIFO violated on tie");
                    }
                }
                last = Some((ev.time, ev.event));
            }
        }

        /// Cancelling an arbitrary subset removes exactly that subset, and
        /// `len()` tracks the live count exactly throughout.
        #[test]
        fn prop_cancellation_exact(n in 1usize..100, cancel_mask in proptest::collection::vec(any::<bool>(), 100)) {
            let mut q = EventQueue::new();
            let mut handles = Vec::new();
            for i in 0..n {
                handles.push((q.push(SimTime((i % 7) as u64), i), i));
            }
            let mut expect: Vec<usize> = Vec::new();
            for (h, i) in &handles {
                if cancel_mask[*i] {
                    q.cancel(*h);
                } else {
                    expect.push(*i);
                }
            }
            prop_assert_eq!(q.len(), expect.len());
            let mut got: Vec<usize> = std::iter::from_fn(|| q.pop().map(|e| e.event)).collect();
            prop_assert_eq!(q.len(), 0);
            got.sort_unstable();
            expect.sort_unstable();
            prop_assert_eq!(got, expect);
        }
    }
}
