//! Stable, deterministic event queue.
//!
//! A discrete-event simulation is only reproducible if simultaneous events
//! pop in a defined order. [`EventQueue`] therefore tags every pushed event
//! with a monotonically increasing sequence number and orders by
//! `(time, seq)`: earlier times first, and among equal times, earlier
//! insertions first (FIFO). This makes runs bit-for-bit identical across
//! platforms and `BinaryHeap` implementations.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::SimTime;

/// An event with its scheduled time and tie-breaking sequence number.
#[derive(Debug, Clone)]
pub struct QueuedEvent<E> {
    /// When the event fires.
    pub time: SimTime,
    /// Insertion order, used to break ties deterministically.
    pub seq: u64,
    /// The payload delivered to the simulation.
    pub event: E,
}

struct Entry<E> {
    time: SimTime,
    seq: u64,
    event: E,
}

// Reverse ordering so the std max-heap becomes a min-heap on (time, seq).
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}

impl<E> Eq for Entry<E> {}

/// A deterministic min-priority queue of simulation events.
///
/// ```
/// use sim_core::{EventQueue, SimTime};
///
/// let mut q = EventQueue::new();
/// q.push(SimTime(20), "late");
/// q.push(SimTime(10), "early");
/// q.push(SimTime(10), "early-second");
/// assert_eq!(q.pop().unwrap().event, "early");
/// assert_eq!(q.pop().unwrap().event, "early-second");
/// assert_eq!(q.pop().unwrap().event, "late");
/// assert!(q.pop().is_none());
/// ```
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    next_seq: u64,
    /// Cancelled sequence numbers are dropped lazily on pop.
    cancelled: std::collections::HashSet<u64>,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// An empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            cancelled: std::collections::HashSet::new(),
        }
    }

    /// Schedule `event` at `time`. Returns a handle that can later be passed
    /// to [`EventQueue::cancel`].
    pub fn push(&mut self, time: SimTime, event: E) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry { time, seq, event });
        seq
    }

    /// Cancel a previously scheduled event by handle. Cancellation is lazy:
    /// the entry stays in the heap until it would pop, then is skipped.
    /// Cancelling an unknown or already-fired handle is a no-op.
    pub fn cancel(&mut self, seq: u64) {
        self.cancelled.insert(seq);
    }

    /// Remove and return the earliest live event, or `None` if empty.
    pub fn pop(&mut self) -> Option<QueuedEvent<E>> {
        while let Some(entry) = self.heap.pop() {
            if self.cancelled.remove(&entry.seq) {
                continue;
            }
            return Some(QueuedEvent {
                time: entry.time,
                seq: entry.seq,
                event: entry.event,
            });
        }
        None
    }

    /// The timestamp of the earliest live event without removing it.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        loop {
            match self.heap.peek() {
                None => return None,
                Some(entry) if self.cancelled.contains(&entry.seq) => {
                    let seq = entry.seq;
                    self.heap.pop();
                    self.cancelled.remove(&seq);
                }
                Some(entry) => return Some(entry.time),
            }
        }
    }

    /// Number of entries currently held, including not-yet-skipped
    /// cancellations (an upper bound on live events).
    #[allow(clippy::len_without_is_empty)] // is_empty needs &mut (lazy cancellation)
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no live events remain.
    pub fn is_empty(&mut self) -> bool {
        self.peek_time().is_none()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(SimTime(30), 3);
        q.push(SimTime(10), 1);
        q.push(SimTime(20), 2);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|e| e.event)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn equal_times_pop_fifo() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.push(SimTime(42), i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|e| e.event)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn cancel_skips_event() {
        let mut q = EventQueue::new();
        let a = q.push(SimTime(1), "a");
        q.push(SimTime(2), "b");
        q.cancel(a);
        assert_eq!(q.pop().unwrap().event, "b");
        assert!(q.pop().is_none());
    }

    #[test]
    fn cancel_unknown_handle_is_noop() {
        let mut q = EventQueue::new();
        q.push(SimTime(1), "a");
        q.cancel(999);
        assert_eq!(q.pop().unwrap().event, "a");
    }

    #[test]
    fn peek_time_skips_cancelled_head() {
        let mut q = EventQueue::new();
        let a = q.push(SimTime(1), "a");
        q.push(SimTime(5), "b");
        q.cancel(a);
        assert_eq!(q.peek_time(), Some(SimTime(5)));
        assert!(!q.is_empty());
        q.pop();
        assert!(q.is_empty());
    }

    #[test]
    fn empty_queue_behaves() {
        let mut q: EventQueue<()> = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
        assert!(q.pop().is_none());
    }

    proptest! {
        /// Whatever is pushed pops back in nondecreasing time order with
        /// FIFO tie-breaking — the invariant determinism rests on.
        #[test]
        fn prop_stable_time_order(times in proptest::collection::vec(0u64..1000, 1..200)) {
            let mut q = EventQueue::new();
            for (i, t) in times.iter().enumerate() {
                q.push(SimTime(*t), i);
            }
            let mut last: Option<(SimTime, usize)> = None;
            while let Some(ev) = q.pop() {
                if let Some((lt, li)) = last {
                    prop_assert!(ev.time >= lt);
                    if ev.time == lt {
                        prop_assert!(ev.event > li, "FIFO violated on tie");
                    }
                }
                last = Some((ev.time, ev.event));
            }
        }

        /// Cancelling an arbitrary subset removes exactly that subset.
        #[test]
        fn prop_cancellation_exact(n in 1usize..100, cancel_mask in proptest::collection::vec(any::<bool>(), 100)) {
            let mut q = EventQueue::new();
            let mut handles = Vec::new();
            for i in 0..n {
                handles.push((q.push(SimTime((i % 7) as u64), i), i));
            }
            let mut expect: Vec<usize> = Vec::new();
            for (h, i) in &handles {
                if cancel_mask[*i] {
                    q.cancel(*h);
                } else {
                    expect.push(*i);
                }
            }
            let mut got: Vec<usize> = std::iter::from_fn(|| q.pop().map(|e| e.event)).collect();
            got.sort_unstable();
            expect.sort_unstable();
            prop_assert_eq!(got, expect);
        }
    }
}
