//! Resumable grid sweeps over workloads × strategies × fault specs.
//!
//! A [`Sweep`] names a cartesian grid of experiments. Against a
//! [`SweepStore`] it partitions the grid into cached and uncached jobs,
//! feeds only the misses to the parallel batch runner, and writes fresh
//! results back — so a killed sweep resumes where it stopped, and
//! re-invoking a completed sweep performs **zero** engine executions and
//! returns bit-identical results (the determinism suite asserts this).
//! `deltas` parameterize the energy-delay analysis of the results (the
//! paper's `∂` weighting), not the execution grid: one stored ladder
//! yields every `∂` row for free.

use edp_metrics::{best_operating_point, Crescendo};
use mpi_sim::{EngineConfig, RunResult};
use obs::MetricsRegistry;
use sim_core::FaultSpec;

use crate::experiment::{ladder_mhz_desc, Experiment};
use crate::store::{fingerprint_experiment, Fingerprint, StoreError, SweepStore};
use crate::strategy::DvsStrategy;
use crate::workload::Workload;

/// A grid of experiments: `workloads × fault_specs × strategies`, all
/// sharing one base engine configuration (each job's fault spec replaces
/// the engine's). `deltas` ride along for EDP analysis of the results.
#[derive(Debug, Clone)]
pub struct Sweep {
    /// Applications to run.
    pub workloads: Vec<Workload>,
    /// DVS strategies per workload.
    pub strategies: Vec<DvsStrategy>,
    /// `∂` weightings for [`Sweep::best_static_points`] (analysis only —
    /// deltas never spawn engine runs).
    pub deltas: Vec<f64>,
    /// Fault specs per workload (empty input means one clean run).
    pub fault_specs: Vec<FaultSpec>,
    /// Base engine configuration for every job.
    pub engine: EngineConfig,
}

/// One planned job: grid position, cache key, and whether the store
/// already holds it.
#[derive(Debug, Clone)]
pub struct SweepJob {
    /// Row-major grid index.
    pub index: usize,
    /// The experiment this job runs.
    pub experiment: Experiment,
    /// Its cache key.
    pub fingerprint: Fingerprint,
    /// Whether a record existed when the plan was made.
    pub cached: bool,
    /// `Some(i)` when an earlier job `i` in the same grid has the same
    /// fingerprint: this job never loads or executes anything itself —
    /// its slot is filled from job `i`'s result.
    pub duplicate_of: Option<usize>,
}

/// The cached/uncached partition of a sweep (what `--dry-run` prints).
#[derive(Debug, Clone)]
pub struct SweepPlan {
    /// Every job in grid order.
    pub jobs: Vec<SweepJob>,
}

impl SweepPlan {
    /// Unique jobs already present in the store.
    pub fn hits(&self) -> usize {
        self.jobs
            .iter()
            .filter(|j| j.cached && j.duplicate_of.is_none())
            .count()
    }

    /// Unique jobs that would execute.
    pub fn misses(&self) -> usize {
        self.jobs
            .iter()
            .filter(|j| !j.cached && j.duplicate_of.is_none())
            .count()
    }

    /// Jobs whose fingerprint repeats an earlier grid cell (they ride on
    /// that cell's result; `hits + misses + duplicates == jobs`).
    pub fn duplicates(&self) -> usize {
        self.jobs
            .iter()
            .filter(|j| j.duplicate_of.is_some())
            .count()
    }
}

/// What one sweep invocation did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SweepReport {
    /// Grid size.
    pub jobs: u64,
    /// Results served from the store.
    pub cache_hits: u64,
    /// Results that were not in the store (includes rejected records).
    pub cache_misses: u64,
    /// Engine executions actually performed (equals `cache_misses` when
    /// caching is on; the warm-path invariant is `engine_runs == 0`).
    pub engine_runs: u64,
    /// Records found but rejected (corrupt, version skew, undecodable) —
    /// each also counts as a miss and was re-run.
    pub corrupt_records: u64,
    /// Record bytes read from the store.
    pub bytes_read: u64,
    /// Record bytes written to the store.
    pub bytes_written: u64,
    /// Grid cells whose fingerprint repeated an earlier cell: each was
    /// served from the earlier cell's result — never loaded, executed,
    /// or counted as a hit or miss.
    pub duplicate_jobs: u64,
}

impl SweepReport {
    /// The report as an `obs` registry (`sweep.cache_hits`,
    /// `sweep.cache_misses`, ...), mergeable into run telemetry.
    pub fn metrics(&self) -> MetricsRegistry {
        let mut m = MetricsRegistry::new();
        m.counter_add("sweep.jobs", self.jobs);
        m.counter_add("sweep.cache_hits", self.cache_hits);
        m.counter_add("sweep.cache_misses", self.cache_misses);
        m.counter_add("sweep.engine_runs", self.engine_runs);
        m.counter_add("sweep.corrupt_records", self.corrupt_records);
        m.counter_add("sweep.bytes_read", self.bytes_read);
        m.counter_add("sweep.bytes_written", self.bytes_written);
        m.counter_add("sweep.duplicate_jobs", self.duplicate_jobs);
        m
    }

    /// One-line human summary.
    pub fn render_text(&self) -> String {
        let duplicates = if self.duplicate_jobs > 0 {
            format!(", {} duplicates", self.duplicate_jobs)
        } else {
            String::new()
        };
        format!(
            "{} jobs: {} cache hits, {} misses ({} engine runs, {} corrupt records{}), {} B read, {} B written",
            self.jobs,
            self.cache_hits,
            self.cache_misses,
            self.engine_runs,
            self.corrupt_records,
            duplicates,
            self.bytes_read,
            self.bytes_written,
        )
    }
}

/// Results (grid order) plus accounting.
#[derive(Debug)]
pub struct SweepOutcome {
    /// One result per grid job, row-major
    /// (`workloads × fault_specs × strategies`).
    pub results: Vec<RunResult>,
    /// What the run did.
    pub report: SweepReport,
}

/// One row of the sweep-level slack table: the energy attribution of a
/// single grid cell, aggregated to cluster scope (see
/// [`Sweep::slack_rows`]).
#[derive(Debug, Clone, PartialEq)]
pub struct SlackRow {
    /// Workload label.
    pub workload: String,
    /// Strategy label.
    pub strategy: String,
    /// Index into [`Sweep::fault_specs`].
    pub fault_index: usize,
    /// Run makespan, seconds.
    pub makespan_s: f64,
    /// Critical-path time in network flight, seconds.
    pub cp_comm_s: f64,
    /// Message hops on the critical path.
    pub cp_hops: u64,
    /// Cluster joules off the critical path (comm + blocked + idle tail).
    pub redistributable_j: f64,
    /// Whole-run cluster joules.
    pub total_j: f64,
}

impl SlackRow {
    /// `redistributable_j` as a fraction of the run's total energy.
    pub fn slack_fraction(&self) -> f64 {
        if self.total_j <= 0.0 {
            0.0
        } else {
            self.redistributable_j / self.total_j
        }
    }
}

/// Render slack rows as the table `pwrperf sweep` appends for causal
/// sweeps: one line per workload × strategy (× fault spec), the
/// group-by view of where each configuration's energy slack sits.
pub fn render_slack_table(rows: &[SlackRow]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<28} {:<18} {:>10} {:>10} {:>8} {:>12} {:>8}\n",
        "workload", "strategy", "time(s)", "cp_comm", "hops", "slack(J)", "slack%"
    ));
    for row in rows {
        out.push_str(&format!(
            "{:<28} {:<18} {:>10.3} {:>10.3} {:>8} {:>12.1} {:>7.1}%\n",
            row.workload,
            row.strategy,
            row.makespan_s,
            row.cp_comm_s,
            row.cp_hops,
            row.redistributable_j,
            100.0 * row.slack_fraction(),
        ));
    }
    out
}

/// A `∂`-weighted best operating point over one workload's static ladder
/// (see [`Sweep::best_static_points`]).
#[derive(Debug, Clone, PartialEq)]
pub struct BestPoint {
    /// Workload label.
    pub workload: String,
    /// Index into [`Sweep::fault_specs`].
    pub fault_index: usize,
    /// The `∂` weighting.
    pub delta: f64,
    /// Winning frequency, `None` when the sweep had no static points.
    pub best_mhz: Option<u32>,
}

/// For each position, the index of the *earlier* position holding the
/// same fingerprint (`None` for first occurrences). Two grid cells can
/// collide legitimately — a duplicated axis entry, or two requests that
/// ladder-resolve to the same operating point — and running the engine
/// for both would double-count misses and waste the duplicate's run.
pub(crate) fn duplicate_map(fingerprints: &[Fingerprint]) -> Vec<Option<usize>> {
    let mut first_seen: std::collections::BTreeMap<Fingerprint, usize> =
        std::collections::BTreeMap::new();
    fingerprints
        .iter()
        .enumerate()
        .map(|(i, &fp)| match first_seen.get(&fp) {
            Some(&primary) => Some(primary),
            None => {
                first_seen.insert(fp, i);
                None
            }
        })
        .collect()
}

impl Sweep {
    /// The full grid: every workload under every strategy and fault
    /// spec. An empty `fault_specs` means "one clean run per cell".
    pub fn grid(
        workloads: Vec<Workload>,
        strategies: Vec<DvsStrategy>,
        deltas: Vec<f64>,
        fault_specs: Vec<FaultSpec>,
    ) -> Self {
        let fault_specs = if fault_specs.is_empty() {
            vec![FaultSpec::default()]
        } else {
            fault_specs
        };
        Sweep {
            workloads,
            strategies,
            deltas,
            fault_specs,
            engine: EngineConfig::default(),
        }
    }

    /// The paper's ladder sweep for `workloads`: every static operating
    /// point plus the dynamic strategy at top base frequency.
    pub fn ladder(workloads: Vec<Workload>) -> Self {
        let mut strategies: Vec<DvsStrategy> = ladder_mhz_desc()
            .into_iter()
            .map(DvsStrategy::StaticMhz)
            .collect();
        strategies.push(DvsStrategy::DynamicBaseMhz(1400));
        Sweep::grid(workloads, strategies, Vec::new(), Vec::new())
    }

    /// Replace the base engine configuration.
    pub fn with_engine(mut self, engine: EngineConfig) -> Self {
        self.engine = engine;
        self
    }

    /// Grid size.
    pub fn len(&self) -> usize {
        self.workloads.len() * self.fault_specs.len() * self.strategies.len()
    }

    /// True when the grid is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Materialize the grid in row-major order
    /// (`workloads × fault_specs × strategies`).
    pub fn experiments(&self) -> Vec<Experiment> {
        let mut out = Vec::with_capacity(self.len());
        for workload in &self.workloads {
            for spec in &self.fault_specs {
                for &strategy in &self.strategies {
                    let mut engine = self.engine.clone();
                    engine.faults = spec.clone();
                    out.push(Experiment::new(workload.clone(), strategy).with_engine(engine));
                }
            }
        }
        out
    }

    /// Partition the grid against `store` without executing anything.
    /// Jobs repeating an earlier cell's fingerprint (a duplicated axis
    /// entry, or two requests resolving to the same operating point) are
    /// marked [`SweepJob::duplicate_of`] so they are neither loaded nor
    /// executed twice.
    pub fn plan(&self, store: &SweepStore) -> SweepPlan {
        let experiments = self.experiments();
        let fingerprints: Vec<Fingerprint> =
            experiments.iter().map(fingerprint_experiment).collect();
        let duplicate_of = duplicate_map(&fingerprints);
        let jobs = experiments
            .into_iter()
            .zip(fingerprints)
            .zip(duplicate_of)
            .enumerate()
            .map(
                |(index, ((experiment, fingerprint), duplicate_of))| SweepJob {
                    index,
                    cached: store.contains(fingerprint),
                    experiment,
                    fingerprint,
                    duplicate_of,
                },
            )
            .collect();
        SweepPlan { jobs }
    }

    /// Run the sweep against `store`: serve hits from disk, execute only
    /// the misses (on the parallel batch runner, `workers` as in
    /// [`crate::runner::run_batch_with`]), and persist fresh results.
    /// Records that exist but fail validation count as misses (and as
    /// `corrupt_records`) and are re-run and overwritten; store *write*
    /// failures abort, since silently losing results would defeat
    /// resumability.
    pub fn run(
        &self,
        store: &mut SweepStore,
        workers: Option<usize>,
    ) -> Result<SweepOutcome, StoreError> {
        let experiments = self.experiments();
        let fingerprints: Vec<Fingerprint> =
            experiments.iter().map(fingerprint_experiment).collect();
        let duplicate_of = duplicate_map(&fingerprints);
        let duplicate_jobs = duplicate_of.iter().filter(|d| d.is_some()).count() as u64;
        let before = store.stats();

        // Only primary cells (the first occurrence of each fingerprint)
        // touch the store or the engine; duplicates are filled from
        // their primary afterwards.
        let mut slots: Vec<Option<RunResult>> = Vec::with_capacity(experiments.len());
        let mut miss_indices: Vec<usize> = Vec::new();
        for (i, &fp) in fingerprints.iter().enumerate() {
            if duplicate_of.get(i).is_some_and(|d| d.is_some()) {
                slots.push(None);
                continue;
            }
            match store.load(fp) {
                Ok(Some(result)) => slots.push(Some(result)),
                Ok(None) | Err(_) => {
                    // A rejected record is a miss: re-run and overwrite.
                    slots.push(None);
                    miss_indices.push(i);
                }
            }
        }

        let to_run: Vec<Experiment> = miss_indices
            .iter()
            .map(|&i| experiments[i].clone())
            .collect();
        let engine_runs = to_run.len() as u64;
        let fresh = crate::runner::run_batch_with(to_run, workers);
        for (&i, result) in miss_indices.iter().zip(fresh) {
            store.store(fingerprints[i], &result)?;
            slots[i] = Some(result);
        }
        for (i, dup) in duplicate_of.iter().enumerate() {
            if let Some(primary) = dup {
                slots[i] = slots.get(*primary).cloned().flatten();
            }
        }

        let results: Vec<RunResult> = slots.into_iter().flatten().collect();
        assert_eq!(
            results.len(),
            experiments.len(),
            "every sweep slot must be filled"
        );
        let after = store.stats();
        let report = SweepReport {
            jobs: experiments.len() as u64,
            cache_hits: after.hits - before.hits,
            cache_misses: engine_runs,
            engine_runs,
            corrupt_records: after.corrupt - before.corrupt,
            bytes_read: after.bytes_read - before.bytes_read,
            bytes_written: after.bytes_written - before.bytes_written,
            duplicate_jobs,
        };
        Ok(SweepOutcome { results, report })
    }

    /// Run the whole grid with no cache involved (the CLI `--no-cache`
    /// path). Every *unique* job is an engine run; duplicated grid cells
    /// share their primary's result.
    pub fn run_uncached(&self, workers: Option<usize>) -> SweepOutcome {
        let experiments = self.experiments();
        let jobs = experiments.len() as u64;
        let fingerprints: Vec<Fingerprint> =
            experiments.iter().map(fingerprint_experiment).collect();
        let duplicate_of = duplicate_map(&fingerprints);
        let duplicate_jobs = duplicate_of.iter().filter(|d| d.is_some()).count() as u64;

        let primary_indices: Vec<usize> = duplicate_of
            .iter()
            .enumerate()
            .filter(|(_, d)| d.is_none())
            .map(|(i, _)| i)
            .collect();
        let to_run: Vec<Experiment> = primary_indices
            .iter()
            .map(|&i| experiments[i].clone())
            .collect();
        let engine_runs = to_run.len() as u64;
        let fresh = crate::runner::run_batch_with(to_run, workers);

        let mut slots: Vec<Option<RunResult>> = vec![None; experiments.len()];
        for (&i, result) in primary_indices.iter().zip(fresh) {
            slots[i] = Some(result);
        }
        for (i, dup) in duplicate_of.iter().enumerate() {
            if let Some(primary) = dup {
                slots[i] = slots.get(*primary).cloned().flatten();
            }
        }
        let results: Vec<RunResult> = slots.into_iter().flatten().collect();
        assert_eq!(results.len(), jobs as usize, "every sweep slot filled");
        SweepOutcome {
            results,
            report: SweepReport {
                jobs,
                cache_misses: engine_runs,
                engine_runs,
                duplicate_jobs,
                ..SweepReport::default()
            },
        }
    }

    /// Aggregate the per-run energy attributions of a causal sweep into
    /// the group-by workload × strategy slack table. Rows come out in
    /// grid order; cells whose results carry no attribution (the sweep
    /// ran without [`EngineConfig::causal`]) are skipped, so a
    /// non-causal sweep yields an empty table rather than zeros.
    pub fn slack_rows(&self, outcome: &SweepOutcome) -> Vec<SlackRow> {
        let strategy_count = self.strategies.len();
        let mut out = Vec::new();
        for (wi, workload) in self.workloads.iter().enumerate() {
            for fi in 0..self.fault_specs.len() {
                let row_base = (wi * self.fault_specs.len() + fi) * strategy_count;
                for (si, strategy) in self.strategies.iter().enumerate() {
                    let Some(result) = outcome.results.get(row_base + si) else {
                        continue;
                    };
                    let Some(a) = &result.attribution else {
                        continue;
                    };
                    out.push(SlackRow {
                        workload: workload.label(),
                        strategy: strategy.label(),
                        fault_index: fi,
                        makespan_s: a.makespan.as_secs_f64(),
                        cp_comm_s: a.cp_comm.as_secs_f64(),
                        cp_hops: a.cp_hops,
                        redistributable_j: a.redistributable_j,
                        total_j: result.total_energy_j(),
                    });
                }
            }
        }
        out
    }

    /// For every workload × fault spec × `∂`: the best static operating
    /// point by the paper's weighted ED²P, assembled from `outcome`'s
    /// [`DvsStrategy::StaticMhz`] columns. Empty when the sweep has no
    /// deltas or no static strategies.
    pub fn best_static_points(&self, outcome: &SweepOutcome) -> Vec<BestPoint> {
        let strategy_count = self.strategies.len();
        let mut out = Vec::new();
        for (wi, workload) in self.workloads.iter().enumerate() {
            for fi in 0..self.fault_specs.len() {
                let row_base = (wi * self.fault_specs.len() + fi) * strategy_count;
                let crescendo = Crescendo::from_pairs(
                    self.strategies.iter().enumerate().filter_map(
                        |(si, strategy)| match strategy {
                            DvsStrategy::StaticMhz(mhz) => outcome
                                .results
                                .get(row_base + si)
                                .map(|r| (*mhz, r.total_energy_j(), r.duration_secs())),
                            _ => None,
                        },
                    ),
                );
                for &delta in &self.deltas {
                    out.push(BestPoint {
                        workload: workload.label(),
                        fault_index: fi,
                        delta,
                        best_mhz: best_operating_point(&crescendo, delta),
                    });
                }
            }
        }
        out
    }
}

/// [`crate::static_crescendo`] served through a store: cached points are
/// read back, missing ones are run and persisted — so figure pipelines
/// go warm after their first invocation.
pub fn static_crescendo_cached(
    workload: &Workload,
    store: &mut SweepStore,
) -> Result<Crescendo, StoreError> {
    crescendo_cached(
        workload,
        EngineConfig::default(),
        DvsStrategy::StaticMhz,
        store,
    )
}

/// [`crate::dynamic_crescendo`] served through a store.
pub fn dynamic_crescendo_cached(
    workload: &Workload,
    store: &mut SweepStore,
) -> Result<Crescendo, StoreError> {
    crescendo_cached(
        workload,
        EngineConfig::default(),
        DvsStrategy::DynamicBaseMhz,
        store,
    )
}

/// Ladder crescendo with any strategy constructor, served through a
/// store (the cached analogue of [`crate::crescendo_with`]).
pub fn crescendo_cached(
    workload: &Workload,
    engine: EngineConfig,
    make: impl Fn(u32) -> DvsStrategy,
    store: &mut SweepStore,
) -> Result<Crescendo, StoreError> {
    let ladder = ladder_mhz_desc();
    let strategies: Vec<DvsStrategy> = ladder.iter().map(|&mhz| make(mhz)).collect();
    // The grid stamps each job's faults from its fault-spec axis, so the
    // engine's own spec must ride along there — otherwise a faulted
    // cached sweep would silently run (and cache) unfaulted results.
    let fault_specs = vec![engine.faults.clone()];
    let sweep = Sweep::grid(vec![workload.clone()], strategies, Vec::new(), fault_specs)
        .with_engine(engine);
    let outcome = sweep.run(store, None)?;
    Ok(Crescendo::from_pairs(
        ladder
            .into_iter()
            .zip(&outcome.results)
            .map(|(mhz, result)| (mhz, result.total_energy_j(), result.duration_secs())),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("pwrperf-sweep-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn tiny_sweep() -> Sweep {
        Sweep::grid(
            vec![Workload::ft_test(2)],
            vec![DvsStrategy::StaticMhz(1400), DvsStrategy::StaticMhz(600)],
            vec![0.5],
            Vec::new(),
        )
    }

    #[test]
    fn grid_shape_and_order() {
        let sweep = tiny_sweep();
        assert_eq!(sweep.len(), 2);
        let exps = sweep.experiments();
        assert_eq!(exps.len(), 2);
        assert_eq!(
            exps.first().map(|e| e.strategy),
            Some(DvsStrategy::StaticMhz(1400))
        );
    }

    #[test]
    fn cold_then_warm_sweep_is_bit_identical_with_zero_engine_runs() {
        let dir = tmp_dir("warm");
        let mut store = SweepStore::open(&dir).unwrap();
        let sweep = tiny_sweep();

        let cold = sweep.run(&mut store, None).unwrap();
        assert_eq!(cold.report.cache_hits, 0);
        assert_eq!(cold.report.engine_runs, 2);

        let warm = sweep.run(&mut store, None).unwrap();
        assert_eq!(warm.report.engine_runs, 0, "warm sweep must not execute");
        assert_eq!(warm.report.cache_hits, 2);
        assert_eq!(
            cold.results, warm.results,
            "cached results must be bit-identical"
        );

        let plan = sweep.plan(&store);
        assert_eq!((plan.hits(), plan.misses()), (2, 0));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn uncached_run_matches_direct_execution() {
        let sweep = tiny_sweep();
        let outcome = sweep.run_uncached(Some(1));
        assert_eq!(outcome.report.engine_runs, 2);
        assert_eq!(outcome.report.cache_hits, 0);
        let direct: Vec<RunResult> = sweep.experiments().iter().map(Experiment::run).collect();
        assert_eq!(outcome.results, direct);
    }

    #[test]
    fn report_metrics_expose_counters() {
        let report = SweepReport {
            jobs: 5,
            cache_hits: 3,
            cache_misses: 2,
            engine_runs: 2,
            corrupt_records: 1,
            bytes_read: 100,
            bytes_written: 50,
            duplicate_jobs: 0,
        };
        let m = report.metrics();
        assert_eq!(m.counter("sweep.cache_hits"), Some(3));
        assert_eq!(m.counter("sweep.cache_misses"), Some(2));
        assert_eq!(m.counter("sweep.bytes_read"), Some(100));
        assert_eq!(m.counter("sweep.duplicate_jobs"), Some(0));
        let text = report.render_text();
        assert!(text.contains("3 cache hits"));
        assert!(!text.contains("duplicates"), "quiet when there are none");
        let with_dups = SweepReport {
            duplicate_jobs: 2,
            ..report
        };
        assert!(with_dups.render_text().contains("2 duplicates"));
    }

    #[test]
    fn duplicated_grid_cells_execute_once() {
        // The dedupe regression: a duplicated axis entry (here both a
        // literal repeat and a request that ladder-resolves onto another
        // cell's operating point) must not run the engine twice or
        // double-count misses.
        let dir = tmp_dir("dedupe");
        let mut store = SweepStore::open(&dir).unwrap();
        let sweep = Sweep::grid(
            vec![Workload::ft_test(2)],
            vec![
                DvsStrategy::StaticMhz(1400),
                DvsStrategy::StaticMhz(1400), // literal duplicate
                DvsStrategy::StaticMhz(5000), // clamps to 1400: same key
                DvsStrategy::StaticMhz(600),
            ],
            Vec::new(),
            Vec::new(),
        );

        let plan = sweep.plan(&store);
        assert_eq!(
            (plan.hits(), plan.misses(), plan.duplicates()),
            (0, 2, 2),
            "only unique fingerprints count as misses"
        );

        let cold = sweep.run(&mut store, Some(1)).unwrap();
        assert_eq!(cold.report.jobs, 4);
        assert_eq!(cold.report.engine_runs, 2, "one run per unique key");
        assert_eq!(cold.report.cache_misses, 2);
        assert_eq!(cold.report.duplicate_jobs, 2);
        assert_eq!(cold.results.len(), 4);
        assert_eq!(cold.results[0], cold.results[1]);
        assert_eq!(cold.results[0], cold.results[2]);
        assert_ne!(cold.results[0], cold.results[3]);

        // Warm pass: two unique hits, still zero engine work.
        let warm = sweep.run(&mut store, Some(1)).unwrap();
        assert_eq!(warm.report.engine_runs, 0);
        assert_eq!(warm.report.cache_hits, 2);
        assert_eq!(warm.report.duplicate_jobs, 2);
        assert_eq!(warm.results, cold.results);

        // The uncached path dedupes identically.
        let uncached = sweep.run_uncached(Some(1));
        assert_eq!(uncached.report.engine_runs, 2);
        assert_eq!(uncached.report.duplicate_jobs, 2);
        assert_eq!(uncached.results, cold.results);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn best_static_points_pick_sane_frequencies() {
        let sweep = Sweep::ladder(vec![Workload::ft_test(2)]);
        let sweep = Sweep {
            deltas: vec![0.0, 1.0],
            ..sweep
        };
        let outcome = sweep.run_uncached(None);
        let points = sweep.best_static_points(&outcome);
        assert_eq!(points.len(), 2);
        for p in &points {
            let mhz = p.best_mhz.expect("ladder sweep has static points");
            assert!((600..=1400).contains(&mhz));
        }
    }

    #[test]
    fn causal_sweep_yields_the_slack_table_and_plain_sweeps_do_not() {
        let sweep = Sweep {
            engine: EngineConfig {
                causal: true,
                ..EngineConfig::default()
            },
            ..tiny_sweep()
        };
        let outcome = sweep.run_uncached(Some(1));
        let rows = sweep.slack_rows(&outcome);
        assert_eq!(rows.len(), 2, "one row per grid cell");
        for row in &rows {
            assert!(row.makespan_s > 0.0);
            assert!(row.total_j > 0.0);
            assert!((0.0..=1.0).contains(&row.slack_fraction()), "{row:?}");
        }
        assert_eq!(rows[0].strategy, "stat 1400MHz");
        let table = render_slack_table(&rows);
        assert!(table.contains("slack%"));
        assert_eq!(table.lines().count(), 3, "header + two rows");

        // Without causal recording there is nothing to aggregate.
        let plain = tiny_sweep();
        let rows = plain.slack_rows(&plain.run_uncached(Some(1)));
        assert!(rows.is_empty());
    }

    #[test]
    fn cached_crescendo_matches_uncached() {
        let dir = tmp_dir("crescendo");
        let mut store = SweepStore::open(&dir).unwrap();
        let workload = Workload::ft_test(2);
        let cached = static_crescendo_cached(&workload, &mut store).unwrap();
        let direct = crate::experiment::static_crescendo(&workload);
        assert_eq!(cached.points(), direct.points());
        // Second assembly is all hits.
        let again = static_crescendo_cached(&workload, &mut store).unwrap();
        assert_eq!(again.points(), direct.points());
        let stats = store.stats();
        assert_eq!(stats.hits, 5);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
