//! Content-addressed experiment fingerprints.
//!
//! A fingerprint is a 128-bit digest of an experiment's *semantic
//! content*: the built per-rank programs (which bake in the workload's
//! structure and the [`mpi_sim::MsgCostModel`] software costs), the DVS
//! strategy, the full [`EngineConfig`] (wait policy, sampling, tracing,
//! metrics, fault spec), any cluster overrides, and a format-version
//! tag. Identical configurations collide by construction; changing any
//! single field changes the canonical byte stream and therefore the key.
//!
//! The digest is two independently salted passes of the workspace's
//! deterministic [`FxHasher`] over the same canonical bytes. FxHash has
//! no per-process state, so fingerprints are stable across processes and
//! machines — the property the on-disk cache stands on (and that the
//! golden-key test in `tests/sweepstore.rs` pins).

use std::hash::Hasher as _;

use cluster_sim::NodeConfig;
use dvfs::{AppSpeedRequest, CapPolicy};
use mpi_sim::{EngineConfig, Op, Program, Topology, WaitPolicy};
use net_model::NetworkParams;
use power_model::DvfsLadder;
use sim_core::hash::FxHasher;
use sim_core::Fault;

use super::codec::ByteWriter;
use crate::experiment::Experiment;
use crate::strategy::DvsStrategy;

/// Version tag mixed into every fingerprint and written into every
/// record header. Bump it whenever the canonical encoding or the record
/// payload layout changes; old cache entries then miss (and are
/// rejected) instead of decoding garbage.
///
/// v3: `RunResult` payloads gained the causal log and attribution
/// summary, and `EngineConfig::causal` joined the engine encoding.
///
/// v4: strategy frequencies are ladder-resolved before encoding (so
/// requests clamping to the same operating point share one record), and
/// the `PowerCap` controller strategy joined the strategy encoding.
pub const STORE_FORMAT_VERSION: u32 = 4;

const FINGERPRINT_MAGIC: &[u8; 4] = b"PWRF";
const SALT_LO: u64 = 0x5EED_CAFE_0000_0001;
const SALT_HI: u64 = 0x5EED_CAFE_0000_0002;
const SALT_CHECKSUM: u64 = 0x5EED_CAFE_0000_0003;

fn fx_hash(salt: u64, bytes: &[u8]) -> u64 {
    let mut h = FxHasher::default();
    h.write_u64(salt);
    h.write(bytes);
    h.finish()
}

/// Deterministic 64-bit record checksum (salted differently from the
/// fingerprint words so a record cannot checksum itself into validity).
pub fn checksum64(bytes: &[u8]) -> u64 {
    fx_hash(SALT_CHECKSUM, bytes)
}

/// A 128-bit content digest; the hex form names the record on disk.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Fingerprint {
    lo: u64,
    hi: u64,
}

impl Fingerprint {
    /// Digest a canonical byte stream.
    pub fn of_bytes(bytes: &[u8]) -> Self {
        Fingerprint {
            lo: fx_hash(SALT_LO, bytes),
            hi: fx_hash(SALT_HI, bytes),
        }
    }

    /// 32 lowercase hex characters (the on-disk record stem).
    pub fn to_hex(self) -> String {
        format!("{:016x}{:016x}", self.lo, self.hi)
    }

    /// The digest as 16 little-endian bytes (lo word first).
    pub fn to_bytes(self) -> [u8; 16] {
        let mut out = [0u8; 16];
        let (lo_half, hi_half) = out.split_at_mut(8);
        lo_half.copy_from_slice(&self.lo.to_le_bytes());
        hi_half.copy_from_slice(&self.hi.to_le_bytes());
        out
    }

    /// Parse the 32-hex-digit form produced by [`Fingerprint::to_hex`]
    /// (a record's file stem). `None` for anything else — compaction
    /// uses this to tell record files from strays.
    pub fn from_hex(hex: &str) -> Option<Self> {
        if hex.len() != 32 || !hex.chars().all(|c| c.is_ascii_hexdigit()) {
            return None;
        }
        let lo = u64::from_str_radix(hex.get(..16)?, 16).ok()?;
        let hi = u64::from_str_radix(hex.get(16..)?, 16).ok()?;
        Some(Fingerprint { lo, hi })
    }

    /// Rebuild from [`Fingerprint::to_bytes`] output.
    pub fn from_bytes(bytes: [u8; 16]) -> Self {
        let mut lo = [0u8; 8];
        let mut hi = [0u8; 8];
        let (lo_half, hi_half) = bytes.split_at(8);
        lo.copy_from_slice(lo_half);
        hi.copy_from_slice(hi_half);
        Fingerprint {
            lo: u64::from_le_bytes(lo),
            hi: u64::from_le_bytes(hi),
        }
    }
}

/// Fingerprint one experiment (the cache key for [`Experiment::run`]).
pub fn fingerprint_experiment(experiment: &Experiment) -> Fingerprint {
    Fingerprint::of_bytes(&canonical_experiment_bytes(experiment))
}

/// The canonical byte encoding [`fingerprint_experiment`] hashes.
/// Exposed so tests can assert the encoding itself is deterministic and
/// injective over single-field edits.
pub fn canonical_experiment_bytes(experiment: &Experiment) -> Vec<u8> {
    let programs = experiment
        .workload
        .programs(experiment.strategy.wants_instrumentation());
    canonical_parts_bytes(
        &programs,
        experiment.strategy,
        &experiment.engine,
        experiment.node_config.as_ref(),
        experiment.network.as_ref(),
    )
}

/// Fingerprint from already-built parts — for callers that assemble
/// programs directly (e.g. with a custom [`mpi_sim::MsgCostModel`], which
/// is baked into the lowered ops and therefore into this digest).
pub fn fingerprint_parts(
    programs: &[Program],
    strategy: DvsStrategy,
    engine: &EngineConfig,
) -> Fingerprint {
    Fingerprint::of_bytes(&canonical_parts_bytes(
        programs, strategy, engine, None, None,
    ))
}

fn canonical_parts_bytes(
    programs: &[Program],
    strategy: DvsStrategy,
    engine: &EngineConfig,
    node_config: Option<&NodeConfig>,
    network: Option<&NetworkParams>,
) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.put_raw(FINGERPRINT_MAGIC);
    w.put_u32(STORE_FORMAT_VERSION);
    encode_strategy(&mut w, strategy, node_config);
    encode_programs(&mut w, programs);
    encode_engine(&mut w, engine);
    // Cluster overrides enter via their `Debug` form: Rust formats f64
    // with shortest-round-trip precision, so distinct parameter values
    // produce distinct strings, and the default (None) is encoded
    // distinctly from an explicit override that happens to match it.
    encode_debug_override(&mut w, node_config);
    encode_debug_override(&mut w, network);
    w.into_bytes()
}

fn encode_debug_override<T: std::fmt::Debug>(w: &mut ByteWriter, value: Option<&T>) {
    match value {
        None => w.put_u8(0),
        Some(v) => {
            w.put_u8(1);
            w.put_str(&format!("{v:?}"));
        }
    }
}

fn encode_strategy(w: &mut ByteWriter, strategy: DvsStrategy, node_config: Option<&NodeConfig>) {
    // Requested frequencies are snapped to the ladder the run will
    // actually use before encoding: `StaticMhz(5000)` and
    // `StaticMhz(1400)` execute identically on the Pentium-M ladder, so
    // they must share one cache record.
    let default_ladder;
    let ladder = match node_config {
        Some(config) => &config.ladder,
        None => {
            default_ladder = DvfsLadder::pentium_m_1400();
            &default_ladder
        }
    };
    match strategy.resolved(ladder) {
        DvsStrategy::Cpuspeed => w.put_u8(0),
        DvsStrategy::StaticMhz(mhz) => {
            w.put_u8(1);
            w.put_u32(mhz);
        }
        DvsStrategy::DynamicBaseMhz(mhz) => {
            w.put_u8(2);
            w.put_u32(mhz);
        }
        DvsStrategy::OnDemand => w.put_u8(3),
        DvsStrategy::Conservative => w.put_u8(4),
        DvsStrategy::PowerCap { watts, policy } => {
            w.put_u8(5);
            w.put_u32(watts);
            w.put_u8(match policy {
                CapPolicy::Uniform => 0,
                CapPolicy::Redistribute => 1,
            });
        }
    }
}

fn encode_programs(w: &mut ByteWriter, programs: &[Program]) {
    w.put_usize(programs.len());
    for program in programs {
        w.put_usize(program.len());
        for op in program.ops() {
            encode_op(w, op);
        }
    }
}

fn encode_op(w: &mut ByteWriter, op: &Op) {
    match op {
        Op::Compute(work) => {
            w.put_u8(0);
            w.put_f64(work.cpu_cycles);
            w.put_f64(work.l2_accesses);
            w.put_f64(work.dram_accesses);
        }
        Op::Send { dst, bytes, tag } => {
            w.put_u8(1);
            w.put_usize(*dst);
            w.put_u64(*bytes);
            w.put_u32(*tag);
        }
        Op::Recv { src, tag } => {
            w.put_u8(2);
            w.put_usize(*src);
            w.put_u32(*tag);
        }
        Op::SendRecv {
            dst,
            send_bytes,
            send_tag,
            src,
            recv_tag,
        } => {
            w.put_u8(3);
            w.put_usize(*dst);
            w.put_u64(*send_bytes);
            w.put_u32(*send_tag);
            w.put_usize(*src);
            w.put_u32(*recv_tag);
        }
        Op::Isend { dst, bytes, tag } => {
            w.put_u8(4);
            w.put_usize(*dst);
            w.put_u64(*bytes);
            w.put_u32(*tag);
        }
        Op::Irecv { src, tag } => {
            w.put_u8(5);
            w.put_usize(*src);
            w.put_u32(*tag);
        }
        Op::WaitAll => w.put_u8(6),
        Op::SetSpeed(request) => {
            w.put_u8(7);
            encode_speed_request(w, *request);
        }
        Op::PhaseBegin(name) => {
            w.put_u8(8);
            w.put_str(name);
        }
        Op::PhaseEnd(name) => {
            w.put_u8(9);
            w.put_str(name);
        }
    }
}

fn encode_speed_request(w: &mut ByteWriter, request: AppSpeedRequest) {
    match request {
        AppSpeedRequest::Lowest => w.put_u8(0),
        AppSpeedRequest::Highest => w.put_u8(1),
        AppSpeedRequest::Index(i) => {
            w.put_u8(2);
            w.put_usize(i);
        }
        AppSpeedRequest::Restore => w.put_u8(3),
    }
}

fn encode_engine(w: &mut ByteWriter, engine: &EngineConfig) {
    w.put_u64(engine.eager_threshold);
    match engine.wait_policy {
        WaitPolicy::BusyPoll => w.put_u8(0),
        WaitPolicy::PollThenBlock(window) => {
            w.put_u8(1);
            w.put_u64(window.0);
        }
    }
    match engine.sample_interval {
        None => w.put_u8(0),
        Some(interval) => {
            w.put_u8(1);
            w.put_u64(interval.0);
        }
    }
    w.put_usize(engine.trace_capacity);
    w.put_bool(engine.metrics);
    w.put_u64(engine.faults.seed);
    w.put_usize(engine.faults.faults.len());
    for fault in &engine.faults.faults {
        encode_fault(w, fault);
    }
    match engine.topology {
        Topology::Flat => w.put_u8(0),
        Topology::FatTree { radix, oversub } => {
            w.put_u8(1);
            w.put_usize(radix);
            w.put_f64(oversub);
        }
    }
    // Unlike `shards`, `causal` keys the cache: it leaves the simulated
    // bits untouched but adds the causal log and attribution to the
    // stored payload, so a causal run must not replay a record cached
    // without them (or vice versa).
    w.put_bool(engine.causal);
    // `engine.shards` is deliberately NOT part of the key: shard count
    // never changes the RunResult (the determinism suite enforces bit
    // identity), so a sharded sweep may reuse a sequentially-filled
    // cache and vice versa.
}

fn encode_fault(w: &mut ByteWriter, fault: &Fault) {
    match *fault {
        Fault::ComputeSlowdown { node, factor } => {
            w.put_u8(0);
            w.put_usize(node);
            w.put_f64(factor);
        }
        Fault::BatteryStuck { node, after_s } => {
            w.put_u8(1);
            w.put_usize(node);
            w.put_f64(after_s);
        }
        Fault::BatteryNoise {
            node,
            amplitude_mwh,
        } => {
            w.put_u8(2);
            w.put_usize(node);
            w.put_u64(amplitude_mwh);
        }
        Fault::MeterBias { node, factor } => {
            w.put_u8(3);
            w.put_usize(node);
            w.put_f64(factor);
        }
        Fault::SampleSkip { probability } => {
            w.put_u8(4);
            w.put_f64(probability);
        }
        Fault::DvfsFail { node, probability } => {
            w.put_u8(5);
            w.put_usize(node);
            w.put_f64(probability);
        }
        Fault::DvfsLatency { node, factor } => {
            w.put_u8(6);
            w.put_usize(node);
            w.put_f64(factor);
        }
        Fault::DegradedLink {
            node,
            bandwidth_factor,
        } => {
            w.put_u8(7);
            w.put_usize(node);
            w.put_f64(bandwidth_factor);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::Workload;

    fn experiment() -> Experiment {
        Experiment::new(Workload::ft_test(2), DvsStrategy::StaticMhz(800))
    }

    #[test]
    fn identical_experiments_collide() {
        assert_eq!(
            fingerprint_experiment(&experiment()),
            fingerprint_experiment(&experiment())
        );
    }

    #[test]
    fn strategy_and_engine_fields_change_the_key() {
        let base = fingerprint_experiment(&experiment());
        let other_strategy = Experiment::new(Workload::ft_test(2), DvsStrategy::StaticMhz(600));
        assert_ne!(base, fingerprint_experiment(&other_strategy));

        let mut metrics_on = experiment();
        metrics_on.engine.metrics = true;
        assert_ne!(base, fingerprint_experiment(&metrics_on));
    }

    #[test]
    fn topology_changes_the_key_but_shards_do_not() {
        let base = fingerprint_experiment(&experiment());

        // The fabric shapes rates, so it must key the cache.
        let mut tree = experiment();
        tree.engine.topology = Topology::FatTree {
            radix: 4,
            oversub: 2.0,
        };
        assert_ne!(base, fingerprint_experiment(&tree));
        let mut wider = experiment();
        wider.engine.topology = Topology::FatTree {
            radix: 8,
            oversub: 2.0,
        };
        assert_ne!(
            fingerprint_experiment(&tree),
            fingerprint_experiment(&wider)
        );

        // Shard count never changes the result, so a sharded sweep may
        // replay a sequentially-filled cache: same key on purpose.
        let mut sharded = experiment();
        sharded.engine.shards = 8;
        assert_eq!(base, fingerprint_experiment(&sharded));

        // Causal recording changes the stored payload, so it must key.
        let mut causal = experiment();
        causal.engine.causal = true;
        assert_ne!(base, fingerprint_experiment(&causal));
    }

    #[test]
    fn requests_resolving_to_the_same_point_share_a_key() {
        // 5000 MHz clamps to the 1400 MHz ladder top; the two runs are
        // bit-identical, so the cache must serve one record for both.
        let requested = Experiment::new(Workload::ft_test(2), DvsStrategy::StaticMhz(5000));
        let resolved = Experiment::new(Workload::ft_test(2), DvsStrategy::StaticMhz(1400));
        assert_eq!(
            fingerprint_experiment(&requested),
            fingerprint_experiment(&resolved)
        );
        // Off-ladder dynamic bases snap too.
        let low = Experiment::new(Workload::ft_test(2), DvsStrategy::DynamicBaseMhz(100));
        let floor = Experiment::new(Workload::ft_test(2), DvsStrategy::DynamicBaseMhz(600));
        assert_eq!(fingerprint_experiment(&low), fingerprint_experiment(&floor));
        // Distinct resolved points still get distinct keys.
        let mid = Experiment::new(Workload::ft_test(2), DvsStrategy::StaticMhz(1000));
        assert_ne!(
            fingerprint_experiment(&requested),
            fingerprint_experiment(&mid)
        );
    }

    #[test]
    fn power_cap_watts_and_policy_key_the_cache() {
        let cap = |watts, policy| {
            fingerprint_experiment(&Experiment::new(
                Workload::ft_test(2),
                DvsStrategy::PowerCap { watts, policy },
            ))
        };
        let base = cap(120, CapPolicy::Uniform);
        assert_eq!(base, cap(120, CapPolicy::Uniform));
        assert_ne!(base, cap(110, CapPolicy::Uniform));
        assert_ne!(base, cap(120, CapPolicy::Redistribute));
        assert_ne!(base, fingerprint_experiment(&experiment()));
    }

    #[test]
    fn hex_and_bytes_round_trip() {
        let fp = fingerprint_experiment(&experiment());
        assert_eq!(fp.to_hex().len(), 32);
        assert_eq!(Fingerprint::from_bytes(fp.to_bytes()), fp);
        assert_eq!(Fingerprint::from_hex(&fp.to_hex()), Some(fp));
        assert_eq!(Fingerprint::from_hex("not-a-key"), None);
        assert_eq!(Fingerprint::from_hex(&fp.to_hex()[..31]), None);
    }

    #[test]
    fn checksum_differs_from_fingerprint_words() {
        let bytes = canonical_experiment_bytes(&experiment());
        let fp = Fingerprint::of_bytes(&bytes);
        assert_ne!(checksum64(&bytes), fp.lo);
        assert_ne!(checksum64(&bytes), fp.hi);
    }
}
