//! Byte-level encode/decode primitives for the SweepStore formats.
//!
//! Everything on disk (and everything fingerprinted) flows through these
//! two types, so the wire conventions live in one place: little-endian
//! fixed-width integers, `f64` as raw IEEE-754 bits (bit-identical
//! round-trips — no shortest-float formatting anywhere near the cache),
//! strings and sequences length-prefixed with a `u64`. Hand-rolled on
//! purpose: the build is offline and the workspace's only non-std
//! dependencies are the `compat/` shims.
//!
//! Decoding never panics. Every read is bounds-checked and every failure
//! comes back as a typed [`DecodeError`], because a corrupted cache
//! record must surface as a cache miss, not abort a sweep.

use std::fmt;

/// An append-only byte buffer with the store's encoding conventions.
#[derive(Debug, Default)]
pub struct ByteWriter {
    buf: Vec<u8>,
}

impl ByteWriter {
    /// An empty writer.
    pub fn new() -> Self {
        ByteWriter::default()
    }

    /// The encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Append raw bytes verbatim (magic numbers, fingerprint digests).
    pub fn put_raw(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Append one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Append a little-endian `u32`.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `u64`.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a `usize` widened to `u64` (lengths, node indices).
    pub fn put_usize(&mut self, v: usize) {
        self.put_u64(v as u64);
    }

    /// Append an `f64` as its raw IEEE-754 bit pattern.
    pub fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }

    /// Append a bool as one byte (0 or 1).
    pub fn put_bool(&mut self, v: bool) {
        self.put_u8(u8::from(v));
    }

    /// Append a length-prefixed UTF-8 string.
    pub fn put_str(&mut self, s: &str) {
        self.put_usize(s.len());
        self.buf.extend_from_slice(s.as_bytes());
    }
}

/// Why a byte stream failed to decode. Positions are byte offsets into
/// the payload being decoded.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// The stream ended before a fixed-width read completed.
    UnexpectedEof {
        /// Offset of the failed read.
        offset: usize,
        /// Bytes the read needed.
        needed: usize,
    },
    /// An enum tag byte was outside the known range.
    BadTag {
        /// Offset of the tag byte.
        offset: usize,
        /// What was being decoded.
        what: &'static str,
        /// The offending tag value.
        tag: u8,
    },
    /// A length prefix was absurd (larger than the remaining stream or
    /// than `usize`).
    BadLength {
        /// What was being decoded.
        what: &'static str,
    },
    /// A string's bytes were not valid UTF-8.
    BadUtf8 {
        /// Offset of the string payload.
        offset: usize,
    },
    /// Structurally well-formed bytes that violate an invariant (e.g.
    /// histogram bucket shape).
    Invalid {
        /// What was being decoded.
        what: &'static str,
    },
    /// Decoding finished with unconsumed bytes left over.
    TrailingBytes {
        /// How many bytes remained.
        remaining: usize,
    },
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::UnexpectedEof { offset, needed } => {
                write!(
                    f,
                    "unexpected end of record at byte {offset} (needed {needed} more)"
                )
            }
            DecodeError::BadTag { offset, what, tag } => {
                write!(f, "unknown {what} tag {tag} at byte {offset}")
            }
            DecodeError::BadLength { what } => {
                write!(f, "implausible length prefix while decoding {what}")
            }
            DecodeError::BadUtf8 { offset } => write!(f, "invalid UTF-8 at byte {offset}"),
            DecodeError::Invalid { what } => write!(f, "invalid {what}"),
            DecodeError::TrailingBytes { remaining } => {
                write!(f, "{remaining} trailing bytes after a complete record")
            }
        }
    }
}

impl std::error::Error for DecodeError {}

/// A bounds-checked cursor over an encoded byte slice.
#[derive(Debug)]
pub struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    /// A reader at the start of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        ByteReader { buf, pos: 0 }
    }

    /// Current byte offset.
    pub fn offset(&self) -> usize {
        self.pos
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len().saturating_sub(self.pos)
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], DecodeError> {
        let eof = DecodeError::UnexpectedEof {
            offset: self.pos,
            needed: n,
        };
        let end = self.pos.checked_add(n).ok_or(eof.clone())?;
        let slice = self.buf.get(self.pos..end).ok_or(eof)?;
        self.pos = end;
        Ok(slice)
    }

    /// Read one byte.
    pub fn get_u8(&mut self) -> Result<u8, DecodeError> {
        Ok(self.take(1)?.first().copied().unwrap_or_default())
    }

    /// Read a little-endian `u32`.
    pub fn get_u32(&mut self) -> Result<u32, DecodeError> {
        let mut word = [0u8; 4];
        word.copy_from_slice(self.take(4)?);
        Ok(u32::from_le_bytes(word))
    }

    /// Read a little-endian `u64`.
    pub fn get_u64(&mut self) -> Result<u64, DecodeError> {
        let mut word = [0u8; 8];
        word.copy_from_slice(self.take(8)?);
        Ok(u64::from_le_bytes(word))
    }

    /// Read an `f64` from its raw bit pattern.
    pub fn get_f64(&mut self) -> Result<f64, DecodeError> {
        Ok(f64::from_bits(self.get_u64()?))
    }

    /// Read a bool byte; anything but 0/1 is a [`DecodeError::BadTag`].
    pub fn get_bool(&mut self) -> Result<bool, DecodeError> {
        let offset = self.pos;
        match self.get_u8()? {
            0 => Ok(false),
            1 => Ok(true),
            tag => Err(DecodeError::BadTag {
                offset,
                what: "bool",
                tag,
            }),
        }
    }

    /// Read a sequence-length prefix, rejecting counts that could not fit
    /// in the remaining bytes at `min_elem_bytes` each — a corrupted
    /// length must fail cleanly, not drive a huge allocation.
    pub fn get_seq_len(
        &mut self,
        what: &'static str,
        min_elem_bytes: usize,
    ) -> Result<usize, DecodeError> {
        let raw = self.get_u64()?;
        let len = usize::try_from(raw).map_err(|_| DecodeError::BadLength { what })?;
        let cap = match min_elem_bytes {
            0 => usize::MAX,
            per => self.remaining() / per,
        };
        if len > cap {
            return Err(DecodeError::BadLength { what });
        }
        Ok(len)
    }

    /// Read a length-prefixed UTF-8 string.
    pub fn get_str(&mut self) -> Result<String, DecodeError> {
        let len = self.get_seq_len("string", 1)?;
        let offset = self.pos;
        let bytes = self.take(len)?;
        std::str::from_utf8(bytes)
            .map(str::to_owned)
            .map_err(|_| DecodeError::BadUtf8 { offset })
    }

    /// Read raw bytes verbatim.
    pub fn get_raw(&mut self, n: usize) -> Result<&'a [u8], DecodeError> {
        self.take(n)
    }

    /// Assert the stream is fully consumed.
    pub fn finish(self) -> Result<(), DecodeError> {
        match self.remaining() {
            0 => Ok(()),
            remaining => Err(DecodeError::TrailingBytes { remaining }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_round_trip() {
        let mut w = ByteWriter::new();
        w.put_u8(7);
        w.put_u32(0xDEAD_BEEF);
        w.put_u64(u64::MAX - 1);
        w.put_f64(-0.0);
        w.put_bool(true);
        w.put_str("phase: fft");
        let bytes = w.into_bytes();

        let mut r = ByteReader::new(&bytes);
        assert_eq!(r.get_u8().unwrap(), 7);
        assert_eq!(r.get_u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.get_u64().unwrap(), u64::MAX - 1);
        // Bit-exact: -0.0 must come back as -0.0, not 0.0.
        assert_eq!(r.get_f64().unwrap().to_bits(), (-0.0f64).to_bits());
        assert!(r.get_bool().unwrap());
        assert_eq!(r.get_str().unwrap(), "phase: fft");
        r.finish().unwrap();
    }

    #[test]
    fn truncated_reads_are_typed_errors() {
        let mut w = ByteWriter::new();
        w.put_u64(42);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes[..5]);
        assert!(matches!(
            r.get_u64(),
            Err(DecodeError::UnexpectedEof { needed: 8, .. })
        ));
    }

    #[test]
    fn absurd_length_prefix_is_rejected() {
        let mut w = ByteWriter::new();
        w.put_u64(u64::MAX);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert_eq!(
            r.get_seq_len("samples", 8),
            Err(DecodeError::BadLength { what: "samples" })
        );
    }

    #[test]
    fn bad_bool_and_trailing_bytes() {
        let mut r = ByteReader::new(&[9, 1]);
        assert!(matches!(
            r.get_bool(),
            Err(DecodeError::BadTag {
                what: "bool",
                tag: 9,
                ..
            })
        ));
        assert_eq!(r.finish(), Err(DecodeError::TrailingBytes { remaining: 1 }));
    }

    #[test]
    fn bad_utf8_is_a_typed_error() {
        let mut w = ByteWriter::new();
        w.put_usize(2);
        w.put_raw(&[0xFF, 0xFE]);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert!(matches!(r.get_str(), Err(DecodeError::BadUtf8 { .. })));
    }
}
