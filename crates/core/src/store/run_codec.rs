//! Bit-exact serialization of [`RunResult`] for the on-disk store.
//!
//! The decoder must reproduce a value that is `==` to the original —
//! including `f64` bit patterns (raw IEEE-754 bits on the wire), the
//! `&'static str` payloads inside trace events (re-minted through
//! [`sim_core::intern_static`]), and the *insertion order* of the
//! metrics registry (derived `PartialEq` on [`MetricsRegistry`] compares
//! the insertion-ordered vectors, so serialization iterates in insertion
//! order, not export order).

use mpi_sim::{RankBreakdown, RunResult, SampleRow};
use obs::{Histogram, MetricsRegistry, RankAttribution, RunAttribution};
use power_model::EnergyReport;
use sim_core::{
    intern_static, CausalLog, DvfsRecord, FaultCounts, MsgRecord, SimDuration, SimTime,
    TraceDetail, TraceEvent, TraceKind, WaitCause, WaitRecord,
};

use super::codec::{ByteReader, ByteWriter, DecodeError};

/// Encode a run result into the store's canonical payload bytes.
pub fn encode_run_result(result: &RunResult) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.put_u64(result.duration.0);
    w.put_usize(result.per_node.len());
    for report in &result.per_node {
        encode_energy(&mut w, report);
    }
    encode_energy(&mut w, &result.total);
    w.put_usize(result.breakdown.len());
    for b in &result.breakdown {
        w.put_u64(b.compute.0);
        w.put_u64(b.mem_stall.0);
        w.put_u64(b.wait_busy.0);
        w.put_u64(b.wait_blocked.0);
        w.put_u64(b.transition.0);
    }
    w.put_usize(result.transitions.len());
    for &t in &result.transitions {
        w.put_u64(t);
    }
    w.put_usize(result.samples.len());
    for row in &result.samples {
        encode_sample(&mut w, row);
    }
    w.put_usize(result.trace.len());
    for event in &result.trace {
        encode_trace_event(&mut w, event);
    }
    w.put_u64(result.trace_dropped);
    w.put_usize(result.freq_residency.len());
    for node in &result.freq_residency {
        w.put_usize(node.len());
        for &(mhz, residency) in node {
            w.put_u32(mhz);
            w.put_u64(residency.0);
        }
    }
    w.put_u64(result.events);
    encode_fault_counts(&mut w, &result.faults);
    match &result.metrics {
        None => w.put_u8(0),
        Some(registry) => {
            w.put_u8(1);
            encode_metrics(&mut w, registry);
        }
    }
    match &result.causal {
        None => w.put_u8(0),
        Some(log) => {
            w.put_u8(1);
            encode_causal(&mut w, log);
        }
    }
    match &result.attribution {
        None => w.put_u8(0),
        Some(attribution) => {
            w.put_u8(1);
            encode_attribution(&mut w, attribution);
        }
    }
    w.into_bytes()
}

/// Decode a payload produced by [`encode_run_result`]. Never panics:
/// corrupt or truncated input comes back as a typed [`DecodeError`].
pub fn decode_run_result(bytes: &[u8]) -> Result<RunResult, DecodeError> {
    let mut r = ByteReader::new(bytes);
    let duration = SimDuration(r.get_u64()?);
    let per_node_len = r.get_seq_len("per-node energy", 48)?;
    let mut per_node = Vec::with_capacity(per_node_len);
    for _ in 0..per_node_len {
        per_node.push(decode_energy(&mut r)?);
    }
    let total = decode_energy(&mut r)?;
    let breakdown_len = r.get_seq_len("rank breakdown", 40)?;
    let mut breakdown = Vec::with_capacity(breakdown_len);
    for _ in 0..breakdown_len {
        breakdown.push(RankBreakdown {
            compute: SimDuration(r.get_u64()?),
            mem_stall: SimDuration(r.get_u64()?),
            wait_busy: SimDuration(r.get_u64()?),
            wait_blocked: SimDuration(r.get_u64()?),
            transition: SimDuration(r.get_u64()?),
        });
    }
    let transitions_len = r.get_seq_len("transitions", 8)?;
    let mut transitions = Vec::with_capacity(transitions_len);
    for _ in 0..transitions_len {
        transitions.push(r.get_u64()?);
    }
    let samples_len = r.get_seq_len("samples", 40)?;
    let mut samples = Vec::with_capacity(samples_len);
    for _ in 0..samples_len {
        samples.push(decode_sample(&mut r)?);
    }
    let trace_len = r.get_seq_len("trace", 18)?;
    let mut trace = Vec::with_capacity(trace_len);
    for _ in 0..trace_len {
        trace.push(decode_trace_event(&mut r)?);
    }
    let trace_dropped = r.get_u64()?;
    let residency_len = r.get_seq_len("freq residency", 8)?;
    let mut freq_residency = Vec::with_capacity(residency_len);
    for _ in 0..residency_len {
        let points = r.get_seq_len("freq residency points", 12)?;
        let mut node = Vec::with_capacity(points);
        for _ in 0..points {
            let mhz = r.get_u32()?;
            node.push((mhz, SimDuration(r.get_u64()?)));
        }
        freq_residency.push(node);
    }
    let events = r.get_u64()?;
    let faults = decode_fault_counts(&mut r)?;
    let metrics = match r.get_u8()? {
        0 => None,
        1 => Some(decode_metrics(&mut r)?),
        tag => {
            return Err(DecodeError::BadTag {
                offset: r.offset().saturating_sub(1),
                what: "metrics presence",
                tag,
            })
        }
    };
    let causal = match r.get_u8()? {
        0 => None,
        1 => Some(decode_causal(&mut r)?),
        tag => {
            return Err(DecodeError::BadTag {
                offset: r.offset().saturating_sub(1),
                what: "causal presence",
                tag,
            })
        }
    };
    let attribution = match r.get_u8()? {
        0 => None,
        1 => Some(decode_attribution(&mut r)?),
        tag => {
            return Err(DecodeError::BadTag {
                offset: r.offset().saturating_sub(1),
                what: "attribution presence",
                tag,
            })
        }
    };
    r.finish()?;
    Ok(RunResult {
        duration,
        per_node,
        total,
        breakdown,
        transitions,
        samples,
        trace,
        trace_dropped,
        freq_residency,
        events,
        faults,
        metrics,
        causal,
        attribution,
    })
}

fn encode_energy(w: &mut ByteWriter, report: &EnergyReport) {
    w.put_f64(report.cpu_dynamic_j);
    w.put_f64(report.cpu_static_j);
    w.put_f64(report.base_j);
    w.put_f64(report.memory_j);
    w.put_f64(report.nic_j);
    w.put_f64(report.transition_j);
}

fn decode_energy(r: &mut ByteReader<'_>) -> Result<EnergyReport, DecodeError> {
    Ok(EnergyReport {
        cpu_dynamic_j: r.get_f64()?,
        cpu_static_j: r.get_f64()?,
        base_j: r.get_f64()?,
        memory_j: r.get_f64()?,
        nic_j: r.get_f64()?,
        transition_j: r.get_f64()?,
    })
}

fn encode_sample(w: &mut ByteWriter, row: &SampleRow) {
    w.put_u64(row.time.0);
    w.put_usize(row.node_power_w.len());
    for &p in &row.node_power_w {
        w.put_f64(p);
    }
    w.put_usize(row.node_energy_j.len());
    for &e in &row.node_energy_j {
        w.put_f64(e);
    }
    w.put_usize(row.node_mhz.len());
    for &m in &row.node_mhz {
        w.put_u32(m);
    }
    w.put_usize(row.node_battery_mwh.len());
    for &b in &row.node_battery_mwh {
        w.put_u64(b);
    }
}

fn decode_sample(r: &mut ByteReader<'_>) -> Result<SampleRow, DecodeError> {
    let time = SimTime(r.get_u64()?);
    let power_len = r.get_seq_len("sample power", 8)?;
    let mut node_power_w = Vec::with_capacity(power_len);
    for _ in 0..power_len {
        node_power_w.push(r.get_f64()?);
    }
    let energy_len = r.get_seq_len("sample energy", 8)?;
    let mut node_energy_j = Vec::with_capacity(energy_len);
    for _ in 0..energy_len {
        node_energy_j.push(r.get_f64()?);
    }
    let mhz_len = r.get_seq_len("sample mhz", 4)?;
    let mut node_mhz = Vec::with_capacity(mhz_len);
    for _ in 0..mhz_len {
        node_mhz.push(r.get_u32()?);
    }
    let battery_len = r.get_seq_len("sample battery", 8)?;
    let mut node_battery_mwh = Vec::with_capacity(battery_len);
    for _ in 0..battery_len {
        node_battery_mwh.push(r.get_u64()?);
    }
    Ok(SampleRow {
        time,
        node_power_w,
        node_energy_j,
        node_mhz,
        node_battery_mwh,
    })
}

fn encode_trace_event(w: &mut ByteWriter, event: &TraceEvent) {
    w.put_u64(event.time.0);
    w.put_usize(event.node);
    let kind_tag = match event.kind {
        TraceKind::PhaseBegin => 0u8,
        TraceKind::PhaseEnd => 1,
        TraceKind::FreqChange => 2,
        TraceKind::MsgStart => 3,
        TraceKind::MsgEnd => 4,
        TraceKind::Sample => 5,
        TraceKind::Control => 6,
        TraceKind::Other => 7,
    };
    w.put_u8(kind_tag);
    match event.detail {
        TraceDetail::None => w.put_u8(0),
        TraceDetail::Phase(name) => {
            w.put_u8(1);
            w.put_str(name);
        }
        TraceDetail::MsgTo { dst, bytes } => {
            w.put_u8(2);
            w.put_usize(dst);
            w.put_u64(bytes);
        }
        TraceDetail::MsgFrom { src } => {
            w.put_u8(3);
            w.put_usize(src);
        }
        TraceDetail::Freq { from_mhz, to_mhz } => {
            w.put_u8(4);
            w.put_u32(from_mhz);
            w.put_u32(to_mhz);
        }
        TraceDetail::Label(name) => {
            w.put_u8(5);
            w.put_str(name);
        }
    }
}

fn decode_trace_event(r: &mut ByteReader<'_>) -> Result<TraceEvent, DecodeError> {
    let time = SimTime(r.get_u64()?);
    let node = decode_node_index(r)?;
    let kind_offset = r.offset();
    let kind = match r.get_u8()? {
        0 => TraceKind::PhaseBegin,
        1 => TraceKind::PhaseEnd,
        2 => TraceKind::FreqChange,
        3 => TraceKind::MsgStart,
        4 => TraceKind::MsgEnd,
        5 => TraceKind::Sample,
        6 => TraceKind::Control,
        7 => TraceKind::Other,
        tag => {
            return Err(DecodeError::BadTag {
                offset: kind_offset,
                what: "trace kind",
                tag,
            })
        }
    };
    let detail_offset = r.offset();
    let detail = match r.get_u8()? {
        0 => TraceDetail::None,
        1 => TraceDetail::Phase(intern_static(&r.get_str()?)),
        2 => TraceDetail::MsgTo {
            dst: decode_node_index(r)?,
            bytes: r.get_u64()?,
        },
        3 => TraceDetail::MsgFrom {
            src: decode_node_index(r)?,
        },
        4 => TraceDetail::Freq {
            from_mhz: r.get_u32()?,
            to_mhz: r.get_u32()?,
        },
        5 => TraceDetail::Label(intern_static(&r.get_str()?)),
        tag => {
            return Err(DecodeError::BadTag {
                offset: detail_offset,
                what: "trace detail",
                tag,
            })
        }
    };
    Ok(TraceEvent {
        time,
        node,
        kind,
        detail,
    })
}

/// Node indices include [`sim_core::trace::CLUSTER_NODE`] (`usize::MAX`),
/// so they round-trip through `u64` without a plausibility bound.
fn decode_node_index(r: &mut ByteReader<'_>) -> Result<usize, DecodeError> {
    usize::try_from(r.get_u64()?).map_err(|_| DecodeError::BadLength { what: "node index" })
}

fn encode_fault_counts(w: &mut ByteWriter, counts: &FaultCounts) {
    w.put_u64(counts.compute_slowdowns);
    w.put_u64(counts.dvfs_failures);
    w.put_u64(counts.dvfs_latency_spikes);
    w.put_u64(counts.battery_stuck_reads);
    w.put_u64(counts.battery_noisy_reads);
    w.put_u64(counts.battery_errors);
    w.put_u64(counts.samples_skipped);
    w.put_u64(counts.meter_biased_samples);
    w.put_u64(counts.degraded_links);
}

fn decode_fault_counts(r: &mut ByteReader<'_>) -> Result<FaultCounts, DecodeError> {
    Ok(FaultCounts {
        compute_slowdowns: r.get_u64()?,
        dvfs_failures: r.get_u64()?,
        dvfs_latency_spikes: r.get_u64()?,
        battery_stuck_reads: r.get_u64()?,
        battery_noisy_reads: r.get_u64()?,
        battery_errors: r.get_u64()?,
        samples_skipped: r.get_u64()?,
        meter_biased_samples: r.get_u64()?,
        degraded_links: r.get_u64()?,
    })
}

fn encode_metrics(w: &mut ByteWriter, registry: &MetricsRegistry) {
    let counters: Vec<(&str, u64)> = registry.counters_in_order().collect();
    w.put_usize(counters.len());
    for (name, value) in counters {
        w.put_str(name);
        w.put_u64(value);
    }
    let gauges: Vec<(&str, f64)> = registry.gauges_in_order().collect();
    w.put_usize(gauges.len());
    for (name, value) in gauges {
        w.put_str(name);
        w.put_f64(value);
    }
    let histograms: Vec<(&str, &Histogram)> = registry.histograms_in_order().collect();
    w.put_usize(histograms.len());
    for (name, h) in histograms {
        w.put_str(name);
        w.put_usize(h.bounds().len());
        for &b in h.bounds() {
            w.put_f64(b);
        }
        w.put_usize(h.counts().len());
        for &c in h.counts() {
            w.put_u64(c);
        }
        w.put_u64(h.count());
        w.put_f64(h.sum());
    }
}

fn decode_metrics(r: &mut ByteReader<'_>) -> Result<MetricsRegistry, DecodeError> {
    let mut registry = MetricsRegistry::new();
    let counters = r.get_seq_len("metric counters", 16)?;
    for _ in 0..counters {
        let name = r.get_str()?;
        let value = r.get_u64()?;
        registry.counter_add_owned(name, value);
    }
    let gauges = r.get_seq_len("metric gauges", 16)?;
    for _ in 0..gauges {
        let name = r.get_str()?;
        let value = r.get_f64()?;
        registry.gauge_set_owned(name, value);
    }
    let histograms = r.get_seq_len("metric histograms", 32)?;
    for _ in 0..histograms {
        let name = r.get_str()?;
        let bounds_len = r.get_seq_len("histogram bounds", 8)?;
        let mut bounds = Vec::with_capacity(bounds_len);
        for _ in 0..bounds_len {
            bounds.push(r.get_f64()?);
        }
        let counts_len = r.get_seq_len("histogram counts", 8)?;
        let mut counts = Vec::with_capacity(counts_len);
        for _ in 0..counts_len {
            counts.push(r.get_u64()?);
        }
        let count = r.get_u64()?;
        let sum = r.get_f64()?;
        let histogram =
            Histogram::from_parts(bounds, counts, count, sum).ok_or(DecodeError::Invalid {
                what: "histogram bucket shape",
            })?;
        registry.histogram_insert_owned(name, histogram);
    }
    Ok(registry)
}

fn encode_opt_time(w: &mut ByteWriter, t: Option<SimTime>) {
    match t {
        None => w.put_u8(0),
        Some(t) => {
            w.put_u8(1);
            w.put_u64(t.0);
        }
    }
}

fn decode_opt_time(r: &mut ByteReader<'_>) -> Result<Option<SimTime>, DecodeError> {
    let tag_offset = r.offset();
    match r.get_u8()? {
        0 => Ok(None),
        1 => Ok(Some(SimTime(r.get_u64()?))),
        tag => Err(DecodeError::BadTag {
            offset: tag_offset,
            what: "optional time presence",
            tag,
        }),
    }
}

fn encode_causal(w: &mut ByteWriter, log: &CausalLog) {
    w.put_usize(log.msgs.len());
    for m in &log.msgs {
        w.put_usize(m.src);
        w.put_usize(m.dst);
        w.put_u64(m.bytes);
        w.put_bool(m.collective);
        w.put_u64(m.posted_at.0);
        encode_opt_time(w, m.flow_started_at);
        encode_opt_time(w, m.drained_at);
        encode_opt_time(w, m.delivered_at);
    }
    w.put_usize(log.waits.len());
    for wait in &log.waits {
        w.put_usize(wait.rank);
        w.put_u64(wait.start.0);
        w.put_u64(wait.end.0);
        match wait.cause {
            WaitCause::SendDrained(id) => {
                w.put_u8(0);
                w.put_usize(id);
            }
            WaitCause::RecvDelivered(id) => {
                w.put_u8(1);
                w.put_usize(id);
            }
        }
        w.put_f64(wait.energy_start_j);
        w.put_f64(wait.energy_end_j);
    }
    w.put_usize(log.dvfs.len());
    for d in &log.dvfs {
        w.put_usize(d.node);
        w.put_u64(d.start.0);
        w.put_u64(d.end.0);
    }
    w.put_usize(log.finish.len());
    for &t in &log.finish {
        w.put_u64(t.0);
    }
    w.put_usize(log.finish_energy_j.len());
    for &e in &log.finish_energy_j {
        w.put_f64(e);
    }
}

fn decode_causal(r: &mut ByteReader<'_>) -> Result<CausalLog, DecodeError> {
    let msgs_len = r.get_seq_len("causal messages", 44)?;
    let mut msgs = Vec::with_capacity(msgs_len);
    for _ in 0..msgs_len {
        msgs.push(MsgRecord {
            src: decode_node_index(r)?,
            dst: decode_node_index(r)?,
            bytes: r.get_u64()?,
            collective: r.get_bool()?,
            posted_at: SimTime(r.get_u64()?),
            flow_started_at: decode_opt_time(r)?,
            drained_at: decode_opt_time(r)?,
            delivered_at: decode_opt_time(r)?,
        });
    }
    let waits_len = r.get_seq_len("causal waits", 49)?;
    let mut waits = Vec::with_capacity(waits_len);
    for _ in 0..waits_len {
        let rank = decode_node_index(r)?;
        let start = SimTime(r.get_u64()?);
        let end = SimTime(r.get_u64()?);
        let cause_offset = r.offset();
        let cause = match r.get_u8()? {
            0 => WaitCause::SendDrained(decode_node_index(r)?),
            1 => WaitCause::RecvDelivered(decode_node_index(r)?),
            tag => {
                return Err(DecodeError::BadTag {
                    offset: cause_offset,
                    what: "wait cause",
                    tag,
                })
            }
        };
        waits.push(WaitRecord {
            rank,
            start,
            end,
            cause,
            energy_start_j: r.get_f64()?,
            energy_end_j: r.get_f64()?,
        });
    }
    let dvfs_len = r.get_seq_len("causal dvfs", 24)?;
    let mut dvfs = Vec::with_capacity(dvfs_len);
    for _ in 0..dvfs_len {
        dvfs.push(DvfsRecord {
            node: decode_node_index(r)?,
            start: SimTime(r.get_u64()?),
            end: SimTime(r.get_u64()?),
        });
    }
    let finish_len = r.get_seq_len("causal finish times", 8)?;
    let mut finish = Vec::with_capacity(finish_len);
    for _ in 0..finish_len {
        finish.push(SimTime(r.get_u64()?));
    }
    let energy_len = r.get_seq_len("causal finish energy", 8)?;
    let mut finish_energy_j = Vec::with_capacity(energy_len);
    for _ in 0..energy_len {
        finish_energy_j.push(r.get_f64()?);
    }
    Ok(CausalLog {
        msgs,
        waits,
        dvfs,
        finish,
        finish_energy_j,
    })
}

fn encode_attribution(w: &mut ByteWriter, a: &RunAttribution) {
    w.put_u64(a.makespan.0);
    w.put_u64(a.critical_path.0);
    w.put_u64(a.cp_comm.0);
    w.put_u64(a.cp_hops);
    w.put_usize(a.ranks.len());
    for rank in &a.ranks {
        w.put_u64(rank.compute.0);
        w.put_u64(rank.comm.0);
        w.put_u64(rank.blocked.0);
        w.put_u64(rank.cp_residency.0);
        w.put_u64(rank.finish.0);
        w.put_f64(rank.compute_j);
        w.put_f64(rank.comm_j);
        w.put_f64(rank.blocked_j);
        w.put_f64(rank.idle_tail_j);
        w.put_f64(rank.slack_j);
        w.put_f64(rank.total_j);
    }
    w.put_f64(a.redistributable_j);
}

fn decode_attribution(r: &mut ByteReader<'_>) -> Result<RunAttribution, DecodeError> {
    let makespan = SimDuration(r.get_u64()?);
    let critical_path = SimDuration(r.get_u64()?);
    let cp_comm = SimDuration(r.get_u64()?);
    let cp_hops = r.get_u64()?;
    let ranks_len = r.get_seq_len("attribution ranks", 88)?;
    let mut ranks = Vec::with_capacity(ranks_len);
    for _ in 0..ranks_len {
        ranks.push(RankAttribution {
            compute: SimDuration(r.get_u64()?),
            comm: SimDuration(r.get_u64()?),
            blocked: SimDuration(r.get_u64()?),
            cp_residency: SimDuration(r.get_u64()?),
            finish: SimTime(r.get_u64()?),
            compute_j: r.get_f64()?,
            comm_j: r.get_f64()?,
            blocked_j: r.get_f64()?,
            idle_tail_j: r.get_f64()?,
            slack_j: r.get_f64()?,
            total_j: r.get_f64()?,
        });
    }
    let redistributable_j = r.get_f64()?;
    Ok(RunAttribution {
        makespan,
        critical_path,
        cp_comm,
        cp_hops,
        ranks,
        redistributable_j,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::Experiment;
    use crate::strategy::DvsStrategy;
    use crate::workload::Workload;
    use mpi_sim::EngineConfig;

    fn rich_result() -> RunResult {
        let engine = EngineConfig {
            sample_interval: Some(SimDuration::from_millis(5)),
            trace_capacity: 1 << 16,
            metrics: true,
            causal: true,
            ..EngineConfig::default()
        };
        Experiment::new(Workload::ft_test(2), DvsStrategy::DynamicBaseMhz(1400))
            .with_engine(engine)
            .run()
    }

    #[test]
    fn round_trip_is_bit_identical() {
        let original = rich_result();
        assert!(!original.samples.is_empty());
        assert!(!original.trace.is_empty());
        assert!(original.metrics.is_some());
        assert!(original.causal.as_ref().is_some_and(|c| !c.msgs.is_empty()));
        assert!(original.attribution.is_some());
        let bytes = encode_run_result(&original);
        let decoded = decode_run_result(&bytes).unwrap();
        assert_eq!(original, decoded);
        // And encoding the decoded value reproduces the same bytes.
        assert_eq!(bytes, encode_run_result(&decoded));
    }

    #[test]
    fn truncation_at_every_prefix_is_an_error_not_a_panic() {
        let bytes = encode_run_result(&rich_result());
        // Check a spread of prefixes (every length would be slow in debug).
        for len in (0..bytes.len()).step_by(97) {
            assert!(
                decode_run_result(&bytes[..len]).is_err(),
                "prefix of {len} bytes decoded successfully"
            );
        }
    }

    #[test]
    fn trailing_garbage_is_rejected() {
        let mut bytes = encode_run_result(&rich_result());
        bytes.push(0);
        assert_eq!(
            decode_run_result(&bytes),
            Err(DecodeError::TrailingBytes { remaining: 1 })
        );
    }
}
