//! SweepStore: a persistent, content-addressed experiment result cache.
//!
//! The paper's figures re-run the same workload at every operating
//! point, every `∂`, and (in our extensions) every fault spec — and the
//! simulator is deterministic, so an identical configuration always
//! produces an identical [`mpi_sim::RunResult`]. That makes results
//! memoizable by *content*: [`fingerprint_experiment`] digests the
//! canonical byte encoding of everything that can influence a run
//! (built programs incl. message-cost model, strategy, engine config,
//! fault spec, cluster overrides, format version) with the workspace's
//! deterministic FxHash, and [`SweepStore`] keeps one checksummed record
//! per digest. See DESIGN.md §12 for the format and invalidation rules,
//! and [`crate::sweep`] for the resumable planner built on top.

mod codec;
mod disk;
mod fingerprint;
mod run_codec;

pub use codec::{ByteReader, ByteWriter, DecodeError};
pub use disk::{StoreError, StoreStats, SweepStore};
pub use fingerprint::{
    canonical_experiment_bytes, checksum64, fingerprint_experiment, fingerprint_parts, Fingerprint,
    STORE_FORMAT_VERSION,
};
pub use run_codec::{decode_run_result, encode_run_result};
