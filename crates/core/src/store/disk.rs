//! The persistent record store: one checksummed file per fingerprint.
//!
//! Records are sharded by the first fingerprint byte —
//! `<store-dir>/<hh>/<fingerprint-hex>.run`, where `hh` is the first two
//! hex digits — so a store holding tens of thousands of records never
//! puts more than ~1/256th of them in one directory. Stores written
//! before sharding kept every record flat in the root; reads transparently
//! fall back to that legacy location, and compaction (the service layer)
//! migrates legacy records into their shard.
//!
//! Layout of a record file:
//!
//! ```text
//! magic      b"PWRS"                      4 bytes
//! version    STORE_FORMAT_VERSION         u32 LE
//! key        fingerprint digest           16 bytes
//! length     payload byte count           u64 LE
//! payload    encode_run_result(...)       `length` bytes
//! checksum   checksum64(payload)          u64 LE
//! ```
//!
//! Writes go to a temporary sibling — named with the writer's pid and a
//! per-process sequence number, so concurrent writers of the *same* key
//! never interleave on one tmp file — then `sync_all` and `rename` into
//! place. A killed sweep leaves either a complete record or no record,
//! never a torn one the next run would have to distrust. Reads validate
//! every header field and the checksum before decoding; any mismatch is a
//! typed [`StoreError`], which the sweep layer treats as a cache miss.

use std::fs;
use std::io::{ErrorKind, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use mpi_sim::RunResult;

use super::codec::{ByteReader, ByteWriter, DecodeError};
use super::fingerprint::{checksum64, Fingerprint, STORE_FORMAT_VERSION};
use super::run_codec::{decode_run_result, encode_run_result};

const RECORD_MAGIC: &[u8; 4] = b"PWRS";
const HEADER_LEN: usize = 4 + 4 + 16 + 8;

/// Per-process sequence for unique tmp-file names: two threads writing
/// the same fingerprint concurrently must never share a tmp sibling, or
/// one renames the other's half-written bytes into place.
static TMP_SEQ: AtomicU64 = AtomicU64::new(0);

/// Why a store operation failed.
#[derive(Debug)]
pub enum StoreError {
    /// The filesystem said no (permissions, disk full, ...).
    Io {
        /// Path involved.
        path: PathBuf,
        /// The underlying error.
        source: std::io::Error,
    },
    /// The record bytes failed structural validation (bad magic, wrong
    /// key, truncation, checksum mismatch).
    Corrupt {
        /// Path of the offending record.
        path: PathBuf,
        /// What failed.
        reason: &'static str,
    },
    /// The record was written by a different format version.
    Version {
        /// Path of the offending record.
        path: PathBuf,
        /// Version found in the header.
        found: u32,
    },
    /// The payload validated but its contents would not decode.
    Decode {
        /// Path of the offending record.
        path: PathBuf,
        /// The underlying decode error.
        source: DecodeError,
    },
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::Io { path, source } => {
                write!(f, "store I/O error at {}: {source}", path.display())
            }
            StoreError::Corrupt { path, reason } => {
                write!(f, "corrupt store record {}: {reason}", path.display())
            }
            StoreError::Version { path, found } => write!(
                f,
                "store record {} has format version {found}, expected {STORE_FORMAT_VERSION}",
                path.display()
            ),
            StoreError::Decode { path, source } => {
                write!(f, "undecodable store record {}: {source}", path.display())
            }
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io { source, .. } => Some(source),
            StoreError::Decode { source, .. } => Some(source),
            StoreError::Corrupt { .. } | StoreError::Version { .. } => None,
        }
    }
}

/// Cumulative I/O accounting for one store handle.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Records found and decoded.
    pub hits: u64,
    /// Lookups that found no record.
    pub misses: u64,
    /// Lookups that found a record but rejected it (corruption, version
    /// skew, undecodable payload).
    pub corrupt: u64,
    /// Record bytes read (including rejected records).
    pub bytes_read: u64,
    /// Record bytes written.
    pub bytes_written: u64,
}

/// A content-addressed cache of [`RunResult`]s in one directory.
#[derive(Debug)]
pub struct SweepStore {
    dir: PathBuf,
    stats: StoreStats,
}

impl SweepStore {
    /// Open (creating if needed) a store rooted at `dir`.
    pub fn open(dir: impl Into<PathBuf>) -> Result<Self, StoreError> {
        let dir = dir.into();
        fs::create_dir_all(&dir).map_err(|source| StoreError::Io {
            path: dir.clone(),
            source,
        })?;
        Ok(SweepStore {
            dir,
            stats: StoreStats::default(),
        })
    }

    /// The store's directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Where `fingerprint`'s record lives (whether or not it exists):
    /// the sharded location, `<dir>/<hh>/<hex>.run`.
    pub fn record_path(&self, fingerprint: Fingerprint) -> PathBuf {
        let hex = fingerprint.to_hex();
        self.dir.join(&hex[..2]).join(format!("{hex}.run"))
    }

    /// Where a pre-sharding store kept `fingerprint`'s record: flat in
    /// the root. Reads fall back here; writes never land here.
    pub fn legacy_record_path(&self, fingerprint: Fingerprint) -> PathBuf {
        self.dir.join(format!("{}.run", fingerprint.to_hex()))
    }

    /// Cheap existence probe (no validation) — what `--dry-run` reports.
    pub fn contains(&self, fingerprint: Fingerprint) -> bool {
        self.record_path(fingerprint).exists() || self.legacy_record_path(fingerprint).exists()
    }

    /// Every record file on disk (any validity): sharded records plus
    /// legacy flat ones, sorted by path for deterministic iteration.
    pub fn record_files(&self) -> Result<Vec<PathBuf>, StoreError> {
        let read_dir = |dir: &Path| -> Result<Vec<PathBuf>, StoreError> {
            let entries = fs::read_dir(dir).map_err(|source| StoreError::Io {
                path: dir.to_path_buf(),
                source,
            })?;
            let mut out = Vec::new();
            for entry in entries {
                let entry = entry.map_err(|source| StoreError::Io {
                    path: dir.to_path_buf(),
                    source,
                })?;
                out.push(entry.path());
            }
            Ok(out)
        };
        let mut files = Vec::new();
        for path in read_dir(&self.dir)? {
            if path.is_dir() {
                for sub in read_dir(&path)? {
                    if sub.extension().is_some_and(|e| e == "run") {
                        files.push(sub);
                    }
                }
            } else if path.extension().is_some_and(|e| e == "run") {
                files.push(path);
            }
        }
        files.sort();
        Ok(files)
    }

    /// Number of records currently on disk (any validity).
    pub fn record_count(&self) -> Result<usize, StoreError> {
        Ok(self.record_files()?.len())
    }

    /// Load the record for `fingerprint`. `Ok(None)` is a clean miss; a
    /// record that exists but fails validation is a typed error (and the
    /// caller decides to re-run — the record is left in place for
    /// inspection and will be overwritten by the fresh result).
    pub fn load(&mut self, fingerprint: Fingerprint) -> Result<Option<RunResult>, StoreError> {
        let mut path = self.record_path(fingerprint);
        let bytes = match fs::read(&path) {
            Ok(bytes) => bytes,
            Err(e) if e.kind() == ErrorKind::NotFound => {
                // Read-through to the pre-sharding flat layout.
                path = self.legacy_record_path(fingerprint);
                match fs::read(&path) {
                    Ok(bytes) => bytes,
                    Err(e) if e.kind() == ErrorKind::NotFound => {
                        self.stats.misses += 1;
                        return Ok(None);
                    }
                    Err(source) => {
                        self.stats.corrupt += 1;
                        return Err(StoreError::Io { path, source });
                    }
                }
            }
            Err(source) => {
                self.stats.corrupt += 1;
                return Err(StoreError::Io { path, source });
            }
        };
        self.stats.bytes_read += bytes.len() as u64;
        match Self::validate_and_decode(&path, &bytes, fingerprint) {
            Ok(result) => {
                self.stats.hits += 1;
                Ok(Some(result))
            }
            Err(e) => {
                self.stats.corrupt += 1;
                Err(e)
            }
        }
    }

    /// Validate a record's framing (magic, version, key, length,
    /// checksum) and decode its payload. Compaction uses this to decide
    /// whether a record is worth keeping.
    pub(crate) fn validate_and_decode(
        path: &Path,
        bytes: &[u8],
        fingerprint: Fingerprint,
    ) -> Result<RunResult, StoreError> {
        let corrupt = |reason: &'static str| StoreError::Corrupt {
            path: path.to_path_buf(),
            reason,
        };
        if bytes.len() < HEADER_LEN + 8 {
            return Err(corrupt("record shorter than header"));
        }
        let mut r = ByteReader::new(bytes);
        let read_header =
            |r: &mut ByteReader<'_>| -> Result<(Vec<u8>, u32, [u8; 16], u64), DecodeError> {
                let magic = r.get_raw(4)?.to_vec();
                let version = r.get_u32()?;
                let mut key = [0u8; 16];
                key.copy_from_slice(r.get_raw(16)?);
                let payload_len = r.get_u64()?;
                Ok((magic, version, key, payload_len))
            };
        let (magic, version, key, payload_len) =
            read_header(&mut r).map_err(|_| corrupt("record shorter than header"))?;
        if magic != RECORD_MAGIC {
            return Err(corrupt("bad magic"));
        }
        if version != STORE_FORMAT_VERSION {
            return Err(StoreError::Version {
                path: path.to_path_buf(),
                found: version,
            });
        }
        if Fingerprint::from_bytes(key) != fingerprint {
            return Err(corrupt("record key does not match its filename"));
        }
        let expected_payload = bytes.len() - HEADER_LEN - 8;
        if payload_len != expected_payload as u64 {
            return Err(corrupt("payload length mismatch (truncated or padded)"));
        }
        let payload = r
            .get_raw(expected_payload)
            .map_err(|_| corrupt("payload truncated"))?;
        let stored_checksum = r.get_u64().map_err(|_| corrupt("checksum truncated"))?;
        if stored_checksum != checksum64(payload) {
            return Err(corrupt("checksum mismatch"));
        }
        decode_run_result(payload).map_err(|source| StoreError::Decode {
            path: path.to_path_buf(),
            source,
        })
    }

    /// Persist `result` under `fingerprint`, atomically: write to a
    /// uniquely named temporary sibling (pid + per-process sequence, so
    /// concurrent writers of the same key never share a tmp file),
    /// `sync_all`, then rename into place. Readers racing the rename see
    /// either the old complete record or the new one — never torn bytes.
    pub fn store(
        &mut self,
        fingerprint: Fingerprint,
        result: &RunResult,
    ) -> Result<(), StoreError> {
        let payload = encode_run_result(result);
        let mut w = ByteWriter::new();
        w.put_raw(RECORD_MAGIC);
        w.put_u32(STORE_FORMAT_VERSION);
        w.put_raw(&fingerprint.to_bytes());
        w.put_usize(payload.len());
        w.put_raw(&payload);
        w.put_u64(checksum64(&payload));
        let record = w.into_bytes();

        let hex = fingerprint.to_hex();
        let shard = self.dir.join(&hex[..2]);
        fs::create_dir_all(&shard).map_err(|source| StoreError::Io {
            path: shard.clone(),
            source,
        })?;
        let path = self.record_path(fingerprint);
        let tmp = shard.join(format!(
            "{hex}.{}.{}.tmp",
            std::process::id(),
            TMP_SEQ.fetch_add(1, Ordering::Relaxed),
        ));
        let io_err = |path: &Path| {
            let path = path.to_path_buf();
            move |source| StoreError::Io { path, source }
        };
        let mut file = fs::File::create(&tmp).map_err(io_err(&tmp))?;
        file.write_all(&record).map_err(io_err(&tmp))?;
        file.sync_all().map_err(io_err(&tmp))?;
        drop(file);
        fs::rename(&tmp, &path).map_err(io_err(&path))?;
        self.stats.bytes_written += record.len() as u64;
        Ok(())
    }

    /// Cumulative stats for this handle.
    pub fn stats(&self) -> StoreStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::Experiment;
    use crate::store::fingerprint::fingerprint_experiment;
    use crate::strategy::DvsStrategy;
    use crate::workload::Workload;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("pwrperf-store-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn store_and_load_round_trip() {
        let dir = tmp_dir("roundtrip");
        let mut store = SweepStore::open(&dir).unwrap();
        let exp = Experiment::new(Workload::ft_test(2), DvsStrategy::StaticMhz(800));
        let fp = fingerprint_experiment(&exp);
        assert!(store.load(fp).unwrap().is_none());
        let result = exp.run();
        store.store(fp, &result).unwrap();
        assert!(store.contains(fp));
        assert_eq!(store.record_count().unwrap(), 1);
        assert_eq!(store.load(fp).unwrap(), Some(result));
        let stats = store.stats();
        assert_eq!((stats.hits, stats.misses, stats.corrupt), (1, 1, 0));
        assert!(stats.bytes_written > 0 && stats.bytes_read > 0);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupted_record_is_a_typed_error() {
        let dir = tmp_dir("corrupt");
        let mut store = SweepStore::open(&dir).unwrap();
        let exp = Experiment::new(Workload::ft_test(2), DvsStrategy::StaticMhz(600));
        let fp = fingerprint_experiment(&exp);
        store.store(fp, &exp.run()).unwrap();

        // Flip one payload byte: the checksum must catch it.
        let path = store.record_path(fp);
        let mut bytes = fs::read(&path).unwrap();
        let mid = HEADER_LEN + 10;
        bytes[mid] ^= 0xFF;
        fs::write(&path, &bytes).unwrap();
        assert!(matches!(
            store.load(fp),
            Err(StoreError::Corrupt {
                reason: "checksum mismatch",
                ..
            })
        ));

        // Truncate: length validation catches it.
        fs::write(&path, &bytes[..bytes.len() / 2]).unwrap();
        assert!(matches!(store.load(fp), Err(StoreError::Corrupt { .. })));
        assert_eq!(store.stats().corrupt, 2);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn records_land_in_two_hex_shard_dirs() {
        let dir = tmp_dir("sharded");
        let mut store = SweepStore::open(&dir).unwrap();
        let exp = Experiment::new(Workload::ft_test(2), DvsStrategy::StaticMhz(1000));
        let fp = fingerprint_experiment(&exp);
        store.store(fp, &exp.run()).unwrap();
        let path = store.record_path(fp);
        assert!(path.exists());
        let shard = path
            .parent()
            .unwrap()
            .file_name()
            .unwrap()
            .to_str()
            .unwrap();
        assert_eq!(shard, &fp.to_hex()[..2]);
        assert_eq!(store.record_count().unwrap(), 1);
        // No stray tmp files survive a successful store.
        assert!(fs::read_dir(path.parent().unwrap()).unwrap().all(|e| e
            .unwrap()
            .path()
            .extension()
            .is_some_and(|x| x == "run")));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn legacy_flat_records_are_read_through() {
        let dir = tmp_dir("legacy");
        let mut store = SweepStore::open(&dir).unwrap();
        let exp = Experiment::new(Workload::ft_test(2), DvsStrategy::StaticMhz(1200));
        let fp = fingerprint_experiment(&exp);
        let result = exp.run();
        store.store(fp, &result).unwrap();
        // Demote the record to the pre-sharding flat location.
        fs::rename(store.record_path(fp), store.legacy_record_path(fp)).unwrap();
        assert!(store.contains(fp), "contains must probe the legacy path");
        assert_eq!(store.record_count().unwrap(), 1);
        assert_eq!(store.load(fp).unwrap(), Some(result));
        assert_eq!(store.stats().hits, 1);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn version_skew_is_detected() {
        let dir = tmp_dir("version");
        let mut store = SweepStore::open(&dir).unwrap();
        let exp = Experiment::new(Workload::ft_test(2), DvsStrategy::Cpuspeed);
        let fp = fingerprint_experiment(&exp);
        store.store(fp, &exp.run()).unwrap();
        let path = store.record_path(fp);
        let mut bytes = fs::read(&path).unwrap();
        bytes[4] = 0xEE; // version field, little-endian low byte
        fs::write(&path, &bytes).unwrap();
        assert!(matches!(
            store.load(fp),
            Err(StoreError::Version { found, .. }) if found != STORE_FORMAT_VERSION
        ));
        let _ = fs::remove_dir_all(&dir);
    }
}
