//! The store-only query layer: stored results → ED²P/wED²P tables.
//!
//! A query names a grid exactly like a sweep submission, but it is
//! answered **entirely from the store**: every grid cell either loads a
//! record or is counted as missing — a query never executes the engine
//! (the service smoke test asserts engine-run counters stay flat across
//! queries). Rows group by workload × fault spec; within a group the
//! per-`∂` weighted ED²P of every strategy is normalized against the
//! group's first present row, which is the paper's way of reading the
//! tables ("relative to the highest operating point") without the
//! client needing any local analysis code.

use edp_metrics::{ed2p, weighted_ed2p};

use crate::store::{fingerprint_experiment, SweepStore};

use super::protocol::SweepSpec;
use super::ServiceError;

/// One grid cell with a stored result.
#[derive(Debug, Clone, PartialEq)]
pub struct AggregateRow {
    /// Workload label.
    pub workload: String,
    /// Fault-spec string (`clean` for the empty spec).
    pub fault: String,
    /// Strategy label.
    pub strategy: String,
    /// Total energy, joules.
    pub energy_j: f64,
    /// Makespan, seconds.
    pub delay_s: f64,
    /// Plain `E · D²`.
    pub ed2p: f64,
    /// Weighted ED²P per requested `∂`, normalized to the first present
    /// row of the same workload × fault group (that row reads `1.0`).
    pub wed2p: Vec<f64>,
}

/// A rendered aggregation answer.
#[derive(Debug, Clone, PartialEq)]
pub struct AggregateTable {
    /// Topology the grid was keyed under.
    pub topology: String,
    /// The `∂` columns.
    pub deltas: Vec<f64>,
    /// One row per grid cell with a stored result, grid order.
    pub rows: Vec<AggregateRow>,
    /// Grid cells with no valid stored record — counted, never run.
    pub missing: u64,
}

/// Answer `spec` from `store` alone (see module docs).
pub fn aggregate(store: &mut SweepStore, spec: &SweepSpec) -> Result<AggregateTable, ServiceError> {
    let sweep = spec.resolve().map_err(ServiceError::Spec)?;
    let fault_labels: Vec<String> = if spec.fault_specs.is_empty() {
        vec!["clean".to_string()]
    } else {
        spec.fault_specs.clone()
    };

    let mut rows = Vec::new();
    let mut missing = 0u64;
    let experiments = sweep.experiments();
    let strategy_count = sweep.strategies.len();
    let fault_count = sweep.fault_specs.len();
    for (wi, workload) in sweep.workloads.iter().enumerate() {
        for (fi, fault) in fault_labels.iter().enumerate().take(fault_count) {
            let row_base = (wi * fault_count + fi) * strategy_count;
            // The group baseline: first strategy in this group with a
            // stored result.
            let mut baseline: Option<(f64, f64)> = None;
            for (si, strategy) in sweep.strategies.iter().enumerate() {
                let Some(experiment) = experiments.get(row_base + si) else {
                    continue;
                };
                let fp = fingerprint_experiment(experiment);
                let Some(result) = store.load(fp).ok().flatten() else {
                    missing += 1;
                    continue;
                };
                let energy_j = result.total_energy_j();
                let delay_s = result.duration_secs();
                let (base_e, base_d) = *baseline.get_or_insert((energy_j, delay_s));
                let wed2p = spec
                    .deltas
                    .iter()
                    .map(|&delta| {
                        let raw = weighted_ed2p(energy_j, delay_s, delta);
                        let base = weighted_ed2p(base_e, base_d, delta);
                        if base > 0.0 {
                            raw / base
                        } else {
                            raw
                        }
                    })
                    .collect();
                rows.push(AggregateRow {
                    workload: workload.label(),
                    fault: fault.clone(),
                    strategy: strategy.label(),
                    energy_j,
                    delay_s,
                    ed2p: ed2p(energy_j, delay_s),
                    wed2p,
                });
            }
        }
    }
    Ok(AggregateTable {
        topology: spec.topology.clone(),
        deltas: spec.deltas.clone(),
        rows,
        missing,
    })
}

impl AggregateTable {
    /// Render the table as aligned text (what the CLI client prints).
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "# topology={} rows={} missing={}\n",
            self.topology,
            self.rows.len(),
            self.missing
        ));
        let mut header = format!(
            "{:<14} {:<12} {:<16} {:>12} {:>10} {:>14}",
            "workload", "fault", "strategy", "energy_J", "delay_s", "ed2p"
        );
        for delta in &self.deltas {
            header.push_str(&format!(" {:>12}", format!("wed2p[{delta}]")));
        }
        out.push_str(&header);
        out.push('\n');
        for row in &self.rows {
            let mut line = format!(
                "{:<14} {:<12} {:<16} {:>12.3} {:>10.4} {:>14.4}",
                row.workload, row.fault, row.strategy, row.energy_j, row.delay_s, row.ed2p
            );
            for w in &row.wed2p {
                line.push_str(&format!(" {w:>12.4}"));
            }
            out.push_str(&line);
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::DvsStrategy;
    use crate::sweep::Sweep;
    use crate::workload::Workload;
    use std::path::PathBuf;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("pwrperf-agg-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn aggregates_from_store_only_and_counts_missing() {
        let dir = tmp_dir("table");
        let mut store = SweepStore::open(&dir).unwrap();
        // Seed two of three strategies; the third must be *missing*, not
        // executed.
        let sweep = Sweep::grid(
            vec![Workload::ft_test(2)],
            vec![DvsStrategy::StaticMhz(600), DvsStrategy::StaticMhz(800)],
            vec![],
            vec![],
        );
        sweep.run(&mut store, Some(2)).unwrap();

        let spec = SweepSpec {
            workloads: vec!["ft-test4".into()],
            strategies: vec!["static-600".into(), "static-800".into()],
            deltas: vec![0.0, 0.2],
            ..SweepSpec::default()
        };
        // ft-test4 != the seeded ft_test(2): every cell missing.
        let table = aggregate(&mut store, &spec).unwrap();
        assert_eq!(table.rows.len(), 0);
        assert_eq!(table.missing, 2);

        // The seeded grid itself: two rows, no missing, baseline row
        // normalized to exactly 1.0 in every delta column.
        let mut store2 = SweepStore::open(&dir).unwrap();
        let seeded = Sweep::grid(
            vec![Workload::ft_test(4)],
            vec![DvsStrategy::StaticMhz(600), DvsStrategy::StaticMhz(800)],
            vec![],
            vec![],
        );
        seeded.run(&mut store2, Some(2)).unwrap();
        let runs_before = store2.stats().misses;
        let table = aggregate(&mut store2, &spec).unwrap();
        assert_eq!(table.rows.len(), 2);
        assert_eq!(table.missing, 0);
        assert_eq!(store2.stats().misses, runs_before, "query never executes");
        for w in &table.rows[0].wed2p {
            assert_eq!(*w, 1.0, "baseline row is the unit row");
        }
        assert!(table.rows[1].wed2p.iter().all(|w| *w > 0.0));
        let text = table.render_text();
        assert!(text.contains("stat 600MHz") && text.contains("wed2p[0.2]"));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
