//! Request/response frames and their payload encodings.
//!
//! Every payload flows through the store's [`ByteWriter`]/[`ByteReader`]
//! codec: little-endian, length-prefixed sequences, typed errors, no
//! panics on hostile input. Sweep grids travel as *names* (workload,
//! strategy, fault-spec, topology strings), resolved server-side through
//! the same registries the CLI uses — so a client never has to encode an
//! `Experiment`, and both ends derive identical fingerprints from
//! identical specs by construction.

use mpi_sim::{EngineConfig, RunResult, Topology};
use sim_core::FaultSpec;

use crate::store::{decode_run_result, encode_run_result, ByteReader, ByteWriter, DecodeError};
use crate::strategy::DvsStrategy;
use crate::sweep::{Sweep, SweepReport};
use crate::workload::Workload;

/// Wire protocol version; mixed into every frame header. Bump on any
/// frame or payload layout change: a mismatched peer gets a typed
/// [`ProtocolError::Version`] instead of decoding garbage.
pub const PROTOCOL_VERSION: u32 = 1;

/// Why a frame could not be read or understood.
#[derive(Debug)]
pub enum ProtocolError {
    /// The socket failed mid-frame (includes EOF inside a frame).
    Io(std::io::Error),
    /// The frame header did not start with the protocol magic.
    BadMagic,
    /// The peer speaks a different protocol version.
    Version {
        /// Version found in the header.
        found: u32,
    },
    /// The frame kind byte names no known frame.
    BadKind {
        /// The offending kind byte.
        kind: u8,
    },
    /// The declared payload length exceeds the frame size bound.
    TooLarge {
        /// Declared payload byte count.
        len: u64,
    },
    /// The payload checksum did not match (torn or corrupted frame).
    Checksum,
    /// The payload failed structural decoding.
    Decode(DecodeError),
    /// The server answered with an error frame.
    Remote(String),
    /// The peer answered with a well-formed frame of the wrong kind.
    Unexpected {
        /// What the caller was waiting for.
        wanted: &'static str,
        /// What actually arrived.
        got: &'static str,
    },
}

impl std::fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProtocolError::Io(e) => write!(f, "socket I/O failed: {e}"),
            ProtocolError::BadMagic => write!(f, "bad frame magic (not a pwrperfd peer?)"),
            ProtocolError::Version { found } => write!(
                f,
                "peer speaks protocol version {found}, expected {PROTOCOL_VERSION}"
            ),
            ProtocolError::BadKind { kind } => write!(f, "unknown frame kind {kind:#04x}"),
            ProtocolError::TooLarge { len } => write!(f, "frame payload of {len} bytes too large"),
            ProtocolError::Checksum => write!(f, "frame checksum mismatch"),
            ProtocolError::Decode(e) => write!(f, "frame payload would not decode: {e}"),
            ProtocolError::Remote(msg) => write!(f, "server error: {msg}"),
            ProtocolError::Unexpected { wanted, got } => {
                write!(f, "expected a {wanted} frame, got {got}")
            }
        }
    }
}

impl std::error::Error for ProtocolError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ProtocolError::Io(e) => Some(e),
            ProtocolError::Decode(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for ProtocolError {
    fn from(e: std::io::Error) -> Self {
        ProtocolError::Io(e)
    }
}

impl From<DecodeError> for ProtocolError {
    fn from(e: DecodeError) -> Self {
        ProtocolError::Decode(e)
    }
}

/// A sweep grid by name: what travels on the wire. Resolved server-side
/// via [`SweepSpec::resolve`] into a [`Sweep`] whose fingerprints match
/// what the same names produce anywhere else.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepSpec {
    /// Workload names (`ft-test4`, `ft-scale-1024`, `mem-micro`, ...).
    pub workloads: Vec<String>,
    /// Strategy names (`static-800`, `dynamic-1400`, `cap-80`, ...).
    pub strategies: Vec<String>,
    /// `∂` weightings for the aggregation layer (never spawn runs).
    pub deltas: Vec<f64>,
    /// Fault-spec strings (`slow:0:5.0`, `seed:7`, ...); empty = clean.
    pub fault_specs: Vec<String>,
    /// Topology spec (`flat`, `fat-tree:radix=16,oversub=2`).
    pub topology: String,
    /// Record the causal log (keys the cache, like the CLI flag).
    pub causal: bool,
    /// Intra-run shard count (execution detail; never keys the cache).
    pub shards: usize,
}

impl Default for SweepSpec {
    fn default() -> Self {
        SweepSpec {
            workloads: Vec::new(),
            strategies: Vec::new(),
            deltas: Vec::new(),
            fault_specs: Vec::new(),
            topology: "flat".to_string(),
            causal: false,
            shards: 1,
        }
    }
}

impl SweepSpec {
    /// Resolve every name into a concrete [`Sweep`]. Any unknown name is
    /// a [`ServiceError::Spec`]-grade `Err` with the offending token.
    ///
    /// [`ServiceError::Spec`]: super::ServiceError::Spec
    pub fn resolve(&self) -> Result<Sweep, String> {
        let workloads = self
            .workloads
            .iter()
            .map(|name| Workload::parse_name(name))
            .collect::<Result<Vec<_>, _>>()?;
        let strategies = self
            .strategies
            .iter()
            .map(|name| DvsStrategy::parse_name(name))
            .collect::<Result<Vec<_>, _>>()?;
        let fault_specs = self
            .fault_specs
            .iter()
            .map(|spec| FaultSpec::parse(spec))
            .collect::<Result<Vec<_>, _>>()?;
        let topology = Topology::parse(&self.topology)?;
        if workloads.is_empty() || strategies.is_empty() {
            return Err("a sweep needs at least one workload and one strategy".to_string());
        }
        for &delta in &self.deltas {
            if !delta.is_finite() || !(-1.0..=1.0).contains(&delta) {
                return Err(format!("delta {delta} outside [-1, 1]"));
            }
        }
        let engine = EngineConfig {
            topology,
            shards: self.shards.max(1),
            causal: self.causal,
            ..EngineConfig::default()
        };
        Ok(
            Sweep::grid(workloads, strategies, self.deltas.clone(), fault_specs)
                .with_engine(engine),
        )
    }

    fn encode(&self, w: &mut ByteWriter) {
        encode_strings(w, &self.workloads);
        encode_strings(w, &self.strategies);
        w.put_usize(self.deltas.len());
        for &d in &self.deltas {
            w.put_f64(d);
        }
        encode_strings(w, &self.fault_specs);
        w.put_str(&self.topology);
        w.put_bool(self.causal);
        w.put_usize(self.shards);
    }

    fn decode(r: &mut ByteReader<'_>) -> Result<Self, DecodeError> {
        let workloads = decode_strings(r, "workloads")?;
        let strategies = decode_strings(r, "strategies")?;
        let n = r.get_seq_len("deltas", 8)?;
        let mut deltas = Vec::with_capacity(n);
        for _ in 0..n {
            deltas.push(r.get_f64()?);
        }
        let fault_specs = decode_strings(r, "fault_specs")?;
        let topology = r.get_str()?;
        let causal = r.get_bool()?;
        let shards = r.get_seq_len("shards", 0)?;
        Ok(SweepSpec {
            workloads,
            strategies,
            deltas,
            fault_specs,
            topology,
            causal,
            shards,
        })
    }
}

fn encode_strings(w: &mut ByteWriter, items: &[String]) {
    w.put_usize(items.len());
    for s in items {
        w.put_str(s);
    }
}

fn decode_strings(r: &mut ByteReader<'_>, what: &'static str) -> Result<Vec<String>, DecodeError> {
    let n = r.get_seq_len(what, 4)?;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push(r.get_str()?);
    }
    Ok(out)
}

/// A client request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Run (or replay) a sweep: hits stream from the store, misses drain
    /// through the executor, and the full results come back.
    SubmitSweep(SweepSpec),
    /// Aggregate a sweep's stored results into the ED²P/wED²P table —
    /// store-only, never executes (missing cells are *counted*, not run).
    Query(SweepSpec),
    /// Report the daemon's `service.*` counters.
    Status,
    /// Stop accepting connections and exit the serve loop.
    Shutdown,
}

impl Request {
    /// This frame's kind byte.
    pub fn kind(&self) -> u8 {
        match self {
            Request::SubmitSweep(_) => kind::SUBMIT_SWEEP,
            Request::Query(_) => kind::QUERY,
            Request::Status => kind::STATUS,
            Request::Shutdown => kind::SHUTDOWN,
        }
    }

    /// Encode the payload (everything after the frame header).
    pub fn encode_payload(&self) -> Vec<u8> {
        let mut w = ByteWriter::new();
        match self {
            Request::SubmitSweep(spec) | Request::Query(spec) => spec.encode(&mut w),
            Request::Status | Request::Shutdown => {}
        }
        w.into_bytes()
    }

    /// Decode a request from its kind byte and payload.
    pub fn decode(kind: u8, payload: &[u8]) -> Result<Request, ProtocolError> {
        let mut r = ByteReader::new(payload);
        let request = match kind {
            kind::SUBMIT_SWEEP => Request::SubmitSweep(SweepSpec::decode(&mut r)?),
            kind::QUERY => Request::Query(SweepSpec::decode(&mut r)?),
            kind::STATUS => Request::Status,
            kind::SHUTDOWN => Request::Shutdown,
            other => return Err(ProtocolError::BadKind { kind: other }),
        };
        r.finish()?;
        Ok(request)
    }
}

/// What a completed sweep sends back.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepDone {
    /// Accounting for this invocation (hits/misses/engine runs as seen
    /// by the daemon for *this* request).
    pub report: SweepReport,
    /// One result per grid cell, row-major — bit-identical to what a
    /// local [`Sweep::run`] of the same spec produces.
    pub results: Vec<RunResult>,
}

/// The rendered aggregation answer.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryReply {
    /// The ED²P/wED²P table, rendered server-side.
    pub table: String,
    /// Rows in the table (grid cells with a stored result).
    pub rows: u64,
    /// Grid cells with no (valid) stored result — counted, never run.
    pub missing: u64,
}

/// The daemon's counters at one instant.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct StatusReply {
    /// `service.*` counters, sorted by name.
    pub counters: Vec<(String, u64)>,
}

impl StatusReply {
    /// The value of one counter, if present.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, v)| v)
    }
}

/// A server response.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Sweep finished; full results attached.
    SweepDone(SweepDone),
    /// Aggregation table.
    QueryDone(QueryReply),
    /// Counter snapshot.
    Status(StatusReply),
    /// Acknowledges [`Request::Shutdown`]; the daemon exits after this.
    ShuttingDown,
    /// The request failed server-side (bad spec, store error, ...).
    Error(String),
}

impl Response {
    /// This frame's kind byte.
    pub fn kind(&self) -> u8 {
        match self {
            Response::SweepDone(_) => kind::SWEEP_DONE,
            Response::QueryDone(_) => kind::QUERY_DONE,
            Response::Status(_) => kind::STATUS_REPLY,
            Response::ShuttingDown => kind::SHUTTING_DOWN,
            Response::Error(_) => kind::ERROR,
        }
    }

    /// A short name for [`ProtocolError::Unexpected`] messages.
    pub fn name(&self) -> &'static str {
        match self {
            Response::SweepDone(_) => "sweep-done",
            Response::QueryDone(_) => "query-done",
            Response::Status(_) => "status",
            Response::ShuttingDown => "shutting-down",
            Response::Error(_) => "error",
        }
    }

    /// Encode the payload (everything after the frame header).
    pub fn encode_payload(&self) -> Vec<u8> {
        let mut w = ByteWriter::new();
        match self {
            Response::SweepDone(done) => {
                encode_report(&mut w, &done.report);
                w.put_usize(done.results.len());
                for result in &done.results {
                    let bytes = encode_run_result(result);
                    w.put_usize(bytes.len());
                    w.put_raw(&bytes);
                }
            }
            Response::QueryDone(reply) => {
                w.put_str(&reply.table);
                w.put_u64(reply.rows);
                w.put_u64(reply.missing);
            }
            Response::Status(status) => {
                w.put_usize(status.counters.len());
                for (name, value) in &status.counters {
                    w.put_str(name);
                    w.put_u64(*value);
                }
            }
            Response::ShuttingDown => {}
            Response::Error(msg) => w.put_str(msg),
        }
        w.into_bytes()
    }

    /// Decode a response from its kind byte and payload.
    pub fn decode(kind: u8, payload: &[u8]) -> Result<Response, ProtocolError> {
        let mut r = ByteReader::new(payload);
        let response = match kind {
            kind::SWEEP_DONE => {
                let report = decode_report(&mut r)?;
                let n = r.get_seq_len("results", 8)?;
                let mut results = Vec::with_capacity(n);
                for _ in 0..n {
                    let len = r.get_seq_len("result bytes", 1)?;
                    let bytes = r.get_raw(len)?;
                    results.push(decode_run_result(bytes)?);
                }
                Response::SweepDone(SweepDone { report, results })
            }
            kind::QUERY_DONE => Response::QueryDone(QueryReply {
                table: r.get_str()?,
                rows: r.get_u64()?,
                missing: r.get_u64()?,
            }),
            kind::STATUS_REPLY => {
                let n = r.get_seq_len("counters", 12)?;
                let mut counters = Vec::with_capacity(n);
                for _ in 0..n {
                    let name = r.get_str()?;
                    let value = r.get_u64()?;
                    counters.push((name, value));
                }
                Response::Status(StatusReply { counters })
            }
            kind::SHUTTING_DOWN => Response::ShuttingDown,
            kind::ERROR => Response::Error(r.get_str()?),
            other => return Err(ProtocolError::BadKind { kind: other }),
        };
        r.finish()?;
        Ok(response)
    }
}

fn encode_report(w: &mut ByteWriter, report: &SweepReport) {
    w.put_u64(report.jobs);
    w.put_u64(report.cache_hits);
    w.put_u64(report.cache_misses);
    w.put_u64(report.engine_runs);
    w.put_u64(report.corrupt_records);
    w.put_u64(report.bytes_read);
    w.put_u64(report.bytes_written);
    w.put_u64(report.duplicate_jobs);
}

fn decode_report(r: &mut ByteReader<'_>) -> Result<SweepReport, DecodeError> {
    Ok(SweepReport {
        jobs: r.get_u64()?,
        cache_hits: r.get_u64()?,
        cache_misses: r.get_u64()?,
        engine_runs: r.get_u64()?,
        corrupt_records: r.get_u64()?,
        bytes_read: r.get_u64()?,
        bytes_written: r.get_u64()?,
        duplicate_jobs: r.get_u64()?,
    })
}

/// Frame kind bytes (requests low, responses high).
pub(crate) mod kind {
    pub const SUBMIT_SWEEP: u8 = 0x01;
    pub const QUERY: u8 = 0x02;
    pub const STATUS: u8 = 0x03;
    pub const SHUTDOWN: u8 = 0x04;
    pub const SWEEP_DONE: u8 = 0x81;
    pub const QUERY_DONE: u8 = 0x82;
    pub const STATUS_REPLY: u8 = 0x83;
    pub const SHUTTING_DOWN: u8 = 0x84;
    pub const ERROR: u8 = 0xFF;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::Experiment;

    fn spec() -> SweepSpec {
        SweepSpec {
            workloads: vec!["ft-test4".into(), "swim".into()],
            strategies: vec!["static-800".into(), "cap-80-uniform".into()],
            deltas: vec![0.0, 0.5],
            fault_specs: vec!["slow:0:5.0".into()],
            topology: "fat-tree:radix=4,oversub=2".into(),
            causal: false,
            shards: 2,
        }
    }

    #[test]
    fn requests_round_trip() {
        for request in [
            Request::SubmitSweep(spec()),
            Request::Query(spec()),
            Request::Status,
            Request::Shutdown,
        ] {
            let payload = request.encode_payload();
            let back = Request::decode(request.kind(), &payload).unwrap();
            assert_eq!(back, request);
        }
    }

    #[test]
    fn responses_round_trip() {
        let result = Experiment::new(
            crate::workload::Workload::ft_test(2),
            DvsStrategy::StaticMhz(800),
        )
        .run();
        let responses = [
            Response::SweepDone(SweepDone {
                report: SweepReport {
                    jobs: 2,
                    cache_hits: 1,
                    engine_runs: 1,
                    cache_misses: 1,
                    bytes_read: 10,
                    bytes_written: 20,
                    corrupt_records: 0,
                    duplicate_jobs: 0,
                },
                results: vec![result.clone(), result],
            }),
            Response::QueryDone(QueryReply {
                table: "workload strategy ed2p\n".into(),
                rows: 4,
                missing: 1,
            }),
            Response::Status(StatusReply {
                counters: vec![("service.hits".into(), 3), ("service.misses".into(), 1)],
            }),
            Response::ShuttingDown,
            Response::Error("no such workload".into()),
        ];
        for response in responses {
            let payload = response.encode_payload();
            let back = Response::decode(response.kind(), &payload).unwrap();
            assert_eq!(back, response);
        }
    }

    #[test]
    fn unknown_kind_is_typed() {
        assert!(matches!(
            Request::decode(0x7E, &[]),
            Err(ProtocolError::BadKind { kind: 0x7E })
        ));
        assert!(matches!(
            Response::decode(0x7E, &[]),
            Err(ProtocolError::BadKind { kind: 0x7E })
        ));
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut payload = Request::Status.encode_payload();
        payload.push(0xAB);
        assert!(matches!(
            Request::decode(kind::STATUS, &payload),
            Err(ProtocolError::Decode(_))
        ));
    }

    #[test]
    fn spec_resolves_to_the_grid_the_names_describe() {
        let sweep = spec().resolve().unwrap();
        assert_eq!(sweep.len(), 4, "2 workloads x 1 fault x 2 strategies");
        assert_eq!(sweep.engine.shards, 2);
        assert!(matches!(
            sweep.engine.topology,
            mpi_sim::Topology::FatTree { radix: 4, .. }
        ));
        let bad = SweepSpec {
            workloads: vec!["warp-core".into()],
            strategies: vec!["static-800".into()],
            ..SweepSpec::default()
        };
        assert!(bad.resolve().is_err());
        let empty = SweepSpec::default();
        assert!(empty.resolve().is_err(), "empty grid is a spec error");
    }
}
